(** A JPEG-encoder-shaped pipeline.

    The paper cites JPEG encoding as the canonical pipeline workflow and
    studies its interval mapping in the companion report [Benoit, Kosch,
    Rehn-Sonigo, Robert 2008].  The authors' measured per-stage costs are
    not public, so we model the seven classical encoder stages with
    representative {e relative} costs: the DCT dominates computation,
    subsampling shrinks the data by 2x, and entropy coding compresses it by
    an order of magnitude.  Only the cost shape matters to mapping
    decisions, so this preserves the behaviour the paper relies on. *)

open Relpipe_model

val stage_names : string array
(** The seven stages: scaling, colour-space conversion, subsampling, block
    split, DCT, quantization, entropy coding. *)

val pipeline : ?image_size:float -> unit -> Pipeline.t
(** [pipeline ~image_size ()] builds the encoder pipeline for an input
    image of [image_size] data units (default [512.0], i.e. a 512 kB
    frame).  Work scales linearly with the data each stage consumes. *)

val default_instance : m:int -> Instance.t
(** The encoder pipeline on a two-tier cluster (half slow/reliable, half
    fast/unreliable) with unit bandwidth — a ready-made bi-criteria
    playground used by examples and benches. *)
