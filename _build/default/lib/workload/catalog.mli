(** Named platform presets.

    The paper targets "large scale distributed platforms such as clusters
    or grids"; these presets capture the recurring shapes from that
    literature with concrete, documented parameters, so examples and
    experiments can say "the campus grid" instead of re-deriving numbers.
    Speeds are in abstract op/time units, bandwidths in data/time units,
    and failure probabilities are per-mission (the paper's model). *)

open Relpipe_model

type entry = {
  name : string;
  description : string;
  platform : Platform.t;
}

val lab_cluster : entry
(** 8 identical rack nodes, reliable, fast switch — the Fully Homogeneous
    reference point (Algorithms 1/2 territory). *)

val campus_grid : entry
(** 16 machines of mixed generations behind one switch: Communication
    Homogeneous, speeds spread 4x, newer machines slightly less reliable
    (heterogeneous failures — the paper's open case). *)

val volunteer_network : entry
(** 24 volunteer desktops: fast but unreliable peers plus a few slow
    stable anchors, asymmetric last-mile bandwidths — Fully Heterogeneous,
    the NP-hard regime and the Fig. 5 story at scale. *)

val federation : entry
(** Three 4-node sites with fast intra-site and slow inter-site links
    (built with {!Plat_gen.clustered}-like structure, deterministic). *)

val all : entry list

val find : string -> entry option
(** Lookup by name (case-insensitive). *)
