lib/workload/jpeg.ml: Array Instance List Pipeline Plat_gen Relpipe_model
