lib/workload/jpeg.mli: Instance Pipeline Relpipe_model
