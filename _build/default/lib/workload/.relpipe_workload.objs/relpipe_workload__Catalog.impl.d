lib/workload/catalog.ml: Array Float List Platform Relpipe_model String
