lib/workload/app_gen.ml: List Pipeline Relpipe_model Relpipe_util
