lib/workload/app_gen.mli: Pipeline Relpipe_model Relpipe_util
