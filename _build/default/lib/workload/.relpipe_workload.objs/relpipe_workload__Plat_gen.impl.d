lib/workload/plat_gen.ml: Array Float Platform Relpipe_model Relpipe_util
