lib/workload/scenarios.mli: Instance Mapping Pipeline Relpipe_model Relpipe_util
