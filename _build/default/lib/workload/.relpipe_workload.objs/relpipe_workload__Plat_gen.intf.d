lib/workload/plat_gen.mli: Platform Relpipe_model Relpipe_util
