lib/workload/scenarios.ml: Instance List Mapping Pipeline Plat_gen Platform Relpipe_model
