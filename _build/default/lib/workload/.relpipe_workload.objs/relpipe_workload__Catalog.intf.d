lib/workload/catalog.mli: Platform Relpipe_model
