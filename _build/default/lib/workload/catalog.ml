open Relpipe_model

type entry = { name : string; description : string; platform : Platform.t }

let lab_cluster =
  {
    name = "lab-cluster";
    description = "8 identical rack nodes, reliable, fast switch";
    platform =
      Platform.fully_homogeneous ~m:8 ~speed:100.0 ~failure:0.02
        ~bandwidth:1000.0;
  }

let campus_grid =
  (* Four machine generations, four nodes each; newer = faster but run
     hotter and fail a bit more often over a long mission. *)
  let generations = [| (25.0, 0.03); (50.0, 0.05); (75.0, 0.08); (100.0, 0.12) |] in
  let speeds = Array.init 16 (fun u -> fst generations.(u / 4)) in
  let failures = Array.init 16 (fun u -> snd generations.(u / 4)) in
  {
    name = "campus-grid";
    description = "16 mixed-generation machines, one switch, hetero failures";
    platform = Platform.uniform_links ~speeds ~failures ~bandwidth:100.0;
  }

let volunteer_network =
  (* 20 fast unreliable peers with weak uplinks + 4 slow stable anchors
     with good connectivity: Fig. 5's trade-off at scale. *)
  let m = 24 in
  let is_anchor u = u >= 20 in
  let speeds = Array.init m (fun u -> if is_anchor u then 20.0 else 80.0) in
  let failures = Array.init m (fun u -> if is_anchor u then 0.05 else 0.45) in
  let bandwidth a b =
    let endpoint_quality = function
      | Platform.Pin | Platform.Pout -> 50.0
      | Platform.Proc u -> if is_anchor u then 50.0 else 8.0
    in
    Float.min (endpoint_quality a) (endpoint_quality b)
  in
  {
    name = "volunteer-network";
    description = "20 fast flaky peers + 4 stable anchors, weak last miles";
    platform = Platform.make ~speeds ~failures ~bandwidth;
  }

let federation =
  let sites = 3 and per_site = 4 in
  let m = sites * per_site in
  let site_of u = u / per_site in
  let site_speed = [| 60.0; 90.0; 40.0 |] in
  let site_failure = [| 0.06; 0.10; 0.04 |] in
  let speeds = Array.init m (fun u -> site_speed.(site_of u)) in
  let failures = Array.init m (fun u -> site_failure.(site_of u)) in
  let bandwidth a b =
    match a, b with
    | Platform.Proc u, Platform.Proc v ->
        if site_of u = site_of v then 500.0 else 25.0
    | _ -> 50.0
  in
  {
    name = "federation";
    description = "3 sites x 4 nodes, fast intra-site, slow inter-site";
    platform = Platform.make ~speeds ~failures ~bandwidth;
  }

let all = [ lab_cluster; campus_grid; volunteer_network; federation ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = target) all
