open Relpipe_model

let fig34 () =
  let pipeline =
    Pipeline.of_costs ~input:100.0 [ (2.0, 100.0); (2.0, 100.0) ]
  in
  let fast = 100.0 and slow = 1.0 in
  let bandwidth a b =
    match a, b with
    | Platform.Pin, Platform.Proc 0 | Platform.Proc 0, Platform.Pin -> fast
    | Platform.Proc 0, Platform.Proc 1 | Platform.Proc 1, Platform.Proc 0 -> fast
    | Platform.Proc 1, Platform.Pout | Platform.Pout, Platform.Proc 1 -> fast
    | _ -> slow
  in
  let platform =
    Platform.make ~speeds:[| 1.0; 1.0 |] ~failures:[| 0.1; 0.1 |] ~bandwidth
  in
  Instance.make pipeline platform

let fig34_single u = Mapping.single_interval ~n:2 ~m:2 [ u ]

let fig34_split () =
  Mapping.make ~n:2 ~m:2
    [
      { Mapping.first = 1; last = 1; procs = [ 0 ] };
      { Mapping.first = 2; last = 2; procs = [ 1 ] };
    ]

let fig5 () =
  let pipeline = Pipeline.of_costs ~input:10.0 [ (1.0, 1.0); (100.0, 0.0) ] in
  let platform =
    Plat_gen.two_tier ~m_slow:1 ~m_fast:10 ~slow_speed:1.0 ~fast_speed:100.0
      ~slow_failure:0.1 ~fast_failure:0.8 ~bandwidth:1.0
  in
  Instance.make pipeline platform

let fig5_threshold = 22.0

let fig5_single_two_fast () = Mapping.single_interval ~n:2 ~m:11 [ 1; 2 ]

let fig5_split () =
  Mapping.make ~n:2 ~m:11
    [
      { Mapping.first = 1; last = 1; procs = [ 0 ] };
      { Mapping.first = 2; last = 2; procs = List.init 10 (fun i -> i + 1) };
    ]

let video_transcoder ?(frame_size = 64.0) () =
  (* Relative costs: decoding inflates compressed input ~8x to raw frames,
     encoding dominates computation and compresses ~10x. *)
  Pipeline.of_costs ~input:frame_size
    [
      (0.2 *. frame_size, frame_size);          (* demux *)
      (2.0 *. frame_size, 8.0 *. frame_size);   (* decode *)
      (1.5 *. frame_size, 8.0 *. frame_size);   (* scale *)
      (12.0 *. frame_size, 0.8 *. frame_size);  (* encode *)
      (0.3 *. frame_size, 0.8 *. frame_size);   (* mux *)
    ]

let sensor_fusion ?(sample_rate = 100.0) () =
  Pipeline.of_costs ~input:sample_rate
    [
      (0.5 *. sample_rate, sample_rate);          (* ingest *)
      (1.0 *. sample_rate, 0.8 *. sample_rate);   (* clean *)
      (1.5 *. sample_rate, 0.7 *. sample_rate);   (* align *)
      (6.0 *. sample_rate, 0.3 *. sample_rate);   (* fuse: dominant *)
      (2.0 *. sample_rate, 0.1 *. sample_rate);   (* detect *)
      (0.2 *. sample_rate, 0.05 *. sample_rate);  (* publish *)
    ]

let grid_instance rng =
  let platform =
    Plat_gen.clustered rng ~clusters:3 ~cluster_size:4 ~speed:(2.0, 20.0)
      ~failure:(0.05, 0.4) ~intra_bandwidth:50.0 ~inter_bandwidth:5.0
      ~io_bandwidth:10.0
  in
  Instance.make (video_transcoder ()) platform
