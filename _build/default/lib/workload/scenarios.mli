(** The paper's concrete worked examples (Section 3), reproduced exactly.

    These instances anchor the test suite and the E1/E2 experiment tables:
    the paper states their optimal latencies and failure probabilities in
    closed form, so any regression in the evaluators or solvers trips an
    assertion against a published number. *)

open Relpipe_model

val fig34 : unit -> Instance.t
(** Fig. 3 pipeline on the Fig. 4 platform.  Two stages with w = 2 and all
    data sizes 100; two unit-speed processors; fast (b = 100) links
    Pin-P0, P0-P1, P1-Pout and slow (b = 1) links Pin-P1, P0-Pout.
    Paper: any single-processor mapping has latency 105, the split mapping
    \{S1\}->P0, \{S2\}->P1 has latency 7. *)

val fig34_single : int -> Mapping.t
(** The whole Fig. 3 pipeline on one processor (0 or 1). *)

val fig34_split : unit -> Mapping.t
(** The optimal two-interval mapping of Fig. 3/4. *)

val fig5 : unit -> Instance.t
(** Fig. 5 pipeline: two stages w1 = 1, w2 = 100 with delta_0 = 10,
    delta_1 = 1, delta_2 = 0; platform of one slow reliable processor
    (s = 1, fp = 0.1, index 0) and ten fast unreliable ones (s = 100,
    fp = 0.8, indices 1..10); all bandwidths 1.
    Paper, under latency threshold 22: the best single-interval mapping
    reaches FP = 0.64, while \{S1\}->slow, \{S2\}->all-fast reaches
    latency 22 and FP = 1 - 0.9 * (1 - 0.8^10) < 0.2. *)

val fig5_threshold : float
(** The latency threshold (22) used in the Fig. 5 discussion. *)

val fig5_single_two_fast : unit -> Mapping.t
(** Best feasible single-interval mapping under the threshold: both stages
    replicated on two fast processors (FP = 0.64). *)

val fig5_split : unit -> Mapping.t
(** The paper's two-interval mapping: stage 1 on the slow processor,
    stage 2 replicated on all ten fast processors. *)

(** {2 Additional application scenarios}

    Pipelines in the spirit of the paper's motivating digital-media
    workflows, for examples and experiments beyond the worked examples. *)

val video_transcoder : ?frame_size:float -> unit -> Pipeline.t
(** Five-stage transcoder: demux, decode (data inflates to raw frames),
    scale, encode (computationally dominant, compresses), mux. *)

val sensor_fusion : ?sample_rate:float -> unit -> Pipeline.t
(** Six-stage streaming analytics chain: ingest, clean, align, fuse
    (dominant), detect, publish — data shrinks monotonically. *)

val grid_instance : Relpipe_util.Rng.t -> Instance.t
(** The {!Plat_gen.clustered} platform (3 clusters of 4) under the
    {!video_transcoder} pipeline — a ready-made Fully Heterogeneous
    playground. *)
