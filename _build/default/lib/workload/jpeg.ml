open Relpipe_model

let stage_names =
  [|
    "scaling";
    "rgb-to-ycbcr";
    "subsampling";
    "block-split";
    "dct";
    "quantization";
    "entropy-coding";
  |]

(* Per-stage (work per input unit, output size per input unit).  The DCT is
   the computational hot spot; subsampling halves chroma-bearing data;
   entropy coding compresses by ~10x. *)
let profile =
  [|
    (0.5, 1.0);   (* scaling: cheap, size-preserving *)
    (1.0, 1.0);   (* colour conversion: one pass, size-preserving *)
    (0.6, 0.5);   (* subsampling: halves the data *)
    (0.3, 1.0);   (* block split: reshuffle *)
    (8.0, 1.0);   (* DCT: dominant computation *)
    (1.5, 1.0);   (* quantization *)
    (2.0, 0.1);   (* entropy coding: compresses 10x *)
  |]

let pipeline ?(image_size = 512.0) () =
  if image_size <= 0.0 then invalid_arg "Jpeg.pipeline: image size must be positive";
  let stages = ref [] in
  let current = ref image_size in
  Array.iter
    (fun (work_per_unit, shrink) ->
      let work = work_per_unit *. !current in
      let output = shrink *. !current in
      stages := { Pipeline.work; output } :: !stages;
      current := output)
    profile;
  Pipeline.make ~input:image_size (List.rev !stages)

let default_instance ~m =
  if m < 2 then invalid_arg "Jpeg.default_instance: need at least two processors";
  let m_slow = m / 2 in
  let m_fast = m - m_slow in
  let platform =
    Plat_gen.two_tier ~m_slow ~m_fast ~slow_speed:50.0 ~fast_speed:400.0
      ~slow_failure:0.05 ~fast_failure:0.35 ~bandwidth:100.0
  in
  Instance.make (pipeline ()) platform
