(** Steady-state period of a replicated interval mapping (throughput
    extension).

    The paper's conclusion (Section 5) names the interplay between
    throughput, latency and reliability as future work; this module
    implements the natural period model for the paper's execution scheme,
    following the framework of the authors' companion paper on
    latency/throughput trade-offs (Benoit & Robert, HeteroPar'07) extended
    with reliability replication.

    In steady state one data set enters the pipeline every [period] time
    units.  Under the one-port model each resource bounds the achievable
    rate by the time it spends per data set:

    - [Pin] serializes one send per replica of the first interval:
      [sum_{u in alloc(1)} delta_0 / b_in,u];
    - replica [u] of interval [j], per data set, receives its input
      (worst-case sender: the previous interval's worst forwarder),
      computes, and — if it acts as forwarder — serializes one send per
      replica of the next interval:
      [max_t delta_{d_j-1}/b_t,u + W_j/s_u + sum_v delta_{e_j}/b_u,v];
    - [Pout] receives one result per data set.

    The period is the maximum of these per-resource cycle times, keeping
    the same worst-case survivor conventions as Eq. (1)/(2): in each
    interval the replica with the largest cycle is assumed to be the one
    that must carry the steady-state load.

    On Communication Homogeneous platforms the expression collapses to
    {v
    max ( k_1 * delta_0 / b,
          max_j ( delta_{d_j - 1}/b + W_j / min_u s_u + k_{j+1} * delta_{e_j}/b ),
          delta_n / b )
    v}
    with [k_{p+1} = 1]. *)

val of_mapping : Pipeline.t -> Platform.t -> Mapping.t -> float
(** Worst-case steady-state period of the mapping (valid on every platform
    class). *)

val comm_homog : Pipeline.t -> Platform.t -> Mapping.t -> float
(** The collapsed Communication Homogeneous formula.
    @raise Invalid_argument when links are not homogeneous.  Agrees with
    {!of_mapping} on such platforms (property-tested). *)

val throughput : Pipeline.t -> Platform.t -> Mapping.t -> float
(** [1 / of_mapping], data sets per time unit. *)
