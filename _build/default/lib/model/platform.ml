type endpoint = Pin | Proc of int | Pout

type t = {
  speeds : float array;
  failures : float array;
  (* Bandwidth matrix over endpoint indices: 0 = Pin, 1..m = processors,
     m+1 = Pout.  Diagonal entries are unused. *)
  bw : float array array;
}

let endpoint_index m = function
  | Pin -> 0
  | Proc u ->
      if u < 0 || u >= m then invalid_arg "Platform: processor index out of range";
      u + 1
  | Pout -> m + 1

let endpoint_of_index m i =
  if i = 0 then Pin else if i = m + 1 then Pout else Proc (i - 1)

let make ~speeds ~failures ~bandwidth =
  let m = Array.length speeds in
  if m = 0 then invalid_arg "Platform.make: need at least one processor";
  if Array.length failures <> m then
    invalid_arg "Platform.make: speeds/failures length mismatch";
  Array.iter
    (fun s ->
      if not (Float.is_finite s && s > 0.0) then
        invalid_arg "Platform.make: speeds must be finite and positive")
    speeds;
  Array.iter
    (fun f ->
      if not (Relpipe_util.Float_cmp.is_probability f) then
        invalid_arg "Platform.make: failure probabilities must lie in [0,1]")
    failures;
  let size = m + 2 in
  let bw = Array.make_matrix size size 0.0 in
  for i = 0 to size - 1 do
    for j = 0 to size - 1 do
      if i <> j then begin
        let b = bandwidth (endpoint_of_index m i) (endpoint_of_index m j) in
        if not (Float.is_finite b && b > 0.0) then
          invalid_arg "Platform.make: bandwidths must be finite and positive";
        bw.(i).(j) <- b
      end
    done
  done;
  { speeds = Array.copy speeds; failures = Array.copy failures; bw }

let uniform_links ~speeds ~failures ~bandwidth =
  make ~speeds ~failures ~bandwidth:(fun _ _ -> bandwidth)

let fully_homogeneous ~m ~speed ~failure ~bandwidth =
  if m <= 0 then invalid_arg "Platform.fully_homogeneous: m must be positive";
  uniform_links
    ~speeds:(Array.make m speed)
    ~failures:(Array.make m failure)
    ~bandwidth

let size t = Array.length t.speeds

let speed t u =
  if u < 0 || u >= size t then invalid_arg "Platform.speed: index out of range";
  t.speeds.(u)

let failure t u =
  if u < 0 || u >= size t then invalid_arg "Platform.failure: index out of range";
  t.failures.(u)

let bandwidth t a b =
  let m = size t in
  let i = endpoint_index m a and j = endpoint_index m b in
  if i = j then invalid_arg "Platform.bandwidth: no self link";
  t.bw.(i).(j)

let speeds t = Array.copy t.speeds
let failures t = Array.copy t.failures

let procs t = List.init (size t) Fun.id

let endpoint_equal a b =
  match a, b with
  | Pin, Pin | Pout, Pout -> true
  | Proc u, Proc v -> u = v
  | (Pin | Proc _ | Pout), _ -> false

let pp_endpoint ppf = function
  | Pin -> Format.pp_print_string ppf "in"
  | Pout -> Format.pp_print_string ppf "out"
  | Proc u -> Format.fprintf ppf "P%d" u

let pp ppf t =
  Format.fprintf ppf "@[<v>platform m=%d@," (size t);
  Array.iteri
    (fun u s -> Format.fprintf ppf "  P%d: s=%g fp=%g@," u s t.failures.(u))
    t.speeds;
  Format.fprintf ppf "@]"
