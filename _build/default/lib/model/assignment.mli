(** General mappings (paper Theorem 4): each stage is placed on one
    processor, with no replication and no interval restriction — the same
    processor may serve non-consecutive stages.

    Used by the polynomial shortest-path algorithm for latency minimization
    on Fully Heterogeneous platforms, and as the relaxation that interval
    mappings are compared against. *)

type t
(** A validated stage-to-processor assignment. *)

val make : m:int -> int array -> t
(** [make ~m a] where [a.(k-1)] is the processor of stage [k].
    @raise Invalid_argument on an empty array or an index outside
    [0..m-1]. *)

val of_list : m:int -> int list -> t

val length : t -> int
(** Number of stages. *)

val proc : t -> int -> int
(** [proc t k] is the processor of stage [k] (1-indexed). *)

val to_array : t -> int array
(** Fresh copy of the underlying assignment. *)

val is_interval_based : t -> bool
(** True when every processor's stages are consecutive — i.e. the
    assignment is also a valid (unreplicated) interval mapping. *)

val to_mapping : m:int -> t -> Mapping.t option
(** The equivalent interval mapping when {!is_interval_based} holds. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
