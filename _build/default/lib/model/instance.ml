module F = Relpipe_util.Float_cmp

type t = { pipeline : Pipeline.t; platform : Platform.t }

type objective =
  | Min_latency of { max_failure : float }
  | Min_failure of { max_latency : float }

type evaluation = { latency : float; failure : float }

let make pipeline platform = { pipeline; platform }

let evaluate t mapping =
  {
    latency = Latency.of_mapping t.pipeline t.platform mapping;
    failure = Failure.of_mapping t.platform mapping;
  }

let feasible ?eps objective evaluation =
  match objective with
  | Min_latency { max_failure } -> F.leq ?eps evaluation.failure max_failure
  | Min_failure { max_latency } -> F.leq ?eps evaluation.latency max_latency

let objective_value objective evaluation =
  match objective with
  | Min_latency _ -> evaluation.latency
  | Min_failure _ -> evaluation.failure

let better ?eps objective a b =
  F.compare ?eps (objective_value objective a) (objective_value objective b) < 0

let dominates ?eps a b =
  F.leq ?eps a.latency b.latency
  && F.leq ?eps a.failure b.failure
  && (F.compare ?eps a.latency b.latency < 0 || F.compare ?eps a.failure b.failure < 0)

let pp_evaluation ppf e =
  Format.fprintf ppf "latency=%g failure=%g" e.latency e.failure

let pp_objective ppf = function
  | Min_latency { max_failure } ->
      Format.fprintf ppf "minimize latency s.t. FP <= %g" max_failure
  | Min_failure { max_latency } ->
      Format.fprintf ppf "minimize FP s.t. latency <= %g" max_latency
