(** Global failure probability of a mapping.

    An interval fails when {e all} its replicas fail; the application fails
    when {e some} interval fails:
    {v FP = 1 - prod_j ( 1 - prod_{u in alloc(j)} fp_u ) v}

    Products of many probabilities underflow quickly, so the combinators
    work in log space internally. *)

val interval_failure : Platform.t -> int list -> float
(** [interval_failure platform procs] is [prod fp_u]: the probability that
    every processor of the replication set fails.
    @raise Invalid_argument on an empty set. *)

val of_mapping : Platform.t -> Mapping.t -> float
(** Global failure probability FP of the mapping. *)

val success : Platform.t -> Mapping.t -> float
(** [1 - FP], computed without cancellation. *)

val log_survival : Platform.t -> Mapping.t -> float
(** [log (1 - FP) = sum_j log (1 - prod fp_u)]; [neg_infinity] when some
    interval fails almost surely.  Monotone in the same direction as
    reliability, and the numerically robust quantity to compare. *)

val of_interval_failures : float array -> float
(** Combine per-interval failure probabilities into a global FP. *)
