(** The target platform model (paper Fig. 2).

    [m] processors fully interconnected as a virtual clique, plus two
    distinguished endpoints [Pin] (holds the initial data) and [Pout]
    (receives the results).  Each processor [u] has a speed [s_u] (so
    executing [X] operations takes [X / s_u] time units) and a failure
    probability [fp_u] in [\[0, 1\]].  Each link has a bandwidth
    [b] (sending [X] data units takes [X / b] time units); links are
    bidirectional and contention follows the one-port model. *)

type endpoint =
  | Pin  (** source of the initial data *)
  | Proc of int  (** processor index in [0 .. m-1] *)
  | Pout  (** sink of the final results *)

type t
(** An immutable platform description. *)

val make :
  speeds:float array ->
  failures:float array ->
  bandwidth:(endpoint -> endpoint -> float) ->
  t
(** [make ~speeds ~failures ~bandwidth] with [speeds] and [failures] of the
    same length [m > 0].  [bandwidth] is sampled once for every ordered
    endpoint pair and stored; it must be symmetric or the stored matrix is
    made symmetric by taking the [u -> v] direction as given (the paper's
    links are bidirectional, so generators should already be symmetric).
    @raise Invalid_argument on empty arrays, mismatched lengths,
    non-positive speeds or bandwidths, or failure probabilities outside
    [\[0, 1\]]. *)

val uniform_links :
  speeds:float array -> failures:float array -> bandwidth:float -> t
(** Platform where every link (including to [Pin]/[Pout]) has the same
    bandwidth — the paper's Communication Homogeneous shape. *)

val fully_homogeneous :
  m:int -> speed:float -> failure:float -> bandwidth:float -> t
(** Identical processors and identical links. *)

val size : t -> int
(** Number of processors [m] (excluding [Pin]/[Pout]). *)

val speed : t -> int -> float
(** [speed p u] is s_u for [0 <= u < m]. *)

val failure : t -> int -> float
(** [failure p u] is fp_u. *)

val bandwidth : t -> endpoint -> endpoint -> float
(** Bandwidth of the link between two endpoints.
    @raise Invalid_argument on [bandwidth t e e] (no self links) or on an
    out-of-range processor index. *)

val speeds : t -> float array
(** Copy of the speed vector. *)

val failures : t -> float array
(** Copy of the failure-probability vector. *)

val procs : t -> int list
(** [\[0; ...; m-1\]]. *)

val endpoint_equal : endpoint -> endpoint -> bool
val pp_endpoint : Format.formatter -> endpoint -> unit
val pp : Format.formatter -> t -> unit
