module K = Relpipe_util.Kahan

let check_pipeline_match pipeline mapping =
  let n = Pipeline.length pipeline in
  let last = List.fold_left (fun _ iv -> iv.Mapping.last) 0 (Mapping.intervals mapping) in
  if last <> n then invalid_arg "Latency: mapping does not cover the pipeline"

let eq1 pipeline platform mapping =
  check_pipeline_match pipeline mapping;
  let b =
    match Classify.common_bandwidth platform with
    | Some b -> b
    | None -> invalid_arg "Latency.eq1: links are not homogeneous"
  in
  let acc = K.create () in
  List.iter
    (fun iv ->
      let k = float_of_int (List.length iv.Mapping.procs) in
      let input = Pipeline.delta pipeline (iv.Mapping.first - 1) in
      let min_speed =
        List.fold_left
          (fun acc u -> Float.min acc (Platform.speed platform u))
          Float.infinity iv.Mapping.procs
      in
      let work = Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last in
      K.add acc (k *. input /. b);
      K.add acc (work /. min_speed))
    (Mapping.intervals mapping);
  K.add acc (Pipeline.delta pipeline (Pipeline.length pipeline) /. b);
  K.sum acc

let eq2 pipeline platform mapping =
  check_pipeline_match pipeline mapping;
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  let acc = K.create () in
  (* Input: Pin serializes one send per replica of the first interval. *)
  List.iter
    (fun u ->
      K.add acc
        (Pipeline.delta pipeline 0
        /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)))
    intervals.(0).Mapping.procs;
  for j = 0 to p - 1 do
    let iv = intervals.(j) in
    let work = Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last in
    let out_size = Pipeline.delta pipeline iv.Mapping.last in
    let next_targets =
      if j = p - 1 then [ Platform.Pout ]
      else List.map (fun v -> Platform.Proc v) intervals.(j + 1).Mapping.procs
    in
    let term_of u =
      let compute = work /. Platform.speed platform u in
      let comm =
        Relpipe_util.Kahan.sum_map
          (fun v -> out_size /. Platform.bandwidth platform (Platform.Proc u) v)
          next_targets
      in
      compute +. comm
    in
    let worst =
      List.fold_left
        (fun acc u -> Float.max acc (term_of u))
        Float.neg_infinity iv.Mapping.procs
    in
    K.add acc worst
  done;
  K.sum acc

let of_mapping pipeline platform mapping =
  if Classify.links_homogeneous platform then eq1 pipeline platform mapping
  else eq2 pipeline platform mapping

let of_assignment pipeline platform assignment =
  let n = Pipeline.length pipeline in
  if Assignment.length assignment <> n then
    invalid_arg "Latency.of_assignment: assignment does not match the pipeline";
  let acc = K.create () in
  let first_proc = Assignment.proc assignment 1 in
  K.add acc
    (Pipeline.delta pipeline 0
    /. Platform.bandwidth platform Platform.Pin (Platform.Proc first_proc));
  for k = 1 to n do
    let u = Assignment.proc assignment k in
    K.add acc (Pipeline.work pipeline k /. Platform.speed platform u);
    if k < n then begin
      let v = Assignment.proc assignment (k + 1) in
      if u <> v then
        K.add acc
          (Pipeline.delta pipeline k
          /. Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v))
    end
  done;
  let last_proc = Assignment.proc assignment n in
  K.add acc
    (Pipeline.delta pipeline n
    /. Platform.bandwidth platform (Platform.Proc last_proc) Platform.Pout);
  K.sum acc
