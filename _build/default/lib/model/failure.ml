let interval_failure platform procs =
  if procs = [] then invalid_arg "Failure.interval_failure: empty replication set";
  (* Work in log space; fp = 0 gives log 0 = -inf and exp -inf = 0, which is
     the right answer (a perfectly reliable replica never fails). *)
  let log_prod =
    List.fold_left
      (fun acc u -> acc +. Float.log (Platform.failure platform u))
      0.0 procs
  in
  Float.exp log_prod

let log_survival platform mapping =
  List.fold_left
    (fun acc iv ->
      let pi = interval_failure platform iv.Mapping.procs in
      acc +. Float.log1p (-.pi))
    0.0
    (Mapping.intervals mapping)

let success platform mapping = Float.exp (log_survival platform mapping)

let of_mapping platform mapping = -.Float.expm1 (log_survival platform mapping)

let of_interval_failures pis =
  let log_surv =
    Array.fold_left (fun acc pi -> acc +. Float.log1p (-.pi)) 0.0 pis
  in
  -.Float.expm1 log_surv
