(** Communication-model ablation: one-port versus multiport latency.

    The paper adopts the one-port model (Section 2.1), citing MPI
    measurements: a processor drives one transfer at a time, so sending an
    interval's input to [k] replicas costs [k] serialized transfers — the
    very term that makes replication hurt latency.  This module implements
    the alternative {e multiport} model (all sends proceed in parallel;
    a replica set's input costs one transfer time, the slowest link's) so
    experiments can quantify how much of the latency/reliability tension
    is created by the one-port assumption.

    Under multiport, replication is latency-free on homogeneous links, and
    Lemma 1's single-interval argument extends to heterogeneous failures —
    the paper's Fig. 5 counter-example evaporates (experiment E23). *)

type model = One_port | Multiport

val latency : model -> Pipeline.t -> Platform.t -> Mapping.t -> float
(** [latency One_port] is {!Relpipe_model.Latency.eq2} (the paper);
    [latency Multiport] replaces every serialized send fan-out by the
    maximum over the same transfers. *)

val replication_penalty : Pipeline.t -> Platform.t -> Mapping.t -> float
(** [latency One_port / latency Multiport >= 1]: how much the one-port
    assumption charges this mapping for its replication. *)

val pp_model : Format.formatter -> model -> unit
