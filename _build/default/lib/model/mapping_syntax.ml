let strip s = String.trim s

let parse_int name s =
  match int_of_string_opt (strip s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" name s)

let parse_interval chunk =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' chunk with
  | [ range; procs ] ->
      let* first, last =
        match String.split_on_char '-' range with
        | [ single ] ->
            let* k = parse_int "stage" single in
            Ok (k, k)
        | [ lo; hi ] ->
            let* lo = parse_int "stage" lo in
            let* hi = parse_int "stage" hi in
            Ok (lo, hi)
        | _ -> Error (Printf.sprintf "bad stage range %S" range)
      in
      let* procs =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            let* u = parse_int "processor" tok in
            Ok (u :: acc))
          (Ok [])
          (List.filter (fun s -> strip s <> "") (String.split_on_char ',' procs))
      in
      if procs = [] then Error (Printf.sprintf "interval %S has no processor" chunk)
      else Ok { Mapping.first; last; procs = List.rev procs }
  | _ -> Error (Printf.sprintf "bad interval %S (expected range:procs)" chunk)

let parse ~n ~m text =
  let chunks =
    List.filter (fun s -> strip s <> "") (String.split_on_char ';' text)
  in
  if chunks = [] then Error "empty mapping"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | chunk :: tl -> (
          match parse_interval chunk with
          | Ok iv -> go (iv :: acc) tl
          | Error _ as e -> e)
    in
    match go [] chunks with
    | Error _ as e -> e
    | Ok intervals -> Mapping.validate ~n ~m intervals
  end

let to_string mapping =
  String.concat "; "
    (List.map
       (fun iv ->
         let range =
           if iv.Mapping.first = iv.Mapping.last then
             string_of_int iv.Mapping.first
           else Printf.sprintf "%d-%d" iv.Mapping.first iv.Mapping.last
         in
         Printf.sprintf "%s:%s" range
           (String.concat "," (List.map string_of_int iv.Mapping.procs)))
       (Mapping.intervals mapping))
