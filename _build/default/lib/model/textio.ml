let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of_line line =
  String.split_on_char ' ' (strip_comment line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_endpoint m = function
  | "in" -> Ok Platform.Pin
  | "out" -> Ok Platform.Pout
  | s -> (
      match int_of_string_opt s with
      | Some u when u >= 0 && (m < 0 || u < m) -> Ok (Platform.Proc u)
      | Some _ -> Error (Printf.sprintf "processor index %s out of range" s)
      | None -> Error (Printf.sprintf "bad endpoint %S" s))

let float_of tok =
  match float_of_string_opt tok with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "bad number %S" tok)

type builder = {
  mutable input : float option;
  mutable stages : Pipeline.stage list;  (* reversed *)
  mutable procs : (float * float) list;  (* reversed *)
  mutable default_bw : float option;
  mutable links : (string * string * float) list;  (* raw endpoints *)
}

let endpoint_key = function
  | Platform.Pin -> "in"
  | Platform.Pout -> "out"
  | Platform.Proc u -> string_of_int u

let parse text =
  let b =
    { input = None; stages = []; procs = []; default_bw = None; links = [] }
  in
  let ( let* ) = Result.bind in
  let parse_line lineno line =
    match tokens_of_line line with
    | [] -> Ok ()
    | [ "input"; x ] ->
        let* v = float_of x in
        b.input <- Some v;
        Ok ()
    | [ "stage"; w; d ] ->
        let* work = float_of w in
        let* output = float_of d in
        b.stages <- { Pipeline.work; output } :: b.stages;
        Ok ()
    | [ "proc"; s; f ] ->
        let* speed = float_of s in
        let* fp = float_of f in
        b.procs <- (speed, fp) :: b.procs;
        Ok ()
    | [ "link"; "default"; bw ] ->
        let* v = float_of bw in
        b.default_bw <- Some v;
        Ok ()
    | [ "link"; a; bb; bw ] ->
        let* v = float_of bw in
        (* Endpoint validity is checked later, once m is known. *)
        b.links <- (a, bb, v) :: b.links;
        Ok ()
    | tok :: _ -> Error (Printf.sprintf "line %d: unknown directive %S" lineno tok)
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all lineno = function
    | [] -> Ok ()
    | line :: tl -> (
        match parse_line lineno line with
        | Ok () -> parse_all (lineno + 1) tl
        | Error e -> Error e)
  in
  let* () = parse_all 1 lines in
  let* input =
    match b.input with Some v -> Ok v | None -> Error "missing `input` directive"
  in
  let* () = if b.stages = [] then Error "no `stage` directives" else Ok () in
  let* () = if b.procs = [] then Error "no `proc` directives" else Ok () in
  let procs = Array.of_list (List.rev b.procs) in
  let m = Array.length procs in
  let tbl = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc (a, bb, v) ->
        let* () = acc in
        let* ea = parse_endpoint m a in
        let* eb = parse_endpoint m bb in
        Hashtbl.replace tbl (endpoint_key ea, endpoint_key eb) v;
        Hashtbl.replace tbl (endpoint_key eb, endpoint_key ea) v;
        Ok ())
      (Ok ()) b.links
  in
  let missing = ref None in
  let bandwidth a bb =
    match Hashtbl.find_opt tbl (endpoint_key a, endpoint_key bb) with
    | Some v -> v
    | None -> (
        match b.default_bw with
        | Some v -> v
        | None ->
            if !missing = None then
              missing :=
                Some
                  (Format.asprintf "no bandwidth for link %a-%a (and no default)"
                     Platform.pp_endpoint a Platform.pp_endpoint bb);
            1.0)
  in
  let* platform =
    match
      Platform.make
        ~speeds:(Array.map fst procs)
        ~failures:(Array.map snd procs)
        ~bandwidth
    with
    | p -> ( match !missing with None -> Ok p | Some msg -> Error msg)
    | exception Invalid_argument msg -> Error msg
  in
  let* pipeline =
    match Pipeline.make ~input (List.rev b.stages) with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
  in
  Ok (Instance.make pipeline platform)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let to_string (instance : Instance.t) =
  let buf = Buffer.create 256 in
  let pipeline = instance.Instance.pipeline in
  let platform = instance.Instance.platform in
  Buffer.add_string buf (Printf.sprintf "input %.17g\n" (Pipeline.delta pipeline 0));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "stage %.17g %.17g\n" s.Pipeline.work s.Pipeline.output))
    (Pipeline.stages pipeline);
  let m = Platform.size platform in
  for u = 0 to m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "proc %.17g %.17g\n" (Platform.speed platform u)
         (Platform.failure platform u))
  done;
  let endpoints =
    (Platform.Pin :: List.map (fun u -> Platform.Proc u) (Platform.procs platform))
    @ [ Platform.Pout ]
  in
  let name = function
    | Platform.Pin -> "in"
    | Platform.Pout -> "out"
    | Platform.Proc u -> string_of_int u
  in
  let rec pairs = function
    | [] -> ()
    | a :: tl ->
        List.iter
          (fun bb ->
            Buffer.add_string buf
              (Printf.sprintf "link %s %s %.17g\n" (name a) (name bb)
                 (Platform.bandwidth platform a bb)))
          tl;
        pairs tl
  in
  pairs endpoints;
  Buffer.contents buf
