let fp_of_rate ~rate ~mission =
  if rate < 0.0 || not (Float.is_finite rate) then
    invalid_arg "Failure_rate.fp_of_rate: rate must be finite and non-negative";
  if mission < 0.0 || not (Float.is_finite mission) then
    invalid_arg "Failure_rate.fp_of_rate: mission must be finite and non-negative";
  -.Float.expm1 (-.rate *. mission)

let rate_of_fp ~fp ~mission =
  if not (Relpipe_util.Float_cmp.is_probability fp) then
    invalid_arg "Failure_rate.rate_of_fp: fp must be a probability";
  if mission <= 0.0 || not (Float.is_finite mission) then
    invalid_arg "Failure_rate.rate_of_fp: mission must be positive";
  -.Float.log1p (-.fp) /. mission

let fp_of_mtbf ~mtbf ~mission =
  if mtbf <= 0.0 || not (Float.is_finite mtbf) then
    invalid_arg "Failure_rate.fp_of_mtbf: mtbf must be positive";
  fp_of_rate ~rate:(1.0 /. mtbf) ~mission

let platform_of_rates ~speeds ~rates ~mission ~bandwidth =
  if Array.length rates <> Array.length speeds then
    invalid_arg "Failure_rate.platform_of_rates: length mismatch";
  let failures = Array.map (fun rate -> fp_of_rate ~rate ~mission) rates in
  Platform.make ~speeds ~failures ~bandwidth

let scale_mission platform ~factor =
  if factor < 0.0 || not (Float.is_finite factor) then
    invalid_arg "Failure_rate.scale_mission: factor must be finite, non-negative";
  let m = Platform.size platform in
  (* fp' = 1 - (1 - fp)^factor, computed in log space. *)
  let failures =
    Array.init m (fun u ->
        let fp = Platform.failure platform u in
        if fp >= 1.0 then 1.0
        else -.Float.expm1 (factor *. Float.log1p (-.fp)))
  in
  Platform.make ~speeds:(Platform.speeds platform) ~failures
    ~bandwidth:(Platform.bandwidth platform)
