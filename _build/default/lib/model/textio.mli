(** Line-oriented text format for problem instances.

    Grammar (one directive per line, ['#'] starts a comment):
    {v
    input <delta0>
    stage <work> <output>        # repeated, pipeline order
    proc <speed> <failure>       # repeated, processors 0,1,...
    link default <bandwidth>
    link <a> <b> <bandwidth>     # a, b: "in", "out", or processor index
    v}
    [link] directives are symmetric.  A [link default] is required unless
    every endpoint pair is listed explicitly. *)

val parse : string -> (Instance.t, string) result
(** Parse an instance from the textual representation. *)

val parse_file : string -> (Instance.t, string) result
(** Read and {!parse} a file; IO failures are reported as [Error]. *)

val to_string : Instance.t -> string
(** Canonical rendering; [parse (to_string i)] round-trips the instance up
    to float formatting. *)
