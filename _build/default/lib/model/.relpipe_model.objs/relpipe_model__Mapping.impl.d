lib/model/mapping.ml: Format List
