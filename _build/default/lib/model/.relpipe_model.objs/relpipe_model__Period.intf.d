lib/model/period.mli: Mapping Pipeline Platform
