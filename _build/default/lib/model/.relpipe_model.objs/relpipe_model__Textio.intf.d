lib/model/textio.mli: Instance
