lib/model/classify.ml: Format List Option Platform Relpipe_util
