lib/model/textio.ml: Array Buffer Format Hashtbl In_channel Instance List Pipeline Platform Printf Result String
