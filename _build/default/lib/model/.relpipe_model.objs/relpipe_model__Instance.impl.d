lib/model/instance.ml: Failure Format Latency Pipeline Platform Relpipe_util
