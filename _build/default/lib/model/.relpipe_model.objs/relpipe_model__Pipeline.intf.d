lib/model/pipeline.mli: Format
