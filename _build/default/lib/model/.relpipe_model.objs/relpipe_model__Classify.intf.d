lib/model/classify.mli: Format Platform
