lib/model/failure.mli: Mapping Platform
