lib/model/failure_rate.ml: Array Float Platform Relpipe_util
