lib/model/assignment.ml: Array Format List Mapping
