lib/model/assignment.mli: Format Mapping
