lib/model/latency.ml: Array Assignment Classify Float List Mapping Pipeline Platform Relpipe_util
