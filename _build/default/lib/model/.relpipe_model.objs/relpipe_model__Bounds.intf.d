lib/model/bounds.mli: Instance Mapping
