lib/model/mapping.mli: Format
