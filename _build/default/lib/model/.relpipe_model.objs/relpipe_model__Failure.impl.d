lib/model/failure.ml: Array Float List Mapping Platform
