lib/model/period.ml: Array Classify Float List Mapping Pipeline Platform Relpipe_util
