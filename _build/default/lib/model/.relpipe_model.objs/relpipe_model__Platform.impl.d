lib/model/platform.ml: Array Float Format Fun List Relpipe_util
