lib/model/latency.mli: Assignment Mapping Pipeline Platform
