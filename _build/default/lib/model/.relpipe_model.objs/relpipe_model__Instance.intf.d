lib/model/instance.mli: Format Mapping Pipeline Platform
