lib/model/bounds.ml: Array Failure Float Instance Latency List Mapping Pipeline Platform
