lib/model/mapping_syntax.ml: List Mapping Printf Result String
