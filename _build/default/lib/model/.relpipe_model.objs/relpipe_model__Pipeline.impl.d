lib/model/pipeline.ml: Array Float Format List Relpipe_util
