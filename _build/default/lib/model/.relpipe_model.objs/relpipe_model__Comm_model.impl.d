lib/model/comm_model.ml: Array Float Format Latency List Mapping Pipeline Platform Relpipe_util
