lib/model/comm_model.mli: Format Mapping Pipeline Platform
