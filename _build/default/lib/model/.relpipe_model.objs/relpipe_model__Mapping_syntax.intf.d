lib/model/mapping_syntax.mli: Mapping
