lib/model/failure_rate.mli: Platform
