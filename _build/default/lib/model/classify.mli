(** Platform taxonomy of the paper (Section 2.1).

    Communication axis:
    - {e Fully Homogeneous}: identical processors and identical links;
    - {e Communication Homogeneous}: identical links, heterogeneous speeds;
    - {e Fully Heterogeneous}: heterogeneous speeds and links.

    Failure axis: {e Failure Homogeneous} when all failure probabilities are
    equal, {e Failure Heterogeneous} otherwise.  The complexity of every
    problem in the paper is stated relative to this taxonomy. *)

type comm_class =
  | Fully_homogeneous
  | Comm_homogeneous
  | Fully_heterogeneous

type failure_class = Failure_homogeneous | Failure_heterogeneous

val comm_class : ?eps:float -> Platform.t -> comm_class
(** Most specific communication class of the platform.  Link homogeneity is
    checked over all endpoint pairs including [Pin]/[Pout]. *)

val failure_class : ?eps:float -> Platform.t -> failure_class

val links_homogeneous : ?eps:float -> Platform.t -> bool
(** True when every link (including to [Pin]/[Pout]) has the same
    bandwidth. *)

val speeds_homogeneous : ?eps:float -> Platform.t -> bool

val common_bandwidth : ?eps:float -> Platform.t -> float option
(** The shared bandwidth [b] when {!links_homogeneous} holds. *)

val pp_comm_class : Format.formatter -> comm_class -> unit
val pp_failure_class : Format.formatter -> failure_class -> unit
