(** A problem instance and the two bi-criteria objectives of the paper.

    The paper optimizes one criterion under a threshold on the other:
    minimize latency subject to [FP <= max_failure], or minimize failure
    probability subject to [T <= max_latency]. *)

type t = { pipeline : Pipeline.t; platform : Platform.t }

type objective =
  | Min_latency of { max_failure : float }
      (** minimize T subject to FP <= max_failure *)
  | Min_failure of { max_latency : float }
      (** minimize FP subject to T <= max_latency *)

type evaluation = { latency : float; failure : float }
(** Both metrics of a candidate mapping. *)

val make : Pipeline.t -> Platform.t -> t

val evaluate : t -> Mapping.t -> evaluation
(** Latency via {!Latency.of_mapping} (Eq. 1 on homogeneous links, Eq. 2
    otherwise) and failure probability via {!Failure.of_mapping}. *)

val feasible : ?eps:float -> objective -> evaluation -> bool
(** Does the evaluation satisfy the objective's threshold (up to
    tolerance)? *)

val objective_value : objective -> evaluation -> float
(** The criterion being minimized. *)

val better : ?eps:float -> objective -> evaluation -> evaluation -> bool
(** [better obj a b]: is [a] strictly better than [b] on the minimized
    criterion?  Both are assumed feasible. *)

val dominates : ?eps:float -> evaluation -> evaluation -> bool
(** Pareto dominance: no worse on both criteria, strictly better on one. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
val pp_objective : Format.formatter -> objective -> unit
