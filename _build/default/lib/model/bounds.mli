(** Instance-level analytic bounds.

    Cheap lower bounds valid for {e every} interval mapping of the
    instance, independent of the mapping choice.  Solvers and reports use
    them to express absolute optimality gaps ("within 12% of any possible
    mapping"), and the test suite checks them against every random mapping
    it generates. *)

val latency_lower_bound : Instance.t -> float
(** No mapping can respond faster than: the cheapest possible input
    communication, plus all the work at the fastest speed, plus the
    cheapest possible output communication.  (Internal communications and
    replication only add to this.) *)

val period_lower_bound : Instance.t -> float
(** No mapping can sustain a shorter period than the bottleneck of the
    same three terms: some processor computes the heaviest single stage,
    [Pin] emits the input once, [Pout] absorbs the result once, all at
    best-case speeds/bandwidths. *)

val failure_lower_bound : Instance.t -> float
(** The failure probability of replicating the whole pipeline on every
    processor — optimal by the paper's Theorem 1. *)

val latency_gap : Instance.t -> Mapping.t -> float
(** [latency / latency_lower_bound >= 1]. *)
