type model = One_port | Multiport

let multiport_latency pipeline platform mapping =
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  let acc = Relpipe_util.Kahan.create () in
  (* Input: parallel sends; the slowest replica link dominates. *)
  let input =
    List.fold_left
      (fun worst u ->
        Float.max worst
          (Pipeline.delta pipeline 0
          /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)))
      0.0 intervals.(0).Mapping.procs
  in
  Relpipe_util.Kahan.add acc input;
  for j = 0 to p - 1 do
    let iv = intervals.(j) in
    let work =
      Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
    in
    let out_size = Pipeline.delta pipeline iv.Mapping.last in
    let targets =
      if j = p - 1 then [ Platform.Pout ]
      else List.map (fun v -> Platform.Proc v) intervals.(j + 1).Mapping.procs
    in
    let term_of u =
      let compute = work /. Platform.speed platform u in
      let comm =
        List.fold_left
          (fun worst v ->
            Float.max worst
              (out_size /. Platform.bandwidth platform (Platform.Proc u) v))
          0.0 targets
      in
      compute +. comm
    in
    let worst =
      List.fold_left
        (fun acc u -> Float.max acc (term_of u))
        Float.neg_infinity iv.Mapping.procs
    in
    Relpipe_util.Kahan.add acc worst
  done;
  Relpipe_util.Kahan.sum acc

let latency model pipeline platform mapping =
  match model with
  | One_port -> Latency.eq2 pipeline platform mapping
  | Multiport -> multiport_latency pipeline platform mapping

let replication_penalty pipeline platform mapping =
  latency One_port pipeline platform mapping
  /. latency Multiport pipeline platform mapping

let pp_model ppf = function
  | One_port -> Format.pp_print_string ppf "one-port"
  | Multiport -> Format.pp_print_string ppf "multiport"
