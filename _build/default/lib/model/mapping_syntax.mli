(** Compact textual syntax for interval mappings.

    Grammar: intervals separated by [';'], each interval written
    [first-last:proc,proc,...] (or [stage:procs] for a single-stage
    interval).  Whitespace around tokens is ignored.  Example — the
    paper's Fig. 5 split mapping on 11 processors:
    {v 1:0; 2:1,2,3,4,5,6,7,8,9,10 v}

    Used by the CLI's [eval] subcommand so a user can price an arbitrary
    mapping without writing OCaml. *)

val parse : n:int -> m:int -> string -> (Mapping.t, string) result
(** Parse and validate against a pipeline of [n] stages and [m]
    processors. *)

val to_string : Mapping.t -> string
(** Canonical rendering; round-trips through {!parse}. *)
