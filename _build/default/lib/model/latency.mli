(** Worst-case latency of a mapping under the one-port model.

    The paper's two latency formulas:

    - Equation (1), for Fully Homogeneous and Communication Homogeneous
      platforms with common bandwidth [b]:
      {v
      T = sum_j ( k_j * delta_{d_j - 1} / b
                  + (sum_{i in I_j} w_i) / min_{u in alloc(j)} s_u )
          + delta_n / b
      v}
      The input communication of interval [j] is paid [k_j] times because
      the sends to the replicas are serialized (one-port model) and the
      worst case is the failure of the first replicas served; computation
      is bounded by the slowest enrolled processor.  Only one final output
      is paid.

    - Equation (2), for Fully Heterogeneous platforms:
      {v
      T = sum_{u in alloc(1)} delta_0 / b_{in,u}
          + sum_j max_{u in alloc(j)} ( (sum_{i in I_j} w_i) / s_u
                                        + sum_{v in alloc(j+1)} delta_{e_j} / b_{u,v} )
      v}
      with [alloc(p+1) = {Pout}].

    On Communication Homogeneous platforms the two formulas coincide (the
    test suite checks this). *)

val eq1 : Pipeline.t -> Platform.t -> Mapping.t -> float
(** Equation (1).  @raise Invalid_argument if the platform's links are not
    homogeneous, or if the mapping does not match the pipeline length. *)

val eq2 : Pipeline.t -> Platform.t -> Mapping.t -> float
(** Equation (2); valid on every platform class. *)

val of_mapping : Pipeline.t -> Platform.t -> Mapping.t -> float
(** Dispatch: {!eq1} when the links are homogeneous, {!eq2} otherwise. *)

val of_assignment : Pipeline.t -> Platform.t -> Assignment.t -> float
(** Latency of a general (unreplicated) mapping: the path weight of paper
    Fig. 6 — input communication, per-stage computation, inter-processor
    communications only where consecutive stages change processor, and the
    final output communication. *)
