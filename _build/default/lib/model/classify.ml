module F = Relpipe_util.Float_cmp

type comm_class =
  | Fully_homogeneous
  | Comm_homogeneous
  | Fully_heterogeneous

type failure_class = Failure_homogeneous | Failure_heterogeneous

let all_endpoints t =
  Platform.Pin :: Platform.Pout
  :: List.map (fun u -> Platform.Proc u) (Platform.procs t)

let links_homogeneous ?eps t =
  let eps = Option.value eps ~default:F.default_eps in
  let endpoints = all_endpoints t in
  let reference = Platform.bandwidth t Platform.Pin Platform.Pout in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          Platform.endpoint_equal a b
          || F.approx_eq ~eps reference (Platform.bandwidth t a b))
        endpoints)
    endpoints

let speeds_homogeneous ?eps t =
  let eps = Option.value eps ~default:F.default_eps in
  let s0 = Platform.speed t 0 in
  List.for_all (fun u -> F.approx_eq ~eps s0 (Platform.speed t u)) (Platform.procs t)

let comm_class ?eps t =
  if links_homogeneous ?eps t then
    if speeds_homogeneous ?eps t then Fully_homogeneous else Comm_homogeneous
  else Fully_heterogeneous

let failure_class ?eps t =
  let eps = Option.value eps ~default:F.default_eps in
  let f0 = Platform.failure t 0 in
  let homogeneous =
    List.for_all
      (fun u -> F.approx_eq ~eps f0 (Platform.failure t u))
      (Platform.procs t)
  in
  if homogeneous then Failure_homogeneous else Failure_heterogeneous

let common_bandwidth ?eps t =
  if links_homogeneous ?eps t then
    Some (Platform.bandwidth t Platform.Pin Platform.Pout)
  else None

let pp_comm_class ppf = function
  | Fully_homogeneous -> Format.pp_print_string ppf "Fully Homogeneous"
  | Comm_homogeneous -> Format.pp_print_string ppf "Communication Homogeneous"
  | Fully_heterogeneous -> Format.pp_print_string ppf "Fully Heterogeneous"

let pp_failure_class ppf = function
  | Failure_homogeneous -> Format.pp_print_string ppf "Failure Homogeneous"
  | Failure_heterogeneous -> Format.pp_print_string ppf "Failure Heterogeneous"
