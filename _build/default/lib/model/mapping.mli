(** Interval mappings with replication (paper Section 2.2).

    A mapping partitions the stage range [1..n] into [p <= m] consecutive
    intervals I_j = [d_j, e_j] and assigns to each interval a non-empty set
    [alloc(j)] of processors that all replicate the interval's computation.
    A processor executes at most one interval, so the [alloc] sets are
    pairwise disjoint. *)

type interval = {
  first : int;  (** d_j, 1-indexed, inclusive *)
  last : int;  (** e_j, 1-indexed, inclusive *)
  procs : int list;  (** alloc(j): sorted, distinct, non-empty *)
}

type t
(** A validated mapping. *)

val make : n:int -> m:int -> interval list -> t
(** [make ~n ~m intervals] validates that the intervals are in order,
    contiguous, cover [1..n], have non-empty processor sets with indices in
    [0..m-1], and use each processor at most once.  Processor lists are
    sorted and deduplication is rejected (duplicates are an error).
    @raise Invalid_argument when any condition fails. *)

val validate : n:int -> m:int -> interval list -> (t, string) result
(** Non-raising version of {!make}. *)

val single_interval : n:int -> m:int -> int list -> t
(** The whole pipeline as one interval replicated on the given processors. *)

val one_to_one : n:int -> m:int -> int list -> t
(** [one_to_one ~n ~m procs] maps stage [k] onto the [k]-th processor of
    [procs] with no replication.  @raise Invalid_argument unless
    [List.length procs = n] with distinct entries. *)

val intervals : t -> interval list
(** Intervals in pipeline order. *)

val num_intervals : t -> int
(** p, the number of intervals. *)

val replication : t -> int -> int
(** [replication t j] is k_j = |alloc(j)| of the [j]-th interval
    (0-indexed interval position).  @raise Invalid_argument out of range. *)

val interval_of_stage : t -> int -> interval
(** The interval containing a given stage (1-indexed).
    @raise Invalid_argument if the stage is out of range. *)

val used_procs : t -> int list
(** All processors enrolled by the mapping, sorted. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
