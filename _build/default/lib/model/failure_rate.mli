(** Converting failure-rate specifications to the paper's constant
    failure-probability model.

    The paper works with a constant per-processor probability [fp_u] of
    breaking down at some point during the (long) execution.  Operators
    usually know a processor's failure {e rate} (or MTBF) instead.  Under
    the standard exponential-lifetime assumption, a processor with rate
    [lambda] survives a mission of length [t] with probability
    [exp (-lambda t)], so [fp = 1 - exp (-lambda t)] — this module makes
    that bridge explicit and reversible. *)

val fp_of_rate : rate:float -> mission:float -> float
(** [fp_of_rate ~rate ~mission] is [1 - exp (-rate * mission)].
    @raise Invalid_argument on a negative rate or mission length. *)

val rate_of_fp : fp:float -> mission:float -> float
(** Inverse of {!fp_of_rate}: [-log (1 - fp) / mission].  [fp = 1] maps to
    [infinity].  @raise Invalid_argument when [fp] is not a probability or
    [mission <= 0]. *)

val fp_of_mtbf : mtbf:float -> mission:float -> float
(** [fp_of_mtbf ~mtbf] is [fp_of_rate ~rate:(1 / mtbf)].
    @raise Invalid_argument when [mtbf <= 0]. *)

val platform_of_rates :
  speeds:float array ->
  rates:float array ->
  mission:float ->
  bandwidth:(Platform.endpoint -> Platform.endpoint -> float) ->
  Platform.t
(** Build a platform from failure rates instead of probabilities. *)

val scale_mission : Platform.t -> factor:float -> Platform.t
(** Re-derive every failure probability for a mission [factor] times
    longer (e.g. [factor = 2.0] turns each [fp] into [1 - (1 - fp)^2]),
    keeping speeds and bandwidths.  Useful to study how mapping decisions
    shift as the workflow's runtime horizon grows. *)
