module K = Relpipe_util.Kahan

let of_mapping pipeline platform mapping =
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  let n = Pipeline.length pipeline in
  if intervals.(p - 1).Mapping.last <> n then
    invalid_arg "Period.of_mapping: mapping does not cover the pipeline";
  let worst = ref 0.0 in
  let consider x = if x > !worst then worst := x in
  (* Pin: one send per replica of the first interval, per data set. *)
  consider
    (Relpipe_util.Kahan.sum_map
       (fun u ->
         Pipeline.delta pipeline 0
         /. Platform.bandwidth platform Platform.Pin (Platform.Proc u))
       intervals.(0).Mapping.procs);
  (* Each replica: worst-case incoming sender + compute + forwarding. *)
  for j = 0 to p - 1 do
    let iv = intervals.(j) in
    let work =
      Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
    in
    let in_size = Pipeline.delta pipeline (iv.Mapping.first - 1) in
    let out_size = Pipeline.delta pipeline iv.Mapping.last in
    let senders =
      if j = 0 then [ Platform.Pin ]
      else List.map (fun t -> Platform.Proc t) intervals.(j - 1).Mapping.procs
    in
    let targets =
      if j = p - 1 then [ Platform.Pout ]
      else List.map (fun v -> Platform.Proc v) intervals.(j + 1).Mapping.procs
    in
    List.iter
      (fun u ->
        let incoming =
          List.fold_left
            (fun acc t ->
              Float.max acc
                (in_size /. Platform.bandwidth platform t (Platform.Proc u)))
            0.0 senders
        in
        let compute = work /. Platform.speed platform u in
        let outgoing =
          K.sum_map
            (fun v -> out_size /. Platform.bandwidth platform (Platform.Proc u) v)
            targets
        in
        consider (incoming +. compute +. outgoing))
      iv.Mapping.procs
  done;
  (* Pout: one receive per data set. *)
  let last = intervals.(p - 1) in
  consider
    (List.fold_left
       (fun acc u ->
         Float.max acc
           (Pipeline.delta pipeline n
           /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout))
       0.0 last.Mapping.procs);
  !worst

let comm_homog pipeline platform mapping =
  let b =
    match Classify.common_bandwidth platform with
    | Some b -> b
    | None -> invalid_arg "Period.comm_homog: links are not homogeneous"
  in
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  let n = Pipeline.length pipeline in
  let worst = ref 0.0 in
  let consider x = if x > !worst then worst := x in
  consider
    (float_of_int (List.length intervals.(0).Mapping.procs)
    *. Pipeline.delta pipeline 0 /. b);
  for j = 0 to p - 1 do
    let iv = intervals.(j) in
    let work =
      Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
    in
    let min_speed =
      List.fold_left
        (fun acc u -> Float.min acc (Platform.speed platform u))
        Float.infinity iv.Mapping.procs
    in
    let next_k =
      if j = p - 1 then 1
      else List.length intervals.(j + 1).Mapping.procs
    in
    consider
      ((Pipeline.delta pipeline (iv.Mapping.first - 1) /. b)
      +. (work /. min_speed)
      +. (float_of_int next_k *. Pipeline.delta pipeline iv.Mapping.last /. b))
  done;
  consider (Pipeline.delta pipeline n /. b);
  !worst

let throughput pipeline platform mapping = 1.0 /. of_mapping pipeline platform mapping
