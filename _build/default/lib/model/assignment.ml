type t = int array

let make ~m a =
  if Array.length a = 0 then invalid_arg "Assignment.make: empty assignment";
  Array.iter
    (fun u ->
      if u < 0 || u >= m then
        invalid_arg "Assignment.make: processor index out of range")
    a;
  Array.copy a

let of_list ~m l = make ~m (Array.of_list l)

let length = Array.length

let proc t k =
  if k < 1 || k > Array.length t then
    invalid_arg "Assignment.proc: stage out of range";
  t.(k - 1)

let to_array = Array.copy

let is_interval_based t =
  (* A processor may only reappear immediately: once we leave it, it is
     retired. *)
  let n = Array.length t in
  let rec go k retired =
    if k >= n then true
    else if t.(k) = t.(k - 1) then go (k + 1) retired
    else if List.mem t.(k) retired then false
    else go (k + 1) (t.(k - 1) :: retired)
  in
  go 1 []

let to_mapping ~m t =
  if not (is_interval_based t) then None
  else begin
    let n = Array.length t in
    let rec build first k acc =
      if k > n then List.rev acc
      else if k = n || t.(k) <> t.(k - 1) then
        build (k + 1) (k + 1)
          ({ Mapping.first; last = k; procs = [ t.(k - 1) ] } :: acc)
      else build first (k + 1) acc
    in
    Some (Mapping.make ~n ~m (build 1 1 []))
  end

let equal = ( = )

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i u ->
      if i > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "S%d:P%d" (i + 1) u)
    t;
  Format.fprintf ppf "@]"
