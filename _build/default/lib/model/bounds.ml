let best_in_bandwidth platform =
  List.fold_left
    (fun acc u ->
      Float.max acc (Platform.bandwidth platform Platform.Pin (Platform.Proc u)))
    0.0 (Platform.procs platform)

let best_out_bandwidth platform =
  List.fold_left
    (fun acc u ->
      Float.max acc (Platform.bandwidth platform (Platform.Proc u) Platform.Pout))
    0.0 (Platform.procs platform)

let max_speed platform = Array.fold_left Float.max 0.0 (Platform.speeds platform)

let latency_lower_bound (instance : Instance.t) =
  let { Instance.pipeline; platform } = instance in
  (Pipeline.delta pipeline 0 /. best_in_bandwidth platform)
  +. (Pipeline.total_work pipeline /. max_speed platform)
  +. Pipeline.delta pipeline (Pipeline.length pipeline)
     /. best_out_bandwidth platform

let period_lower_bound (instance : Instance.t) =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline in
  (* Some processor hosts the heaviest stage; its compute alone bounds the
     cycle.  Pin and Pout each handle every data set at least once. *)
  let heaviest_stage =
    let w = ref 0.0 in
    for k = 1 to n do
      w := Float.max !w (Pipeline.work pipeline k)
    done;
    !w
  in
  Float.max
    (heaviest_stage /. max_speed platform)
    (Float.max
       (Pipeline.delta pipeline 0 /. best_in_bandwidth platform)
       (Pipeline.delta pipeline n /. best_out_bandwidth platform))

let failure_lower_bound (instance : Instance.t) =
  let { Instance.pipeline; platform } = instance in
  Failure.of_mapping platform
    (Mapping.single_interval
       ~n:(Pipeline.length pipeline)
       ~m:(Platform.size platform)
       (Platform.procs platform))

let latency_gap instance mapping =
  Latency.of_mapping instance.Instance.pipeline instance.Instance.platform
    mapping
  /. latency_lower_bound instance
