type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns arity mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let pad align width cell =
    let gap = width - String.length cell in
    if gap <= 0 then cell
    else begin
      match align with
      | Left -> cell ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ cell
    end
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row t.headers :: rule :: body) @ [ "" ])

let render_markdown t =
  let rows = List.rev t.rows in
  let escape cell =
    String.concat "\\|" (String.split_on_char '|' cell)
  in
  let line cells = "| " ^ String.concat " | " (List.map escape cells) ^ " |" in
  let rule =
    "|"
    ^ String.concat "|"
        (List.map
           (function Left -> " :-- " | Right -> " --: ")
           t.aligns)
    ^ "|"
  in
  String.concat "\n" ((line t.headers :: rule :: List.map line rows) @ [ "" ])

let print t = print_string (render t)

let fmt_float ?(digits = 6) x = Printf.sprintf "%.*g" digits x
