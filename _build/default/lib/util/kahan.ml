type t = { mutable total : float; mutable compensation : float }

let create () = { total = 0.0; compensation = 0.0 }

(* Neumaier's variant: also correct when the new term dominates the total. *)
let add t x =
  let sum = t.total +. x in
  let correction =
    if Float.abs t.total >= Float.abs x then t.total -. sum +. x
    else x -. sum +. t.total
  in
  t.compensation <- t.compensation +. correction;
  t.total <- sum

let sum t = t.total +. t.compensation

let sum_array a =
  let acc = create () in
  Array.iter (add acc) a;
  sum acc

let sum_seq s =
  let acc = create () in
  Seq.iter (add acc) s;
  sum acc

let sum_map f xs =
  let acc = create () in
  List.iter (fun x -> add acc (f x)) xs;
  sum acc
