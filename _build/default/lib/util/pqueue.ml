type 'a entry = { prio : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let entry_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* The placeholder below is never observed: slots >= size are dead. *)
    let fresh = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t prio payload =
  let e = { prio; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 e
  else grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    Some (e.prio, e.payload)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (e.prio, e.payload)
  end

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_sorted_list t =
  let copy =
    { heap = Array.sub t.heap 0 (max t.size (min 1 t.size)); size = t.size; next_seq = t.next_seq }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
