(** Binary-heap priority queue with float priorities.

    Substrate for Dijkstra ({!Relpipe_graph}) and the discrete-event engine
    ({!Relpipe_sim}), where priorities are path lengths or simulated
    timestamps.  Smallest priority pops first; ties break by insertion
    order (FIFO), which the event engine relies on for determinism. *)

type 'a t
(** Mutable queue of ['a] payloads. *)

val create : unit -> 'a t
(** Empty queue. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] enqueues [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element, FIFO among ties. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-priority element without removing it. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain a copy of the queue in pop order (the queue is unchanged). *)
