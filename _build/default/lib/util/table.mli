(** Plain-text table rendering for experiment reports.

    The benchmark harness and the experiment runner print paper-style
    tables; this module keeps the formatting in one place. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest, the usual shape for
    "label, numbers..." experiment rows. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from the
    header. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Render with aligned columns, a header rule, and trailing newline. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown table (used when regenerating
    EXPERIMENTS.md). *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_float : ?digits:int -> float -> string
(** Compact float for table cells ([%.*g], default 6 significant digits). *)
