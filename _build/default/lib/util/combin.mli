(** Combinatorial enumeration used by the exact solvers.

    The paper's exhaustive cross-checks enumerate (i) partitions of the
    stage range [1..n] into consecutive intervals and (ii) assignments of
    pairwise-disjoint non-empty processor subsets to those intervals.  These
    enumerations are exponential by nature; they are only ever invoked on
    the small instances used to validate the polynomial algorithms and the
    NP-hardness reductions. *)

val binomial : int -> int -> int
(** [binomial n k]; [0] when [k < 0] or [k > n]. *)

val compositions : int -> (int * int) list Seq.t
(** [compositions n] enumerates all partitions of [1..n] into non-empty
    consecutive intervals, each given as an ordered list of
    [(first, last)] stage-index pairs (1-based, inclusive).  There are
    [2^(n-1)] of them.  @raise Invalid_argument if [n <= 0]. *)

val compositions_up_to : int -> int -> (int * int) list Seq.t
(** [compositions_up_to n p] restricts {!compositions} to partitions with at
    most [p] intervals. *)

val subsets_of_size : int -> int -> int list Seq.t
(** [subsets_of_size n k] enumerates all [k]-element subsets of [0..n-1] in
    lexicographic order, each as a sorted list. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations of a list.  Intended for lists of length <= ~8. *)

val disjoint_assignments : Bitset.t -> int -> Bitset.t list Seq.t
(** [disjoint_assignments pool p] enumerates all ways to assign a non-empty
    subset of [pool] to each of [p] slots such that the subsets are pairwise
    disjoint.  Used to enumerate replication sets per interval. *)

val injections : int -> int list -> int list Seq.t
(** [injections k candidates] enumerates ordered selections of [k] distinct
    elements of [candidates] (i.e. injective maps [0..k-1] -> candidates),
    as lists of length [k]. *)
