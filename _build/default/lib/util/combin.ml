let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc else go (acc * (n - k + i) / i) (i + 1)
    in
    go 1 1
  end

let compositions n =
  if n <= 0 then invalid_arg "Combin.compositions: n must be positive";
  (* An interval partition of [1..n] is determined by the subset of cut
     positions {1, .., n-1}; walk the 2^(n-1) subsets lazily. *)
  let rec from_cuts mask =
    let rec build first i acc =
      if i > n then List.rev acc
      else if i = n || mask land (1 lsl (i - 1)) <> 0 then
        build (i + 1) (i + 1) ((first, i) :: acc)
      else build first (i + 1) acc
    in
    build 1 1 []
  and seq mask () =
    if mask >= 1 lsl (n - 1) then Seq.Nil
    else Seq.Cons (from_cuts mask, seq (mask + 1))
  in
  seq 0

let compositions_up_to n p =
  Seq.filter (fun intervals -> List.length intervals <= p) (compositions n)

let subsets_of_size n k =
  let rec go start k =
    if k = 0 then Seq.return []
    else if start >= n then Seq.empty
    else begin
      let with_start =
        Seq.map (fun rest -> start :: rest) (go (start + 1) (k - 1))
      in
      let without_start = go (start + 1) k in
      Seq.append with_start (fun () -> without_start ())
    end
  in
  go 0 k

let rec permutations = function
  | [] -> Seq.return []
  | xs ->
      let insertless x rest = Seq.map (fun p -> x :: p) (permutations rest) in
      let rec pick_each before after () =
        match after with
        | [] -> Seq.Nil
        | x :: tl ->
            let tail = pick_each (x :: before) tl in
            Seq.append (insertless x (List.rev_append before tl)) tail ()
      in
      pick_each [] xs

let disjoint_assignments pool p =
  let rec go remaining p =
    if p = 0 then Seq.return []
    else
      Seq.concat_map
        (fun subset ->
          Seq.map
            (fun rest -> subset :: rest)
            (go (Bitset.diff remaining subset) (p - 1)))
        (Bitset.nonempty_subsets remaining)
  in
  go pool p

let injections k candidates =
  let rec go k available =
    if k = 0 then Seq.return []
    else
      Seq.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) available in
          Seq.map (fun tail -> x :: tail) (go (k - 1) rest))
        (List.to_seq available)
  in
  go k candidates
