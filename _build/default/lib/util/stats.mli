(** Descriptive statistics over float samples.

    Used by the Monte-Carlo simulator and the heuristic-gap experiments. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}
(** One-shot summary of a sample. *)

val mean : float array -> float
(** Compensated mean; [nan] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.0] for fewer than two samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]], linear interpolation between order
    statistics.  Does not mutate the input.  @raise Invalid_argument on an
    empty array or [q] outside [\[0,1\]]. *)

val summarize : float array -> summary
(** Full summary.  @raise Invalid_argument on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-line rendering. *)

(** {2 Counters and proportions} *)

val proportion : bool array -> float
(** Fraction of [true]; [nan] on empty input. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score confidence interval for a binomial proportion; used to
    compare empirical failure rates against analytic failure probabilities.
    @raise Invalid_argument if [trials <= 0] or [successes] out of range. *)
