(** Compensated (Kahan–Babuška) floating-point summation.

    Latency formulas accumulate many small communication terms; compensated
    summation keeps the accumulated error independent of the number of
    terms. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh accumulator holding [0.0]. *)

val add : t -> float -> unit
(** Accumulate one term. *)

val sum : t -> float
(** Current compensated total. *)

val sum_array : float array -> float
(** Compensated sum of an array. *)

val sum_seq : float Seq.t -> float
(** Compensated sum of a sequence. *)

val sum_map : ('a -> float) -> 'a list -> float
(** [sum_map f xs] is the compensated sum of [f x] over [xs]. *)
