lib/util/rng.mli:
