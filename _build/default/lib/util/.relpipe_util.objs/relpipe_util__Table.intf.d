lib/util/table.mli:
