lib/util/bitset.ml: Format Int List Seq Sys
