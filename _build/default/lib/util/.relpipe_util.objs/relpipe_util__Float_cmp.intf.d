lib/util/float_cmp.mli:
