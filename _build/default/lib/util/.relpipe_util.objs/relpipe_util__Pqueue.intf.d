lib/util/pqueue.mli:
