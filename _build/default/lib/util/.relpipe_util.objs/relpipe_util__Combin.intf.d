lib/util/combin.mli: Bitset Seq
