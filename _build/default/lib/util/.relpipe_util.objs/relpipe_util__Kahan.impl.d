lib/util/kahan.ml: Array Float List Seq
