lib/util/kahan.mli: Seq
