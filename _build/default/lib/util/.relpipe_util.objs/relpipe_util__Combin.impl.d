lib/util/combin.ml: Bitset List Seq
