lib/util/bitset.mli: Format Seq
