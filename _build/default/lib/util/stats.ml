type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan else Kahan.sum_array xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Kahan.create () in
    Array.iter (fun x -> Kahan.add acc ((x -. m) *. (x -. m))) xs;
    Kahan.sum acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    median = quantile xs 0.5;
    p90 = quantile xs 0.9;
    p99 = quantile xs 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g sd=%.3g min=%.6g med=%.6g p90=%.6g p99=%.6g max=%.6g"
    s.count s.mean s.stddev s.min s.median s.p90 s.p99 s.max

let proportion bs =
  let n = Array.length bs in
  if n = 0 then Float.nan
  else begin
    let k = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bs in
    float_of_int k /. float_of_int n
  end

let wilson_interval ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Stats.wilson_interval: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of range";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = p +. (z2 /. (2.0 *. n)) in
  let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
  ((centre -. spread) /. denom, (centre +. spread) /. denom)
