(** Tolerant floating-point comparison helpers.

    Latency and failure-probability computations mix sums of quotients, so
    exact equality is meaningless; all cross-checks in relpipe (analytic vs
    simulated, exact vs DP) go through these helpers. *)

val default_eps : float
(** Absolute/relative tolerance used when none is supplied ([1e-9]). *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [a] and [b] differ by at most [eps]
    absolutely, or by at most [eps] relative to the larger magnitude.
    Two non-finite values are equal iff they are identical. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b] up to tolerance: true when [a < b] or
    [approx_eq a b]. *)

val approx_eq_rel : ?eps:float -> float -> float -> bool
(** Like {!approx_eq} but with a {e relative-only} tolerance — required when
    comparing quantities that are legitimately tiny (e.g. failure
    probabilities near the [exp (-S/2)] thresholds of the Theorem 7
    reduction), where an absolute [1e-9] slack would blur distinct
    values. *)

val leq_rel : ?eps:float -> float -> float -> bool
(** [a <= b] up to relative-only tolerance. *)

val geq : ?eps:float -> float -> float -> bool
(** Mirror of {!leq}. *)

val compare : ?eps:float -> float -> float -> int
(** Three-way comparison collapsing approximately equal values to [0]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]]. *)

val is_probability : float -> bool
(** True when the value is finite and within [\[0, 1\]] (no tolerance). *)
