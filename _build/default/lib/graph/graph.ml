type t = {
  adj : (int * float) list array;  (* reversed insertion order internally *)
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  { adj = Array.make n []; edges = 0 }

let n_vertices t = Array.length t.adj
let n_edges t = t.edges

let add_edge t u v w =
  let n = n_vertices t in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Graph.add_edge: vertex out of range";
  if not (Float.is_finite w) then invalid_arg "Graph.add_edge: non-finite weight";
  t.adj.(u) <- (v, w) :: t.adj.(u);
  t.edges <- t.edges + 1

let succ t u =
  if u < 0 || u >= n_vertices t then invalid_arg "Graph.succ: vertex out of range";
  List.rev t.adj.(u)

let iter_edges f t =
  Array.iteri (fun u out -> List.iter (fun (v, w) -> f u v w) (List.rev out)) t.adj

let transpose t =
  let g = create (n_vertices t) in
  iter_edges (fun u v w -> add_edge g v u w) t;
  g

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v, w) -> add_edge g u v w) edges;
  g
