let topological_order g =
  let n = Graph.n_vertices g in
  let indegree = Array.make n 0 in
  Graph.iter_edges (fun _ v _ -> indegree.(v) <- indegree.(v) + 1) g;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indegree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order := u :: !order;
    incr visited;
    List.iter
      (fun (v, _) ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      (Graph.succ g u)
  done;
  if !visited = n then Some (List.rev !order) else None

let is_dag g = topological_order g <> None

let shortest_path g ~src ~dst =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Dag.shortest_path: vertex out of range";
  match topological_order g with
  | None -> invalid_arg "Dag.shortest_path: graph has a cycle"
  | Some order ->
      let dist = Array.make n Float.infinity in
      let parent = Array.make n (-1) in
      dist.(src) <- 0.0;
      List.iter
        (fun u ->
          if Float.is_finite dist.(u) then
            List.iter
              (fun (v, w) ->
                if dist.(u) +. w < dist.(v) then begin
                  dist.(v) <- dist.(u) +. w;
                  parent.(v) <- u
                end)
              (Graph.succ g u))
        order;
      if Float.is_finite dist.(dst) then begin
        let rec build v acc =
          if v = src then src :: acc else build parent.(v) (v :: acc)
        in
        Some (dist.(dst), build dst [])
      end
      else None
