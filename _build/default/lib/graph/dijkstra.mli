(** Dijkstra's single-source shortest paths (non-negative weights).

    This is the "shortest path computed in polynomial time" of Theorem 4:
    the mapping graph of Fig. 6 has non-negative weights (costs are
    quotients of non-negative data sizes and positive speeds). *)

val distances : Graph.t -> src:int -> float array
(** Distance from [src] to every vertex; unreachable vertices get
    [infinity].  @raise Invalid_argument on a negative edge weight reached
    during the search or an out-of-range source. *)

val shortest_path : Graph.t -> src:int -> dst:int -> (float * int list) option
(** [shortest_path g ~src ~dst] is [Some (distance, vertices)] with
    [vertices] listing the path from [src] to [dst] inclusive, or [None] if
    unreachable. *)
