(** Weighted directed graphs over integer vertices [0 .. n-1].

    Substrate for the paper's graph constructions: the layered mapping
    graph of Theorem 4 / Fig. 6 and the TSP reduction of Theorem 3. *)

type t
(** A mutable directed graph with float edge weights. *)

val create : int -> t
(** [create n] is an edgeless graph on [n] vertices.
    @raise Invalid_argument if [n < 0]. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds a directed edge.  Parallel edges are allowed
    (shortest-path algorithms simply consider both).
    @raise Invalid_argument on out-of-range vertices or non-finite weight. *)

val succ : t -> int -> (int * float) list
(** Outgoing edges [(target, weight)] of a vertex, in insertion order. *)

val iter_edges : (int -> int -> float -> unit) -> t -> unit
(** Iterate over all edges [(u, v, w)]. *)

val transpose : t -> t
(** Reversed copy. *)

val of_edges : int -> (int * int * float) list -> t
(** Graph on [n] vertices with the given edges. *)
