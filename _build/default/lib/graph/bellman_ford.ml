let run g ~src =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Bellman_ford: source out of range";
  let dist = Array.make n Float.infinity in
  let parent = Array.make n (-1) in
  dist.(src) <- 0.0;
  let relax_once () =
    let changed = ref false in
    Graph.iter_edges
      (fun u v w ->
        if Float.is_finite dist.(u) && dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          parent.(v) <- u;
          changed := true
        end)
      g;
    !changed
  in
  let rec iterate i =
    if i >= n - 1 then ()
    else if relax_once () then iterate (i + 1)
    else ()
  in
  iterate 0;
  if relax_once () then Error `Negative_cycle else Ok (dist, parent)

let distances g ~src = Result.map fst (run g ~src)

let shortest_path g ~src ~dst =
  if dst < 0 || dst >= Graph.n_vertices g then
    invalid_arg "Bellman_ford: destination out of range";
  match run g ~src with
  | Error _ as e -> e
  | Ok (dist, parent) ->
      if Float.is_finite dist.(dst) then begin
        let rec build v acc =
          if v = src then src :: acc else build parent.(v) (v :: acc)
        in
        Ok (Some (dist.(dst), build dst []))
      end
      else Ok None
