lib/graph/dag.ml: Array Float Graph List Queue
