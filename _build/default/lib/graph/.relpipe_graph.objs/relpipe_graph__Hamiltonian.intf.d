lib/graph/hamiltonian.mli:
