lib/graph/dijkstra.ml: Array Float Graph List Relpipe_util
