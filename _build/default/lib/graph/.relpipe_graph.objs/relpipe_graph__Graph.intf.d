lib/graph/graph.mli:
