lib/graph/hamiltonian.ml: Array Float Fun List Relpipe_util Seq
