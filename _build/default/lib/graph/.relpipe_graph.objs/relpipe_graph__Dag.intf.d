lib/graph/dag.mli: Graph
