lib/graph/bellman_ford.ml: Array Float Graph Result
