lib/graph/bellman_ford.mli: Graph
