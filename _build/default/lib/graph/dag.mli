(** Topological order and linear-time shortest paths on DAGs.

    The Theorem 4 mapping graph (Fig. 6) is layered and acyclic, so its
    shortest path can also be computed by a single topological sweep — a
    third independent oracle used in tests and the fastest option in the
    benchmark harness. *)

val topological_order : Graph.t -> int list option
(** Vertices in a topological order, or [None] when the graph has a
    cycle. *)

val is_dag : Graph.t -> bool

val shortest_path :
  Graph.t -> src:int -> dst:int -> (float * int list) option
(** Shortest path by dynamic programming along a topological order;
    supports negative weights.  @raise Invalid_argument if the graph is
    cyclic. *)
