(** Hamiltonian paths on complete weighted graphs.

    Oracle for the Theorem 3 reduction: the reduction maps a TSP instance
    (Hamiltonian path from [s] to [t] of cost at most [K]) to a one-to-one
    latency-minimization instance.  To machine-check the reduction we solve
    both sides exactly on small inputs.  Two independent solvers:
    Held–Karp dynamic programming (O(2^n n^2)) and brute-force permutation
    search (O(n!)), cross-checked in tests. *)

val held_karp :
  cost:float array array -> s:int -> t:int -> (float * int list) option
(** Minimum-cost Hamiltonian path from [s] to [t] visiting every vertex
    exactly once.  [cost.(u).(v)] is the edge cost (need not be symmetric).
    Returns [None] only when [n = 0]; for [n = 1] (and [s = t]) the path is
    [\[s\]] with cost [0].  @raise Invalid_argument when [s]/[t] are out of
    range, [s = t] with [n > 1], or the matrix is not square of size
    [> Bitset.max_width]. *)

val brute_force :
  cost:float array array -> s:int -> t:int -> (float * int list) option
(** Same contract, by enumerating all permutations; intended for [n <= 9]. *)

val exists_leq : cost:float array array -> s:int -> t:int -> bound:float -> bool
(** Decision version: a Hamiltonian path of cost at most [bound] exists
    (up to the default float tolerance). *)
