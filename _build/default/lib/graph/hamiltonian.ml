module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp

let check_inputs ~cost ~s ~t =
  let n = Array.length cost in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Hamiltonian: cost matrix is not square")
    cost;
  if n > B.max_width then invalid_arg "Hamiltonian: instance too large";
  if n > 0 then begin
    if s < 0 || s >= n || t < 0 || t >= n then
      invalid_arg "Hamiltonian: endpoint out of range";
    if s = t && n > 1 then invalid_arg "Hamiltonian: endpoints must differ"
  end;
  n

let held_karp ~cost ~s ~t =
  let n = check_inputs ~cost ~s ~t in
  if n = 0 then None
  else if n = 1 then Some (0.0, [ s ])
  else begin
    (* dp.(mask).(v): cheapest path starting at s, visiting exactly the
       vertices of mask, ending at v (s and v in mask). *)
    let full = (B.full n :> int) in
    let dp = Array.make_matrix (full + 1) n Float.infinity in
    let parent = Array.make_matrix (full + 1) n (-1) in
    let smask = (B.singleton s :> int) in
    dp.(smask).(s) <- 0.0;
    for mask = 1 to full do
      if mask land smask <> 0 then
        for v = 0 to n - 1 do
          if mask land (1 lsl v) <> 0 && Float.is_finite dp.(mask).(v) then begin
            let base = dp.(mask).(v) in
            for w = 0 to n - 1 do
              if mask land (1 lsl w) = 0 then begin
                let nmask = mask lor (1 lsl w) in
                let cand = base +. cost.(v).(w) in
                if cand < dp.(nmask).(w) then begin
                  dp.(nmask).(w) <- cand;
                  parent.(nmask).(w) <- v
                end
              end
            done
          end
        done
    done;
    if Float.is_finite dp.(full).(t) then begin
      let rec build mask v acc =
        if v = s && mask = smask then s :: acc
        else begin
          let p = parent.(mask).(v) in
          build (mask land lnot (1 lsl v)) p (v :: acc)
        end
      in
      Some (dp.(full).(t), build full t [])
    end
    else None
  end

let brute_force ~cost ~s ~t =
  let n = check_inputs ~cost ~s ~t in
  if n = 0 then None
  else if n = 1 then Some (0.0, [ s ])
  else begin
    let middle =
      List.filter (fun v -> v <> s && v <> t) (List.init n Fun.id)
    in
    let path_cost path =
      let rec go acc = function
        | a :: (b :: _ as tl) -> go (acc +. cost.(a).(b)) tl
        | [ _ ] | [] -> acc
      in
      go 0.0 path
    in
    let best = ref None in
    Seq.iter
      (fun perm ->
        let path = (s :: perm) @ [ t ] in
        let c = path_cost path in
        match !best with
        | Some (bc, _) when bc <= c -> ()
        | _ -> best := Some (c, path))
      (Relpipe_util.Combin.permutations middle);
    !best
  end

let exists_leq ~cost ~s ~t ~bound =
  match held_karp ~cost ~s ~t with
  | None -> false
  | Some (c, _) -> F.leq c bound
