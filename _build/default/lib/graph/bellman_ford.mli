(** Bellman–Ford single-source shortest paths.

    Handles arbitrary (possibly negative) edge weights and detects negative
    cycles.  Used as an independent oracle to cross-check {!Dijkstra} on
    the non-negative graphs produced by the Theorem 4 construction. *)

val distances : Graph.t -> src:int -> (float array, [ `Negative_cycle ]) result
(** Distances from [src]; unreachable vertices get [infinity]. *)

val shortest_path :
  Graph.t -> src:int -> dst:int ->
  ((float * int list) option, [ `Negative_cycle ]) result
(** Path reconstruction as in {!Dijkstra.shortest_path}. *)
