module Pq = Relpipe_util.Pqueue

let search g ~src =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n Float.infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let queue = Pq.create () in
  dist.(src) <- 0.0;
  Pq.push queue 0.0 src;
  let rec loop () =
    match Pq.pop queue with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun (v, w) ->
              if w < 0.0 then invalid_arg "Dijkstra: negative edge weight";
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                parent.(v) <- u;
                Pq.push queue nd v
              end)
            (Graph.succ g u)
        end;
        loop ()
  in
  loop ();
  (dist, parent)

let distances g ~src = fst (search g ~src)

let shortest_path g ~src ~dst =
  let dist, parent = search g ~src in
  if dst < 0 || dst >= Graph.n_vertices g then
    invalid_arg "Dijkstra: destination out of range";
  if Float.is_finite dist.(dst) then begin
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    Some (dist.(dst), build dst [])
  end
  else None
