lib/experiments/experiments.mli: Relpipe_util
