(** Simulate one data set traversing a mapped pipeline.

    The simulation follows the paper's execution model: the input is sent
    from [Pin] to every replica of the first interval (serialized by
    [Pin]'s port), replicas compute, a surviving replica is elected to
    forward the interval's output to every replica of the next interval
    (serialized by the forwarder's port — the "standard consensus
    protocol" the paper invokes), and the last interval's forwarder returns
    the result to [Pout].

    Failures are injected per trial as an [alive] vector: a dead processor
    still receives data (senders cannot know it failed, so communications
    are still paid — exactly the assumption behind Eq. 1/2) but never
    computes or forwards.

    Forwarder election policies:
    - [Optimistic]: the first surviving replica to finish computing
      forwards immediately — what a real deployment would do;
    - [Pessimistic]: the last surviving replica to finish forwards — the
      adversarial scenario behind the paper's worst-case latency formulas.

    With every replica alive, the [Pessimistic] makespan is bounded above
    by Eq. (1)/(2), with equality when each interval keeps only its
    worst replica alive (see {!worst_case_latency}). *)

open Relpipe_model

type policy = Optimistic | Pessimistic

type outcome =
  | Completed of float  (** end-to-end latency of the data set *)
  | Failed of int  (** 0-based index of the first interval with no survivor *)

val run : Instance.t -> Mapping.t -> alive:bool array -> policy:policy -> outcome
(** [run instance mapping ~alive ~policy] simulates one data set.  [alive]
    has one entry per platform processor.
    @raise Invalid_argument if [alive] has the wrong length or the mapping
    does not fit the instance. *)

val worst_case_alive : Instance.t -> Mapping.t -> bool array
(** The adversarial survivor pattern realizing the paper's worst case:
    in each interval only the replica maximizing compute-plus-forwarding
    survives. *)

val worst_case_latency : Instance.t -> Mapping.t -> float
(** Simulated latency under {!worst_case_alive} and [Pessimistic] — equal
    (up to float tolerance) to {!Relpipe_model.Latency.of_mapping}. *)
