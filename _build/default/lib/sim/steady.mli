(** Steady-state (multi-data-set) simulation.

    The paper's workflows run "during a very long time": data sets stream
    through the mapped pipeline continuously.  This runner pushes [K] data
    sets through the platform under the same worst-case conventions as
    {!Trial} (fixed worst forwarder per interval, worst replica served
    last, every replica charged), with every communication port and every
    processor's compute unit serialized FIFO.

    It validates the throughput extension ({!Relpipe_model.Period}):
    the observed inter-completion gap converges to at most the analytic
    period, and the makespan obeys the classic pipelining bound
    [makespan <= latency + (K - 1) * period]. *)

open Relpipe_model

type result = {
  datasets : int;
  first_completion : float;  (** completion time of the first data set *)
  makespan : float;  (** completion time of the last data set *)
  estimated_period : float;
      (** [(makespan - first_completion) / (K - 1)]; [0.0] when [K = 1] *)
  analytic_latency : float;  (** Eq. (1)/(2) worst case *)
  analytic_period : float;  (** {!Relpipe_model.Period.of_mapping} *)
}

val run : ?trace:Trace.t -> Instance.t -> Mapping.t -> datasets:int -> result
(** All processors alive (throughput is a steady-state metric; failure
    injection is {!Montecarlo}'s job).  When [trace] is supplied, every
    transfer and computation is recorded so {!Trace} can check the
    execution against the one-port/causality invariants.
    @raise Invalid_argument when [datasets < 1] or the mapping does not
    fit the instance. *)
