type t = { mutable free : float }

let create () = { free = 0.0 }

let free_at t = t.free

let check ~earliest ~duration =
  if not (Float.is_finite earliest) || earliest < 0.0 then
    invalid_arg "Port: bad earliest time";
  if not (Float.is_finite duration) || duration < 0.0 then
    invalid_arg "Port: bad duration"

let reserve t ~earliest ~duration =
  check ~earliest ~duration;
  let start = Float.max earliest t.free in
  t.free <- start +. duration;
  start

let reserve_pair a b ~earliest ~duration =
  check ~earliest ~duration;
  let start = Float.max earliest (Float.max a.free b.free) in
  a.free <- start +. duration;
  b.free <- start +. duration;
  start

let reset t = t.free <- 0.0
