open Relpipe_model

type result = {
  trials : int;
  successes : int;
  success_rate : float;
  analytic_success : float;
  latency_stats : Relpipe_util.Stats.summary option;
  analytic_latency : float;
  max_latency : float;
}

let estimate rng instance mapping ~trials ~policy =
  if trials <= 0 then invalid_arg "Montecarlo.estimate: trials must be positive";
  let latencies = ref [] in
  let successes = ref 0 in
  for _ = 1 to trials do
    let alive = Failure_inject.sample rng instance.Instance.platform in
    match Trial.run instance mapping ~alive ~policy with
    | Trial.Completed t ->
        incr successes;
        latencies := t :: !latencies
    | Trial.Failed _ -> ()
  done;
  let latencies = Array.of_list !latencies in
  {
    trials;
    successes = !successes;
    success_rate = float_of_int !successes /. float_of_int trials;
    analytic_success = Failure.success instance.Instance.platform mapping;
    latency_stats =
      (if Array.length latencies = 0 then None
       else Some (Relpipe_util.Stats.summarize latencies));
    analytic_latency =
      Latency.of_mapping instance.Instance.pipeline instance.Instance.platform
        mapping;
    max_latency = Array.fold_left Float.max Float.neg_infinity latencies;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>trials=%d success=%d (rate %.4f, analytic %.4f)@,\
     worst latency observed=%g analytic=%g@,%a@]"
    r.trials r.successes r.success_rate r.analytic_success r.max_latency
    r.analytic_latency
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "no successful trial")
       Relpipe_util.Stats.pp_summary)
    r.latency_stats
