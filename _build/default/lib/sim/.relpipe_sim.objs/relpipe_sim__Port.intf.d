lib/sim/port.mli:
