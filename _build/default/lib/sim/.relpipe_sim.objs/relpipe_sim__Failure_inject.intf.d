lib/sim/failure_inject.mli: Platform Relpipe_model Relpipe_util
