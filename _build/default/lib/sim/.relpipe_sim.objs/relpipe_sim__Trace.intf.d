lib/sim/trace.mli: Format Platform Relpipe_model
