lib/sim/montecarlo.ml: Array Failure Failure_inject Float Format Instance Latency Relpipe_model Relpipe_util Trial
