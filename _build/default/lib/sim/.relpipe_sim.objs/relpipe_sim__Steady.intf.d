lib/sim/steady.mli: Instance Mapping Relpipe_model Trace
