lib/sim/trace.ml: Array Format List Platform Relpipe_model
