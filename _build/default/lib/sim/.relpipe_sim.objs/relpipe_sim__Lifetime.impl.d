lib/sim/lifetime.ml: Array Failure Failure_rate Float Instance Latency List Mapping Period Platform Relpipe_model Relpipe_util
