lib/sim/trial.ml: Array Engine Instance List Mapping Pipeline Platform Port Relpipe_model Relpipe_util
