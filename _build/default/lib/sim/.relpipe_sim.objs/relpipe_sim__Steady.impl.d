lib/sim/steady.ml: Array Instance Latency List Mapping Period Pipeline Platform Port Relpipe_model Relpipe_util Trace
