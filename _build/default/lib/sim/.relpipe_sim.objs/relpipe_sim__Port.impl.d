lib/sim/port.ml: Float
