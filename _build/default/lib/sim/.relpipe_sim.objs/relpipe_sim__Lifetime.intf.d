lib/sim/lifetime.mli: Instance Mapping Relpipe_model Relpipe_util
