lib/sim/engine.ml: Float Fun Relpipe_util
