lib/sim/trial.mli: Instance Mapping Relpipe_model
