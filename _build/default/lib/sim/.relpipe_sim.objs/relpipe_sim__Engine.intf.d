lib/sim/engine.mli:
