lib/sim/montecarlo.mli: Format Instance Mapping Relpipe_model Relpipe_util Trial
