lib/sim/failure_inject.ml: Array List Platform Relpipe_model Relpipe_util
