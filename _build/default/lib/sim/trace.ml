open Relpipe_model

type event =
  | Transfer of {
      src : Platform.endpoint;
      dst : Platform.endpoint;
      dataset : int;
      start : float;
      finish : float;
    }
  | Compute of { proc : int; dataset : int; start : float; finish : float }

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let record t e =
  t.events <- e :: t.events;
  t.count <- t.count + 1

let events t = List.rev t.events
let length t = t.count

type violation = { kind : string; first : event; second : event }

(* Half-open windows [start, finish): back-to-back bookings are legal. *)
let overlap (s1, f1) (s2, f2) = s1 < f2 && s2 < f1

let transfer_endpoints = function
  | Transfer { src; dst; _ } -> [ src; dst ]
  | Compute _ -> []

let window = function
  | Transfer { start; finish; _ } | Compute { start; finish; _ } -> (start, finish)

let pairwise_violations ~kind ~shares events =
  (* Quadratic scan: traces in tests stay small (thousands of events). *)
  let arr = Array.of_list events in
  let out = ref [] in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      if shares arr.(i) arr.(j) && overlap (window arr.(i)) (window arr.(j)) then
        out := { kind; first = arr.(i); second = arr.(j) } :: !out
    done
  done;
  List.rev !out

let one_port_violations t =
  let transfers =
    List.filter (function Transfer _ -> true | Compute _ -> false) (events t)
  in
  pairwise_violations ~kind:"one-port"
    ~shares:(fun a b ->
      List.exists
        (fun ea -> List.exists (Platform.endpoint_equal ea) (transfer_endpoints b))
        (transfer_endpoints a))
    transfers

let compute_violations t =
  let computes =
    List.filter (function Compute _ -> true | Transfer _ -> false) (events t)
  in
  pairwise_violations ~kind:"sequential-compute"
    ~shares:(fun a b ->
      match a, b with
      | Compute { proc = p1; _ }, Compute { proc = p2; _ } -> p1 = p2
      | _ -> false)
    computes

let causality_violations t =
  let evs = events t in
  let eps = 1e-9 in
  let out = ref [] in
  List.iter
    (fun e ->
      match e with
      | Compute { proc; dataset; start; _ } ->
          (* The replica must have finished receiving the data set. *)
          List.iter
            (fun e' ->
              match e' with
              | Transfer { dst = Platform.Proc p; dataset = d; finish; _ }
                when p = proc && d = dataset && start +. eps < finish ->
                  out := { kind = "compute-before-receive"; first = e'; second = e } :: !out
              | Transfer _ | Compute _ -> ())
            evs
      | Transfer { src = Platform.Proc p; dataset; start; _ } ->
          (* A processor forwards a data set only after computing it. *)
          List.iter
            (fun e' ->
              match e' with
              | Compute { proc; dataset = d; finish; _ }
                when proc = p && d = dataset && start +. eps < finish ->
                  out := { kind = "send-before-compute"; first = e'; second = e } :: !out
              | Compute _ | Transfer _ -> ())
            evs
      | Transfer _ -> ())
    evs;
  List.rev !out

let all_violations t =
  one_port_violations t @ compute_violations t @ causality_violations t

let pp_event ppf = function
  | Transfer { src; dst; dataset; start; finish } ->
      Format.fprintf ppf "transfer %a->%a d%d [%g, %g)" Platform.pp_endpoint src
        Platform.pp_endpoint dst dataset start finish
  | Compute { proc; dataset; start; finish } ->
      Format.fprintf ppf "compute P%d d%d [%g, %g)" proc dataset start finish

let pp_violation ppf v =
  Format.fprintf ppf "%s: %a / %a" v.kind pp_event v.first pp_event v.second
