(** A minimal discrete-event simulation engine.

    Events are closures scheduled at absolute simulated times and executed
    in time order (FIFO among simultaneous events, which keeps runs
    deterministic).  An executing event may schedule further events at or
    after the current time. *)

type t
(** A simulation clock plus its pending-event queue. *)

val create : unit -> t
(** Fresh engine at time [0.0]. *)

val now : t -> float
(** Current simulated time (meaningful while running; after {!run} it is
    the time of the last event). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] enqueues [f] for execution at time [at].
    @raise Invalid_argument if [at] is in the past or not finite. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** Relative variant of {!schedule}.  @raise Invalid_argument on a negative
    or non-finite delay. *)

val run : t -> unit
(** Execute events until the queue drains.  Re-entrant calls are
    rejected. *)

val events_processed : t -> int
(** Number of events executed so far (diagnostics). *)
