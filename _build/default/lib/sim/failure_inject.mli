(** Sampling of processor failures.

    The paper models a constant per-processor failure probability over the
    whole (long-running) workflow execution, so a trial's failure pattern
    is one independent Bernoulli draw per processor. *)

open Relpipe_model

val sample : Relpipe_util.Rng.t -> Platform.t -> bool array
(** [sample rng platform] draws an aliveness vector: entry [u] is [false]
    with probability [Platform.failure platform u]. *)

val all_alive : Platform.t -> bool array

val kill : bool array -> int list -> bool array
(** Copy of the vector with the listed processors marked dead. *)
