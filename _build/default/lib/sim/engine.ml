module Pq = Relpipe_util.Pqueue

type t = {
  queue : (unit -> unit) Pq.t;
  mutable clock : float;
  mutable running : bool;
  mutable processed : int;
}

let create () = { queue = Pq.create (); clock = 0.0; running = false; processed = 0 }

let now t = t.clock

let schedule t ~at f =
  if not (Float.is_finite at) then invalid_arg "Engine.schedule: non-finite time";
  if at < t.clock then invalid_arg "Engine.schedule: cannot schedule in the past";
  Pq.push t.queue at f

let schedule_after t ~delay f =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule_after: bad delay";
  schedule t ~at:(t.clock +. delay) f

let run t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let rec loop () =
        match Pq.pop t.queue with
        | None -> ()
        | Some (at, f) ->
            t.clock <- at;
            t.processed <- t.processed + 1;
            f ();
            loop ()
      in
      loop ())

let events_processed t = t.processed
