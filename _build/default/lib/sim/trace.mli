(** Simulation event traces and model-invariant checking.

    The steady-state runner can record every transfer and computation it
    schedules.  The trace is then machine-checkable against the execution
    model's invariants:

    - {e one-port}: an endpoint takes part in at most one transfer at a
      time (paper Section 2.1);
    - {e sequential processors}: a processor computes at most one data set
      at a time;
    - {e causality}: a data set's computation on a replica starts only
      after the replica received it, and transfers of a data set out of an
      interval start only after its forwarder computed it.

    The test suite runs random mappings through the runner and asserts the
    violation lists are empty — an end-to-end check that the port
    bookkeeping really implements the paper's model. *)

open Relpipe_model

type event =
  | Transfer of {
      src : Platform.endpoint;
      dst : Platform.endpoint;
      dataset : int;
      start : float;
      finish : float;
    }
  | Compute of { proc : int; dataset : int; start : float; finish : float }

type t
(** A mutable event collector. *)

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In recording order. *)

val length : t -> int

type violation = { kind : string; first : event; second : event }
(** Two events that jointly break an invariant. *)

val one_port_violations : t -> violation list
(** Pairs of transfers overlapping in time while sharing an endpoint. *)

val compute_violations : t -> violation list
(** Pairs of computations overlapping in time on the same processor. *)

val causality_violations : t -> violation list
(** For each (processor, data set): a computation starting before the
    processor finished receiving that data set, or an outgoing transfer of
    the data set leaving a processor before that processor computed it. *)

val all_violations : t -> violation list

val pp_event : Format.formatter -> event -> unit
val pp_violation : Format.formatter -> violation -> unit
