(** One-port communication bookkeeping (paper Section 2.1).

    Under the one-port model a processor takes part in at most one transfer
    at a time (send or receive), while independent processor pairs may
    communicate concurrently.  Each endpoint owns a port whose availability
    advances as transfers are booked. *)

type t
(** The port of one endpoint. *)

val create : unit -> t
(** Port free from time [0.0]. *)

val free_at : t -> float
(** Earliest time the port is available. *)

val reserve : t -> earliest:float -> duration:float -> float
(** Book the port for [duration] starting no earlier than [earliest];
    returns the actual start time ([max earliest (free_at t)]).
    @raise Invalid_argument on negative or non-finite arguments. *)

val reserve_pair : t -> t -> earliest:float -> duration:float -> float
(** Book a transfer occupying both endpoints for the same window (start =
    max of [earliest] and both ports' availability).  Returns the start
    time. *)

val reset : t -> unit
(** Make the port free from time [0.0] again. *)
