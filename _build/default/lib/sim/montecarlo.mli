(** Monte-Carlo validation of the analytic model.

    Runs many independent failure draws through {!Trial.run} and compares
    the empirical success rate with the analytic [1 - FP] and the observed
    latencies with the analytic worst case of Eq. (1)/(2).  This is the
    E12 experiment of DESIGN.md. *)

open Relpipe_model

type result = {
  trials : int;
  successes : int;
  success_rate : float;
  analytic_success : float;  (** 1 - FP from {!Failure.of_mapping} *)
  latency_stats : Relpipe_util.Stats.summary option;
      (** over successful trials; [None] if all failed *)
  analytic_latency : float;  (** worst case from {!Latency.of_mapping} *)
  max_latency : float;  (** worst observed latency; [neg_infinity] if none *)
}

val estimate :
  Relpipe_util.Rng.t ->
  Instance.t ->
  Mapping.t ->
  trials:int ->
  policy:Trial.policy ->
  result
(** @raise Invalid_argument if [trials <= 0]. *)

val pp_result : Format.formatter -> result -> unit
