(** Heuristics for the bi-criteria cases the paper proves NP-hard (Fully
    Heterogeneous, Theorem 7) or leaves open (Communication Homogeneous
    with heterogeneous failures, Section 4.4).

    Four complementary strategies, in the spirit of the heuristic suites of
    the authors' companion papers:

    - {e single-interval greedy}: Lemma-1-shaped solutions — grow one
      replication set greedily;
    - {e split-and-replicate}: work-balanced interval partitions seeded
      with the fastest processors, then greedy replica additions (the
      shape of the paper's Fig. 5 optimum);
    - {e local search}: hill climbing over boundary moves, splits, merges
      and replica swaps;
    - {e simulated annealing}: the same neighbourhood with a cooling
      schedule, able to escape local optima;
    - {e iterated local search}: alternating hill-climbing descents with
      random multi-move perturbations, restarting the descent from the
      perturbed incumbent.

    [best_of] runs all of them and keeps the best feasible solution; the
    E10/E11 experiments measure their optimality gap against {!Exact}. *)

open Relpipe_model

type name =
  | Single_greedy
  | Split_replicate
  | Local_search
  | Annealing
  | Iterated

val all_names : name list
val name_to_string : name -> string

val single_greedy : Instance.t -> Instance.objective -> Solution.t option

val split_replicate : Instance.t -> Instance.objective -> Solution.t option

val local_search :
  ?seed:int -> ?iterations:int -> Instance.t -> Instance.objective ->
  Solution.t option
(** Default 4000 iterations. *)

val annealing :
  ?seed:int -> ?iterations:int -> Instance.t -> Instance.objective ->
  Solution.t option
(** Default 8000 iterations, geometric cooling. *)

val iterated :
  ?seed:int -> ?rounds:int -> ?descent:int -> Instance.t ->
  Instance.objective -> Solution.t option
(** Default 12 rounds of a [descent]-step hill climb (default 600) after a
    3-move perturbation of the incumbent. *)

val run :
  ?seed:int -> name -> Instance.t -> Instance.objective -> Solution.t option

val best_of :
  ?seed:int -> Instance.t -> Instance.objective -> Solution.t option
(** Best feasible result across all heuristics. *)
