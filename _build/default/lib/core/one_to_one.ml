open Relpipe_model
module Rng = Relpipe_util.Rng

let cost instance procs =
  let { Instance.pipeline; platform } = instance in
  let m = Platform.size platform in
  if Array.length procs <> Pipeline.length pipeline then
    invalid_arg "One_to_one.cost: arity mismatch";
  Latency.of_assignment pipeline platform (Assignment.make ~m procs)

let mapping_of instance procs =
  let { Instance.pipeline; platform } = instance in
  Mapping.one_to_one
    ~n:(Pipeline.length pipeline)
    ~m:(Platform.size platform)
    (Array.to_list procs)

let exact instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if n > m then None
  else begin
    let max_speed =
      Array.fold_left Float.max 0.0 (Platform.speeds platform)
    in
    (* Suffix lower bound: remaining computation at the fastest speed
       (communications and the final output are bounded below by 0). *)
    let suffix_bound = Array.make (n + 2) 0.0 in
    for i = n downto 1 do
      suffix_bound.(i) <-
        suffix_bound.(i + 1) +. (Pipeline.work pipeline i /. max_speed)
    done;
    let best_cost = ref Float.infinity in
    let best = Array.make n (-1) in
    let current = Array.make n (-1) in
    let rec branch i used partial =
      if partial +. suffix_bound.(i) >= !best_cost then ()
      else if i > n then begin
        (* Add the final output communication. *)
        let last = current.(n - 1) in
        let total =
          partial
          +. Pipeline.delta pipeline n
             /. Platform.bandwidth platform (Platform.Proc last) Platform.Pout
        in
        if total < !best_cost then begin
          best_cost := total;
          Array.blit current 0 best 0 n
        end
      end
      else
        for u = 0 to m - 1 do
          if not (Relpipe_util.Bitset.mem u used) then begin
            let incoming =
              if i = 1 then
                Pipeline.delta pipeline 0
                /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)
              else
                Pipeline.delta pipeline (i - 1)
                /. Platform.bandwidth platform
                     (Platform.Proc current.(i - 2))
                     (Platform.Proc u)
            in
            let compute = Pipeline.work pipeline i /. Platform.speed platform u in
            current.(i - 1) <- u;
            branch (i + 1)
              (Relpipe_util.Bitset.add u used)
              (partial +. incoming +. compute);
            current.(i - 1) <- -1
          end
        done
    in
    branch 1 Relpipe_util.Bitset.empty 0.0;
    if Float.is_finite !best_cost then Some (!best_cost, mapping_of instance best)
    else None
  end

let greedy_from instance order =
  (* [order] permutes processor preference to diversify restarts. *)
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if n > m then None
  else begin
    let used = Array.make m false in
    let procs = Array.make n (-1) in
    let ok = ref true in
    for i = 1 to n do
      if !ok then begin
        let best_u = ref (-1) and best_c = ref Float.infinity in
        Array.iter
          (fun u ->
            if not used.(u) then begin
              let incoming =
                if i = 1 then
                  Pipeline.delta pipeline 0
                  /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)
                else
                  Pipeline.delta pipeline (i - 1)
                  /. Platform.bandwidth platform
                       (Platform.Proc procs.(i - 2))
                       (Platform.Proc u)
              in
              let compute = Pipeline.work pipeline i /. Platform.speed platform u in
              let outgoing =
                if i = n then
                  Pipeline.delta pipeline n
                  /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout
                else 0.0
              in
              let c = incoming +. compute +. outgoing in
              if c < !best_c then begin
                best_c := c;
                best_u := u
              end
            end)
          order;
        if !best_u < 0 then ok := false
        else begin
          procs.(i - 1) <- !best_u;
          used.(!best_u) <- true
        end
      end
    done;
    if !ok then Some (cost instance procs, procs) else None
  end

let greedy instance =
  match greedy_from instance (Array.init (Platform.size instance.Instance.platform) Fun.id) with
  | None -> None
  | Some (c, procs) -> Some (c, mapping_of instance procs)

let improve instance procs =
  let { Instance.platform; _ } = instance in
  let n = Array.length procs and m = Platform.size platform in
  let used = Array.make m false in
  Array.iter (fun u -> used.(u) <- true) procs;
  let current_cost = ref (cost instance procs) in
  let improved = ref true in
  while !improved do
    improved := false;
    (* Move 1: retarget one stage to an unused processor. *)
    for i = 0 to n - 1 do
      for u = 0 to m - 1 do
        if not used.(u) then begin
          let old = procs.(i) in
          procs.(i) <- u;
          let c = cost instance procs in
          if c < !current_cost then begin
            current_cost := c;
            used.(old) <- false;
            used.(u) <- true;
            improved := true
          end
          else procs.(i) <- old
        end
      done
    done;
    (* Move 2: swap the processors of two stages. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let pi = procs.(i) and pj = procs.(j) in
        procs.(i) <- pj;
        procs.(j) <- pi;
        let c = cost instance procs in
        if c < !current_cost then begin
          current_cost := c;
          improved := true
        end
        else begin
          procs.(i) <- pi;
          procs.(j) <- pj
        end
      done
    done
  done;
  !current_cost

let exact_bicriteria instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if n > m then None
  else begin
    let module F = Relpipe_util.Float_cmp in
    let max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform) in
    let suffix_bound = Array.make (n + 2) 0.0 in
    for i = n downto 1 do
      suffix_bound.(i) <-
        suffix_bound.(i + 1) +. (Pipeline.work pipeline i /. max_speed)
    done;
    let best : Solution.t option ref = ref None in
    let incumbent () =
      match !best with
      | None -> Float.infinity
      | Some s -> Instance.objective_value objective s.Solution.evaluation
    in
    let current = Array.make n (-1) in
    (* Both metrics only grow along a partial assignment, so each doubles
       as an admissible pruning bound. *)
    let prune ~partial_latency ~partial_fp ~next_stage =
      let latency_lb = partial_latency +. suffix_bound.(next_stage) in
      match objective with
      | Instance.Min_latency { max_failure } ->
          (not (F.leq partial_fp max_failure)) || latency_lb >= incumbent ()
      | Instance.Min_failure { max_latency } ->
          (not (F.leq latency_lb max_latency)) || partial_fp >= incumbent ()
    in
    let rec branch i used partial_latency log_survival =
      let partial_fp = -.Float.expm1 log_survival in
      if prune ~partial_latency ~partial_fp ~next_stage:i then ()
      else if i > n then begin
        let last = current.(n - 1) in
        let latency =
          partial_latency
          +. Pipeline.delta pipeline n
             /. Platform.bandwidth platform (Platform.Proc last) Platform.Pout
        in
        let evaluation = { Instance.latency; failure = partial_fp } in
        if Instance.feasible objective evaluation then begin
          let mapping = mapping_of instance current in
          match !best with
          | Some b
            when not (Instance.better objective evaluation b.Solution.evaluation)
            ->
              ()
          | _ -> best := Some { Solution.mapping; evaluation }
        end
      end
      else
        for u = 0 to m - 1 do
          if not (Relpipe_util.Bitset.mem u used) then begin
            let incoming =
              if i = 1 then
                Pipeline.delta pipeline 0
                /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)
              else
                Pipeline.delta pipeline (i - 1)
                /. Platform.bandwidth platform
                     (Platform.Proc current.(i - 2))
                     (Platform.Proc u)
            in
            let compute = Pipeline.work pipeline i /. Platform.speed platform u in
            current.(i - 1) <- u;
            branch (i + 1)
              (Relpipe_util.Bitset.add u used)
              (partial_latency +. incoming +. compute)
              (log_survival +. Float.log1p (-.Platform.failure platform u));
            current.(i - 1) <- -1
          end
        done
    in
    branch 1 Relpipe_util.Bitset.empty 0.0 0.0;
    !best
  end

let local_search ?(seed = 42) ?(restarts = 8) instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if n > m then None
  else begin
    let rng = Rng.create seed in
    let best = ref None in
    let consider procs =
      let c = improve instance procs in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, Array.copy procs)
    in
    (match greedy_from instance (Array.init m Fun.id) with
    | Some (_, procs) -> consider procs
    | None -> ());
    for _ = 1 to restarts do
      match greedy_from instance (Rng.permutation rng m) with
      | Some (_, procs) -> consider procs
      | None -> ()
    done;
    Option.map (fun (c, procs) -> (c, mapping_of instance procs)) !best
  end
