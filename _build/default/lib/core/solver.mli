(** Unified solving facade.

    Dispatches a bi-criteria problem to the right algorithm for the
    platform class, mirroring the paper's complexity landscape:

    - Fully Homogeneous (speeds + links): Algorithms 1/2 — polynomial,
      optimal (including heterogeneous failures, per the paper's remark);
    - Communication Homogeneous + Failure Homogeneous: Algorithms 3/4 —
      polynomial, optimal;
    - everything else (Comm. Homogeneous + Failure Heterogeneous — open;
      Fully Heterogeneous — NP-hard): exhaustive search when the instance
      is small enough, otherwise the heuristic portfolio. *)

open Relpipe_model

type method_ =
  | Auto  (** the dispatch described above *)
  | Exact_enum  (** {!Exact.solve} regardless of size (may raise) *)
  | Polynomial  (** Algorithms 1-4; raises when not applicable *)
  | Heuristic of Heuristics.name
  | Portfolio  (** {!Heuristics.best_of} *)

val solve :
  ?method_:method_ ->
  ?exact_budget:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option
(** Solve; [None] means no feasible mapping was found (a definitive answer
    for the optimal methods, best effort for heuristics).  [exact_budget]
    bounds the mapping enumeration Auto may attempt (default [200_000]). *)

val describe : Instance.t -> string
(** Human-readable platform classification and the method Auto would
    pick. *)
