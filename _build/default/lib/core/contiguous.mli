(** Speed-contiguous solver for the open case (Communication Homogeneous +
    Failure Heterogeneous, paper Section 4.4).

    The paper conjectures this bi-criteria problem NP-hard; its known
    optimal solutions (Algorithm 3's prefixes, the Fig. 5 optimum) share a
    structural trait: each interval's replication set is {e contiguous in
    the speed ordering} of the processors.  This solver is exact within
    that restriction: it enumerates interval partitions together with
    assignments of disjoint speed-contiguous segments to intervals, in
    time polynomial in [m] for a bounded number of intervals
    (O(2^(n-1) * m^(2p) * p!) overall).

    It is a {e structured heuristic} for the unrestricted problem: the
    E22 experiment measures how often the speed-contiguity hypothesis is
    lossless against full enumeration (empirically: almost always, and it
    recovers the Fig. 5 optimum). *)

open Relpipe_model

val applicable : Instance.t -> bool
(** Links homogeneous (any failure pattern). *)

val solve :
  ?max_intervals:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option
(** Best mapping whose replication sets are speed-contiguous segments.
    [max_intervals] bounds the interval count (default 3 — segments
    multiply fast beyond that).  @raise Invalid_argument when not
    {!applicable}. *)
