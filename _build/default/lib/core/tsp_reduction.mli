(** Executable form of the paper's Theorem 3 reduction.

    From a TSP(-path) instance — complete graph, edge costs, source [s],
    tail [t], bound [K] — the reduction builds a one-to-one
    latency-minimization instance on a Fully Heterogeneous platform:
    [n = |V|] unit-cost stages, [m = n] unit-speed processors,
    [b_in,s = b_t,out = 1], [b_u,v = 1 / c(u,v)], and every other
    Pin/Pout link slower than [1 / (K + n + 3)].  A Hamiltonian path of
    cost at most [K] exists iff a one-to-one mapping of latency at most
    [K' = K + n + 2] exists.

    [equivalent] machine-checks that equivalence with two exact solvers
    (Held–Karp on the TSP side, branch-and-bound on the mapping side) —
    experiment E5. *)

open Relpipe_model

type t = {
  cost : float array array;  (** positive edge costs, [cost.(u).(u)] unused *)
  source : int;
  target : int;
  bound : float;  (** K *)
}

val validate : t -> (unit, string) result
(** Square matrix, [n >= 2], positive finite off-diagonal costs, distinct
    in-range endpoints, positive bound. *)

val to_instance : t -> Instance.t * float
(** The reduced mapping instance and the latency bound [K' = K + n + 2].
    @raise Invalid_argument when {!validate} fails. *)

val tsp_feasible : t -> bool
(** Ground truth on the TSP side: Hamiltonian path from [source] to
    [target] of cost at most [bound] (Held–Karp). *)

val mapping_feasible : t -> bool
(** Ground truth on the mapping side: a one-to-one mapping of the reduced
    instance with latency at most [K'] ({!One_to_one.exact}). *)

val equivalent : t -> bool
(** Both ground truths agree — the correctness statement of Theorem 3. *)

val random : Relpipe_util.Rng.t -> n:int -> max_cost:int -> t
(** Random complete graph on [n >= 2] vertices with integer costs in
    [1..max_cost] and a bound drawn near the optimal path cost, so both
    feasible and infeasible instances occur. *)
