(** Executable form of the paper's Theorem 7 reduction.

    From a 2-PARTITION instance [a_1, ..., a_m] (sum [S]) the reduction
    builds a bi-criteria instance on a Fully Heterogeneous platform: one
    stage with [w = delta_0 = delta_1 = 1], [m] unit-speed processors with
    [fp_j = exp (-a_j)], [b_in,j = 1 / a_j], [b_j,out = 1].  A mapping with
    latency at most [S/2 + 2] {e and} failure probability at most
    [exp (-S/2)] exists iff the multiset can be split into two halves of
    equal sum.

    [equivalent] machine-checks that equivalence (subset-sum DP on one
    side, replication-set enumeration on the other) — experiment E9. *)

open Relpipe_model

val validate : int array -> (unit, string) result
(** Non-empty, all values positive. *)

val to_instance : int array -> Instance.t * float * float
(** [(instance, latency_bound, failure_bound)] with bounds [S/2 + 2] and
    [exp (-S/2)].  @raise Invalid_argument when {!validate} fails. *)

val partition_feasible : int array -> bool
(** Ground truth by pseudo-polynomial subset-sum dynamic programming. *)

val mapping_feasible : int array -> bool
(** Ground truth on the mapping side: some replication set satisfies both
    thresholds (enumerates the [2^m - 1] candidate sets).
    @raise Invalid_argument when [m > Bitset.max_width]. *)

val witness : int array -> int list option
(** A replication set meeting both thresholds, when one exists — by the
    reduction's correctness it is a valid 2-PARTITION half. *)

val equivalent : int array -> bool
(** Theorem 7's equivalence holds on this instance. *)

val random : Relpipe_util.Rng.t -> m:int -> max_value:int -> int array
(** Random multiset with values in [1..max_value]; even sums (the
    potentially feasible case) are not enforced, so both outcomes occur. *)
