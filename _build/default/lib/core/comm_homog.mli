(** Bi-criteria optimization on Communication Homogeneous platforms with
    homogeneous failure probabilities (paper Theorem 6, Algorithms 3 and 4).

    Lemma 1 still applies, so the optimum is a single interval; the
    replication set is grown with the {e fastest} processors (the latency
    term is governed by the slowest enrolled processor).  With
    heterogeneous failures the single-interval property breaks (paper
    Fig. 5) and the complexity is open — use {!Exact} or {!Heuristics}
    there. *)

open Relpipe_model

val applicable : Instance.t -> bool
(** Links homogeneous and failure probabilities homogeneous. *)

val min_failure_for_latency :
  Instance.t -> max_latency:float -> Solution.t option
(** Algorithm 3: replicate on the most processors the threshold allows,
    fastest first.  @raise Invalid_argument when not {!applicable}. *)

val min_latency_for_failure :
  Instance.t -> max_failure:float -> Solution.t option
(** Algorithm 4: enroll the fewest (fastest) processors meeting the
    failure threshold.  @raise Invalid_argument when not {!applicable}. *)

val solve : Instance.t -> Instance.objective -> Solution.t option
(** Dispatch on the objective. *)

val latency_with_fastest : Instance.t -> int -> float
(** Latency of the single-interval mapping on the [k] fastest processors —
    the quantity Algorithm 3 scans (nondecreasing in [k]).
    @raise Invalid_argument if [k] is out of [1..m]. *)
