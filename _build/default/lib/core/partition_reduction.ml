open Relpipe_model
module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp
module Rng = Relpipe_util.Rng

let validate values =
  if Array.length values = 0 then Error "empty instance"
  else if Array.exists (fun a -> a <= 0) values then
    Error "values must be positive"
  else Ok ()

let check values =
  match validate values with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Partition_reduction: " ^ msg)

let sum values = Array.fold_left ( + ) 0 values

let to_instance values =
  check values;
  let m = Array.length values in
  let s = float_of_int (sum values) in
  let pipeline = Pipeline.of_costs ~input:1.0 [ (1.0, 1.0) ] in
  let bandwidth a b =
    match a, b with
    | Platform.Pin, Platform.Proc j | Platform.Proc j, Platform.Pin ->
        1.0 /. float_of_int values.(j)
    | Platform.Proc _, Platform.Pout | Platform.Pout, Platform.Proc _ -> 1.0
    | Platform.Proc _, Platform.Proc _ -> 1.0
    | Platform.Pin, Platform.Pout | Platform.Pout, Platform.Pin -> 1.0
    | Platform.Pin, Platform.Pin | Platform.Pout, Platform.Pout ->
        invalid_arg "self link"
  in
  let platform =
    Platform.make ~speeds:(Array.make m 1.0)
      ~failures:(Array.map (fun a -> Float.exp (-.float_of_int a)) values)
      ~bandwidth
  in
  (Instance.make pipeline platform, (s /. 2.0) +. 2.0, Float.exp (-.s /. 2.0))

let partition_feasible values =
  check values;
  let s = sum values in
  if s mod 2 <> 0 then false
  else begin
    let half = s / 2 in
    let reachable = Array.make (half + 1) false in
    reachable.(0) <- true;
    Array.iter
      (fun a ->
        for t = half downto a do
          if reachable.(t - a) then reachable.(t) <- true
        done)
      values;
    reachable.(half)
  end

let witness values =
  let instance, latency_bound, failure_bound = to_instance values in
  let m = Array.length values in
  if m > B.max_width then invalid_arg "Partition_reduction: instance too large";
  let found = ref None in
  Seq.iter
    (fun subset ->
      if !found = None then begin
        let procs = B.elements subset in
        let mapping = Mapping.single_interval ~n:1 ~m procs in
        let e = Instance.evaluate instance mapping in
        if
          F.leq e.Instance.latency latency_bound
          (* Relative-only tolerance: the failure threshold exp (-S/2) is
             tiny, so an absolute slack would accept wrong subsets. *)
          && F.leq_rel e.Instance.failure failure_bound
        then found := Some procs
      end)
    (B.nonempty_subsets (B.full m));
  !found

let mapping_feasible values = witness values <> None

let equivalent values = partition_feasible values = mapping_feasible values

let random rng ~m ~max_value =
  if m <= 0 then invalid_arg "Partition_reduction.random: m must be positive";
  if max_value < 1 then
    invalid_arg "Partition_reduction.random: max_value must be >= 1";
  Array.init m (fun _ -> 1 + Rng.int rng max_value)
