(** One-to-one latency minimization on Fully Heterogeneous platforms
    (paper Theorem 3).

    Each of the [n] stages goes to a distinct processor ([n <= m], no
    replication).  The paper proves this NP-hard by reduction from TSP, so
    we provide an exact branch-and-bound for the small instances used to
    validate the reduction, plus a greedy construction and a local search
    for larger instances. *)

open Relpipe_model

val cost : Instance.t -> int array -> float
(** Latency of the one-to-one assignment [procs] (stage [k] on
    [procs.(k-1)]); the entries must be distinct.  Equals
    {!Relpipe_model.Latency.of_assignment} for injective assignments.
    @raise Invalid_argument on arity mismatch. *)

val exact : Instance.t -> (float * Mapping.t) option
(** Optimal one-to-one mapping by branch-and-bound over injective
    assignments.  [None] when [n > m].  Worst-case exponential: intended
    for [n <= 10] or so. *)

val greedy : Instance.t -> (float * Mapping.t) option
(** Stage-by-stage greedy: each stage takes the unused processor that
    minimizes the incremental (communication + computation) cost. *)

val local_search :
  ?seed:int -> ?restarts:int -> Instance.t -> (float * Mapping.t) option
(** Greedy start plus hill climbing over two moves — swapping the
    processors of two stages, and retargeting one stage to an unused
    processor — with random restarts (default 8). *)

val exact_bicriteria : Instance.t -> Instance.objective -> Solution.t option
(** Optimal one-to-one mapping for a bi-criteria objective.  Without
    replication the failure probability is
    [1 - prod_k (1 - fp_(u_k))] over the enrolled processors, so both
    latency and FP grow monotonically along the branch-and-bound's
    partial assignments — both are used as pruning bounds.  [None] when
    [n > m] or no assignment meets the threshold. *)
