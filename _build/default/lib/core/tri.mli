(** Tri-criteria optimization: reliability under latency {e and} throughput
    constraints.

    The paper's conclusion announces "the study of the interplay between
    throughput, latency and reliability" as future work.  With the period
    model of {!Relpipe_model.Period} the natural formulation is: minimize
    the failure probability subject to a latency threshold (response time
    per data set) and a period threshold (sustained input rate).

    Replication now pulls in three directions: it improves reliability,
    degrades latency (serialized input sends), and degrades the period
    (both the serialized sends and the extra per-replica work).  The
    module provides the exhaustive optimum for small instances and a
    greedy constructive heuristic, mirroring the bi-criteria tooling. *)

open Relpipe_model

type evaluation = { latency : float; period : float; failure : float }

type constraints = { max_latency : float; max_period : float }

type solution = { mapping : Mapping.t; evaluation : evaluation }

val evaluate : Instance.t -> Mapping.t -> evaluation
(** All three metrics of a mapping. *)

val feasible : ?eps:float -> constraints -> evaluation -> bool

val exact_min_failure :
  ?budget:int -> Instance.t -> constraints -> solution option
(** Exhaustive optimum (same enumeration and budget semantics as
    {!Exact.solve}).  @raise Exact.Too_large when over budget. *)

val greedy_min_failure : Instance.t -> constraints -> solution option
(** Constructive heuristic: balanced interval splits seeded with the
    fastest processors, then replica additions that reduce FP while both
    thresholds hold (the tri-criteria analogue of
    {!Heuristics.split_replicate}). *)

val pp_evaluation : Format.formatter -> evaluation -> unit
