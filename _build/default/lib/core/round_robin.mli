(** Round-robin replication (the paper's Section 5 "second type of
    replication").

    The paper distinguishes replicating a computation for {e reliability}
    (all replicas process every data set — the scheme of the main text)
    from replicating for {e throughput} (different data sets go to
    different processors round-robin).  This module combines both: each
    interval is served by [q_j] disjoint {e groups}; data set [d] is
    processed by group [d mod q_j], and every processor of that group
    replicates the computation for reliability.

    Consequences, relative to a plain reliability mapping:
    - the steady-state period improves (each group handles a [1/q_j]
      share of the stream);
    - the failure probability worsens (every group must keep a survivor,
      since each group owns part of the stream);
    - the single-data-set latency is essentially unchanged (a data set
      traverses one group per interval; we report the worst combination).

    With [q_j = 1] everywhere the three metrics coincide with
    {!Relpipe_model.Latency.eq2}, {!Relpipe_model.Period.of_mapping} and
    {!Relpipe_model.Failure.of_mapping} (property-tested). *)

open Relpipe_model

type t
(** A validated round-robin mapping. *)

type interval_spec = {
  first : int;
  last : int;
  groups : int list list;  (** [q_j >= 1] disjoint non-empty groups *)
}

val make : n:int -> m:int -> interval_spec list -> t
(** Validation mirrors {!Relpipe_model.Mapping.make}: contiguous cover of
    [1..n], globally disjoint processor sets, non-empty groups.
    @raise Invalid_argument otherwise. *)

val of_mapping : Mapping.t -> t
(** Every interval gets a single group ([q_j = 1]). *)

val partition_groups : Mapping.t -> q:int -> t option
(** Split each interval's replica set into [q] balanced groups (round-robin
    by descending speed) — same resources, throughput traded against
    reliability.  [None] if some interval has fewer than [q] replicas. *)

val intervals : t -> interval_spec list

val mapping_for_dataset : m:int -> t -> dataset:int -> Mapping.t
(** The plain reliability mapping data set [d] actually experiences:
    interval [j] keeps only its group [d mod q_j].  Used to validate the
    round-robin latency bound in the simulator: the worst case of every
    per-data-set mapping is bounded by {!latency} (property-tested).
    @raise Invalid_argument if [dataset < 0]. *)

val cycle_length : t -> int
(** Least common multiple of the group counts: after this many data sets
    the group pattern repeats, so checking [0 .. cycle_length - 1] covers
    every reachable combination. *)

val latency : Instance.t -> t -> float
(** Worst-case latency over group combinations (Eq. 2 conventions). *)

val period : Instance.t -> t -> float
(** Worst per-resource steady-state cycle, with each interval-[j] resource
    amortized over its [q_j]-fraction of the stream. *)

val failure : Instance.t -> t -> float
(** [1 - prod_j prod_g (1 - prod_{u in g} fp_u)]. *)

val pp : Format.formatter -> t -> unit
