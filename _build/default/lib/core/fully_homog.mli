(** Bi-criteria optimization on Fully Homogeneous platforms
    (paper Theorem 5, Algorithms 1 and 2).

    By Lemma 1 the optimum maps the whole pipeline as a single interval, so
    both problems reduce to choosing the replication set: Algorithm 1 packs
    as many (most reliable) processors as the latency threshold allows;
    Algorithm 2 enrolls the fewest (most reliable) processors meeting the
    failure threshold.  Per the paper's remark, both remain optimal with
    heterogeneous failure probabilities as long as speeds and links are
    homogeneous. *)

open Relpipe_model

val applicable : Instance.t -> bool
(** Speeds and links homogeneous (failure probabilities may differ). *)

val min_failure_for_latency :
  Instance.t -> max_latency:float -> Solution.t option
(** Algorithm 1: minimize FP subject to a latency threshold.  [None] when
    even a single processor exceeds the threshold.
    @raise Invalid_argument when not {!applicable}. *)

val min_latency_for_failure :
  Instance.t -> max_failure:float -> Solution.t option
(** Algorithm 2: minimize latency subject to a failure threshold.  [None]
    when even replicating on all processors cannot reach the threshold.
    @raise Invalid_argument when not {!applicable}. *)

val solve : Instance.t -> Instance.objective -> Solution.t option
(** Dispatch on the objective. *)

val max_replicas_for_latency : Instance.t -> max_latency:float -> int
(** The bound k of Algorithm 1 (before clamping to [m]); [0] when
    infeasible, [max_int] when the input data size is zero (replication
    costs nothing). *)
