(** Latency/reliability trade-off curves.

    The paper motivates bi-criteria optimization because neither criterion
    alone is meaningful; the practical artefact is the Pareto front.  This
    module sweeps one threshold and solves the constrained problem at each
    point, yielding the staircase of non-dominated (latency, FP) pairs —
    experiment E13. *)

open Relpipe_model

type point = {
  threshold : float;  (** the latency threshold used for this solve *)
  solution : Solution.t;
}

val latency_thresholds : Instance.t -> count:int -> float list
(** [count >= 2] geometrically spaced latency thresholds spanning the
    single-fastest-processor latency (the natural lower end) up to the
    everything-replicated-everywhere latency (the reliability-maximal upper
    end). *)

val front :
  solve:(Instance.objective -> Solution.t option) ->
  thresholds:float list ->
  point list
(** Solve [Min_failure] at each latency threshold and keep the
    non-dominated results, sorted by increasing latency. *)

val front_with :
  (Instance.t -> Instance.objective -> Solution.t option) ->
  Instance.t ->
  count:int ->
  point list
(** Convenience: thresholds from {!latency_thresholds}, solver partially
    applied. *)

val failure_thresholds : Instance.t -> count:int -> float list
(** Geometrically spaced FP thresholds spanning the best achievable
    failure probability (everything replicated everywhere) up to the worst
    single-processor one — the sweep axis for the dual direction. *)

val front_by_failure :
  solve:(Instance.objective -> Solution.t option) ->
  thresholds:float list ->
  point list
(** Dual sweep: solve [Min_latency] at each failure threshold and keep the
    non-dominated results, sorted by increasing latency.  [threshold] in
    each point is the FP threshold used. *)

val is_non_dominated : point list -> bool
(** Sanity predicate used by tests: latencies strictly increase and failure
    probabilities strictly decrease along the front. *)

val knee : point list -> point option
(** The front's knee: the point minimizing the normalized Euclidean
    distance to the ideal corner (minimal latency, minimal FP over the
    front) — the usual "best compromise" pick when the user has no firm
    threshold.  [None] on an empty front; with a single point, that
    point. *)
