open Relpipe_model
module F = Relpipe_util.Float_cmp

let applicable instance =
  let platform = instance.Instance.platform in
  Classify.links_homogeneous platform
  && Classify.failure_class platform = Classify.Failure_homogeneous

let check instance =
  if not (applicable instance) then
    invalid_arg
      "Comm_homog: platform must have homogeneous links and failure \
       probabilities"

let take k xs =
  let rec go k = function
    | _ when k = 0 -> []
    | [] -> []
    | x :: tl -> x :: go (k - 1) tl
  in
  go k xs

let single_interval_solution instance procs =
  let { Instance.pipeline; platform } = instance in
  Solution.of_mapping instance
    (Mapping.single_interval
       ~n:(Pipeline.length pipeline)
       ~m:(Platform.size platform) procs)

let latency_with_fastest instance k =
  let { Instance.pipeline; platform } = instance in
  let m = Platform.size platform in
  if k < 1 || k > m then invalid_arg "Comm_homog.latency_with_fastest: bad k";
  let b = Option.get (Classify.common_bandwidth platform) in
  let fastest = take k (Mono.fastest_procs platform) in
  let slowest_speed =
    List.fold_left
      (fun acc u -> Float.min acc (Platform.speed platform u))
      Float.infinity fastest
  in
  (float_of_int k *. Pipeline.delta pipeline 0 /. b)
  +. (Pipeline.total_work pipeline /. slowest_speed)
  +. (Pipeline.delta pipeline (Pipeline.length pipeline) /. b)

let min_failure_for_latency instance ~max_latency =
  check instance;
  let m = Platform.size instance.Instance.platform in
  (* latency_with_fastest is nondecreasing in k (one more serialized input
     send, and the slowest enrolled speed can only drop), so a linear scan
     finds the largest feasible k. *)
  let rec scan best k =
    if k > m then best
    else if F.leq (latency_with_fastest instance k) max_latency then scan k (k + 1)
    else best
  in
  let k = scan 0 1 in
  if k = 0 then None
  else
    Some
      (single_interval_solution instance
         (take k (Mono.fastest_procs instance.Instance.platform)))

let min_latency_for_failure instance ~max_failure =
  check instance;
  let platform = instance.Instance.platform in
  let m = Platform.size platform in
  let fp = Platform.failure platform 0 in
  (* Smallest k with fp^k <= max_failure; the latency only grows with k. *)
  let rec find k product =
    if k > m then None
    else if F.leq product max_failure then Some k
    else find (k + 1) (product *. fp)
  in
  match find 1 fp with
  | None -> None
  | Some k ->
      Some (single_interval_solution instance (take k (Mono.fastest_procs platform)))

let solve instance = function
  | Instance.Min_latency { max_failure } ->
      min_latency_for_failure instance ~max_failure
  | Instance.Min_failure { max_latency } ->
      min_failure_for_latency instance ~max_latency
