lib/core/validate.mli: Format Instance Relpipe_model Solution
