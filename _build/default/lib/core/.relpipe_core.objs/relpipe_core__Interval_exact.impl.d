lib/core/interval_exact.ml: Array Float General_mapping Instance Mapping Pipeline Platform Relpipe_model
