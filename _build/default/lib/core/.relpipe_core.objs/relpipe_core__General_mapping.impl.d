lib/core/general_mapping.ml: Array Assignment Float Instance List Pipeline Platform Relpipe_graph Relpipe_model
