lib/core/fully_homog.ml: Classify Float Instance List Mapping Mono Option Pipeline Platform Relpipe_model Relpipe_util Solution
