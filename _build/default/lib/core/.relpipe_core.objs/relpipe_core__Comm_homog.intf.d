lib/core/comm_homog.mli: Instance Relpipe_model Solution
