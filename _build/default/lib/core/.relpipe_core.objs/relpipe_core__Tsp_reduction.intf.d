lib/core/tsp_reduction.mli: Instance Relpipe_model Relpipe_util
