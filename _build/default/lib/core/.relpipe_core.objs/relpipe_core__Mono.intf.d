lib/core/mono.mli: Instance Platform Relpipe_model Solution
