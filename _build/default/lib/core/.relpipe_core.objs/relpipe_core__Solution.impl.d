lib/core/solution.ml: Format Instance List Mapping Relpipe_model
