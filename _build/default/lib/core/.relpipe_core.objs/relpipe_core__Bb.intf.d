lib/core/bb.mli: Instance Relpipe_model Solution
