lib/core/pareto.mli: Instance Relpipe_model Solution
