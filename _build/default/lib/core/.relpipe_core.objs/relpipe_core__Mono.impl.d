lib/core/mono.ml: Classify Instance List Mapping Pipeline Platform Relpipe_model Solution
