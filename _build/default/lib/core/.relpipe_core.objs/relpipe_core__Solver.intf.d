lib/core/solver.mli: Heuristics Instance Relpipe_model Solution
