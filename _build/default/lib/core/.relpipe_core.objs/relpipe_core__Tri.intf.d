lib/core/tri.mli: Format Instance Mapping Relpipe_model
