lib/core/fully_homog.mli: Instance Relpipe_model Solution
