lib/core/contiguous.mli: Instance Relpipe_model Solution
