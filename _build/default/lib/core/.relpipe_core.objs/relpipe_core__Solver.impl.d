lib/core/solver.ml: Classify Comm_homog Contiguous Exact Format Fully_homog Heuristics Instance Pipeline Platform Relpipe_model Solution
