lib/core/bb.ml: Array Failure Float Instance List Mapping Pipeline Platform Relpipe_model Relpipe_util Seq Solution
