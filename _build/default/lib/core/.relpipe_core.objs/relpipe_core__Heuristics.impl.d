lib/core/heuristics.ml: Array Float Fun Instance Latency List Mapping Mono Pipeline Platform Relpipe_model Relpipe_util Solution
