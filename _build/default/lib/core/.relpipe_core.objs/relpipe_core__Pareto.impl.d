lib/core/pareto.ml: Failure Float Instance Latency List Mapping Pipeline Platform Relpipe_model Relpipe_util Solution
