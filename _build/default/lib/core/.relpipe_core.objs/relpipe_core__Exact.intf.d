lib/core/exact.mli: Instance Mapping Relpipe_model Solution
