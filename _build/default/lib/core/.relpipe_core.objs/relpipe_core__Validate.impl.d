lib/core/validate.ml: Bb Comm_homog Format Fully_homog Instance List Mapping Pipeline Platform Relpipe_model Relpipe_util Solution
