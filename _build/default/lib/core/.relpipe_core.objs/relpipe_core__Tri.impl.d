lib/core/tri.ml: Array Exact Failure Float Format Fun Instance Latency List Mapping Mono Period Pipeline Platform Relpipe_model Relpipe_util
