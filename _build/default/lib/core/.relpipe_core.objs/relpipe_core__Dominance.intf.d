lib/core/dominance.mli: Instance Mapping Platform Relpipe_model
