lib/core/solution.mli: Format Instance Mapping Relpipe_model
