lib/core/partition_reduction.mli: Instance Relpipe_model Relpipe_util
