lib/core/interval_exact.mli: Instance Mapping Relpipe_model
