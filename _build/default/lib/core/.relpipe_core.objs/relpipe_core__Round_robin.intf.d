lib/core/round_robin.mli: Format Instance Mapping Relpipe_model
