lib/core/general_mapping.mli: Assignment Instance Relpipe_graph Relpipe_model
