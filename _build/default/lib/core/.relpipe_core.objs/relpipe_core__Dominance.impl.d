lib/core/dominance.ml: Array Classify Instance List Mapping Pipeline Platform Relpipe_model
