lib/core/one_to_one.mli: Instance Mapping Relpipe_model Solution
