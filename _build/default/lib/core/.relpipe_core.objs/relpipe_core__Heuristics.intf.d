lib/core/heuristics.mli: Instance Relpipe_model Solution
