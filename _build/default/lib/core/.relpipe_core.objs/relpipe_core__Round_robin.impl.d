lib/core/round_robin.ml: Array Failure Float Format Hashtbl Instance List Mapping Pipeline Platform Relpipe_model Relpipe_util
