lib/core/exact.ml: Float Instance Latency List Mapping Option Pipeline Platform Printf Relpipe_model Relpipe_util Seq Solution
