lib/core/one_to_one.ml: Array Assignment Float Fun Instance Latency Mapping Option Pipeline Platform Relpipe_model Relpipe_util Solution
