lib/core/contiguous.ml: Array Classify Instance List Mapping Mono Pipeline Platform Relpipe_model Relpipe_util Seq Solution
