lib/core/tsp_reduction.ml: Array Float Instance List One_to_one Pipeline Platform Relpipe_graph Relpipe_model Relpipe_util
