lib/core/partition_reduction.ml: Array Float Instance Mapping Pipeline Platform Relpipe_model Relpipe_util Seq
