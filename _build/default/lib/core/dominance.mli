(** Processor-dominance reductions on Communication Homogeneous platforms.

    With identical links a processor only enters the metrics through its
    speed (slowest replica of the interval) and failure probability.
    Hence, if [v] is unused and both at least as fast and at least as
    reliable as an enrolled [u], swapping [u -> v] can neither increase
    the latency (Eq. 1's [min] speed cannot drop) nor the failure
    probability (the interval's product cannot grow).  Consequently some
    optimal solution uses only processors that are {e Pareto-undominated}
    under (speed, reliability) — up to multiplicity: a dominated processor
    can still be needed when its dominators are exhausted, so the sound
    reduction keeps, for every processor, the [m] best candidates... in
    fact every processor may be needed (replication wants bodies), and
    what dominance gives is a {e canonical exchange}: solvers may restrict
    attention to exchange-closed solutions.

    The module provides the dominance order, the exchange normalization
    (rewrite a mapping into an at-least-as-good one using the most
    dominant processors available), and the property underpinning it —
    all checked against exhaustive search in the test suite.

    On Fully Heterogeneous platforms the rule is unsound (bandwidths
    differ per processor), so everything here checks {!applicable}. *)

open Relpipe_model

val applicable : Instance.t -> bool
(** Links homogeneous. *)

val dominates : Platform.t -> int -> int -> bool
(** [dominates platform u v]: [u] is at least as fast {e and} at least as
    reliable as [v], and strictly better on one axis (ties broken by
    index to keep the relation antisymmetric). *)

val undominated : Platform.t -> int list
(** Processors not dominated by any other (the (speed, reliability)
    Pareto staircase), sorted by decreasing speed. *)

val normalize : Instance.t -> Mapping.t -> Mapping.t
(** Exchange normalization: greedily swap every enrolled processor for an
    unused dominating one (most dominant first).  The result evaluates at
    least as well on both criteria (property-tested). *)
