open Relpipe_model

let applicable instance = Classify.links_homogeneous instance.Instance.platform

let solve ?(max_intervals = 3) instance objective =
  if not (applicable instance) then
    invalid_arg "Contiguous.solve: links must be homogeneous";
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let order = Array.of_list (Mono.fastest_procs platform) in
  let best = ref None in
  let consider mapping =
    let s = Solution.of_mapping instance mapping in
    if Instance.feasible objective s.Solution.evaluation then
      best := Solution.best objective !best (Some s)
  in
  (* Enumerate p disjoint segments [a, b] of the speed-sorted axis in
     left-to-right order, then all assignments of segments to intervals. *)
  let rec segments start p acc k =
    if p = 0 then k (List.rev acc)
    else
      for a = start to m - p do
        for b = a to m - 1 - (p - 1) do
          segments (b + 1) (p - 1) ((a, b) :: acc) k
        done
      done
  in
  let try_composition intervals =
    let p = List.length intervals in
    if p <= max_intervals && p <= m then
      segments 0 p [] (fun segs ->
          Seq.iter
            (fun perm ->
              let ivs =
                List.map2
                  (fun (first, last) (a, b) ->
                    let procs = List.init (b - a + 1) (fun i -> order.(a + i)) in
                    { Mapping.first; last; procs })
                  intervals perm
              in
              consider (Mapping.make ~n ~m ivs))
            (Relpipe_util.Combin.permutations segs))
  in
  Seq.iter try_composition (Relpipe_util.Combin.compositions n);
  !best
