(** Exhaustive reference solvers.

    These enumerate the full mapping space (interval partitions times
    disjoint replication-set assignments), so they run in exponential time
    and exist to (i) certify the polynomial algorithms and heuristics on
    small instances, (ii) decide the NP-hard instances produced by the
    reductions, and (iii) solve the cases whose complexity the paper leaves
    open (Communication Homogeneous with heterogeneous failures).  Guard
    rails: enumeration size is capped (configurable) and exceeding the cap
    raises. *)

open Relpipe_model

exception Too_large of string
(** Raised when the enumeration would exceed the configured budget. *)

val iter_mappings :
  ?max_intervals:int -> n:int -> m:int -> (Mapping.t -> unit) -> unit
(** Enumerate every interval mapping with replication of an [n]-stage
    pipeline over [m] processors: all interval partitions (at most
    [max_intervals] parts, default [min n m]) combined with all assignments
    of pairwise-disjoint non-empty processor subsets.
    @raise Invalid_argument when [m] exceeds {!Relpipe_util.Bitset.max_width}. *)

val count_mappings : ?max_intervals:int -> n:int -> m:int -> unit -> int
(** Size of the space {!iter_mappings} walks. *)

val solve :
  ?max_intervals:int ->
  ?budget:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option
(** Optimal interval mapping for the objective by full enumeration.
    [budget] caps the number of evaluated mappings (default [5_000_000]).
    @raise Too_large when the budget is exceeded. *)

val solve_single_interval :
  Instance.t -> Instance.objective -> Solution.t option
(** Optimum restricted to single-interval mappings (enumerates the [2^m - 1]
    replication sets) — the restricted space that Lemma 1 proves sufficient
    on Fully Homogeneous and Comm. Homogeneous + Failure Homogeneous
    platforms. *)

val min_latency_unreplicated : Instance.t -> (float * Mapping.t) option
(** Exact minimum-latency {e interval} mapping without replication (each
    interval on one distinct processor) — the problem the paper leaves open
    on Fully Heterogeneous platforms (Section 4.1).  Enumerates interval
    partitions times injective processor choices. *)

val min_latency : Instance.t -> float
(** Minimum latency over all interval mappings with replication (no
    failure constraint). *)
