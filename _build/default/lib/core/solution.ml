open Relpipe_model

type t = { mapping : Mapping.t; evaluation : Instance.evaluation }

let of_mapping instance mapping =
  { mapping; evaluation = Instance.evaluate instance mapping }

let best ?eps objective a b =
  match a, b with
  | None, x | x, None -> x
  | Some sa, Some sb ->
      if Instance.better ?eps objective sb.evaluation sa.evaluation then Some sb
      else Some sa

let pick_feasible ?eps objective candidates =
  List.fold_left
    (fun acc s ->
      if Instance.feasible ?eps objective s.evaluation then best ?eps objective acc (Some s)
      else acc)
    None candidates

let pp ppf s =
  Format.fprintf ppf "@[<v>%a@,%a@]" Mapping.pp s.mapping Instance.pp_evaluation
    s.evaluation
