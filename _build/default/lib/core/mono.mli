(** Mono-criterion optima (paper Theorems 1 and 2).

    - Theorem 1: the failure probability is minimized, on every platform
      class, by replicating the whole pipeline as a single interval on
      {e all} processors.
    - Theorem 2: on Communication Homogeneous (hence also Fully
      Homogeneous) platforms, latency is minimized by mapping the whole
      pipeline as a single interval on the fastest processor — replication
      only adds communications, and with identical links no split can
      help. *)

open Relpipe_model

val min_failure : Instance.t -> Solution.t
(** Theorem 1: whole pipeline on all processors. *)

val min_latency_comm_homog : Instance.t -> Solution.t
(** Theorem 2: whole pipeline on (one of) the fastest processor(s).
    @raise Invalid_argument when the platform's links are not homogeneous —
    on Fully Heterogeneous platforms use {!General_mapping} or
    {!One_to_one} instead. *)

val fastest_proc : Platform.t -> int
(** Index of a fastest processor (smallest index among ties). *)

val most_reliable_procs : Platform.t -> int list
(** All processors sorted by increasing failure probability (ties by
    index). *)

val fastest_procs : Platform.t -> int list
(** All processors sorted by decreasing speed (ties by index). *)
