open Relpipe_model

type method_ =
  | Auto
  | Exact_enum
  | Polynomial
  | Heuristic of Heuristics.name
  | Portfolio

let polynomial instance objective =
  if Fully_homog.applicable instance then Fully_homog.solve instance objective
  else if Comm_homog.applicable instance then Comm_homog.solve instance objective
  else
    invalid_arg
      "Solver: no polynomial-optimal algorithm for this platform class \
       (NP-hard or open per the paper)"

let small_enough ~budget instance =
  let n = Pipeline.length instance.Instance.pipeline in
  let m = Platform.size instance.Instance.platform in
  (* n, m <= 6 keeps the enumeration in the tens of thousands; the exact
     count confirms it is within budget. *)
  n <= 6 && m <= 6 && Exact.count_mappings ~n ~m () <= budget

let auto ~exact_budget instance objective =
  if Fully_homog.applicable instance || Comm_homog.applicable instance then
    polynomial instance objective
  else if small_enough ~budget:exact_budget instance then
    Exact.solve ~budget:exact_budget instance objective
  else begin
    let portfolio = Heuristics.best_of instance objective in
    (* On Communication Homogeneous platforms the speed-contiguous solver
       is cheap and captures the structure of known optima (e.g. Fig. 5);
       fold it into the portfolio. *)
    if Contiguous.applicable instance then
      Solution.best objective portfolio (Contiguous.solve instance objective)
    else portfolio
  end

let solve ?(method_ = Auto) ?(exact_budget = 200_000) instance objective =
  match method_ with
  | Auto -> auto ~exact_budget instance objective
  | Exact_enum -> Exact.solve instance objective
  | Polynomial -> polynomial instance objective
  | Heuristic name -> Heuristics.run name instance objective
  | Portfolio -> Heuristics.best_of instance objective

let describe instance =
  let platform = instance.Instance.platform in
  let comm = Classify.comm_class platform in
  let fail = Classify.failure_class platform in
  let method_name =
    if Fully_homog.applicable instance then "Algorithms 1/2 (polynomial, optimal)"
    else if Comm_homog.applicable instance then
      "Algorithms 3/4 (polynomial, optimal)"
    else if small_enough ~budget:200_000 instance then
      "exhaustive enumeration (instance is small)"
    else "heuristic portfolio (NP-hard/open case)"
  in
  Format.asprintf "%a, %a -> %s" Classify.pp_comm_class comm
    Classify.pp_failure_class fail method_name
