(** Solver results: a mapping together with its evaluation. *)

open Relpipe_model

type t = { mapping : Mapping.t; evaluation : Instance.evaluation }

val of_mapping : Instance.t -> Mapping.t -> t
(** Evaluate and package. *)

val best :
  ?eps:float -> Instance.objective -> t option -> t option -> t option
(** Keep the feasible solution with the better objective value; feasibility
    of the inputs is not re-checked (callers filter first). *)

val pick_feasible :
  ?eps:float -> Instance.objective -> t list -> t option
(** Best feasible solution of a candidate list, or [None]. *)

val pp : Format.formatter -> t -> unit
