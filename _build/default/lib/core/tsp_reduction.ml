open Relpipe_model
module Rng = Relpipe_util.Rng

type t = {
  cost : float array array;
  source : int;
  target : int;
  bound : float;
}

let validate r =
  let n = Array.length r.cost in
  let err s = Error s in
  if n < 2 then err "need at least two vertices"
  else if Array.exists (fun row -> Array.length row <> n) r.cost then
    err "cost matrix is not square"
  else if r.source < 0 || r.source >= n || r.target < 0 || r.target >= n then
    err "endpoint out of range"
  else if r.source = r.target then err "endpoints must differ"
  else if not (Float.is_finite r.bound && r.bound > 0.0) then
    err "bound must be positive and finite"
  else begin
    let bad = ref false in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v && not (Float.is_finite r.cost.(u).(v) && r.cost.(u).(v) > 0.0)
        then bad := true
      done
    done;
    if !bad then err "edge costs must be positive and finite" else Ok ()
  end

let to_instance r =
  (match validate r with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Tsp_reduction.to_instance: " ^ msg));
  let n = Array.length r.cost in
  (* Any bandwidth strictly below 1 / (K + n + 3) makes a link unusable
     within the latency budget. *)
  let slow = 1.0 /. (r.bound +. float_of_int n +. 4.0) in
  let pipeline =
    Pipeline.make ~input:1.0
      (List.init n (fun _ -> { Pipeline.work = 1.0; output = 1.0 }))
  in
  let bandwidth a b =
    match a, b with
    | Platform.Pin, Platform.Proc u | Platform.Proc u, Platform.Pin ->
        if u = r.source then 1.0 else slow
    | Platform.Proc u, Platform.Pout | Platform.Pout, Platform.Proc u ->
        if u = r.target then 1.0 else slow
    | Platform.Proc u, Platform.Proc v -> 1.0 /. r.cost.(u).(v)
    | Platform.Pin, Platform.Pout | Platform.Pout, Platform.Pin -> slow
    | Platform.Pin, Platform.Pin
    | Platform.Pout, Platform.Pout ->
        invalid_arg "self link"
  in
  let platform =
    Platform.make ~speeds:(Array.make n 1.0) ~failures:(Array.make n 0.5)
      ~bandwidth
  in
  (Instance.make pipeline platform, r.bound +. float_of_int n +. 2.0)

let tsp_feasible r =
  (match validate r with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Tsp_reduction.tsp_feasible: " ^ msg));
  Relpipe_graph.Hamiltonian.exists_leq ~cost:r.cost ~s:r.source ~t:r.target
    ~bound:r.bound

let mapping_feasible r =
  let instance, bound = to_instance r in
  match One_to_one.exact instance with
  | None -> false
  | Some (latency, _) -> Relpipe_util.Float_cmp.leq latency bound

let equivalent r = tsp_feasible r = mapping_feasible r

let random rng ~n ~max_cost =
  if n < 2 then invalid_arg "Tsp_reduction.random: n must be >= 2";
  if max_cost < 1 then invalid_arg "Tsp_reduction.random: max_cost must be >= 1";
  let cost = Array.make_matrix n n 0.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let c = float_of_int (1 + Rng.int rng max_cost) in
      cost.(u).(v) <- c;
      cost.(v).(u) <- c
    done
  done;
  let source = 0 and target = n - 1 in
  let opt =
    match Relpipe_graph.Hamiltonian.held_karp ~cost ~s:source ~t:target with
    | Some (c, _) -> c
    | None -> assert false
  in
  (* Half the instances are feasible (bound at or above the optimum), half
     are not (bound just below it). *)
  let bound =
    if Rng.bool rng then opt +. float_of_int (Rng.int rng 3)
    else Float.max 1.0 (opt -. 1.0 +. 0.5)
  in
  { cost; source; target; bound }
