(* Mapping a video transcoder onto a clustered grid — the Fully
   Heterogeneous regime where communication locality drives the mapping.

   Three solvers on the same instance:
   - Theorem 4's polynomial shortest path (general mappings, the paper's
     lower bound);
   - the exact bitmask DP for interval mappings (the problem the paper
     leaves open);
   - the heuristic portfolio for the bi-criteria problem.

   Run with:  dune exec examples/grid_mapping.exe *)

open Relpipe_model
open Relpipe_core

let () =
  let rng = Relpipe_util.Rng.create 20080416 in
  let inst = Relpipe_workload.Scenarios.grid_instance rng in
  Format.printf "%s@.@." (Solver.describe inst);

  (* 1. Latency floor: general mappings (Theorem 4). *)
  let general_latency, assignment = General_mapping.solve inst in
  Format.printf "general-mapping optimum (Thm 4):  latency %g@.  %a@.@."
    general_latency Assignment.pp assignment;

  (* 2. Exact interval mappings (open problem, bitmask DP). *)
  (match Interval_exact.min_latency inst with
  | Some (interval_latency, mapping) ->
      Format.printf
        "interval-mapping optimum (DP):    latency %g  (gap %.4f)@.  %a@.@."
        interval_latency
        (interval_latency /. general_latency)
        Mapping.pp mapping
  | None -> print_endline "no interval mapping?!");

  (* 3. Bi-criteria: the most reliable mapping within 2x the latency
     floor. *)
  let objective = Instance.Min_failure { max_latency = 2.0 *. general_latency } in
  match Solver.solve inst objective with
  | None -> print_endline "no feasible mapping within 2x the latency floor"
  | Some s ->
      Format.printf
        "bi-criteria (FP min, L <= 2x floor): latency %g, FP %g@.  %a@."
        s.Solution.evaluation.Instance.latency
        s.Solution.evaluation.Instance.failure Mapping.pp s.Solution.mapping;
      (* Certify what we can. *)
      let report = Validate.check inst objective s in
      Format.printf "certificate: %a@." Validate.pp report
