(* Exploring the latency/reliability trade-off on a random Fully
   Heterogeneous platform — the NP-hard case (Theorem 7) where the
   heuristic portfolio earns its keep.

   For each latency threshold the portfolio solves min-FP; the resulting
   staircase is the (approximate) Pareto front.  On small instances we also
   run the exhaustive solver to show how close the heuristics get.

   Run with:  dune exec examples/pareto_explore.exe *)

open Relpipe_model
open Relpipe_core
module Table = Relpipe_util.Table
module Rng = Relpipe_util.Rng

let front_table name front =
  let table = Table.create [ "front (" ^ name ^ ")"; "latency"; "failure"; "shape" ] in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.fmt_float p.Pareto.threshold;
          Table.fmt_float p.Pareto.solution.Solution.evaluation.Instance.latency;
          Table.fmt_float p.Pareto.solution.Solution.evaluation.Instance.failure;
          Format.asprintf "%a" Mapping.pp p.Pareto.solution.Solution.mapping;
        ])
    front;
  Table.print table;
  print_newline ()

let () =
  let rng = Rng.create 20080415 in
  (* Small enough for the exhaustive solver, heterogeneous enough to be in
     the NP-hard regime. *)
  let pipeline =
    Relpipe_workload.App_gen.random rng
      { Relpipe_workload.App_gen.n = 4; work = (5.0, 40.0); data = (2.0, 15.0) }
  in
  let platform =
    Relpipe_workload.Plat_gen.random_fully_heterogeneous rng ~m:5
      ~speed:(1.0, 12.0) ~failure:(0.05, 0.5) ~bandwidth:(1.0, 10.0)
  in
  let instance = Instance.make pipeline platform in
  Format.printf "%s@.@." (Solver.describe instance);

  let exact_front =
    Pareto.front_with (fun inst obj -> Exact.solve inst obj) instance ~count:10
  in
  front_table "exhaustive" exact_front;

  let portfolio_front =
    Pareto.front_with
      (fun inst obj -> Heuristics.best_of inst obj)
      instance ~count:10
  in
  front_table "heuristic portfolio" portfolio_front;

  (* How much reliability does the portfolio leave on the table? *)
  let worst_gap =
    List.fold_left
      (fun acc p ->
        let exact_at_threshold =
          List.find_opt
            (fun q -> q.Pareto.threshold >= p.Pareto.threshold -. 1e-9)
            exact_front
        in
        match exact_at_threshold with
        | Some q ->
            Float.max acc
              (p.Pareto.solution.Solution.evaluation.Instance.failure
              -. q.Pareto.solution.Solution.evaluation.Instance.failure)
        | None -> acc)
      0.0 portfolio_front
  in
  Format.printf "worst portfolio-vs-exact FP gap across the sweep: %g@." worst_gap
