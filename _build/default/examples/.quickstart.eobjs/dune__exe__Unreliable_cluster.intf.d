examples/unreliable_cluster.mli:
