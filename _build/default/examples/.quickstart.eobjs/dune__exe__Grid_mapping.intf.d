examples/grid_mapping.mli:
