examples/pareto_explore.mli:
