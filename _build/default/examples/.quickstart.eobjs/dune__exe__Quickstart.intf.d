examples/quickstart.mli:
