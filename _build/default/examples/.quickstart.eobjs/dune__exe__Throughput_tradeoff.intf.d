examples/throughput_tradeoff.mli:
