examples/jpeg_encoder.mli:
