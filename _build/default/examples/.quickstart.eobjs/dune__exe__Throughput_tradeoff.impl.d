examples/throughput_tradeoff.ml: Array Format List Relpipe_core Relpipe_sim Relpipe_util Relpipe_workload Round_robin Tri
