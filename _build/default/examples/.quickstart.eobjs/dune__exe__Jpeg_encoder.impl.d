examples/jpeg_encoder.ml: Array Format Instance List Mapping Pareto Pipeline Relpipe_core Relpipe_model Relpipe_sim Relpipe_util Relpipe_workload Solution Solver
