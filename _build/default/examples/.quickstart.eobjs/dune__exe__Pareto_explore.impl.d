examples/pareto_explore.ml: Exact Float Format Heuristics Instance List Mapping Pareto Relpipe_core Relpipe_model Relpipe_util Relpipe_workload Solution Solver
