examples/quickstart.ml: Format Instance Mapping Pipeline Relpipe_core Relpipe_model Relpipe_workload Solution Solver
