(* Quickstart: build a pipeline and a platform, solve both bi-criteria
   problems, and inspect the results.

   Run with:  dune exec examples/quickstart.exe *)

open Relpipe_model
open Relpipe_core

let () =
  (* A four-stage pipeline: each stage k does w_k operations and ships
     delta_k data units to the next one; delta_0 is the input size. *)
  let pipeline =
    Pipeline.of_costs ~input:50.0
      [ (100.0, 20.0); (40.0, 20.0); (200.0, 10.0); (30.0, 5.0) ]
  in

  (* Six processors with identical links (Communication Homogeneous): four
     fast-but-flaky nodes and two slow-but-steady ones. *)
  let platform =
    Relpipe_workload.Plat_gen.two_tier ~m_slow:2 ~m_fast:4 ~slow_speed:5.0
      ~fast_speed:25.0 ~slow_failure:0.02 ~fast_failure:0.25 ~bandwidth:10.0
  in
  let instance = Instance.make pipeline platform in

  Format.printf "platform classification: %s@.@." (Solver.describe instance);

  (* Problem 1: fastest mapping whose failure probability stays under 5%. *)
  let objective1 = Instance.Min_latency { max_failure = 0.05 } in
  (match Solver.solve instance objective1 with
  | Some s ->
      Format.printf "min latency s.t. FP <= 0.05:@.  %a@.  latency %g, FP %g@.@."
        Mapping.pp s.Solution.mapping s.Solution.evaluation.Instance.latency
        s.Solution.evaluation.Instance.failure
  | None -> Format.printf "no mapping achieves FP <= 0.05@.@.");

  (* Problem 2: most reliable mapping that answers within 60 time units. *)
  let objective2 = Instance.Min_failure { max_latency = 60.0 } in
  match Solver.solve instance objective2 with
  | Some s ->
      Format.printf "min FP s.t. latency <= 60:@.  %a@.  latency %g, FP %g@."
        Mapping.pp s.Solution.mapping s.Solution.evaluation.Instance.latency
        s.Solution.evaluation.Instance.failure
  | None -> Format.printf "no mapping answers within 60 time units@."
