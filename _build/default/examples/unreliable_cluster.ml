(* The paper's Fig. 5 story, replayed as an application scenario: a
   workflow with a light pre-processing stage and a heavy compute stage on
   a cluster mixing one slow-but-reliable node with ten fast-but-flaky
   ones.

   The example shows why the single-interval intuition (Lemma 1) breaks
   with heterogeneous failures: splitting the pipeline and replicating the
   heavy stage on all the flaky nodes is both fast *and* reliable.

   Run with:  dune exec examples/unreliable_cluster.exe *)

open Relpipe_model
open Relpipe_core

let describe name instance mapping =
  let e = Instance.evaluate instance mapping in
  Format.printf "%-40s latency %-8g FP %g@." name e.Instance.latency
    e.Instance.failure;
  e

let () =
  let instance = Relpipe_workload.Scenarios.fig5 () in
  let threshold = Relpipe_workload.Scenarios.fig5_threshold in
  Format.printf "latency threshold: %g@.@." threshold;

  (* Candidate 1: the Lemma-1 shape — one interval, replicated on the two
     fast processors (more fast replicas would blow the latency bound). *)
  let single = Relpipe_workload.Scenarios.fig5_single_two_fast () in
  let e_single = describe "single interval, 2 fast replicas" instance single in

  (* Candidate 2: the paper's split — slow stage on the reliable node, the
     heavy stage replicated on every fast node. *)
  let split = Relpipe_workload.Scenarios.fig5_split () in
  let e_split = describe "split + replicate heavy stage" instance split in

  (* The solver should find the split on its own. *)
  (match Solver.solve instance (Instance.Min_failure { max_latency = threshold }) with
  | Some s ->
      let _ = describe "solver (auto)" instance s.Solution.mapping in
      ()
  | None -> print_endline "solver found nothing?!");

  (* Monte-Carlo: watch the reliability gap materialize. *)
  let rng = Relpipe_util.Rng.create 7 in
  let rate mapping =
    (Relpipe_sim.Montecarlo.estimate rng instance mapping ~trials:50_000
       ~policy:Relpipe_sim.Trial.Optimistic)
      .Relpipe_sim.Montecarlo.success_rate
  in
  Format.printf "@.Monte-Carlo over 50k runs:@.";
  Format.printf "  single interval: %.2f%% of data sets survive (analytic %.2f%%)@."
    (100.0 *. rate single)
    (100.0 *. (1.0 -. e_single.Instance.failure));
  Format.printf "  split mapping:   %.2f%% of data sets survive (analytic %.2f%%)@."
    (100.0 *. rate split)
    (100.0 *. (1.0 -. e_split.Instance.failure))
