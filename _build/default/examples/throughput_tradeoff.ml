(* The paper's future work (Section 5), made concrete: the three-way
   interplay between throughput, latency and reliability.

   On the Fig. 5 platform we (1) sweep the period bound under the paper's
   latency threshold and watch reliability collapse, (2) trade reliability
   back for throughput with round-robin replication on fixed resources,
   and (3) confirm the analytic period in the steady-state simulator.

   Run with:  dune exec examples/throughput_tradeoff.exe *)

open Relpipe_core
module Table = Relpipe_util.Table

let () =
  let inst = Relpipe_workload.Scenarios.fig5 () in

  (* 1. Tri-criteria: minimize FP under latency <= 22 and a period bound. *)
  print_endline "tri-criteria on fig5 (latency <= 22):";
  let t = Table.create [ "period bound"; "latency"; "period"; "failure" ] in
  List.iter
    (fun max_period ->
      match Tri.exact_min_failure inst { Tri.max_latency = 22.0; max_period } with
      | None -> Table.add_row t [ Table.fmt_float max_period; "-"; "-"; "infeasible" ]
      | Some s ->
          Table.add_row t
            [
              Table.fmt_float max_period;
              Table.fmt_float s.Tri.evaluation.Tri.latency;
              Table.fmt_float s.Tri.evaluation.Tri.period;
              Table.fmt_float s.Tri.evaluation.Tri.failure;
            ])
    [ 1000.0; 21.0; 15.0; 12.0; 11.0 ];
  Table.print t;

  (* 2. Round-robin on fixed resources: eight fast processors serving the
     heavy stage, split into q groups. *)
  print_endline "\nround-robin split of 8 replicas of the heavy stage:";
  let heavy_procs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let split_heavy q =
    (* Stage 1 keeps its single reliable processor; the heavy stage's eight
       replicas are dealt round-robin into q groups. *)
    let buckets = Array.make q [] in
    List.iteri (fun i u -> buckets.(i mod q) <- u :: buckets.(i mod q)) heavy_procs;
    Round_robin.make ~n:2 ~m:11
      [
        { Round_robin.first = 1; last = 1; groups = [ [ 0 ] ] };
        { Round_robin.first = 2; last = 2; groups = Array.to_list buckets };
      ]
  in
  let t = Table.create [ "q"; "latency"; "period"; "failure" ] in
  List.iter
    (fun q ->
      let rr = split_heavy q in
      Table.add_row t
        [
          string_of_int q;
          Table.fmt_float (Round_robin.latency inst rr);
          Table.fmt_float (Round_robin.period inst rr);
          Table.fmt_float (Round_robin.failure inst rr);
        ])
    [ 1; 2; 4; 8 ];
  Table.print t;

  (* 3. Steady state: drive 200 data sets through the paper's split
     mapping and compare against the analytic period. *)
  let r =
    Relpipe_sim.Steady.run inst
      (Relpipe_workload.Scenarios.fig5_split ())
      ~datasets:200
  in
  Format.printf
    "@.steady state, 200 data sets through the fig5 split mapping:@.\
     \  analytic period %g, measured %g; makespan %g (bound %g)@."
    r.Relpipe_sim.Steady.analytic_period r.Relpipe_sim.Steady.estimated_period
    r.Relpipe_sim.Steady.makespan
    (r.Relpipe_sim.Steady.analytic_latency
    +. (199.0 *. r.Relpipe_sim.Steady.analytic_period))
