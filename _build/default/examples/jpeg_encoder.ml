(* The paper's motivating application: a JPEG encoder pipeline in
   steady-state mode (Section 1 cites JPEG encoding as the canonical
   pipeline workflow).

   We map the seven encoder stages onto a two-tier cluster, sweep the
   latency threshold to expose the latency/reliability trade-off, and
   validate the chosen operating point in the discrete-event simulator.

   Run with:  dune exec examples/jpeg_encoder.exe *)

open Relpipe_model
open Relpipe_core
module Table = Relpipe_util.Table

let () =
  let instance = Relpipe_workload.Jpeg.default_instance ~m:8 in
  let pipeline = instance.Instance.pipeline in

  Format.printf "JPEG encoder pipeline (%d stages):@." (Pipeline.length pipeline);
  Array.iteri
    (fun i name ->
      Format.printf "  %-15s w=%-8g out=%g@." name
        (Pipeline.work pipeline (i + 1))
        (Pipeline.delta pipeline (i + 1)))
    Relpipe_workload.Jpeg.stage_names;
  Format.printf "platform: %s@.@." (Solver.describe instance);

  (* Sweep the latency threshold. *)
  let front =
    Pareto.front_with
      (fun inst objective -> Solver.solve inst objective)
      instance ~count:8
  in
  let table =
    Table.create [ "latency bound"; "latency"; "failure"; "intervals"; "replicas" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.fmt_float p.Pareto.threshold;
          Table.fmt_float p.Pareto.solution.Solution.evaluation.Instance.latency;
          Table.fmt_float p.Pareto.solution.Solution.evaluation.Instance.failure;
          string_of_int (Mapping.num_intervals p.Pareto.solution.Solution.mapping);
          string_of_int
            (List.length (Mapping.used_procs p.Pareto.solution.Solution.mapping));
        ])
    front;
  print_endline "latency/reliability trade-off:";
  Table.print table;

  (* The "best compromise" when no threshold is given. *)
  (match Pareto.knee front with
  | Some k ->
      Format.printf "knee of the front: latency %g, FP %g@."
        k.Pareto.solution.Solution.evaluation.Instance.latency
        k.Pareto.solution.Solution.evaluation.Instance.failure
  | None -> ());

  (* Pick the most reliable point and validate it by simulation. *)
  match List.rev front with
  | [] -> print_endline "no feasible mapping found"
  | best :: _ ->
      let mapping = best.Pareto.solution.Solution.mapping in
      Format.printf "@.simulating the most reliable point (%a):@." Mapping.pp
        mapping;
      let rng = Relpipe_util.Rng.create 2024 in
      let r =
        Relpipe_sim.Montecarlo.estimate rng instance mapping ~trials:20_000
          ~policy:Relpipe_sim.Trial.Optimistic
      in
      Format.printf "%a@." Relpipe_sim.Montecarlo.pp_result r
