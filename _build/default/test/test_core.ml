open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

let evaluation (s : Solution.t) = s.Solution.evaluation
let latency_of s = (evaluation s).Instance.latency
let failure_of s = (evaluation s).Instance.failure

(* ------------------------------------------------------------------ *)
(* Theorem 1: min FP = replicate everything everywhere                 *)
(* ------------------------------------------------------------------ *)

let thm1_beats_exhaustive =
  Helpers.seed_property ~count:40 "min_failure is optimal vs exhaustive"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let claimed = failure_of (Mono.min_failure inst) in
      let best = ref Float.infinity in
      Exact.iter_mappings ~n ~m (fun mapping ->
          let fp = Failure.of_mapping inst.Instance.platform mapping in
          if fp < !best then best := fp);
      F.leq ~eps:1e-9 claimed !best)

let thm1_shape () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let s = Mono.min_failure inst in
  Alcotest.(check int) "single interval" 1 (Mapping.num_intervals s.Solution.mapping);
  Alcotest.(check int) "all procs" 11
    (List.length (Mapping.used_procs s.Solution.mapping))

(* ------------------------------------------------------------------ *)
(* Theorem 2: min latency on Comm. Homogeneous                         *)
(* ------------------------------------------------------------------ *)

let thm2_beats_exhaustive =
  Helpers.seed_property ~count:40 "comm-homog min latency is optimal"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let claimed = latency_of (Mono.min_latency_comm_homog inst) in
      let best = Exact.min_latency inst in
      F.approx_eq ~eps:1e-9 claimed best)

let thm2_uses_fastest () =
  let rng = Rng.create 5 in
  let inst = Helpers.random_comm_homog rng ~n:4 ~m:5 in
  let s = Mono.min_latency_comm_homog inst in
  let u = List.hd (Mapping.used_procs s.Solution.mapping) in
  let smax =
    List.fold_left
      (fun acc v -> Float.max acc (Platform.speed inst.Instance.platform v))
      0.0
      (Platform.procs inst.Instance.platform)
  in
  Helpers.check_close "fastest" smax (Platform.speed inst.Instance.platform u)

let thm2_rejects_hetero () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mono.min_latency_comm_homog inst);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Theorem 4: general mappings via shortest path                       *)
(* ------------------------------------------------------------------ *)

let fig6_graph_shape () =
  let rng = Rng.create 9 in
  let inst = Helpers.random_fully_hetero rng ~n:3 ~m:4 in
  let g, src, dst = General_mapping.graph inst in
  let n = 3 and m = 4 in
  Alcotest.(check int) "vertices" ((n * m) + 2) (Relpipe_graph.Graph.n_vertices g);
  Alcotest.(check int) "edges" (((n - 1) * m * m) + (2 * m))
    (Relpipe_graph.Graph.n_edges g);
  Alcotest.(check int) "source" 0 src;
  Alcotest.(check int) "sink" ((n * m) + 1) dst

let all_algos_agree =
  Helpers.seed_property ~count:60 "Dijkstra = Bellman-Ford = DAG = DP"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let l1, a1 = General_mapping.solve ~algo:General_mapping.Dijkstra inst in
      let l2, _ = General_mapping.solve ~algo:General_mapping.Bellman_ford inst in
      let l3, _ = General_mapping.solve ~algo:General_mapping.Dag_sweep inst in
      let l4, a4 = General_mapping.solve_dp inst in
      F.approx_eq l1 l2 && F.approx_eq l2 l3 && F.approx_eq l3 l4
      && F.approx_eq l1
           (Latency.of_assignment inst.Instance.pipeline inst.Instance.platform a1)
      && F.approx_eq l4
           (Latency.of_assignment inst.Instance.pipeline inst.Instance.platform a4))

let general_beats_interval =
  Helpers.seed_property ~count:40
    "general mapping <= best unreplicated interval mapping" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let general = General_mapping.optimal_latency inst in
      match Exact.min_latency_unreplicated inst with
      | Some (interval_best, _) -> F.leq ~eps:1e-9 general interval_best
      | None -> false)

let general_beats_exhaustive_replicated =
  Helpers.seed_property ~count:25
    "general mapping <= any replicated interval mapping" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let general = General_mapping.optimal_latency inst in
      (* Replication can only hurt latency (paper Section 4.1), so the
         general-mapping optimum lower-bounds the whole mapping space. *)
      F.leq ~eps:1e-9 general (Exact.min_latency inst))

let fig34_general_optimum () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let latency, assignment = General_mapping.solve inst in
  Helpers.check_close "fig34 optimum is the split" 7.0 latency;
  Alcotest.(check int) "stage1 on P0" 0 (Assignment.proc assignment 1);
  Alcotest.(check int) "stage2 on P1" 1 (Assignment.proc assignment 2)

(* ------------------------------------------------------------------ *)
(* Theorem 3 context: one-to-one mappings                              *)
(* ------------------------------------------------------------------ *)

let one_to_one_exact_vs_bruteforce =
  Helpers.seed_property ~count:40 "branch-and-bound = brute force" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) in
      let m = n + (seed mod 2) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let brute =
        Seq.fold_left
          (fun acc procs ->
            let c = One_to_one.cost inst (Array.of_list procs) in
            Float.min acc c)
          Float.infinity
          (Relpipe_util.Combin.injections n
             (Platform.procs inst.Instance.platform))
      in
      match One_to_one.exact inst with
      | Some (c, _) -> F.approx_eq ~eps:1e-9 c brute
      | None -> false)

let one_to_one_heuristics_bounded =
  Helpers.seed_property ~count:30 "greedy and local search >= exact"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + (seed mod 3) in
      let m = n + 1 + (seed mod 2) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      match One_to_one.exact inst with
      | None -> false
      | Some (opt, _) ->
          let check = function
            | Some (c, mapping) ->
                F.geq ~eps:1e-9 c opt
                && F.approx_eq ~eps:1e-9 c
                     (Latency.of_mapping inst.Instance.pipeline
                        inst.Instance.platform mapping)
            | None -> false
          in
          check (One_to_one.greedy inst) && check (One_to_one.local_search inst))

let one_to_one_bicriteria_vs_bruteforce =
  Helpers.seed_property ~count:40 "bi-criteria one-to-one = brute force"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) in
      let m = n + (seed mod 2) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_failure = Rng.float_range rng 0.1 0.9 in
      let objective = Instance.Min_latency { max_failure } in
      let brute =
        Seq.fold_left
          (fun acc procs ->
            let arr = Array.of_list procs in
            let latency = One_to_one.cost inst arr in
            let fp =
              -.Float.expm1
                  (List.fold_left
                     (fun s u ->
                       s +. Float.log1p (-.Platform.failure inst.Instance.platform u))
                     0.0 procs)
            in
            if F.leq fp max_failure then Float.min acc latency else acc)
          Float.infinity
          (Relpipe_util.Combin.injections n
             (Platform.procs inst.Instance.platform))
      in
      match One_to_one.exact_bicriteria inst objective with
      | None -> not (Float.is_finite brute)
      | Some s ->
          F.approx_eq ~eps:1e-9 s.Solution.evaluation.Instance.latency brute
          && Instance.feasible objective s.Solution.evaluation)

let one_to_one_bicriteria_consistent =
  Helpers.seed_property ~count:30
    "bi-criteria one-to-one evaluation matches model evaluators" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) in
      let m = n + 1 in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      match
        One_to_one.exact_bicriteria inst (Instance.Min_failure { max_latency = 1e9 })
      with
      | None -> false
      | Some s ->
          let e = Instance.evaluate inst s.Solution.mapping in
          F.approx_eq ~eps:1e-9 e.Instance.latency s.Solution.evaluation.Instance.latency
          && F.approx_eq ~eps:1e-9 e.Instance.failure
               s.Solution.evaluation.Instance.failure)

let one_to_one_infeasible () =
  let rng = Rng.create 3 in
  let inst = Helpers.random_fully_hetero rng ~n:4 ~m:2 in
  Alcotest.(check bool) "n > m gives None" true (One_to_one.exact inst = None);
  Alcotest.(check bool) "greedy too" true (One_to_one.greedy inst = None)

(* ------------------------------------------------------------------ *)
(* Algorithms 1 and 2 (Fully Homogeneous)                              *)
(* ------------------------------------------------------------------ *)

let thresholds_for rng inst =
  (* Derive meaningful thresholds from the instance's own envelope. *)
  let lo =
    latency_of
      (Solution.of_mapping inst
         (Mapping.single_interval
            ~n:(Pipeline.length inst.Instance.pipeline)
            ~m:(Platform.size inst.Instance.platform)
            [ Mono.fastest_proc inst.Instance.platform ]))
  in
  let hi = latency_of (Mono.min_failure inst) in
  let l = Rng.float_range rng lo (hi *. 1.2) in
  let fp = Rng.float_range rng 0.001 0.8 in
  (l, fp)

let alg1_optimal_vs_exact =
  Helpers.seed_property ~count:50 "Algorithm 1 matches exhaustive optimum"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_homog rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      let mine = Fully_homog.min_failure_for_latency inst ~max_latency in
      let reference = Exact.solve inst objective in
      match mine, reference with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b)
      | Some _, None | None, Some _ -> false)

let alg2_optimal_vs_exact =
  Helpers.seed_property ~count:50 "Algorithm 2 matches exhaustive optimum"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_homog rng ~n ~m in
      let _, max_failure = thresholds_for rng inst in
      let objective = Instance.Min_latency { max_failure } in
      let mine = Fully_homog.min_latency_for_failure inst ~max_failure in
      let reference = Exact.solve inst objective in
      match mine, reference with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (latency_of a) (latency_of b)
      | Some _, None | None, Some _ -> false)

let alg1_hetero_failures_remark =
  Helpers.seed_property ~count:30
    "Algorithm 1 stays optimal with heterogeneous failures (paper remark)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      (* Homogeneous speeds/links, heterogeneous failures. *)
      let speed = Rng.float_range rng 1.0 5.0 in
      let platform =
        Platform.uniform_links
          ~speeds:(Array.make m speed)
          ~failures:(Array.init m (fun _ -> Rng.float_range rng 0.05 0.9))
          ~bandwidth:2.0
      in
      let inst = Instance.make (Helpers.random_pipeline rng ~n) platform in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match
        ( Fully_homog.min_failure_for_latency inst ~max_latency,
          Exact.solve inst objective )
      with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b)
      | Some _, None | None, Some _ -> false)

let alg1_infeasible () =
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:10.0 [ (100.0, 10.0) ])
      (Platform.fully_homogeneous ~m:3 ~speed:1.0 ~failure:0.2 ~bandwidth:1.0)
  in
  Alcotest.(check bool) "latency 1 infeasible" true
    (Fully_homog.min_failure_for_latency inst ~max_latency:1.0 = None)

let alg2_infeasible () =
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:1.0 [ (1.0, 1.0) ])
      (Platform.fully_homogeneous ~m:2 ~speed:1.0 ~failure:0.9 ~bandwidth:1.0)
  in
  (* Best possible FP = 0.81 > 0.5. *)
  Alcotest.(check bool) "unreachable FP" true
    (Fully_homog.min_latency_for_failure inst ~max_failure:0.5 = None);
  match Fully_homog.min_latency_for_failure inst ~max_failure:0.81 with
  | Some s -> Alcotest.(check int) "needs both procs" 2
                (List.length (Mapping.used_procs s.Solution.mapping))
  | None -> Alcotest.fail "0.81 is achievable"

let alg1_applicability () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  Alcotest.(check bool) "raises on comm-homog hetero speeds" true
    (try
       ignore (Fully_homog.min_failure_for_latency inst ~max_latency:22.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Algorithms 3 and 4 (Comm. Homogeneous + Failure Homogeneous)        *)
(* ------------------------------------------------------------------ *)

let alg3_optimal_vs_exact =
  Helpers.seed_property ~count:50 "Algorithm 3 matches exhaustive optimum"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match
        (Comm_homog.min_failure_for_latency inst ~max_latency, Exact.solve inst objective)
      with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b)
      | Some _, None | None, Some _ -> false)

let alg4_optimal_vs_exact =
  Helpers.seed_property ~count:50 "Algorithm 4 matches exhaustive optimum"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n ~m in
      let _, max_failure = thresholds_for rng inst in
      let objective = Instance.Min_latency { max_failure } in
      match
        (Comm_homog.min_latency_for_failure inst ~max_failure, Exact.solve inst objective)
      with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (latency_of a) (latency_of b)
      | Some _, None | None, Some _ -> false)

let alg3_latency_monotone =
  Helpers.seed_property ~count:40 "latency_with_fastest nondecreasing in k"
    (fun seed ->
      let rng = Rng.create seed in
      let m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n:3 ~m in
      let rec check k =
        if k >= m then true
        else
          F.leq ~eps:1e-9
            (Comm_homog.latency_with_fastest inst k)
            (Comm_homog.latency_with_fastest inst (k + 1))
          && check (k + 1)
      in
      check 1)

let alg3_applicability () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  Alcotest.(check bool) "raises on failure-hetero" true
    (try
       ignore (Comm_homog.min_failure_for_latency inst ~max_latency:22.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Lemma 1: single interval suffices on the homogeneous classes        *)
(* ------------------------------------------------------------------ *)

let lemma1_fully_homog =
  Helpers.seed_property ~count:40
    "single-interval optimum = global optimum (Fully Homog.)" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_homog rng ~n ~m in
      let max_latency, max_failure = thresholds_for rng inst in
      List.for_all
        (fun objective ->
          match
            (Exact.solve_single_interval inst objective, Exact.solve inst objective)
          with
          | None, None -> true
          | Some a, Some b ->
              F.approx_eq ~eps:1e-6
                (Instance.objective_value objective (evaluation a))
                (Instance.objective_value objective (evaluation b))
          | Some _, None | None, Some _ -> false)
        [
          Instance.Min_failure { max_latency };
          Instance.Min_latency { max_failure };
        ])

let lemma1_comm_homog_fail_homog =
  Helpers.seed_property ~count:40
    "single-interval optimum = global optimum (CH + FailHomog)" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n ~m in
      let max_latency, max_failure = thresholds_for rng inst in
      List.for_all
        (fun objective ->
          match
            (Exact.solve_single_interval inst objective, Exact.solve inst objective)
          with
          | None, None -> true
          | Some a, Some b ->
              F.approx_eq ~eps:1e-6
                (Instance.objective_value objective (evaluation a))
                (Instance.objective_value objective (evaluation b))
          | Some _, None | None, Some _ -> false)
        [
          Instance.Min_failure { max_latency };
          Instance.Min_latency { max_failure };
        ])

let lemma1_breaks_on_fig5 () =
  (* The paper's counter-example: with heterogeneous failures the
     single-interval restriction is strictly suboptimal. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  let restricted = Option.get (Exact.solve_single_interval inst objective) in
  let unrestricted = Option.get (Exact.solve inst objective) in
  Helpers.check_close "restricted optimum is the paper's 0.64" 0.64
    (failure_of restricted);
  Helpers.check_leq "unrestricted beats it" (failure_of unrestricted)
    (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0))));
  Alcotest.(check bool) "strictly better" true
    (failure_of unrestricted < 0.64 -. 0.1)

(* ------------------------------------------------------------------ *)
(* Exact machinery                                                     *)
(* ------------------------------------------------------------------ *)

let exact_count_formula () =
  (* n=2, m=2: compositions {[1..2]}, {[1..1][2..2]}; single interval has 3
     subsets; the split has 2 ordered disjoint pairs -> 5 mappings. *)
  Alcotest.(check int) "n2 m2" 5 (Exact.count_mappings ~n:2 ~m:2 ());
  (* Single stage: 2^m - 1 replication sets. *)
  Alcotest.(check int) "n1 m4" 15 (Exact.count_mappings ~n:1 ~m:4 ())

let exact_enumerates_valid =
  Helpers.seed_property ~count:20 "enumerated mappings validate" (fun seed ->
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let ok = ref true in
      Exact.iter_mappings ~n ~m (fun mapping ->
          match Mapping.validate ~n ~m (Mapping.intervals mapping) with
          | Ok _ -> ()
          | Error _ -> ok := false);
      !ok)

let exact_budget_guard () =
  let rng = Rng.create 1 in
  let inst = Helpers.random_fully_hetero rng ~n:4 ~m:5 in
  Alcotest.(check bool) "raises Too_large" true
    (try
       ignore
         (Exact.solve ~budget:10 inst (Instance.Min_latency { max_failure = 1.0 }));
       false
     with Exact.Too_large _ -> true)

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)
(* ------------------------------------------------------------------ *)

let pareto_front_sane () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let front =
    Pareto.front_with
      (fun inst objective -> Exact.solve inst objective)
      inst ~count:8
  in
  Alcotest.(check bool) "non-empty" true (front <> []);
  Alcotest.(check bool) "non-dominated staircase" true
    (Pareto.is_non_dominated front);
  (* Every point is feasible for its own threshold. *)
  List.iter
    (fun p ->
      Helpers.check_leq "within threshold"
        (latency_of p.Pareto.solution)
        p.Pareto.threshold)
    front

let pareto_knee () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let front =
    Pareto.front_with (fun inst obj -> Exact.solve inst obj) inst ~count:8
  in
  match Pareto.knee front with
  | None -> Alcotest.fail "expected a knee on a non-empty front"
  | Some k ->
      (* The knee is a member of the front and not one of the two extremes
         unless the front is tiny. *)
      Alcotest.(check bool) "knee in front" true (List.memq k front);
      if List.length front >= 3 then begin
        let first = List.hd front in
        let last = List.nth front (List.length front - 1) in
        Alcotest.(check bool) "knee is a compromise" true
          (k != first || k != last)
      end;
      Alcotest.(check bool) "empty front" true (Pareto.knee [] = None)

let pareto_dual_direction () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let front =
    Pareto.front_by_failure
      ~solve:(fun objective -> Exact.solve inst objective)
      ~thresholds:(Pareto.failure_thresholds inst ~count:8)
  in
  Alcotest.(check bool) "non-empty" true (front <> []);
  Alcotest.(check bool) "staircase" true (Pareto.is_non_dominated front);
  (* Every point satisfies its own FP threshold. *)
  List.iter
    (fun p ->
      Helpers.check_leq "within FP threshold"
        p.Pareto.solution.Solution.evaluation.Instance.failure
        p.Pareto.threshold)
    front

let pareto_directions_consistent =
  Helpers.seed_property ~count:10 "both sweep directions trace the same front"
    (fun seed ->
      (* Every point of the dual sweep must be dominated-or-equal by some
         point of the primal sweep and vice versa (up to threshold
         granularity we only check the weaker containment: no dual point
         strictly dominates every primal point). *)
      let rng = Rng.create seed in
      let inst = Helpers.random_fully_hetero rng ~n:(1 + (seed mod 3)) ~m:3 in
      let primal =
        Pareto.front_with (fun i o -> Exact.solve i o) inst ~count:6
      in
      let dual =
        Pareto.front_by_failure
          ~solve:(fun o -> Exact.solve inst o)
          ~thresholds:(Pareto.failure_thresholds inst ~count:6)
      in
      List.for_all
        (fun d ->
          not
            (List.for_all
               (fun p ->
                 Instance.dominates d.Pareto.solution.Solution.evaluation
                   p.Pareto.solution.Solution.evaluation)
               primal)
          || primal = [])
        dual)

let pareto_thresholds_ordered () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let ts = Pareto.latency_thresholds inst ~count:6 in
  Alcotest.(check int) "count" 6 (List.length ts);
  let rec increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as tl) -> a < b && increasing tl
  in
  Alcotest.(check bool) "increasing" true (increasing ts)

(* ------------------------------------------------------------------ *)
(* Solver facade                                                       *)
(* ------------------------------------------------------------------ *)

let solver_auto_dispatch =
  Helpers.seed_property ~count:25 "Auto equals Exact on small instances"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match (Solver.solve inst objective, Exact.solve inst objective) with
      | None, None -> true
      | Some a, Some b -> F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b)
      | Some _, None | None, Some _ -> false)

let solver_polynomial_raises () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  Alcotest.(check bool) "raises on hetero" true
    (try
       ignore
         (Solver.solve ~method_:Solver.Polynomial inst
            (Instance.Min_latency { max_failure = 0.5 }));
       false
     with Invalid_argument _ -> true)

let solver_describe () =
  let fh =
    Instance.make
      (Pipeline.of_costs ~input:1.0 [ (1.0, 1.0) ])
      (Platform.fully_homogeneous ~m:2 ~speed:1.0 ~failure:0.1 ~bandwidth:1.0)
  in
  let d = Solver.describe fh in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions algorithms" true (contains "Algorithms 1/2" d)

let () =
  Alcotest.run "core"
    [
      ( "theorem-1",
        [ thm1_beats_exhaustive; test "shape" thm1_shape ] );
      ( "theorem-2",
        [
          thm2_beats_exhaustive;
          test "uses fastest" thm2_uses_fastest;
          test "rejects hetero links" thm2_rejects_hetero;
        ] );
      ( "theorem-4",
        [
          test "fig6 graph shape" fig6_graph_shape;
          all_algos_agree;
          general_beats_interval;
          general_beats_exhaustive_replicated;
          test "fig34 optimum" fig34_general_optimum;
        ] );
      ( "one-to-one",
        [
          one_to_one_exact_vs_bruteforce;
          one_to_one_heuristics_bounded;
          one_to_one_bicriteria_vs_bruteforce;
          one_to_one_bicriteria_consistent;
          test "infeasible when n > m" one_to_one_infeasible;
        ] );
      ( "algorithms-1-2",
        [
          alg1_optimal_vs_exact;
          alg2_optimal_vs_exact;
          alg1_hetero_failures_remark;
          test "alg1 infeasible" alg1_infeasible;
          test "alg2 infeasible and boundary" alg2_infeasible;
          test "applicability check" alg1_applicability;
        ] );
      ( "algorithms-3-4",
        [
          alg3_optimal_vs_exact;
          alg4_optimal_vs_exact;
          alg3_latency_monotone;
          test "applicability check" alg3_applicability;
        ] );
      ( "lemma-1",
        [
          lemma1_fully_homog;
          lemma1_comm_homog_fail_homog;
          test "breaks on fig5 (paper counter-example)" lemma1_breaks_on_fig5;
        ] );
      ( "exact",
        [
          test "count formula" exact_count_formula;
          exact_enumerates_valid;
          test "budget guard" exact_budget_guard;
        ] );
      ( "pareto",
        [
          test "front is sane" pareto_front_sane;
          test "knee" pareto_knee;
          test "dual direction" pareto_dual_direction;
          pareto_directions_consistent;
          test "thresholds ordered" pareto_thresholds_ordered;
        ] );
      ( "solver",
        [
          solver_auto_dispatch;
          test "polynomial raises" solver_polynomial_raises;
          test "describe" solver_describe;
        ] );
    ]
