open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

let latency_of (s : Solution.t) = s.Solution.evaluation.Instance.latency
let failure_of (s : Solution.t) = s.Solution.evaluation.Instance.failure

let thresholds_for rng inst =
  let n = Pipeline.length inst.Instance.pipeline in
  let m = Platform.size inst.Instance.platform in
  let lo =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m [ Mono.fastest_proc inst.Instance.platform ])
  in
  let hi =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
  in
  ( Rng.float_range rng lo (Float.max (lo *. 1.01) (hi *. 1.1)),
    Rng.float_range rng 0.01 0.8 )

(* Every heuristic must return either None or a feasible, correctly
   evaluated solution. *)
let heuristic_results_feasible name_ =
  Helpers.seed_property ~count:30
    (Printf.sprintf "%s returns feasible solutions"
       (Heuristics.name_to_string name_))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 6) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, max_failure = thresholds_for rng inst in
      List.for_all
        (fun objective ->
          match Heuristics.run name_ inst objective with
          | None -> true
          | Some s ->
              Instance.feasible objective s.Solution.evaluation
              && F.approx_eq ~eps:1e-9 (latency_of s)
                   (Latency.of_mapping inst.Instance.pipeline
                      inst.Instance.platform s.Solution.mapping))
        [
          Instance.Min_failure { max_latency };
          Instance.Min_latency { max_failure };
        ])

(* Heuristics can never beat the exhaustive optimum. *)
let heuristics_never_beat_exact =
  Helpers.seed_property ~count:25 "heuristics >= exact optimum" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      let exact = Exact.solve inst objective in
      List.for_all
        (fun name_ ->
          match (Heuristics.run name_ inst objective, exact) with
          | None, _ -> true
          | Some _, None -> false (* heuristic "found" something exact rules out *)
          | Some h, Some e -> F.geq ~eps:1e-6 (failure_of h) (failure_of e))
        Heuristics.all_names)

(* On the homogeneous classes the greedy single-interval heuristic should
   recover the polynomial optimum. *)
let single_greedy_matches_alg3 =
  Helpers.seed_property ~count:30 "single-greedy = Algorithm 3 on CH+FailHomog"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      match
        ( Heuristics.single_greedy inst (Instance.Min_failure { max_latency }),
          Comm_homog.min_failure_for_latency inst ~max_latency )
      with
      | None, None -> true
      | Some h, Some a -> F.approx_eq ~eps:1e-6 (failure_of h) (failure_of a)
      | Some _, None -> false
      | None, Some _ -> false)

(* The paper's Fig. 5: heuristics must discover the two-interval optimum
   (or at least beat the single-interval bound of 0.64). *)
let fig5_beats_single_interval () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  match Heuristics.best_of inst objective with
  | None -> Alcotest.fail "expected a feasible solution"
  | Some s ->
      Helpers.check_leq "beats the single-interval optimum" (failure_of s) 0.64;
      Alcotest.(check bool) "finds a split" true
        (failure_of s < 0.3 (* the paper's split achieves 0.197 *))

let split_replicate_uses_intervals () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  match Heuristics.split_replicate inst objective with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      Alcotest.(check bool) "feasible" true
        (Instance.feasible objective s.Solution.evaluation)

let local_search_deterministic () =
  let rng = Rng.create 99 in
  let inst = Helpers.random_fully_hetero rng ~n:4 ~m:5 in
  let objective = Instance.Min_failure { max_latency = 1e6 } in
  let a = Heuristics.local_search ~seed:7 inst objective in
  let b = Heuristics.local_search ~seed:7 inst objective in
  match a, b with
  | Some sa, Some sb ->
      Alcotest.(check bool) "same mapping" true
        (Mapping.equal sa.Solution.mapping sb.Solution.mapping)
  | None, None -> ()
  | _ -> Alcotest.fail "nondeterministic feasibility"

let annealing_handles_tight_threshold () =
  let rng = Rng.create 11 in
  let inst = Helpers.random_comm_homog rng ~n:3 ~m:6 in
  (* A generous latency bound: every heuristic should find something. *)
  let objective = Instance.Min_failure { max_latency = 1e9 } in
  match Heuristics.annealing inst objective with
  | None -> Alcotest.fail "annealing found nothing under a loose bound"
  | Some s ->
      Alcotest.(check bool) "feasible" true
        (Instance.feasible objective s.Solution.evaluation)

let best_of_is_best =
  Helpers.seed_property ~count:15 "best_of dominates each heuristic"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      let best = Heuristics.best_of inst objective in
      List.for_all
        (fun name_ ->
          match (best, Heuristics.run name_ inst objective) with
          | _, None -> true
          | None, Some _ -> false
          | Some b, Some h -> F.leq ~eps:1e-9 (failure_of b) (failure_of h))
        Heuristics.all_names)

(* ------------------------------------------------------------------ *)
(* Speed-contiguous structured solver                                  *)
(* ------------------------------------------------------------------ *)

let contiguous_finds_fig5_optimum () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  match Contiguous.solve inst objective with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      (* The slow processor is last in speed order, the ten fast ones form
         a contiguous prefix: the paper's optimum is speed-contiguous. *)
      Helpers.check_close "matches the paper's optimum"
        (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0))))
        (failure_of s)

let contiguous_never_beats_exact =
  Helpers.seed_property ~count:25 "contiguous >= exact" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match (Contiguous.solve inst objective, Exact.solve inst objective) with
      | None, _ -> true
      | Some _, None -> false
      | Some c, Some e -> F.geq ~eps:1e-6 (failure_of c) (failure_of e))

let contiguous_matches_alg3_on_fail_homog =
  Helpers.seed_property ~count:25 "contiguous = Algorithm 3 on CH+FailHomog"
    (fun seed ->
      (* Algorithm 3's optimal prefix is a contiguous segment, so the
         structured solver must recover its optimum. *)
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_comm_homog_fail_homog rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      match
        ( Contiguous.solve inst (Instance.Min_failure { max_latency }),
          Comm_homog.min_failure_for_latency inst ~max_latency )
      with
      | None, None -> true
      | Some c, Some a -> F.approx_eq ~eps:1e-6 (failure_of c) (failure_of a)
      | Some _, None | None, Some _ -> false)

let contiguous_rejects_hetero_links () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Contiguous.solve inst (Instance.Min_failure { max_latency = 1e9 }));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Dominance                                                           *)
(* ------------------------------------------------------------------ *)

let dominance_order_sane () =
  let platform =
    Platform.uniform_links
      ~speeds:[| 4.0; 2.0; 4.0; 1.0 |]
      ~failures:[| 0.1; 0.1; 0.3; 0.05 |]
      ~bandwidth:1.0
  in
  Alcotest.(check bool) "P0 dominates P2 (same speed, more reliable)" true
    (Dominance.dominates platform 0 2);
  Alcotest.(check bool) "P0 dominates P1 (faster, same reliability)" true
    (Dominance.dominates platform 0 1);
  Alcotest.(check bool) "P3 not dominated by P0 (more reliable)" false
    (Dominance.dominates platform 0 3);
  Alcotest.(check bool) "irreflexive" false (Dominance.dominates platform 1 1);
  (* Pareto staircase: P0 (fast, reliable) and P3 (slow, most reliable). *)
  Alcotest.(check (list int)) "undominated" [ 0; 3 ] (Dominance.undominated platform)

let dominance_antisymmetric =
  Helpers.seed_property ~count:50 "dominance is antisymmetric" (fun seed ->
      let rng = Rng.create seed in
      let inst = Helpers.random_comm_homog rng ~n:2 ~m:5 in
      let platform = inst.Instance.platform in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              u = v
              || not (Dominance.dominates platform u v && Dominance.dominates platform v u))
            (Platform.procs platform))
        (Platform.procs platform))

let normalize_never_hurts =
  Helpers.seed_property ~count:60 "normalization improves both criteria"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let before = Instance.evaluate inst mapping in
      let after = Instance.evaluate inst (Dominance.normalize inst mapping) in
      F.leq ~eps:1e-9 after.Instance.latency before.Instance.latency
      && F.leq ~eps:1e-9 after.Instance.failure before.Instance.failure)

let normalize_valid_mapping =
  Helpers.seed_property ~count:60 "normalization yields a valid mapping"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let normalized = Dominance.normalize inst mapping in
      match
        Mapping.validate ~n ~m (Mapping.intervals normalized)
      with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "heuristics"
    ([
       ( "feasibility",
         List.map heuristic_results_feasible Heuristics.all_names );
       ( "optimality-bounds",
         [ heuristics_never_beat_exact; single_greedy_matches_alg3 ] );
       ( "fig5",
         [
           test "beats single interval" fig5_beats_single_interval;
           test "split-replicate feasible" split_replicate_uses_intervals;
         ] );
       ( "behaviour",
         [
           test "local search deterministic" local_search_deterministic;
           test "annealing loose bound" annealing_handles_tight_threshold;
           best_of_is_best;
         ] );
       ( "contiguous",
         [
           test "finds fig5 optimum" contiguous_finds_fig5_optimum;
           contiguous_never_beats_exact;
           contiguous_matches_alg3_on_fail_homog;
           test "rejects hetero links" contiguous_rejects_hetero_links;
         ] );
       ( "dominance",
         [
           test "order sane" dominance_order_sane;
           dominance_antisymmetric;
           normalize_never_hurts;
           normalize_valid_mapping;
         ] );
     ])
