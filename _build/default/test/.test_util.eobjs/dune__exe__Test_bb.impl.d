test/test_bb.ml: Alcotest Bb Exact Failure Float Helpers Instance Latency Mapping Mono Period Pipeline Platform Printf Relpipe_core Relpipe_model Relpipe_util Relpipe_workload Solution Tri
