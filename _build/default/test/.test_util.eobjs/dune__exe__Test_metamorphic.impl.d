test/test_metamorphic.ml: Alcotest Array Failure Float Fun Helpers Instance Latency List Mapping Period Pipeline Platform Relpipe_model Relpipe_util
