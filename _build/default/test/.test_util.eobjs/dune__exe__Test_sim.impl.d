test/test_sim.ml: Alcotest Array Engine Failure_inject Helpers Instance Latency List Montecarlo Platform Port Relpipe_model Relpipe_sim Relpipe_util Relpipe_workload Trial
