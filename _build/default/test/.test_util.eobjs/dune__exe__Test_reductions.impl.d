test/test_reductions.ml: Alcotest Array Float Helpers Instance List Mapping One_to_one Partition_reduction Pipeline Platform Relpipe_core Relpipe_graph Relpipe_model Relpipe_util Tsp_reduction
