test/test_workload.ml: Alcotest App_gen Array Catalog Classify Helpers Instance Jpeg List Pipeline Plat_gen Platform Relpipe_model Relpipe_util Relpipe_workload Scenarios
