test/test_throughput.mli:
