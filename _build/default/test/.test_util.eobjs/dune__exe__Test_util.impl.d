test/test_util.ml: Alcotest Array Bitset Combin Float Float_cmp Fun Helpers Kahan List Option Pqueue Printf QCheck QCheck_alcotest Relpipe_util Rng Seq Stats String Table
