test/test_graph.ml: Alcotest Array Bellman_ford Dag Dijkstra Float Fun Graph Hamiltonian Helpers List Relpipe_graph Relpipe_util
