test/test_experiments.ml: Alcotest Experiments Helpers List Relpipe_experiments Relpipe_util String
