test/test_trace.ml: Alcotest Array Float Helpers Lifetime List Platform Printf Relpipe_model Relpipe_sim Relpipe_util Relpipe_workload Steady Trace
