test/test_throughput.ml: Alcotest Failure Fun Helpers Instance Latency List Mapping Period Pipeline Platform Relpipe_core Relpipe_model Relpipe_sim Relpipe_util Relpipe_workload Round_robin
