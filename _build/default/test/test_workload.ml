open Relpipe_model
open Relpipe_workload
module Rng = Relpipe_util.Rng

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* App_gen                                                             *)
(* ------------------------------------------------------------------ *)

let app_random_ranges =
  Helpers.seed_property "random pipeline respects ranges" (fun seed ->
      let rng = Rng.create seed in
      let spec = { App_gen.n = 5; work = (2.0, 4.0); data = (1.0, 3.0) } in
      let p = App_gen.random rng spec in
      Pipeline.length p = 5
      && List.for_all
           (fun k ->
             let w = Pipeline.work p k in
             w >= 2.0 && w <= 4.0)
           [ 1; 2; 3; 4; 5 ]
      && List.for_all
           (fun k ->
             let d = Pipeline.delta p k in
             d >= 1.0 && d <= 3.0)
           [ 0; 1; 2; 3; 4; 5 ])

let app_uniform () =
  let p = App_gen.uniform ~n:3 ~work:2.0 ~data:5.0 in
  Helpers.check_close "work" 2.0 (Pipeline.work p 2);
  Helpers.check_close "delta0" 5.0 (Pipeline.delta p 0);
  Helpers.check_close "total" 6.0 (Pipeline.total_work p)

let app_profiles () =
  let rng = Rng.create 1 in
  let cb = App_gen.compute_bound rng ~n:4 in
  let db = App_gen.data_bound rng ~n:4 in
  Alcotest.(check bool) "compute-bound has more work than data" true
    (Pipeline.total_work cb > Pipeline.delta cb 0);
  Alcotest.(check bool) "data-bound has more data than work" true
    (Pipeline.delta db 0 > Pipeline.work db 1)

let app_alternating () =
  let p = App_gen.alternating ~n:4 ~light:1.0 ~heavy:10.0 in
  Helpers.check_close "stage1 heavy" 10.0 (Pipeline.work p 1);
  Helpers.check_close "stage2 light" 1.0 (Pipeline.work p 2);
  Helpers.check_close "stage1 output light" 1.0 (Pipeline.delta p 1);
  Helpers.check_close "stage2 output heavy" 10.0 (Pipeline.delta p 2)

let app_rejects () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n=0" true (bad (fun () -> App_gen.uniform ~n:0 ~work:1.0 ~data:1.0));
  Alcotest.(check bool) "alternating bad cost" true
    (bad (fun () -> App_gen.alternating ~n:2 ~light:0.0 ~heavy:1.0))

(* ------------------------------------------------------------------ *)
(* Plat_gen                                                            *)
(* ------------------------------------------------------------------ *)

let plat_comm_homog_class =
  Helpers.seed_property "comm-homog generator lands in its class" (fun seed ->
      let rng = Rng.create seed in
      let p =
        Plat_gen.random_comm_homogeneous rng ~m:5 ~speed:(1.0, 10.0)
          ~failure:(0.1, 0.5) ~bandwidth:2.0
      in
      Classify.links_homogeneous p
      && Platform.size p = 5
      && List.for_all
           (fun u ->
             let s = Platform.speed p u and f = Platform.failure p u in
             s >= 1.0 && s <= 10.0 && f >= 0.1 && f <= 0.5)
           (Platform.procs p))

let plat_fully_hetero_symmetric =
  Helpers.seed_property "fully-hetero bandwidths are symmetric" (fun seed ->
      let rng = Rng.create seed in
      let p =
        Plat_gen.random_fully_heterogeneous rng ~m:4 ~speed:(1.0, 10.0)
          ~failure:(0.1, 0.5) ~bandwidth:(0.5, 5.0)
      in
      let eps = Platform.Pin :: Platform.Pout
                :: List.map (fun u -> Platform.Proc u) (Platform.procs p) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Platform.endpoint_equal a b
              || Relpipe_util.Float_cmp.approx_eq
                   (Platform.bandwidth p a b) (Platform.bandwidth p b a))
            eps)
        eps)

let plat_correlated_failures () =
  let rng = Rng.create 7 in
  let p =
    Plat_gen.speed_correlated_failures rng ~m:8 ~speed:(1.0, 100.0)
      ~failure:(0.05, 0.8) ~bandwidth:1.0
  in
  (* The fastest processor must carry the largest failure probability. *)
  let fastest = ref 0 and slowest = ref 0 in
  List.iter
    (fun u ->
      if Platform.speed p u > Platform.speed p !fastest then fastest := u;
      if Platform.speed p u < Platform.speed p !slowest then slowest := u)
    (Platform.procs p);
  Alcotest.(check bool) "fast less reliable" true
    (Platform.failure p !fastest >= Platform.failure p !slowest)

let plat_two_tier () =
  let p =
    Plat_gen.two_tier ~m_slow:2 ~m_fast:3 ~slow_speed:1.0 ~fast_speed:10.0
      ~slow_failure:0.1 ~fast_failure:0.7 ~bandwidth:1.0
  in
  Alcotest.(check int) "size" 5 (Platform.size p);
  Helpers.check_close "slow first" 1.0 (Platform.speed p 0);
  Helpers.check_close "fast after" 10.0 (Platform.speed p 2);
  Helpers.check_close "fast failure" 0.7 (Platform.failure p 4)

(* ------------------------------------------------------------------ *)
(* Jpeg                                                                *)
(* ------------------------------------------------------------------ *)

let jpeg_shape () =
  let p = Jpeg.pipeline () in
  Alcotest.(check int) "seven stages" 7 (Pipeline.length p);
  Alcotest.(check int) "names match" 7 (Array.length Jpeg.stage_names);
  (* DCT (stage 5) dominates computation. *)
  let dct = Pipeline.work p 5 in
  List.iter
    (fun k ->
      if k <> 5 then
        Alcotest.(check bool) "dct dominates" true (dct > Pipeline.work p k))
    [ 1; 2; 3; 4; 6; 7 ];
  (* Entropy coding compresses: output smaller than input. *)
  Alcotest.(check bool) "compresses" true
    (Pipeline.delta p 7 < Pipeline.delta p 0)

let jpeg_scales_with_image () =
  let small = Jpeg.pipeline ~image_size:100.0 () in
  let large = Jpeg.pipeline ~image_size:200.0 () in
  Helpers.check_close "work scales linearly"
    (2.0 *. Pipeline.total_work small)
    (Pipeline.total_work large)

let jpeg_instance () =
  let inst = Jpeg.default_instance ~m:6 in
  Alcotest.(check int) "procs" 6 (Platform.size inst.Instance.platform);
  Alcotest.(check bool) "comm homog" true
    (Classify.links_homogeneous inst.Instance.platform)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

let catalog_entries () =
  Alcotest.(check int) "four presets" 4 (List.length Catalog.all);
  (* Each preset lands in its intended platform class. *)
  Alcotest.(check bool) "lab cluster fully homogeneous" true
    (Classify.comm_class Catalog.lab_cluster.Catalog.platform
    = Classify.Fully_homogeneous);
  Alcotest.(check bool) "campus grid comm homogeneous" true
    (Classify.comm_class Catalog.campus_grid.Catalog.platform
    = Classify.Comm_homogeneous);
  Alcotest.(check bool) "campus grid failure hetero" true
    (Classify.failure_class Catalog.campus_grid.Catalog.platform
    = Classify.Failure_heterogeneous);
  Alcotest.(check bool) "volunteer net fully heterogeneous" true
    (Classify.comm_class Catalog.volunteer_network.Catalog.platform
    = Classify.Fully_heterogeneous);
  Alcotest.(check bool) "federation fully heterogeneous" true
    (Classify.comm_class Catalog.federation.Catalog.platform
    = Classify.Fully_heterogeneous)

let catalog_lookup () =
  (match Catalog.find "Campus-Grid" with
  | Some e -> Alcotest.(check string) "case-insensitive" "campus-grid" e.Catalog.name
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "unknown" true (Catalog.find "does-not-exist" = None)

let fig34_platform_class () =
  let inst = Scenarios.fig34 () in
  Alcotest.(check bool) "fully heterogeneous links" true
    (Classify.comm_class inst.Instance.platform = Classify.Fully_heterogeneous)

let plat_clustered () =
  let rng = Rng.create 5 in
  let p =
    Plat_gen.clustered rng ~clusters:3 ~cluster_size:4 ~speed:(1.0, 10.0)
      ~failure:(0.1, 0.4) ~intra_bandwidth:50.0 ~inter_bandwidth:5.0
      ~io_bandwidth:10.0
  in
  Alcotest.(check int) "size" 12 (Platform.size p);
  (* Same cluster: fast link; different clusters: slow link. *)
  Helpers.check_close "intra" 50.0
    (Platform.bandwidth p (Platform.Proc 0) (Platform.Proc 3));
  Helpers.check_close "inter" 5.0
    (Platform.bandwidth p (Platform.Proc 0) (Platform.Proc 4));
  Helpers.check_close "io" 10.0 (Platform.bandwidth p Platform.Pin (Platform.Proc 7));
  (* Homogeneous inside a cluster. *)
  Helpers.check_close "cluster speed" (Platform.speed p 4) (Platform.speed p 7);
  Alcotest.(check bool) "fully heterogeneous" true
    (Classify.comm_class p = Classify.Fully_heterogeneous)

let scenario_pipelines () =
  let vt = Scenarios.video_transcoder () in
  Alcotest.(check int) "transcoder stages" 5 (Pipeline.length vt);
  (* Decode inflates the data, encode compresses it. *)
  Alcotest.(check bool) "decode inflates" true
    (Pipeline.delta vt 2 > Pipeline.delta vt 1);
  Alcotest.(check bool) "encode compresses" true
    (Pipeline.delta vt 4 < Pipeline.delta vt 3);
  let sf = Scenarios.sensor_fusion () in
  Alcotest.(check int) "fusion stages" 6 (Pipeline.length sf);
  (* Data shrinks monotonically after ingest. *)
  let rec shrinking k =
    k >= Pipeline.length sf || (Pipeline.delta sf k >= Pipeline.delta sf (k + 1) && shrinking (k + 1))
  in
  Alcotest.(check bool) "monotone shrink" true (shrinking 1)

let scenario_grid_instance () =
  let inst = Scenarios.grid_instance (Rng.create 7) in
  Alcotest.(check int) "12 processors" 12 (Platform.size inst.Instance.platform);
  Alcotest.(check int) "5 stages" 5 (Pipeline.length inst.Instance.pipeline)

let fig5_platform_class () =
  let inst = Scenarios.fig5 () in
  Alcotest.(check bool) "comm homog" true
    (Classify.links_homogeneous inst.Instance.platform);
  Alcotest.(check bool) "failure hetero" true
    (Classify.failure_class inst.Instance.platform
    = Classify.Failure_heterogeneous);
  Alcotest.(check int) "eleven procs" 11 (Platform.size inst.Instance.platform)

let () =
  Alcotest.run "workload"
    [
      ( "app_gen",
        [
          app_random_ranges;
          test "uniform" app_uniform;
          test "profiles" app_profiles;
          test "alternating" app_alternating;
          test "rejects" app_rejects;
        ] );
      ( "plat_gen",
        [
          plat_comm_homog_class;
          plat_fully_hetero_symmetric;
          test "correlated failures" plat_correlated_failures;
          test "two tier" plat_two_tier;
          test "clustered" plat_clustered;
        ] );
      ( "jpeg",
        [
          test "shape" jpeg_shape;
          test "scales with image" jpeg_scales_with_image;
          test "default instance" jpeg_instance;
        ] );
      ( "scenarios",
        [
          test "fig34 class" fig34_platform_class;
          test "fig5 class" fig5_platform_class;
          test "scenario pipelines" scenario_pipelines;
          test "grid instance" scenario_grid_instance;
        ] );
      ( "catalog",
        [ test "entries" catalog_entries; test "lookup" catalog_lookup ] );
    ]
