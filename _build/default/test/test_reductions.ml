open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Theorem 3: TSP -> one-to-one latency                                *)
(* ------------------------------------------------------------------ *)

let tsp_equivalence =
  Helpers.seed_property ~count:40 "TSP feasible iff mapping feasible"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + (seed mod 4) in
      let r = Tsp_reduction.random rng ~n ~max_cost:9 in
      Tsp_reduction.equivalent r)

let tsp_known_feasible () =
  (* Path 0-1-2 costs 2; bound 2 is feasible, bound 1.5 is not. *)
  let cost = [| [| 0.; 1.; 5. |]; [| 1.; 0.; 1. |]; [| 5.; 1.; 0. |] |] in
  let base = { Tsp_reduction.cost; source = 0; target = 2; bound = 2.0 } in
  Alcotest.(check bool) "tsp side" true (Tsp_reduction.tsp_feasible base);
  Alcotest.(check bool) "mapping side" true (Tsp_reduction.mapping_feasible base);
  let tight = { base with Tsp_reduction.bound = 1.5 } in
  Alcotest.(check bool) "tsp side infeasible" false (Tsp_reduction.tsp_feasible tight);
  Alcotest.(check bool) "mapping side infeasible" false
    (Tsp_reduction.mapping_feasible tight)

let tsp_instance_shape () =
  let rng = Rng.create 5 in
  let r = Tsp_reduction.random rng ~n:4 ~max_cost:5 in
  let inst, bound = Tsp_reduction.to_instance r in
  Alcotest.(check int) "n stages" 4 (Pipeline.length inst.Instance.pipeline);
  Alcotest.(check int) "m = n procs" 4 (Platform.size inst.Instance.platform);
  Helpers.check_close "K' = K + n + 2" (r.Tsp_reduction.bound +. 6.0) bound;
  (* Unit application costs and unit speeds, as in the proof. *)
  Helpers.check_close "unit work" 1.0 (Pipeline.work inst.Instance.pipeline 2);
  Helpers.check_close "unit speed" 1.0 (Platform.speed inst.Instance.platform 1);
  (* The in->source link is fast, other in-links are unusably slow. *)
  Helpers.check_close "in->s" 1.0
    (Platform.bandwidth inst.Instance.platform Platform.Pin
       (Platform.Proc r.Tsp_reduction.source));
  Alcotest.(check bool) "slow in-link" true
    (Platform.bandwidth inst.Instance.platform Platform.Pin
       (Platform.Proc r.Tsp_reduction.target)
    < 1.0 /. (r.Tsp_reduction.bound +. 4.0 +. 3.0))

let tsp_mapping_cost_formula =
  Helpers.seed_property ~count:30
    "proper path mapping costs n + 2 + path cost" (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + (seed mod 4) in
      let r = Tsp_reduction.random rng ~n ~max_cost:9 in
      let inst, _ = Tsp_reduction.to_instance r in
      (* Take the optimal Hamiltonian path and price its mapping. *)
      match
        Relpipe_graph.Hamiltonian.held_karp ~cost:r.Tsp_reduction.cost
          ~s:r.Tsp_reduction.source ~t:r.Tsp_reduction.target
      with
      | None -> false
      | Some (path_cost, path) ->
          let mapping_cost = One_to_one.cost inst (Array.of_list path) in
          F.approx_eq ~eps:1e-9 mapping_cost (path_cost +. float_of_int n +. 2.0))

let tsp_validation () =
  let bad r =
    match Tsp_reduction.validate r with Ok () -> false | Error _ -> true
  in
  let cost = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  Alcotest.(check bool) "same endpoints" true
    (bad { Tsp_reduction.cost; source = 0; target = 0; bound = 1.0 });
  Alcotest.(check bool) "bad bound" true
    (bad { Tsp_reduction.cost; source = 0; target = 1; bound = -1.0 });
  Alcotest.(check bool) "zero cost" true
    (bad
       {
         Tsp_reduction.cost = [| [| 0.; 0. |]; [| 1.; 0. |] |];
         source = 0;
         target = 1;
         bound = 1.0;
       });
  Alcotest.(check bool) "valid accepted" false
    (bad { Tsp_reduction.cost; source = 0; target = 1; bound = 1.0 })

(* ------------------------------------------------------------------ *)
(* Theorem 7: 2-PARTITION -> bi-criteria feasibility                   *)
(* ------------------------------------------------------------------ *)

let partition_equivalence =
  Helpers.seed_property ~count:60 "2-PARTITION feasible iff mapping feasible"
    (fun seed ->
      let rng = Rng.create seed in
      let m = 2 + (seed mod 8) in
      let values = Partition_reduction.random rng ~m ~max_value:12 in
      Partition_reduction.equivalent values)

let partition_known_cases () =
  Alcotest.(check bool) "1,1 splits" true
    (Partition_reduction.partition_feasible [| 1; 1 |]);
  Alcotest.(check bool) "odd sum cannot" false
    (Partition_reduction.partition_feasible [| 1; 2 |]);
  Alcotest.(check bool) "3,1,1,1 splits" true
    (Partition_reduction.partition_feasible [| 3; 1; 1; 1 |]);
  Alcotest.(check bool) "3,1,1 cannot" false
    (Partition_reduction.partition_feasible [| 3; 1; 1 |]);
  Alcotest.(check bool) "mapping side agrees (feasible)" true
    (Partition_reduction.mapping_feasible [| 3; 1; 1; 1 |]);
  Alcotest.(check bool) "mapping side agrees (infeasible)" false
    (Partition_reduction.mapping_feasible [| 3; 1; 1 |])

let partition_witness_is_half () =
  let values = [| 4; 2; 3; 1; 2 |] in
  (* S = 12, halves of sum 6 exist, e.g. {4,2}. *)
  match Partition_reduction.witness values with
  | None -> Alcotest.fail "expected a witness"
  | Some procs ->
      let sum = List.fold_left (fun acc j -> acc + values.(j)) 0 procs in
      Alcotest.(check int) "witness sums to S/2" 6 sum

let partition_instance_shape () =
  let values = [| 2; 3; 5 |] in
  let inst, latency_bound, failure_bound = Partition_reduction.to_instance values in
  Alcotest.(check int) "single stage" 1 (Pipeline.length inst.Instance.pipeline);
  Alcotest.(check int) "three procs" 3 (Platform.size inst.Instance.platform);
  Helpers.check_close "L = S/2 + 2" 7.0 latency_bound;
  Helpers.check_close "FP = e^-S/2" (Float.exp (-5.0)) failure_bound;
  Helpers.check_close "fp_j = e^-a_j" (Float.exp (-3.0))
    (Platform.failure inst.Instance.platform 1);
  Helpers.check_close "b_in_j = 1/a_j" (1.0 /. 5.0)
    (Platform.bandwidth inst.Instance.platform Platform.Pin (Platform.Proc 2))

let partition_latency_formula () =
  (* Replicating the stage on a set I costs sum_I a_j + 2. *)
  let values = [| 2; 3; 5 |] in
  let inst, _, _ = Partition_reduction.to_instance values in
  let mapping = Mapping.single_interval ~n:1 ~m:3 [ 0; 2 ] in
  let e = Instance.evaluate inst mapping in
  Helpers.check_close "latency = 2 + 5 + 2" 9.0 e.Instance.latency;
  Helpers.check_close "fp = e^-(2+5)" (Float.exp (-7.0)) e.Instance.failure

let partition_validation () =
  Alcotest.(check bool) "empty rejected" true
    (match Partition_reduction.validate [||] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "nonpositive rejected" true
    (match Partition_reduction.validate [| 1; 0 |] with
    | Error _ -> true
    | Ok () -> false)

let () =
  Alcotest.run "reductions"
    [
      ( "tsp (theorem 3)",
        [
          tsp_equivalence;
          test "known instance" tsp_known_feasible;
          test "instance shape" tsp_instance_shape;
          tsp_mapping_cost_formula;
          test "validation" tsp_validation;
        ] );
      ( "2-partition (theorem 7)",
        [
          partition_equivalence;
          test "known cases" partition_known_cases;
          test "witness is a half" partition_witness_is_half;
          test "instance shape" partition_instance_shape;
          test "latency formula" partition_latency_formula;
          test "validation" partition_validation;
        ] );
    ]
