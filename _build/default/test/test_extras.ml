(* Tests for the auxiliary extensions: failure-rate conversion, the
   mapping text syntax, the bitmask-DP interval optimum, and the solution
   certificate checker. *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Failure_rate                                                        *)
(* ------------------------------------------------------------------ *)

let rate_known_values () =
  Helpers.check_close "zero rate" 0.0 (Failure_rate.fp_of_rate ~rate:0.0 ~mission:10.0);
  Helpers.check_close "one mean lifetime"
    (1.0 -. Float.exp (-1.0))
    (Failure_rate.fp_of_rate ~rate:0.1 ~mission:10.0);
  Helpers.check_close "mtbf equals rate inverse"
    (Failure_rate.fp_of_rate ~rate:0.25 ~mission:8.0)
    (Failure_rate.fp_of_mtbf ~mtbf:4.0 ~mission:8.0)

let rate_roundtrip =
  Helpers.seed_property "rate_of_fp inverts fp_of_rate" (fun seed ->
      let rng = Rng.create seed in
      (* Keep rate * mission <= ~10: beyond that 1 - fp holds too few
         mantissa bits for the inverse to be meaningful. *)
      let rate = Rng.float_range rng 0.001 1.0 in
      let mission = Rng.float_range rng 0.1 10.0 in
      let fp = Failure_rate.fp_of_rate ~rate ~mission in
      F.approx_eq ~eps:1e-6 rate (Failure_rate.rate_of_fp ~fp ~mission))

let rate_monotone =
  Helpers.seed_property "fp grows with mission length" (fun seed ->
      let rng = Rng.create seed in
      let rate = Rng.float_range rng 0.01 1.0 in
      let t1 = Rng.float_range rng 0.1 5.0 in
      let t2 = t1 +. Rng.float_range rng 0.1 5.0 in
      Failure_rate.fp_of_rate ~rate ~mission:t1
      <= Failure_rate.fp_of_rate ~rate ~mission:t2)

let rate_platform () =
  let p =
    Failure_rate.platform_of_rates ~speeds:[| 1.0; 2.0 |] ~rates:[| 0.0; 0.5 |]
      ~mission:2.0
      ~bandwidth:(fun _ _ -> 1.0)
  in
  Helpers.check_close "rate 0 -> fp 0" 0.0 (Platform.failure p 0);
  Helpers.check_close "rate 0.5, mission 2 -> 1 - e^-1"
    (1.0 -. Float.exp (-1.0))
    (Platform.failure p 1)

let rate_scale_mission =
  Helpers.seed_property "doubling the mission squares the survival"
    (fun seed ->
      let rng = Rng.create seed in
      let fp = Rng.float_range rng 0.0 0.95 in
      let p =
        Platform.uniform_links ~speeds:[| 1.0 |] ~failures:[| fp |] ~bandwidth:1.0
      in
      let p2 = Failure_rate.scale_mission p ~factor:2.0 in
      F.approx_eq ~eps:1e-9
        (1.0 -. Platform.failure p2 0)
        ((1.0 -. fp) ** 2.0))

(* ------------------------------------------------------------------ *)
(* Mapping_syntax                                                      *)
(* ------------------------------------------------------------------ *)

let syntax_parses_fig5 () =
  match Mapping_syntax.parse ~n:2 ~m:11 "1:0; 2:1,2,3,4,5,6,7,8,9,10" with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok mapping ->
      Alcotest.(check bool) "equals the scenario mapping" true
        (Mapping.equal mapping (Relpipe_workload.Scenarios.fig5_split ()))

let syntax_ranges () =
  match Mapping_syntax.parse ~n:5 ~m:4 " 1-3 : 2 ; 4-5 : 0 , 1 " with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok mapping ->
      Alcotest.(check int) "two intervals" 2 (Mapping.num_intervals mapping);
      let iv = Mapping.interval_of_stage mapping 4 in
      Alcotest.(check (list int)) "procs" [ 0; 1 ] iv.Mapping.procs

let syntax_roundtrip =
  Helpers.seed_property "to_string round-trips" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let mapping = Helpers.random_mapping rng ~n ~m in
      match Mapping_syntax.parse ~n ~m (Mapping_syntax.to_string mapping) with
      | Ok mapping' -> Mapping.equal mapping mapping'
      | Error _ -> false)

let syntax_rejects () =
  let bad text =
    match Mapping_syntax.parse ~n:2 ~m:3 text with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "no procs" true (bad "1-2:");
  Alcotest.(check bool) "garbage stage" true (bad "x-2:0");
  Alcotest.(check bool) "gap" true (bad "1:0");
  Alcotest.(check bool) "proc out of range" true (bad "1-2:9");
  Alcotest.(check bool) "proc reused" true (bad "1:0;2:0")

(* ------------------------------------------------------------------ *)
(* Interval_exact                                                      *)
(* ------------------------------------------------------------------ *)

let interval_exact_matches_enumeration =
  Helpers.seed_property ~count:50 "bitmask DP = compositions x injections"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      match (Interval_exact.min_latency inst, Exact.min_latency_unreplicated inst) with
      | Some (a, ma), Some (b, mb) ->
          F.approx_eq ~eps:1e-9 a b
          && F.approx_eq ~eps:1e-9 a
               (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform ma)
          && F.approx_eq ~eps:1e-9 b
               (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mb)
      | None, None -> true
      | _ -> false)

let interval_exact_gap_bounds =
  Helpers.seed_property ~count:40 "interval optimum >= general optimum"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let gap = Interval_exact.interval_vs_general_gap inst in
      F.geq ~eps:1e-9 gap 1.0)

let interval_exact_fig34 () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  match Interval_exact.min_latency inst with
  | Some (latency, mapping) ->
      Helpers.check_close "fig34 interval optimum is 7" 7.0 latency;
      Alcotest.(check int) "two intervals" 2 (Mapping.num_intervals mapping);
      (* On fig34 the general optimum is interval-shaped, so the gap is 1. *)
      Helpers.check_close "gap 1" 1.0 (Interval_exact.interval_vs_general_gap inst)
  | None -> Alcotest.fail "expected a mapping"

let interval_exact_cap () =
  let platform =
    Platform.fully_homogeneous ~m:15 ~speed:1.0 ~failure:0.1 ~bandwidth:1.0
  in
  let inst = Instance.make (Pipeline.of_costs ~input:1.0 [ (1.0, 1.0) ]) platform in
  Alcotest.(check bool) "caps m" true
    (try
       ignore (Interval_exact.min_latency inst);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_good_solution () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 22.0 } in
  let s = Solution.of_mapping inst (Relpipe_workload.Scenarios.fig5_split ()) in
  let r = Validate.check inst objective s in
  Alcotest.(check bool) "ok" true (Validate.ok r);
  Alcotest.(check bool) "certified optimal" true (r.Validate.optimality = Validate.Optimal)

let validate_detects_suboptimal () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 22.0 } in
  let s =
    Solution.of_mapping inst (Relpipe_workload.Scenarios.fig5_single_two_fast ())
  in
  let r = Validate.check inst objective s in
  Alcotest.(check bool) "still feasible" true (Validate.ok r);
  match r.Validate.optimality with
  | Validate.Suboptimal gap ->
      Helpers.check_close "gap = 0.64 - 0.1966" (0.64 -. (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0))))) gap
  | _ -> Alcotest.fail "expected a certified suboptimality"

let validate_detects_infeasible () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 10.0 } in
  let s = Solution.of_mapping inst (Relpipe_workload.Scenarios.fig5_split ()) in
  let r = Validate.check inst objective s in
  Alcotest.(check bool) "not ok" false (Validate.ok r);
  Alcotest.(check bool) "message emitted" true (r.Validate.messages <> [])

let validate_detects_stale_evaluation () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 22.0 } in
  let s = Solution.of_mapping inst (Relpipe_workload.Scenarios.fig5_split ()) in
  let tampered =
    { s with Solution.evaluation = { s.Solution.evaluation with Instance.latency = 1.0 } }
  in
  let r = Validate.check inst objective tampered in
  Alcotest.(check bool) "inconsistency flagged" false r.Validate.evaluation_consistent

let validate_poly_certificate =
  Helpers.seed_property ~count:25 "polynomial classes always certify"
    (fun seed ->
      let rng = Rng.create seed in
      let inst = Helpers.random_fully_homog rng ~n:(1 + (seed mod 3)) ~m:3 in
      let objective = Instance.Min_latency { max_failure = 0.9 } in
      match Fully_homog.solve inst objective with
      | None -> true
      | Some s ->
          let r = Validate.check inst objective s in
          r.Validate.optimality = Validate.Optimal)

let validate_unknown_when_large () =
  let rng = Rng.create 5 in
  let inst = Helpers.random_fully_hetero rng ~n:6 ~m:8 in
  let objective = Instance.Min_failure { max_latency = 1e9 } in
  match Heuristics.single_greedy inst objective with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      let r = Validate.check inst objective s in
      Alcotest.(check bool) "no tractable certificate" true
        (r.Validate.optimality = Validate.Unknown)

let () =
  Alcotest.run "extras"
    [
      ( "failure-rate",
        [
          test "known values" rate_known_values;
          rate_roundtrip;
          rate_monotone;
          test "platform from rates" rate_platform;
          rate_scale_mission;
        ] );
      ( "mapping-syntax",
        [
          test "parses fig5" syntax_parses_fig5;
          test "ranges and whitespace" syntax_ranges;
          syntax_roundtrip;
          test "rejects invalid" syntax_rejects;
        ] );
      ( "interval-exact",
        [
          interval_exact_matches_enumeration;
          interval_exact_gap_bounds;
          test "fig34" interval_exact_fig34;
          test "processor cap" interval_exact_cap;
        ] );
      ( "validate",
        [
          test "good solution" validate_good_solution;
          test "detects suboptimal" validate_detects_suboptimal;
          test "detects infeasible" validate_detects_infeasible;
          test "detects stale evaluation" validate_detects_stale_evaluation;
          validate_poly_certificate;
          test "unknown when large" validate_unknown_when_large;
        ] );
    ]
