open Relpipe_model
open Relpipe_sim
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let engine_orders_events () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~at:2.0 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "processed" 3 (Engine.events_processed e)

let engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 1; 2 ] (List.rev !log)

let engine_nested_scheduling () =
  let e = Engine.create () in
  let finished = ref 0.0 in
  Engine.schedule e ~at:1.0 (fun () ->
      Engine.schedule_after e ~delay:2.0 (fun () -> finished := Engine.now e));
  Engine.run e;
  Helpers.check_close "chained event time" 3.0 !finished

let engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~at:5.0 (fun () ->
      Alcotest.(check bool) "past rejected" true
        (try
           Engine.schedule e ~at:1.0 (fun () -> ());
           false
         with Invalid_argument _ -> true));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Port                                                                *)
(* ------------------------------------------------------------------ *)

let port_serializes () =
  let p = Port.create () in
  Helpers.check_close "first starts at earliest" 2.0
    (Port.reserve p ~earliest:2.0 ~duration:3.0);
  Helpers.check_close "second waits" 5.0 (Port.reserve p ~earliest:0.0 ~duration:1.0);
  Helpers.check_close "free at" 6.0 (Port.free_at p)

let port_pair () =
  let a = Port.create () and b = Port.create () in
  ignore (Port.reserve a ~earliest:0.0 ~duration:4.0);
  Helpers.check_close "pair waits for both" 4.0
    (Port.reserve_pair a b ~earliest:1.0 ~duration:1.0);
  Helpers.check_close "receiver blocked too" 5.0 (Port.free_at b)

let port_reset () =
  let p = Port.create () in
  ignore (Port.reserve p ~earliest:0.0 ~duration:10.0);
  Port.reset p;
  Helpers.check_close "reset" 0.0 (Port.free_at p)

(* ------------------------------------------------------------------ *)
(* Trial: worst case matches the analytic formulas                     *)
(* ------------------------------------------------------------------ *)

let wc_matches_eq1_comm_homog =
  Helpers.seed_property ~count:150 "worst-case sim = Eq1 (comm homog)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let analytic =
        Latency.eq1 inst.Instance.pipeline inst.Instance.platform mapping
      in
      F.approx_eq ~eps:1e-9 analytic (Trial.worst_case_latency inst mapping))

let wc_matches_eq2_fully_hetero =
  Helpers.seed_property ~count:150 "worst-case sim = Eq2 (fully hetero)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let analytic =
        Latency.eq2 inst.Instance.pipeline inst.Instance.platform mapping
      in
      F.approx_eq ~eps:1e-9 analytic (Trial.worst_case_latency inst mapping))

let all_alive_below_analytic =
  Helpers.seed_property ~count:150 "all-alive pessimistic <= analytic"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let analytic =
        Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping
      in
      let alive = Failure_inject.all_alive inst.Instance.platform in
      match Trial.run inst mapping ~alive ~policy:Trial.Pessimistic with
      | Trial.Completed t -> F.leq ~eps:1e-9 t analytic
      | Trial.Failed _ -> false)

(* On heterogeneous links the optimistic forwarder can have slower outgoing
   links than the pessimistic one, so the policies are not ordered in
   general; with homogeneous links the forwarder identity does not affect
   communication times and the ordering holds. *)
let optimistic_below_pessimistic_comm_homog =
  Helpers.seed_property ~count:150 "optimistic <= pessimistic (comm homog)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let alive = Failure_inject.sample rng inst.Instance.platform in
      match
        ( Trial.run inst mapping ~alive ~policy:Trial.Optimistic,
          Trial.run inst mapping ~alive ~policy:Trial.Pessimistic )
      with
      | Trial.Completed o, Trial.Completed p -> F.leq ~eps:1e-9 o p
      | Trial.Failed i, Trial.Failed j -> i = j
      | _ -> false)

(* Under any policy and any survivor pattern, the simulated latency never
   exceeds the analytic worst case of Eq. (1)/(2). *)
let any_trial_below_analytic =
  Helpers.seed_property ~count:150 "every completed trial <= analytic bound"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let analytic =
        Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping
      in
      let alive = Failure_inject.sample rng inst.Instance.platform in
      List.for_all
        (fun policy ->
          match Trial.run inst mapping ~alive ~policy with
          | Trial.Completed t -> F.leq ~eps:1e-9 t analytic
          | Trial.Failed _ -> true)
        [ Trial.Optimistic; Trial.Pessimistic ])

let trial_fails_without_survivor () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let alive = Failure_inject.all_alive inst.Instance.platform in
  let alive = Failure_inject.kill alive [ 0 ] in
  (match Trial.run inst mapping ~alive ~policy:Trial.Optimistic with
  | Trial.Failed 0 -> ()
  | Trial.Failed j -> Alcotest.failf "wrong interval: %d" j
  | Trial.Completed _ -> Alcotest.fail "expected failure");
  (* Killing one fast replica of the second interval is survivable. *)
  let alive = Failure_inject.all_alive inst.Instance.platform in
  let alive = Failure_inject.kill alive [ 1; 2; 3 ] in
  match Trial.run inst mapping ~alive ~policy:Trial.Optimistic with
  | Trial.Completed _ -> ()
  | Trial.Failed _ -> Alcotest.fail "expected success"

let fig5_worst_case_is_22 () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  Helpers.check_close "paper's 22" 22.0
    (Trial.worst_case_latency inst (Relpipe_workload.Scenarios.fig5_split ()))

let trial_single_replica_exact () =
  (* With one replica per interval, all policies and survivor patterns
     coincide with the analytic value. *)
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let mapping = Relpipe_workload.Scenarios.fig34_split () in
  let alive = Failure_inject.all_alive inst.Instance.platform in
  (match Trial.run inst mapping ~alive ~policy:Trial.Optimistic with
  | Trial.Completed t -> Helpers.check_close "optimistic" 7.0 t
  | Trial.Failed _ -> Alcotest.fail "unexpected failure");
  match Trial.run inst mapping ~alive ~policy:Trial.Pessimistic with
  | Trial.Completed t -> Helpers.check_close "pessimistic" 7.0 t
  | Trial.Failed _ -> Alcotest.fail "unexpected failure"

let trial_validation () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let mapping = Relpipe_workload.Scenarios.fig34_split () in
  Alcotest.(check bool) "alive size checked" true
    (try
       ignore (Trial.run inst mapping ~alive:[| true |] ~policy:Trial.Optimistic);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let inject_rates () =
  let platform =
    Platform.uniform_links ~speeds:[| 1.0; 1.0 |] ~failures:[| 0.0; 1.0 |]
      ~bandwidth:1.0
  in
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let alive = Failure_inject.sample rng platform in
    Alcotest.(check bool) "fp=0 always alive" true alive.(0);
    Alcotest.(check bool) "fp=1 always dead" false alive.(1)
  done

let inject_kill () =
  let alive = [| true; true; true |] in
  let killed = Failure_inject.kill alive [ 1 ] in
  Alcotest.(check bool) "killed" false killed.(1);
  Alcotest.(check bool) "original untouched" true alive.(1)

(* ------------------------------------------------------------------ *)
(* Monte Carlo                                                         *)
(* ------------------------------------------------------------------ *)

let montecarlo_matches_analytic_fp () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let rng = Rng.create 2024 in
  let r = Montecarlo.estimate rng inst mapping ~trials:20_000 ~policy:Trial.Optimistic in
  (* Wilson 99.9% interval around the empirical rate must contain the
     analytic success probability. *)
  let lo, hi =
    Relpipe_util.Stats.wilson_interval ~successes:r.Montecarlo.successes
      ~trials:r.Montecarlo.trials ~z:3.29
  in
  Alcotest.(check bool) "analytic success within Wilson interval" true
    (lo <= r.Montecarlo.analytic_success && r.Montecarlo.analytic_success <= hi)

let montecarlo_latency_bounded =
  Helpers.seed_property ~count:20 "observed latency never exceeds analytic"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let r =
        Montecarlo.estimate rng inst mapping ~trials:200 ~policy:Trial.Pessimistic
      in
      r.Montecarlo.successes = 0
      || F.leq ~eps:1e-9 r.Montecarlo.max_latency r.Montecarlo.analytic_latency)

let montecarlo_rejects_bad_trials () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let mapping = Relpipe_workload.Scenarios.fig34_split () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Montecarlo.estimate (Rng.create 0) inst mapping ~trials:0
            ~policy:Trial.Optimistic);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          test "orders events" engine_orders_events;
          test "FIFO ties" engine_fifo_ties;
          test "nested scheduling" engine_nested_scheduling;
          test "rejects past" engine_rejects_past;
        ] );
      ( "port",
        [
          test "serializes" port_serializes;
          test "pair" port_pair;
          test "reset" port_reset;
        ] );
      ( "trial",
        [
          wc_matches_eq1_comm_homog;
          wc_matches_eq2_fully_hetero;
          all_alive_below_analytic;
          optimistic_below_pessimistic_comm_homog;
          any_trial_below_analytic;
          test "fails without survivor" trial_fails_without_survivor;
          test "fig5 worst case is 22" fig5_worst_case_is_22;
          test "single replica exact" trial_single_replica_exact;
          test "validation" trial_validation;
        ] );
      ( "failure_inject",
        [ test "rates" inject_rates; test "kill" inject_kill ] );
      ( "montecarlo",
        [
          test "matches analytic FP" montecarlo_matches_analytic_fp;
          montecarlo_latency_bounded;
          test "rejects bad trials" montecarlo_rejects_bad_trials;
        ] );
    ]
