(* Metamorphic properties of the analytic model: transformations of the
   instance with predictable effects on latency, period, and failure
   probability.  These pin down the semantics of Eq. (1)/(2) and the FP
   formula far more tightly than point checks. *)

open Relpipe_model
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

(* Rebuild a platform with transformed parameters. *)
let transform_platform ?(speed = Fun.id) ?(failure = Fun.id) ?(bandwidth = Fun.id)
    platform =
  Platform.make
    ~speeds:(Array.map speed (Platform.speeds platform))
    ~failures:(Array.map failure (Platform.failures platform))
    ~bandwidth:(fun a b -> bandwidth (Platform.bandwidth platform a b))

let transform_pipeline ?(work = Fun.id) ?(data = Fun.id) pipeline =
  Pipeline.make
    ~input:(data (Pipeline.delta pipeline 0))
    (List.map
       (fun s -> { Pipeline.work = work s.Pipeline.work; output = data s.Pipeline.output })
       (Pipeline.stages pipeline))

let with_random_case seed k =
  let rng = Rng.create seed in
  let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
  let inst = Helpers.random_fully_hetero rng ~n ~m in
  let mapping = Helpers.random_mapping rng ~n ~m in
  k rng inst mapping

(* ------------------------------------------------------------------ *)
(* Time-rescaling invariances                                          *)
(* ------------------------------------------------------------------ *)

let speedup_divides_latency =
  Helpers.seed_property ~count:100 "speeds and bandwidths x c => latency / c"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let c = Rng.float_range rng 1.5 5.0 in
          let faster =
            Instance.make inst.Instance.pipeline
              (transform_platform ~speed:(( *. ) c) ~bandwidth:(( *. ) c)
                 inst.Instance.platform)
          in
          let base =
            Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping
          in
          let scaled =
            Latency.of_mapping faster.Instance.pipeline faster.Instance.platform
              mapping
          in
          F.approx_eq ~eps:1e-9 (base /. c) scaled))

let speedup_divides_period =
  Helpers.seed_property ~count:100 "speeds and bandwidths x c => period / c"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let c = Rng.float_range rng 1.5 5.0 in
          let platform' =
            transform_platform ~speed:(( *. ) c) ~bandwidth:(( *. ) c)
              inst.Instance.platform
          in
          F.approx_eq ~eps:1e-9
            (Period.of_mapping inst.Instance.pipeline inst.Instance.platform
               mapping
            /. c)
            (Period.of_mapping inst.Instance.pipeline platform' mapping)))

let workload_scales_latency =
  Helpers.seed_property ~count:100 "work and data x c => latency x c"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let c = Rng.float_range rng 1.5 5.0 in
          let pipeline' =
            transform_pipeline ~work:(( *. ) c) ~data:(( *. ) c)
              inst.Instance.pipeline
          in
          F.approx_eq ~eps:1e-9
            (c
            *. Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
                 mapping)
            (Latency.of_mapping pipeline' inst.Instance.platform mapping)))

(* ------------------------------------------------------------------ *)
(* Failure probability is orthogonal to performance parameters         *)
(* ------------------------------------------------------------------ *)

let fp_ignores_performance =
  Helpers.seed_property ~count:100 "FP invariant under speed/bandwidth changes"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let c = Rng.float_range rng 0.1 10.0 in
          let platform' =
            transform_platform ~speed:(( *. ) c)
              ~bandwidth:(fun b -> b /. c)
              inst.Instance.platform
          in
          F.approx_eq ~eps:1e-12
            (Failure.of_mapping inst.Instance.platform mapping)
            (Failure.of_mapping platform' mapping)))

let fp_monotone_in_unreliability =
  Helpers.seed_property ~count:100 "raising every fp_u cannot lower FP"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let bump = Rng.float_range rng 1.01 1.5 in
          let platform' =
            transform_platform
              ~failure:(fun fp -> Float.min 1.0 (fp *. bump))
              inst.Instance.platform
          in
          F.leq ~eps:1e-12
            (Failure.of_mapping inst.Instance.platform mapping)
            (Failure.of_mapping platform' mapping)))

(* ------------------------------------------------------------------ *)
(* Monotonicity in individual resources                                *)
(* ------------------------------------------------------------------ *)

let latency_monotone_in_bandwidth =
  Helpers.seed_property ~count:100 "halving every bandwidth cannot lower latency"
    (fun seed ->
      with_random_case seed (fun _rng inst mapping ->
          let platform' =
            transform_platform ~bandwidth:(fun b -> b /. 2.0) inst.Instance.platform
          in
          F.leq ~eps:1e-9
            (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
               mapping)
            (Latency.of_mapping inst.Instance.pipeline platform' mapping)))

let latency_monotone_in_speed =
  Helpers.seed_property ~count:100 "doubling every speed cannot raise latency"
    (fun seed ->
      with_random_case seed (fun _rng inst mapping ->
          let platform' =
            transform_platform ~speed:(( *. ) 2.0) inst.Instance.platform
          in
          F.geq ~eps:1e-9
            (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
               mapping)
            (Latency.of_mapping inst.Instance.pipeline platform' mapping)))

(* ------------------------------------------------------------------ *)
(* Relabeling invariance                                               *)
(* ------------------------------------------------------------------ *)

let relabeling_invariance =
  Helpers.seed_property ~count:100 "processor relabeling leaves metrics unchanged"
    (fun seed ->
      with_random_case seed (fun rng inst mapping ->
          let m = Platform.size inst.Instance.platform in
          let perm = Rng.permutation rng m in
          (* perm.(u) is the new index of old processor u. *)
          let inv = Array.make m 0 in
          Array.iteri (fun old_u new_u -> inv.(new_u) <- old_u) perm;
          let platform = inst.Instance.platform in
          let relabeled =
            Platform.make
              ~speeds:(Array.init m (fun u -> Platform.speed platform inv.(u)))
              ~failures:(Array.init m (fun u -> Platform.failure platform inv.(u)))
              ~bandwidth:(fun a b ->
                let back = function
                  | Platform.Proc u -> Platform.Proc inv.(u)
                  | e -> e
                in
                Platform.bandwidth platform (back a) (back b))
          in
          let mapping' =
            Mapping.make
              ~n:(Pipeline.length inst.Instance.pipeline)
              ~m
              (List.map
                 (fun iv ->
                   { iv with Mapping.procs = List.map (fun u -> perm.(u)) iv.Mapping.procs })
                 (Mapping.intervals mapping))
          in
          let pipeline = inst.Instance.pipeline in
          F.approx_eq ~eps:1e-9
            (Latency.of_mapping pipeline platform mapping)
            (Latency.of_mapping pipeline relabeled mapping')
          && F.approx_eq ~eps:1e-12
               (Failure.of_mapping platform mapping)
               (Failure.of_mapping relabeled mapping')
          && F.approx_eq ~eps:1e-9
               (Period.of_mapping pipeline platform mapping)
               (Period.of_mapping pipeline relabeled mapping')))

(* ------------------------------------------------------------------ *)
(* Stage-merging identity                                              *)
(* ------------------------------------------------------------------ *)

let merging_stages_within_interval =
  Helpers.seed_property ~count:100
    "fusing two stages inside an interval leaves latency unchanged"
    (fun seed ->
      (* If stages k and k+1 always live in the same interval, replacing
         them by one stage with summed work and the second one's output is
         an equivalent pipeline. *)
      let rng = Rng.create seed in
      let n = 2 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let pipeline = inst.Instance.pipeline in
      (* Single interval: any fusion is safe. *)
      let mapping = Mapping.single_interval ~n ~m [ 0; 1 ] in
      let k = 1 + Rng.int rng (n - 1) in
      let fused =
        Pipeline.make
          ~input:(Pipeline.delta pipeline 0)
          (List.concat
             (List.init n (fun i ->
                  let stage = Pipeline.stage pipeline (i + 1) in
                  if i + 1 = k then
                    [
                      {
                        Pipeline.work = stage.Pipeline.work +. Pipeline.work pipeline (k + 1);
                        output = Pipeline.delta pipeline (k + 1);
                      };
                    ]
                  else if i + 1 = k + 1 then []
                  else [ stage ])))
      in
      let mapping' = Mapping.single_interval ~n:(n - 1) ~m [ 0; 1 ] in
      F.approx_eq ~eps:1e-9
        (Latency.of_mapping pipeline inst.Instance.platform mapping)
        (Latency.of_mapping fused inst.Instance.platform mapping'))

let () =
  Alcotest.run "metamorphic"
    [
      ( "rescaling",
        [
          speedup_divides_latency;
          speedup_divides_period;
          workload_scales_latency;
        ] );
      ( "failure-orthogonality",
        [ fp_ignores_performance; fp_monotone_in_unreliability ] );
      ( "monotonicity",
        [ latency_monotone_in_bandwidth; latency_monotone_in_speed ] );
      ("relabeling", [ relabeling_invariance ]);
      ("stage-fusion", [ merging_stages_within_interval ]);
    ]
