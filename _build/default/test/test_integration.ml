(* End-to-end scenarios exercising several libraries together: solve a
   mapping problem, then validate the solution in the discrete-event
   simulator against the analytic model. *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* Solve then simulate: the solver's analytic evaluation must match the
   simulator's worst case exactly, and the Monte-Carlo success rate must
   straddle the analytic reliability. *)
let solve_then_simulate =
  Helpers.seed_property ~count:10 "solver output validates in the simulator"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let hi =
        Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
          (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
      in
      let objective = Instance.Min_failure { max_latency = hi *. 1.5 } in
      match Solver.solve inst objective with
      | None -> false
      | Some s ->
          let wc = Relpipe_sim.Trial.worst_case_latency inst s.Solution.mapping in
          let r =
            Relpipe_sim.Montecarlo.estimate rng inst s.Solution.mapping
              ~trials:2000 ~policy:Relpipe_sim.Trial.Optimistic
          in
          let lo, hi' =
            Relpipe_util.Stats.wilson_interval ~successes:r.Relpipe_sim.Montecarlo.successes
              ~trials:2000 ~z:4.0
          in
          F.approx_eq ~eps:1e-9 wc s.Solution.evaluation.Instance.latency
          && lo <= r.Relpipe_sim.Montecarlo.analytic_success
          && r.Relpipe_sim.Montecarlo.analytic_success <= hi')

(* The full JPEG scenario: build, solve both objectives, check sanity. *)
let jpeg_end_to_end () =
  let inst = Relpipe_workload.Jpeg.default_instance ~m:6 in
  let front =
    Pareto.front_with
      (fun inst objective -> Solver.solve inst objective)
      inst ~count:6
  in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  Alcotest.(check bool) "front is a staircase" true (Pareto.is_non_dominated front);
  (* The most reliable point should replicate more than the fastest one. *)
  match front with
  | [] -> Alcotest.fail "unreachable"
  | first :: _ ->
      let last = List.nth front (List.length front - 1) in
      Alcotest.(check bool) "reliability improves along the front" true
        (last.Pareto.solution.Solution.evaluation.Instance.failure
        <= first.Pareto.solution.Solution.evaluation.Instance.failure)

(* Textio -> Solver round trip: solve an instance parsed from text. *)
let textio_to_solver () =
  let text =
    "input 10\n\
     stage 1 1\n\
     stage 100 0\n\
     proc 1 0.1\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     proc 100 0.8\n\
     link default 1\n"
  in
  match Textio.parse text with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok inst -> (
      (* This is exactly the paper's Fig. 5 instance. *)
      let objective = Instance.Min_failure { max_latency = 22.0 } in
      match Solver.solve inst objective with
      | None -> Alcotest.fail "expected a solution"
      | Some s ->
          Helpers.check_leq "achieves the paper's bound"
            s.Solution.evaluation.Instance.failure
            (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0)))))

(* The paper's Fig. 5 story, end to end: exact solver finds the split
   mapping; simulating it confirms both the latency and the reliability
   advantage over the best single-interval mapping. *)
let fig5_story () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  let opt = Option.get (Exact.solve inst objective) in
  Alcotest.(check int) "optimum is two intervals" 2
    (Mapping.num_intervals opt.Solution.mapping);
  let single = Option.get (Exact.solve_single_interval inst objective) in
  Alcotest.(check bool) "replication set split beats single interval" true
    (opt.Solution.evaluation.Instance.failure
    < single.Solution.evaluation.Instance.failure);
  (* Simulate both at scale; empirical success rates must be ordered the
     same way. *)
  let rng = Rng.create 777 in
  let sim mapping =
    (Relpipe_sim.Montecarlo.estimate rng inst mapping ~trials:5000
       ~policy:Relpipe_sim.Trial.Optimistic)
      .Relpipe_sim.Montecarlo.success_rate
  in
  let split_rate = sim opt.Solution.mapping in
  let single_rate = sim single.Solution.mapping in
  Alcotest.(check bool) "empirically more reliable too" true
    (split_rate > single_rate)

(* Stress: a long pipeline on a big platform through the heuristics, then
   simulator agreement on the result. *)
let large_instance_smoke () =
  let rng = Rng.create 4242 in
  let pipeline =
    Relpipe_workload.App_gen.random rng
      { Relpipe_workload.App_gen.n = 20; work = (1.0, 50.0); data = (1.0, 20.0) }
  in
  let platform =
    Relpipe_workload.Plat_gen.random_fully_heterogeneous rng ~m:24
      ~speed:(1.0, 20.0) ~failure:(0.02, 0.5) ~bandwidth:(1.0, 20.0)
  in
  let inst = Instance.make pipeline platform in
  let hi =
    Latency.of_mapping pipeline platform
      (Mapping.single_interval ~n:20 ~m:24 (Platform.procs platform))
  in
  let objective = Instance.Min_failure { max_latency = hi } in
  match Solver.solve inst objective with
  | None -> Alcotest.fail "portfolio found nothing on a loose bound"
  | Some s ->
      Helpers.check_close "simulator agrees with Eq2"
        s.Solution.evaluation.Instance.latency
        (Relpipe_sim.Trial.worst_case_latency inst s.Solution.mapping)

(* The clustered-grid scenario across the whole stack: solve, certify,
   run a traced steady-state stream, and check every model invariant. *)
let grid_full_stack () =
  let inst = Relpipe_workload.Scenarios.grid_instance (Rng.create 31337) in
  let floor = General_mapping.optimal_latency inst in
  let objective = Instance.Min_failure { max_latency = 2.0 *. floor } in
  match Solver.solve inst objective with
  | None -> Alcotest.fail "no feasible mapping at 2x the latency floor"
  | Some s ->
      let report = Validate.check inst objective s in
      Alcotest.(check bool) "certificate ok" true (Validate.ok report);
      let trace = Relpipe_sim.Trace.create () in
      let r = Relpipe_sim.Steady.run ~trace inst s.Solution.mapping ~datasets:12 in
      Alcotest.(check (list string)) "no invariant violations" []
        (List.map
           (fun v -> Format.asprintf "%a" Relpipe_sim.Trace.pp_violation v)
           (Relpipe_sim.Trace.all_violations trace));
      Helpers.check_close "first completion = analytic latency"
        s.Solution.evaluation.Instance.latency
        r.Relpipe_sim.Steady.first_completion

let () =
  Alcotest.run "integration"
    [
      ( "cross-library",
        [
          solve_then_simulate;
          test "jpeg end to end" jpeg_end_to_end;
          test "textio to solver" textio_to_solver;
          test "fig5 story" fig5_story;
          test "large instance smoke" large_instance_smoke;
          test "grid full stack" grid_full_stack;
        ] );
    ]
