(* Tests for the throughput extension (paper Section 5 future work):
   the Period model, the steady-state simulator, and round-robin
   replication. *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Period                                                              *)
(* ------------------------------------------------------------------ *)

let period_manual () =
  (* Comm-homog: b=2, two intervals: I1 = {S1} on {P0,P1} (speeds 2,1),
     I2 = {S2} on {P2} (speed 4).  Pipeline: d0=6, (w1=4,d1=2), (w2=8,d2=10).
     Pin: 2*6/2 = 6.  I1 replica cycle: 6/2 + 4/1 + 1*2/2 = 8.
     I2: 2/2 + 8/4 + 10/2 = 8.  Pout: 10/2 = 5.  Period = 8. *)
  let pipeline = Pipeline.of_costs ~input:6.0 [ (4.0, 2.0); (8.0, 10.0) ] in
  let platform =
    Platform.uniform_links ~speeds:[| 2.0; 1.0; 4.0 |]
      ~failures:[| 0.1; 0.2; 0.3 |] ~bandwidth:2.0
  in
  let mapping =
    Mapping.make ~n:2 ~m:3
      [
        { Mapping.first = 1; last = 1; procs = [ 0; 1 ] };
        { Mapping.first = 2; last = 2; procs = [ 2 ] };
      ]
  in
  Helpers.check_close "period by hand" 8.0 (Period.of_mapping pipeline platform mapping);
  Helpers.check_close "collapsed formula" 8.0 (Period.comm_homog pipeline platform mapping);
  Helpers.check_close "throughput" 0.125 (Period.throughput pipeline platform mapping)

let period_formulas_agree =
  Helpers.seed_property ~count:120 "general = collapsed formula on comm homog"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      F.approx_eq ~eps:1e-9
        (Period.of_mapping inst.Instance.pipeline inst.Instance.platform mapping)
        (Period.comm_homog inst.Instance.pipeline inst.Instance.platform mapping))

let period_below_latency =
  Helpers.seed_property ~count:100 "period <= latency" (fun seed ->
      (* Each resource's per-data-set busy time is one summand of the
         worst-case latency path, so the max cycle cannot exceed the sum. *)
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      F.leq ~eps:1e-9
        (Period.of_mapping inst.Instance.pipeline inst.Instance.platform mapping)
        (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping))

let period_replication_tradeoff () =
  (* Adding replicas can only increase the (worst-case) period: more
     serialized sends, and the new replica may be slower. *)
  let rng = Rng.create 12 in
  let inst = Helpers.random_comm_homog rng ~n:3 ~m:4 in
  let single = Mapping.single_interval ~n:3 ~m:4 [ 0 ] in
  let replicated = Mapping.single_interval ~n:3 ~m:4 [ 0; 1; 2 ] in
  Helpers.check_leq "replication worsens period"
    (Period.of_mapping inst.Instance.pipeline inst.Instance.platform single)
    (Period.of_mapping inst.Instance.pipeline inst.Instance.platform replicated)

(* ------------------------------------------------------------------ *)
(* Steady-state simulation                                             *)
(* ------------------------------------------------------------------ *)

let steady_single_dataset_is_latency =
  Helpers.seed_property ~count:80 "K=1 steady run = worst-case latency"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let r = Relpipe_sim.Steady.run inst mapping ~datasets:1 in
      F.approx_eq ~eps:1e-9 r.Relpipe_sim.Steady.makespan
        r.Relpipe_sim.Steady.analytic_latency)

let steady_period_bounded =
  Helpers.seed_property ~count:60 "estimated period <= analytic period"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let r = Relpipe_sim.Steady.run inst mapping ~datasets:50 in
      F.leq ~eps:1e-6 r.Relpipe_sim.Steady.estimated_period
        r.Relpipe_sim.Steady.analytic_period)

let steady_makespan_pipelining_bound =
  Helpers.seed_property ~count:60 "makespan <= latency + (K-1) * period"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let k = 20 in
      let r = Relpipe_sim.Steady.run inst mapping ~datasets:k in
      F.leq ~eps:1e-6 r.Relpipe_sim.Steady.makespan
        (r.Relpipe_sim.Steady.analytic_latency
        +. (float_of_int (k - 1) *. r.Relpipe_sim.Steady.analytic_period)))

let steady_monotone_completions () =
  let rng = Rng.create 3 in
  let inst = Helpers.random_fully_hetero rng ~n:3 ~m:4 in
  let mapping = Helpers.random_mapping rng ~n:3 ~m:4 in
  let r10 = Relpipe_sim.Steady.run inst mapping ~datasets:10 in
  let r20 = Relpipe_sim.Steady.run inst mapping ~datasets:20 in
  Helpers.check_leq "more data sets take longer" r10.Relpipe_sim.Steady.makespan
    r20.Relpipe_sim.Steady.makespan;
  Helpers.check_close "first dataset unaffected"
    r10.Relpipe_sim.Steady.first_completion r20.Relpipe_sim.Steady.first_completion

let steady_validation () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let mapping = Relpipe_workload.Scenarios.fig34_split () in
  Alcotest.(check bool) "rejects K=0" true
    (try
       ignore (Relpipe_sim.Steady.run inst mapping ~datasets:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Round-robin replication                                             *)
(* ------------------------------------------------------------------ *)

let rr_q1_equals_mapping =
  Helpers.seed_property ~count:80 "q=1 round-robin = plain mapping metrics"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let rr = Round_robin.of_mapping mapping in
      F.approx_eq ~eps:1e-9 (Round_robin.latency inst rr)
        (Latency.eq2 inst.Instance.pipeline inst.Instance.platform mapping)
      && F.approx_eq ~eps:1e-9 (Round_robin.period inst rr)
           (Period.of_mapping inst.Instance.pipeline inst.Instance.platform mapping)
      && F.approx_eq ~eps:1e-9 (Round_robin.failure inst rr)
           (Failure.of_mapping inst.Instance.platform mapping))

let rr_partition_tradeoff =
  Helpers.seed_property ~count:60
    "splitting groups improves period, degrades reliability" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) in
      let m = 6 in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      (* One interval replicated on 4+ processors so q=2 is possible. *)
      let mapping = Mapping.single_interval ~n ~m [ 0; 1; 2; 3 ] in
      match Round_robin.partition_groups mapping ~q:2 with
      | None -> false
      | Some rr ->
          let base = Round_robin.of_mapping mapping in
          F.leq ~eps:1e-9 (Round_robin.period inst rr)
            (Round_robin.period inst base)
          && F.geq ~eps:1e-9 (Round_robin.failure inst rr)
               (Round_robin.failure inst base))

let rr_partition_needs_enough_replicas () =
  let mapping = Mapping.single_interval ~n:2 ~m:3 [ 0; 1 ] in
  Alcotest.(check bool) "q=3 impossible with 2 replicas" true
    (Round_robin.partition_groups mapping ~q:3 = None);
  Alcotest.(check bool) "q=2 possible" true
    (Round_robin.partition_groups mapping ~q:2 <> None)

let rr_failure_manual () =
  (* Two groups of one processor each: both must survive. *)
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:1.0 [ (1.0, 1.0) ])
      (Platform.uniform_links ~speeds:[| 1.0; 1.0 |] ~failures:[| 0.2; 0.3 |]
         ~bandwidth:1.0)
  in
  let rr =
    Round_robin.make ~n:1 ~m:2
      [ { Round_robin.first = 1; last = 1; groups = [ [ 0 ]; [ 1 ] ] } ]
  in
  (* 1 - (1-0.2)(1-0.3) = 0.44 *)
  Helpers.check_close "both groups must survive" 0.44 (Round_robin.failure inst rr)

let rr_per_dataset_mappings_bounded =
  Helpers.seed_property ~count:40
    "every per-data-set mapping's worst case <= RR latency" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) in
      let m = 6 in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Mapping.single_interval ~n ~m [ 0; 1; 2; 3 ] in
      match Round_robin.partition_groups mapping ~q:2 with
      | None -> false
      | Some rr ->
          let bound = Round_robin.latency inst rr in
          List.for_all
            (fun d ->
              let md = Round_robin.mapping_for_dataset ~m rr ~dataset:d in
              F.leq ~eps:1e-9 (Relpipe_sim.Trial.worst_case_latency inst md) bound)
            (List.init (Round_robin.cycle_length rr) Fun.id))

let rr_cycle_length () =
  let rr =
    Round_robin.make ~n:2 ~m:6
      [
        { Round_robin.first = 1; last = 1; groups = [ [ 0 ]; [ 1 ] ] };
        { Round_robin.first = 2; last = 2; groups = [ [ 2 ]; [ 3 ]; [ 4 ] ] };
      ]
  in
  Alcotest.(check int) "lcm 2 3" 6 (Round_robin.cycle_length rr);
  (* Data set 1 goes to group 1 of interval 1 and group 1 of interval 2. *)
  let md = Round_robin.mapping_for_dataset ~m:6 rr ~dataset:1 in
  Alcotest.(check (list int)) "groups selected" [ 1; 3 ] (Mapping.used_procs md)

let rr_validation () =
  let bad specs =
    try
      ignore (Round_robin.make ~n:2 ~m:3 specs);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty group" true
    (bad [ { Round_robin.first = 1; last = 2; groups = [ []; [ 0 ] ] } ]);
  Alcotest.(check bool) "proc reused" true
    (bad [ { Round_robin.first = 1; last = 2; groups = [ [ 0 ]; [ 0 ] ] } ]);
  Alcotest.(check bool) "gap" true
    (bad [ { Round_robin.first = 1; last = 1; groups = [ [ 0 ] ] } ])

let () =
  Alcotest.run "throughput"
    [
      ( "period",
        [
          test "by hand" period_manual;
          period_formulas_agree;
          period_below_latency;
          test "replication trade-off" period_replication_tradeoff;
        ] );
      ( "steady-state",
        [
          steady_single_dataset_is_latency;
          steady_period_bounded;
          steady_makespan_pipelining_bound;
          test "monotone completions" steady_monotone_completions;
          test "validation" steady_validation;
        ] );
      ( "round-robin",
        [
          rr_q1_equals_mapping;
          rr_partition_tradeoff;
          test "needs enough replicas" rr_partition_needs_enough_replicas;
          test "failure by hand" rr_failure_manual;
          rr_per_dataset_mappings_bounded;
          test "cycle length" rr_cycle_length;
          test "validation" rr_validation;
        ] );
    ]
