#!/bin/sh
# Tier-1 gate: build, tests, grep-lint, and static analysis of every
# shipped instance (examples/instances/*.relpipe plus the built-in
# catalog presets and paper scenarios).  Lint warnings are tolerated
# (exit 1); errors (exit 2) fail the gate.

set -eu
cd "$(dirname "$0")/.."

echo "== dune build (dev profile: warnings are errors) =="
dune build

echo "== dune runtest =="
dune runtest

echo "== tools/forbid.sh =="
tools/forbid.sh

relpipe=_build/default/bin/relpipe_cli.exe

lint() {
  # Accept exit 0 (clean) and 1 (warnings); 2+ (errors) fails.
  "$@" && rc=0 || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "check.sh: lint reported errors: $*" >&2
    exit 1
  fi
}

echo "== relpipe lint: shipped instances =="
for f in examples/instances/*.relpipe; do
  lint "$relpipe" lint "$f"
done

echo "== relpipe lint: built-in catalog and scenarios =="
lint "$relpipe" lint --builtin

echo "check.sh: all gates passed"
