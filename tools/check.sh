#!/bin/sh
# Tier-1 gate: build, tests, grep-lint, and static analysis of every
# shipped instance (examples/instances/*.relpipe plus the built-in
# catalog presets and paper scenarios).  Lint warnings are tolerated
# (exit 1); errors (exit 2) fail the gate.

set -eu
cd "$(dirname "$0")/.."

echo "== dune build (dev profile: warnings are errors) =="
dune build

echo "== dune runtest =="
dune runtest

echo "== tools/forbid.sh =="
tools/forbid.sh

relpipe=_build/default/bin/relpipe_cli.exe

echo "== relpipe devlint: repository sources =="
# The AST-grounded source linter must be fully clean (exit 0) on the
# shipped tree: hints are fine, warnings and errors are not vetted.
"$relpipe" devlint

lint() {
  # Accept exit 0 (clean) and 1 (warnings); 2+ (errors) fails.
  "$@" && rc=0 || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "check.sh: lint reported errors: $*" >&2
    exit 1
  fi
}

echo "== relpipe lint: shipped instances =="
for f in examples/instances/*.relpipe; do
  lint "$relpipe" lint "$f"
done

echo "== relpipe lint: built-in catalog and scenarios =="
lint "$relpipe" lint --builtin

echo "== relpipe batch: determinism smoke test =="
# A 20-request sweep solved at 4 (oversubscribed) workers and at 1 worker
# must produce byte-identical response streams, and the shipped example
# batches must run without crashing (per-line errors are responses).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
"$relpipe" sweep --count 20 --seed 7 --class fully-hetero --stages 8 \
  --procs 6 -L 50 --emit-requests "$tmp/sweep.jsonl" --dry-run 2>/dev/null
"$relpipe" batch "$tmp/sweep.jsonl" --workers 4 --exact-workers \
  -o "$tmp/w4.jsonl"
"$relpipe" batch "$tmp/sweep.jsonl" --workers 1 -o "$tmp/w1.jsonl"
if ! diff -q "$tmp/w4.jsonl" "$tmp/w1.jsonl" >/dev/null; then
  echo "check.sh: batch responses differ between --workers 4 and 1" >&2
  diff "$tmp/w4.jsonl" "$tmp/w1.jsonl" >&2 || true
  exit 1
fi
[ "$(wc -l < "$tmp/w4.jsonl")" -eq 20 ] || {
  echo "check.sh: expected 20 response lines" >&2; exit 1; }

echo "== relpipe batch: shipped example batches =="
for f in examples/requests/*.jsonl; do
  "$relpipe" batch "$f" -o /dev/null
done

echo "== relpipe atlas: streaming smoke (10^4 requests, workers 4 vs 1) =="
# A 10^4-request Zipf/bursty stream aggregated online must produce a
# byte-identical report at 4 (oversubscribed) workers and at 1 worker
# under the virtual clock, and the aggregation must run in bounded
# memory: 5x more requests may not double the top heap size.
"$relpipe" atlas -n 10000 --seed 7 --virtual-clock -w 4 --exact-workers \
  --gc-stats -o "$tmp/atlas-w4.out" 2>"$tmp/atlas-10k.gc"
"$relpipe" atlas -n 10000 --seed 7 --virtual-clock -w 1 \
  -o "$tmp/atlas-w1.out"
if ! diff -q "$tmp/atlas-w4.out" "$tmp/atlas-w1.out" >/dev/null; then
  echo "check.sh: atlas report differs between -w 4 and -w 1" >&2
  diff "$tmp/atlas-w4.out" "$tmp/atlas-w1.out" >&2 || true
  exit 1
fi
grep -q "^requests:" "$tmp/atlas-w4.out" || {
  echo "check.sh: atlas report is missing the requests line" >&2; exit 1; }
"$relpipe" atlas -n 2000 --seed 7 --virtual-clock -w 4 --exact-workers \
  --gc-stats -o /dev/null 2>"$tmp/atlas-2k.gc"
heap_10k=$(sed -n 's/^gc: top_heap_words=\([0-9]*\).*/\1/p' "$tmp/atlas-10k.gc")
heap_2k=$(sed -n 's/^gc: top_heap_words=\([0-9]*\).*/\1/p' "$tmp/atlas-2k.gc")
if [ -z "$heap_10k" ] || [ -z "$heap_2k" ]; then
  echo "check.sh: atlas --gc-stats did not report top_heap_words" >&2
  exit 1
fi
if [ "$heap_10k" -ge $((heap_2k * 2)) ]; then
  echo "check.sh: atlas memory grows with stream length" \
    "(top_heap_words $heap_2k at 2k requests, $heap_10k at 10k)" >&2
  exit 1
fi

echo "== relpipe serve: daemon smoke (2 clients, stats, drain, replay) =="
# A daemon on a Unix socket serves two concurrent scripted clients with
# overlapping request sets (shared-cache hits), renders stats, drains on
# SIGTERM answering every admitted request, and exits 0.  The recorded
# transcript then replays byte-identically at -w 1 and -w 8.
sock="$tmp/serve.sock"
rec="$tmp/serve.session"
"$relpipe" serve --unix "$sock" --record "$rec" --workers 2 \
  --exact-workers --cache-shards 4 2>"$tmp/serve.err" &
serve_pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check.sh: serve socket never appeared" >&2
    cat "$tmp/serve.err" >&2
    exit 1
  fi
  sleep 0.1
done
head -12 "$tmp/sweep.jsonl" > "$tmp/c1.jsonl"
tail -12 "$tmp/sweep.jsonl" > "$tmp/c2.jsonl"
"$relpipe" call --unix "$sock" --client one "$tmp/c1.jsonl" \
  > "$tmp/c1.out" &
c1_pid=$!
"$relpipe" call --unix "$sock" --client two "$tmp/c2.jsonl" \
  > "$tmp/c2.out" &
c2_pid=$!
wait "$c1_pid" && wait "$c2_pid" || {
  echo "check.sh: serve client failed" >&2; exit 1; }
[ "$(wc -l < "$tmp/c1.out")" -eq 13 ] || {
  echo "check.sh: client one expected hello + 12 replies" >&2; exit 1; }
[ "$(wc -l < "$tmp/c2.out")" -eq 13 ] || {
  echo "check.sh: client two expected hello + 12 replies" >&2; exit 1; }
"$relpipe" call --unix "$sock" --op stats > "$tmp/stats.out"
grep -q '"name":"serve.requests"' "$tmp/stats.out" || {
  echo "check.sh: stats reply is missing the serve namespace" >&2; exit 1; }
# SIGTERM drain while a third client is mid-stream: once its handshake
# is in the (per-tick-flushed) recording, signal the daemon, and require
# one reply per admitted line — the recording is the ground truth.
"$relpipe" call --unix "$sock" --client drain-probe "$tmp/sweep.jsonl" \
  > "$tmp/c3.out" &
c3_pid=$!
i=0
while ! grep -q 'drain-probe' "$rec" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check.sh: drain probe never reached the daemon" >&2
    exit 1
  fi
  sleep 0.1
done
kill -TERM "$serve_pid"
wait "$c3_pid" || { echo "check.sh: drain-probe client failed" >&2; exit 1; }
if wait "$serve_pid"; then :; else
  echo "check.sh: serve did not exit 0 on SIGTERM" >&2
  cat "$tmp/serve.err" >&2
  exit 1
fi
grep -q "drained:" "$tmp/serve.err" || {
  echo "check.sh: serve did not report a drain" >&2; exit 1; }
sid=$(sed -n 's/^send \([0-9][0-9]*\) .*drain-probe.*/\1/p' "$rec" | head -1)
admitted=$(grep -c "^send $sid " "$rec")
got=$(wc -l < "$tmp/c3.out")
if [ "$admitted" -ne "$got" ]; then
  echo "check.sh: drain dropped admitted requests ($admitted admitted, $got answered)" >&2
  exit 1
fi
"$relpipe" serve --replay "$rec" --cache-shards 4 --virtual-clock \
  -w 1 -o "$tmp/replay-w1.out"
"$relpipe" serve --replay "$rec" --cache-shards 4 --virtual-clock \
  -w 8 --exact-workers -o "$tmp/replay-w8.out"
if ! diff -q "$tmp/replay-w1.out" "$tmp/replay-w8.out" >/dev/null; then
  echo "check.sh: serve replay differs between -w 1 and -w 8" >&2
  diff "$tmp/replay-w1.out" "$tmp/replay-w8.out" >&2 || true
  exit 1
fi
[ -s "$tmp/replay-w1.out" ] || {
  echo "check.sh: serve replay produced no replies" >&2; exit 1; }

echo "== relpipe fuzz: smoke campaign =="
# 200 seeded cases across every oracle (including opt-vs-reference, which
# pins the optimized kernels to their frozen twins); any failure (exit 1)
# fails the gate and prints the minimized repro inline.
"$relpipe" fuzz --count 200 --seed 42 --all-oracles

echo "== relpipe churn: incremental == cold smoke (20 events) =="
# A seeded 20-event churn scenario re-solved incrementally must print the
# same solutions as a from-scratch replay (warm-start reuse must never
# change an answer), and --verify re-proves every step bit-for-bit
# against parallel cold solves.
churn_fix=test/fixtures/churn_grid.relpipe
"$relpipe" churn -i "$churn_fix" --max-failure 0.5 -e 20 -s 11 \
  --virtual-clock > "$tmp/churn-warm.out"
"$relpipe" churn -i "$churn_fix" --max-failure 0.5 -e 20 -s 11 --cold \
  --virtual-clock > "$tmp/churn-cold.out"
if ! diff -q "$tmp/churn-warm.out" "$tmp/churn-cold.out" >/dev/null; then
  echo "check.sh: churn warm run differs from --cold run" >&2
  diff "$tmp/churn-warm.out" "$tmp/churn-cold.out" >&2 || true
  exit 1
fi
"$relpipe" churn -i "$churn_fix" --max-failure 0.5 -e 20 -s 11 --verify \
  --workers 4 --exact-workers --virtual-clock > "$tmp/churn-verify.out"
grep -q "verify:  warm == cold on 21 steps" "$tmp/churn-verify.out" || {
  echo "check.sh: churn --verify did not confirm all 21 steps" >&2; exit 1; }

echo "== relpipe exact: parallel == serial byte-diff smoke =="
# The probe+confirm parallel B&B and the layer-parallel interval DP must
# print byte-identical answers — hex float bits included — at every
# worker count.
for leg in bb dp; do
  "$relpipe" exact -i examples/instances/fig5.relpipe -F 0.5 --leg "$leg" \
    --serial > "$tmp/exact-$leg-serial.out"
  for w in 2 8; do
    "$relpipe" exact -i examples/instances/fig5.relpipe -F 0.5 --leg "$leg" \
      -w "$w" > "$tmp/exact-$leg-w$w.out"
    if ! diff -q "$tmp/exact-$leg-serial.out" "$tmp/exact-$leg-w$w.out" \
      >/dev/null; then
      echo "check.sh: exact --leg $leg differs between --serial and -w $w" >&2
      diff "$tmp/exact-$leg-serial.out" "$tmp/exact-$leg-w$w.out" >&2 || true
      exit 1
    fi
  done
done
"$relpipe" exact -i examples/instances/lab-cluster.relpipe -F 0.5 --serial \
  > "$tmp/exact-lab-serial.out"
"$relpipe" exact -i examples/instances/lab-cluster.relpipe -F 0.5 -w 4 \
  > "$tmp/exact-lab-w4.out"
if ! diff -q "$tmp/exact-lab-serial.out" "$tmp/exact-lab-w4.out" >/dev/null
then
  echo "check.sh: exact bb on lab-cluster differs between --serial and -w 4" >&2
  diff "$tmp/exact-lab-serial.out" "$tmp/exact-lab-w4.out" >&2 || true
  exit 1
fi

echo "== relpipe cert: certify + independent-check gate =="
# Solve shipped instances with --certify and replay every certificate
# through the independent checker (lib/cert shares no solver code).  The
# gate is size-aware: B&B transcripts grow with the search tree
# (federation's is ~160 MB), so the bb leg covers fig5 and lab-cluster;
# the dp leg additionally covers federation (m=12, within the DP's
# 14-processor cap) — campus-grid and volunteer-network exceed it.
"$relpipe" solve -i examples/instances/fig5.relpipe -F 0.5 \
  --certify "$tmp/fig5.cert" >/dev/null
"$relpipe" cert -i examples/instances/fig5.relpipe "$tmp/fig5.cert" >/dev/null
"$relpipe" exact -i examples/instances/lab-cluster.relpipe -F 0.5 \
  --certify "$tmp/lab.cert" >/dev/null
"$relpipe" cert -i examples/instances/lab-cluster.relpipe "$tmp/lab.cert" \
  >/dev/null
for f in fig5 lab-cluster federation; do
  "$relpipe" exact -i "examples/instances/$f.relpipe" -F 0.5 --leg dp \
    --certify "$tmp/$f-dp.cert" >/dev/null
  "$relpipe" cert -i "examples/instances/$f.relpipe" "$tmp/$f-dp.cert" \
    >/dev/null
done
# Oversized instances are refused loudly, not silently skipped: the DP
# leg must reject volunteer-network (m=24, above the 14-processor cap).
if "$relpipe" exact -i examples/instances/volunteer-network.relpipe -F 0.5 \
  --leg dp >/dev/null 2>&1; then
  echo "check.sh: exact --leg dp accepted an oversized instance" >&2
  exit 1
fi
# Digest binding: a certificate checked against the wrong instance must
# be rejected (exit 1).
if "$relpipe" cert -i examples/instances/lab-cluster.relpipe \
  "$tmp/fig5.cert" >/dev/null 2>&1; then
  echo "check.sh: checker accepted a certificate for the wrong instance" >&2
  exit 1
fi

echo "== bench: kernel-twin smoke (virtual clock) =="
# The optimized-vs-reference twin harness must run, emit a well-formed v2
# report, and pass the regression gate against its own output.
bench=_build/default/bench/main.exe
"$bench" --kernels-only --virtual-clock --json "$tmp/bench.json" >/dev/null
for needle in '"version":2' '"virtual_clock":true' '"kernel":"interval-dp"' \
  '"kernel":"general-dp"' '"kernel":"bb"' '"speedup_lo"'; do
  if ! grep -q "$needle" "$tmp/bench.json"; then
    echo "check.sh: bench report is missing $needle" >&2
    exit 1
  fi
done
"$bench" --kernels-only --virtual-clock --against "$tmp/bench.json" >/dev/null

echo "== relpipe prof: virtual-clock snapshot =="
# Under --virtual-clock the profile is a pure function of the instance,
# so it must match the committed golden snapshot byte-for-byte.
"$relpipe" prof -i test/fixtures/clean_fully_hetero.relpipe \
  --max-failure 0.5 --virtual-clock > "$tmp/prof.out"
if ! diff -u test/snapshots/prof-clean-fully-hetero.snap "$tmp/prof.out"; then
  echo "check.sh: relpipe prof output drifted from the committed snapshot" >&2
  echo "check.sh: re-record with RELPIPE_SNAPSHOT_UPDATE=1 dune runtest" >&2
  exit 1
fi

echo "== dune build @doc =="
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "odoc not installed; skipping the doc build"
fi

echo "check.sh: all gates passed"
