#!/bin/sh
# Lint: ban polymorphic comparison in the shipped sources.
#
# Structural compare on floats silently mis-handles NaN (compare nan nan
# = 0 but nan <> nan) and on abstract types it depends on representation;
# every comparator must be a typed one (Int.compare, Float.compare,
# String.compare, a module's own compare, or Relpipe_util.Float_cmp for
# tolerant float ordering).
#
# Since the devlint PR this is a thin wrapper over the AST-grounded
# checker (`relpipe devlint --family compare`), which also catches the
# shadowed and float-equality forms the old grep missed.  The contract
# is unchanged: exit 0 when clean, 1 with the offending lines otherwise.

set -u
cd "$(dirname "$0")/.."

relpipe=_build/default/bin/relpipe_cli.exe
if [ ! -x "$relpipe" ]; then
  dune build bin/relpipe_cli.exe || exit 1
fi

if "$relpipe" devlint --family compare lib bin bench test; then
  echo "forbid.sh: clean"
  exit 0
else
  echo "forbid.sh: polymorphic/float comparison findings above" >&2
  exit 1
fi
