#!/bin/sh
# Grep-lint: ban polymorphic comparison in lib/.
#
# Structural compare on floats silently mis-handles NaN (compare nan nan
# = 0 but nan <> nan) and on abstract types it depends on representation;
# every comparator in lib/ must be a typed one (Int.compare,
# Float.compare, String.compare, a module's own compare, or
# Relpipe_util.Float_cmp for tolerant float ordering).
#
# Exit 0 when clean, 1 with the offending lines otherwise.

set -u
cd "$(dirname "$0")/.."

status=0

fail() {
  echo "forbid.sh: $1" >&2
  echo "$2" | sed 's/^/  /' >&2
  status=1
}

# Files under scrutiny: library sources, minus the one module allowed to
# touch Stdlib.compare (it implements the tolerant comparator).
files=$(find lib -name '*.ml' ! -path 'lib/util/float_cmp.ml')

# 1. Explicit Stdlib/Pervasives polymorphic compare.
hits=$(grep -n 'Stdlib\.compare\|Pervasives\.compare' $files /dev/null)
[ -n "$hits" ] && fail "Stdlib.compare is banned in lib/ (use a typed comparator)" "$hits"

# 2. Bare `compare` handed to a sort/uniq as the comparator.
hits=$(grep -nE '(List\.sort|List\.stable_sort|List\.sort_uniq|Array\.sort|Array\.stable_sort)[[:space:]]+compare\b' $files /dev/null)
[ -n "$hits" ] && fail "bare polymorphic compare used as a sort comparator" "$hits"

# 3. Bare `compare` applied to arguments (e.g. `compare (Platform.speed ...`)
#    or left dangling at end of line in a multi-line application.  Typed
#    comparators are Module.compare and never match \bcompare with no dot.
hits=$(grep -nE '(^|[^.A-Za-z_])compare[[:space:]]+\(' $files /dev/null | grep -v 'let compare')
[ -n "$hits" ] && fail "bare polymorphic compare applied to expressions" "$hits"

hits=$(grep -nE '(^|[^.A-Za-z_])compare[[:space:]]*$' $files /dev/null)
[ -n "$hits" ] && fail "bare polymorphic compare (dangling application)" "$hits"

if [ $status -eq 0 ]; then
  echo "forbid.sh: clean"
fi
exit $status
