(* relpipe command-line interface.

   Subcommands:
     describe     classify a platform and say which algorithm applies
     solve        solve a bi-criteria mapping problem from an instance file
     exact        run the exact kernels serial/parallel, optionally certified
     cert         independently check an optimality certificate
     simulate     Monte-Carlo-validate a solved mapping
     pareto       print the latency/reliability trade-off front
     batch        answer a JSONL stream of solve requests (cached, parallel)
     serve        daemon: the batch protocol over Unix/TCP sockets
     call         scripted client for a running serve daemon
     sweep        generate synthetic scenarios and batch-solve them
     atlas        stream a seeded Zipf/bursty workload with online aggregation
     experiments  regenerate every paper experiment (E1-E14)
     demo         write a sample instance file (the paper's Fig. 5) *)

open Cmdliner
open Relpipe_model
open Relpipe_core
module Service = Relpipe_service
module Serve = Relpipe_serve

(* Every file-loading subcommand shares this helper; parse failures are
   rendered through the Relpipe_analysis spans ("path:line:col:
   error[RP-P001]: ..."), exactly like `relpipe lint`. *)
let load_instance path = Relpipe_analysis.Analysis.load_instance_file path

let instance_arg =
  let doc = "Instance description file (see `relpipe demo` for the format)." in
  Arg.(required & opt (some file) None & info [ "i"; "instance" ] ~doc)

let objective_arg =
  let max_latency =
    let doc = "Minimize failure probability subject to this latency bound." in
    Arg.(value & opt (some float) None & info [ "L"; "max-latency" ] ~doc)
  in
  let max_failure =
    let doc = "Minimize latency subject to this failure-probability bound." in
    Arg.(value & opt (some float) None & info [ "F"; "max-failure" ] ~doc)
  in
  let combine l f =
    match l, f with
    | Some max_latency, None -> Ok (Instance.Min_failure { max_latency })
    | None, Some max_failure -> Ok (Instance.Min_latency { max_failure })
    | _ -> Error "pass exactly one of --max-latency or --max-failure"
  in
  Term.(term_result' (const combine $ max_latency $ max_failure))

let method_arg =
  let methods = Service.Protocol.method_names in
  let doc =
    Printf.sprintf "Solving method: %s."
      (String.concat ", " (List.map fst methods))
  in
  Arg.(value & opt (enum methods) Solver.Auto & info [ "m"; "method" ] ~doc)

let print_solution inst (s : Solution.t) =
  Format.printf "mapping:  %a@." Mapping.pp s.Solution.mapping;
  Format.printf "latency:  %g@." s.Solution.evaluation.Instance.latency;
  Format.printf "failure:  %g@." s.Solution.evaluation.Instance.failure;
  Format.printf "class:    %s@." (Solver.describe inst)

(* ------------------------------------------------------------------ *)

let describe_cmd =
  let run path =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst ->
        let platform = inst.Instance.platform in
        Format.printf "pipeline: %d stages, total work %g@."
          (Pipeline.length inst.Instance.pipeline)
          (Pipeline.total_work inst.Instance.pipeline);
        Format.printf "platform: %d processors@." (Platform.size platform);
        Format.printf "classes:  %a, %a@." Classify.pp_comm_class
          (Classify.comm_class platform)
          Classify.pp_failure_class
          (Classify.failure_class platform);
        Format.printf "dispatch: %s@." (Solver.describe inst);
        `Ok ()
  in
  let doc = "Classify an instance and report the applicable algorithm." in
  Cmd.v (Cmd.info "describe" ~doc)
    Term.(ret (const run $ instance_arg))

(* Certificate plumbing shared by `solve --certify`, `exact --certify`
   and `cert`.  The emitted text is written before the self-check so a
   rejected certificate is still on disk for inspection. *)
let write_certificate path cert =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Relpipe_cert.Cert.to_string cert))
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      Error (Printf.sprintf "cannot write certificate %s: %s" path msg)

let self_check_certificate ~path inst cert =
  match Relpipe_cert.Check.check inst cert with
  | Ok entries ->
      Format.printf "certificate: %s (%d entries, checker accepted)@." path
        entries;
      Ok ()
  | Error msg ->
      Error
        (Printf.sprintf "certificate self-check rejected %s: %s" path msg)

let certify_solution ~path inst objective =
  let best, cert = Certify.bb inst objective in
  match write_certificate path cert with
  | Error _ as e -> e
  | Ok () -> (
      match self_check_certificate ~path inst cert with
      | Error _ as e -> e
      | Ok () -> Ok best)

let solve_cmd =
  let certify_arg =
    let doc =
      "Write an optimality certificate (a replayable branch-and-bound \
       transcript) to $(docv) and replay it through the independent \
       checker before reporting.  Forces the exact branch-and-bound \
       solver; the answer is bit-identical to the uncertified solve."
    in
    Arg.(value & opt (some string) None & info [ "certify" ] ~docv:"FILE" ~doc)
  in
  let run path objective method_ certify =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        match certify with
        | Some cert_path -> (
            match certify_solution ~path:cert_path inst objective with
            | Error msg -> `Error (false, msg)
            | Ok (Some s) ->
                print_solution inst s;
                `Ok ()
            | Ok None ->
                Format.printf "no feasible mapping for %a@."
                  Instance.pp_objective objective;
                `Ok ()
            | exception Invalid_argument msg -> `Error (false, msg))
        | None -> (
            match Solver.solve ~method_ inst objective with
            | Some s ->
                print_solution inst s;
                `Ok ()
            | None ->
                Format.printf "no feasible mapping for %a@."
                  Instance.pp_objective objective;
                `Ok ()
            | exception Invalid_argument msg -> `Error (false, msg)
            | exception Exact.Too_large msg -> `Error (false, msg)))
  in
  let doc = "Solve a bi-criteria mapping problem." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(
      ret (const run $ instance_arg $ objective_arg $ method_arg $ certify_arg))

(* --- exact: the parallel/serial exact kernels, head to head --------- *)

let exact_cmd =
  let leg_arg =
    let doc =
      "Exact kernel to run: $(b,bb) (branch and bound, full bi-criteria \
       objective) or $(b,dp) (interval DP, unreplicated minimum latency; \
       the objective bound is ignored)."
    in
    Arg.(value & opt (enum [ ("bb", `Bb); ("dp", `Dp) ]) `Bb
         & info [ "leg" ] ~docv:"LEG" ~doc)
  in
  let workers_arg =
    let doc =
      "Run the parallel kernel over this many pool domains.  The answer \
       is bit-identical to $(b,--serial) at every worker count — diff the \
       outputs to check."
    in
    Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let serial_flag =
    let doc = "Run the serial kernel (the default)." in
    Arg.(value & flag & info [ "serial" ] ~doc)
  in
  let certify_arg =
    let doc =
      "Write the optimality certificate for the chosen leg to $(docv) and \
       replay it through the independent checker."
    in
    Arg.(value & opt (some string) None & info [ "certify" ] ~docv:"FILE" ~doc)
  in
  (* Hex floats alongside %g so serial-vs-parallel runs can be compared
     byte-for-byte (tools/check.sh does exactly that). *)
  let print_exact latency failure mapping =
    Format.printf "mapping:  %a@." Mapping.pp mapping;
    Format.printf "latency:  %g (%h)@." latency latency;
    match failure with
    | None -> ()
    | Some f -> Format.printf "failure:  %g (%h)@." f f
  in
  let run path objective leg workers serial certify =
    match (workers, serial) with
    | Some _, true -> `Error (true, "pass at most one of --workers and --serial")
    | _ -> (
        match load_instance path with
        | Error msg -> `Error (false, msg)
        | Ok inst -> (
            let finish_cert emit =
              match certify with
              | None -> Ok ()
              | Some cert_path -> (
                  match emit () with
                  | None -> Error "nothing to certify: no feasible mapping"
                  | Some cert -> (
                      match write_certificate cert_path cert with
                      | Error _ as e -> e
                      | Ok () -> self_check_certificate ~path:cert_path inst cert))
            in
            match leg with
            | `Bb -> (
                let solution =
                  match workers with
                  | None -> Bb.solve inst objective
                  | Some w -> Bb.solve_par ~workers:w inst objective
                in
                (match solution with
                 | Some s ->
                     print_exact s.Solution.evaluation.Instance.latency
                       (Some s.Solution.evaluation.Instance.failure)
                       s.Solution.mapping
                 | None ->
                     Format.printf "no feasible mapping for %a@."
                       Instance.pp_objective objective);
                match
                  finish_cert (fun () -> Some (snd (Certify.bb inst objective)))
                with
                | Ok () -> `Ok ()
                | Error msg -> `Error (false, msg))
            | `Dp -> (
                if Platform.size inst.Instance.platform > Interval_exact.max_procs
                then
                  `Error
                    ( false,
                      Printf.sprintf
                        "interval DP supports at most %d processors"
                        Interval_exact.max_procs )
                else
                  let opt =
                    match workers with
                    | None -> Interval_exact.min_latency inst
                    | Some w -> Interval_exact.min_latency_par ~workers:w inst
                  in
                  (match opt with
                   | Some (latency, mapping) -> print_exact latency None mapping
                   | None -> Format.printf "no interval mapping@.");
                  match
                    finish_cert (fun () -> snd (Certify.interval inst))
                  with
                  | Ok () -> `Ok ()
                  | Error msg -> `Error (false, msg))))
  in
  let doc = "Run the exact kernels, serial or parallel, optionally certified." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs one exact kernel directly: $(b,--leg bb) is the bi-criteria \
         branch and bound, $(b,--leg dp) the unreplicated interval DP.  \
         With $(b,-w N) the parallel twin runs over N pool domains; the \
         printed answer (including the hex float bits) is bit-identical \
         to the serial kernel at every worker count, so piping two runs \
         through $(b,diff) is a real determinism check.";
      `P
        "$(b,--certify FILE) additionally emits an optimality certificate \
         — a replayable search transcript for bb, a potential-function \
         table for dp — and replays it through the independent checker in \
         lib/cert, which shares no solver code.  $(b,relpipe cert) \
         re-checks a stored certificate later.";
    ]
  in
  Cmd.v (Cmd.info "exact" ~doc ~man)
    Term.(
      ret
        (const run $ instance_arg $ objective_arg $ leg_arg $ workers_arg
       $ serial_flag $ certify_arg))

(* --- cert: independent certificate checking ------------------------ *)

let cert_cmd =
  let cert_file_arg =
    let doc = "Certificate file written by solve/exact $(b,--certify)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CERTFILE" ~doc)
  in
  let run path cert_path =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        let text =
          In_channel.with_open_text cert_path In_channel.input_all
        in
        match Relpipe_cert.Cert.of_string text with
        | Error msg ->
            Format.eprintf "%s: unreadable certificate: %s@." cert_path msg;
            Stdlib.exit 1
        | Ok cert -> (
            match Relpipe_cert.Check.check inst cert with
            | Ok entries ->
                Format.printf "%s: accepted (%d entries)@." cert_path entries;
                `Ok ()
            | Error msg ->
                Format.eprintf "%s: REJECTED: %s@." cert_path msg;
                Stdlib.exit 1))
  in
  let doc = "Check an optimality certificate against an instance." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a certificate written by $(b,relpipe solve --certify) or \
         $(b,relpipe exact --certify) through the independent checker in \
         lib/cert.  The checker shares no code with the solvers: it \
         re-walks the branch-and-bound transcript (re-deriving every \
         bound and justifying every cut) or re-verifies the DP table as a \
         potential function, and binds the certificate to the instance \
         via its digest.";
      `P "Exit status is 1 when the certificate is rejected, 0 otherwise.";
    ]
  in
  Cmd.v (Cmd.info "cert" ~doc ~man)
    Term.(ret (const run $ instance_arg $ cert_file_arg))

let simulate_cmd =
  let trials_arg =
    let doc = "Number of Monte-Carlo trials." in
    Arg.(value & opt int 10_000 & info [ "t"; "trials" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc)
  in
  let run path objective method_ trials seed =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        match Solver.solve ~method_ inst objective with
        | None -> `Error (false, "no feasible mapping to simulate")
        | Some s ->
            print_solution inst s;
            let rng = Relpipe_util.Rng.create seed in
            let r =
              Relpipe_sim.Montecarlo.estimate rng inst s.Solution.mapping ~trials
                ~policy:Relpipe_sim.Trial.Optimistic
            in
            Format.printf "%a@." Relpipe_sim.Montecarlo.pp_result r;
            `Ok ()
        | exception Invalid_argument msg -> `Error (false, msg))
  in
  let doc = "Solve, then validate the mapping by Monte-Carlo simulation." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      ret (const run $ instance_arg $ objective_arg $ method_arg $ trials_arg
           $ seed_arg))

let pareto_cmd =
  let count_arg =
    let doc = "Number of latency thresholds to sweep." in
    Arg.(value & opt int 8 & info [ "n"; "points" ] ~doc)
  in
  let run path method_ count =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst ->
        let front =
          Pareto.front_with
            (fun inst objective -> Solver.solve ~method_ inst objective)
            inst ~count
        in
        let table =
          Relpipe_util.Table.create
            [ "threshold"; "latency"; "failure"; "intervals"; "replicas" ]
        in
        List.iter
          (fun p ->
            Relpipe_util.Table.add_row table
              [
                Relpipe_util.Table.fmt_float p.Pareto.threshold;
                Relpipe_util.Table.fmt_float
                  p.Pareto.solution.Solution.evaluation.Instance.latency;
                Relpipe_util.Table.fmt_float
                  p.Pareto.solution.Solution.evaluation.Instance.failure;
                string_of_int (Mapping.num_intervals p.Pareto.solution.Solution.mapping);
                string_of_int
                  (List.length (Mapping.used_procs p.Pareto.solution.Solution.mapping));
              ])
          front;
        Relpipe_util.Table.print table;
        `Ok ()
  in
  let doc = "Print the latency/reliability Pareto front of an instance." in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(ret (const run $ instance_arg $ method_arg $ count_arg))

let eval_cmd =
  let mapping_arg =
    let doc =
      "Mapping to evaluate, e.g. \"1:0; 2:1,2,3\" (stage range : processor \
       list, intervals separated by ';')."
    in
    Arg.(required & opt (some string) None & info [ "mapping" ] ~doc)
  in
  let run path objective mapping_text =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        let n = Pipeline.length inst.Instance.pipeline in
        let m = Platform.size inst.Instance.platform in
        match Mapping_syntax.parse ~n ~m mapping_text with
        | Error msg -> `Error (false, msg)
        | Ok mapping ->
            let s = Solution.of_mapping inst mapping in
            print_solution inst s;
            Format.printf "period:   %g@."
              (Period.of_mapping inst.Instance.pipeline inst.Instance.platform
                 mapping);
            let report = Validate.check inst objective s in
            Format.printf "%a@." Validate.pp report;
            if Validate.ok report then `Ok () else `Error (false, "validation failed"))
  in
  let doc = "Evaluate and certify a user-supplied mapping." in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(ret (const run $ instance_arg $ objective_arg $ mapping_arg))

let tri_cmd =
  let latency_arg =
    let doc = "Latency threshold." in
    Arg.(required & opt (some float) None & info [ "L"; "max-latency" ] ~doc)
  in
  let period_arg =
    let doc = "Period (inverse-throughput) threshold." in
    Arg.(required & opt (some float) None & info [ "P"; "max-period" ] ~doc)
  in
  let exact_arg =
    let doc = "Use the exhaustive solver (small instances only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run path max_latency max_period exact =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        let constraints = { Tri.max_latency; max_period } in
        let solve =
          if exact then Tri.exact_min_failure ?budget:None
          else Tri.greedy_min_failure
        in
        match solve inst constraints with
        | None ->
            Format.printf "no mapping satisfies latency <= %g and period <= %g@."
              max_latency max_period;
            `Ok ()
        | Some s ->
            Format.printf "mapping: %a@.%a@." Mapping.pp s.Tri.mapping
              Tri.pp_evaluation s.Tri.evaluation;
            `Ok ()
        | exception Exact.Too_large msg -> `Error (false, msg))
  in
  let doc =
    "Minimize failure probability under joint latency and period bounds \
     (tri-criteria extension)."
  in
  Cmd.v (Cmd.info "tri" ~doc)
    Term.(ret (const run $ instance_arg $ latency_arg $ period_arg $ exact_arg))

let goodput_cmd =
  let mission_arg =
    let doc =
      "Mission length (time units); failure rates are derived from each \
       processor's fp over this horizon."
    in
    Arg.(value & opt float 1000.0 & info [ "mission" ] ~doc)
  in
  let trials_arg =
    let doc = "Number of simulated missions." in
    Arg.(value & opt int 1000 & info [ "t"; "trials" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc)
  in
  let run path objective method_ mission trials seed =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst -> (
        match Solver.solve ~method_ inst objective with
        | None -> `Error (false, "no feasible mapping to simulate")
        | Some s ->
            print_solution inst s;
            let platform = inst.Instance.platform in
            let rates =
              Array.init (Platform.size platform) (fun u ->
                  Failure_rate.rate_of_fp ~fp:(Platform.failure platform u)
                    ~mission)
            in
            let rng = Relpipe_util.Rng.create seed in
            let goodputs =
              Array.init trials (fun _ ->
                  (Relpipe_sim.Lifetime.run rng inst s.Solution.mapping ~rates
                     ~mission)
                    .Relpipe_sim.Lifetime.goodput)
            in
            let empirical, analytic =
              Relpipe_sim.Lifetime.survival_estimate rng inst s.Solution.mapping
                ~rates ~mission ~trials
            in
            Format.printf "goodput: %a@."
              Relpipe_util.Stats.pp_summary
              (Relpipe_util.Stats.summarize goodputs);
            Format.printf "mission survival: empirical %.4f, analytic %.4f@."
              empirical analytic;
            `Ok ()
        | exception Invalid_argument msg -> `Error (false, msg))
  in
  let doc =
    "Solve, then measure goodput (fraction of the stream completed before \
     a compromise) over simulated missions."
  in
  Cmd.v (Cmd.info "goodput" ~doc)
    Term.(
      ret
        (const run $ instance_arg $ objective_arg $ method_arg $ mission_arg
        $ trials_arg $ seed_arg))

let experiments_cmd =
  let only_arg =
    let doc = "Only run experiments whose title contains this string (e.g. \"E5\")." in
    Arg.(value & opt (some string) None & info [ "only" ] ~doc)
  in
  let markdown_arg =
    let doc = "Emit GitHub-flavoured markdown tables." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let run only markdown =
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      nl = 0 || go 0
    in
    let selected =
      List.filter
        (fun (title, _) ->
          match only with None -> true | Some s -> contains s title)
        (Relpipe_experiments.Experiments.all ())
    in
    if selected = [] then `Error (false, "no experiment matches")
    else begin
      List.iter
        (fun (title, table) ->
          if markdown then begin
            Printf.printf "## %s\n\n" title;
            print_string (Relpipe_util.Table.render_markdown table)
          end
          else begin
            print_endline title;
            print_endline (String.make (String.length title) '=');
            Relpipe_util.Table.print table
          end;
          print_newline ())
        selected;
      `Ok ()
    end
  in
  let doc = "Regenerate the paper experiments (DESIGN.md E1-E23)." in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(ret (const run $ only_arg $ markdown_arg))

let catalog_cmd =
  let write_arg =
    let doc =
      "Write an instance file combining this preset platform with the JPEG \
       encoder pipeline."
    in
    Arg.(value & opt (some string) None & info [ "write" ] ~doc)
  in
  let out_arg =
    let doc = "Output path for --write." in
    Arg.(value & opt string "catalog.relpipe" & info [ "o"; "output" ] ~doc)
  in
  let run write out =
    match write with
    | None ->
        let table =
          Relpipe_util.Table.create
            ~aligns:[ Relpipe_util.Table.Left; Relpipe_util.Table.Right;
                      Relpipe_util.Table.Left; Relpipe_util.Table.Left ]
            [ "name"; "m"; "classes"; "description" ]
        in
        List.iter
          (fun e ->
            let p = e.Relpipe_workload.Catalog.platform in
            Relpipe_util.Table.add_row table
              [
                e.Relpipe_workload.Catalog.name;
                string_of_int (Platform.size p);
                Format.asprintf "%a, %a" Classify.pp_comm_class
                  (Classify.comm_class p) Classify.pp_failure_class
                  (Classify.failure_class p);
                e.Relpipe_workload.Catalog.description;
              ])
          Relpipe_workload.Catalog.all;
        Relpipe_util.Table.print table;
        `Ok ()
    | Some name -> (
        match Relpipe_workload.Catalog.find name with
        | None -> `Error (false, Printf.sprintf "unknown preset %S" name)
        | Some e ->
            let inst =
              Instance.make
                (Relpipe_workload.Jpeg.pipeline ())
                e.Relpipe_workload.Catalog.platform
            in
            Out_channel.with_open_text out (fun oc ->
                Out_channel.output_string oc
                  (Printf.sprintf "# %s: %s\n"
                     e.Relpipe_workload.Catalog.name
                     e.Relpipe_workload.Catalog.description
                  ^ Textio.to_string inst));
            Format.printf "wrote %s@." out;
            `Ok ())
  in
  let doc = "List the built-in platform presets, or export one as an instance." in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(ret (const run $ write_arg $ out_arg))

let lint_cmd =
  let module A = Relpipe_analysis in
  let file_arg =
    let doc =
      "Instance file to lint.  Omit when using $(b,--rules) or \
       $(b,--builtin)."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc = "Output format: text or json." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc)
  in
  let mapping_arg =
    let doc =
      "Also lint this mapping (e.g. \"1-2:0; 3:1,2\") against the instance."
    in
    Arg.(value & opt (some string) None & info [ "mapping" ] ~doc)
  in
  let rules_flag =
    let doc = "Print the rule catalog and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let builtin_flag =
    let doc =
      "Lint the built-in catalog presets and paper scenarios instead of a \
       file."
    in
    Arg.(value & flag & info [ "builtin" ] ~doc)
  in
  let print_rules () =
    let table =
      Relpipe_util.Table.create
        ~aligns:
          [ Relpipe_util.Table.Left; Relpipe_util.Table.Left;
            Relpipe_util.Table.Left; Relpipe_util.Table.Left ]
        [ "id"; "severity"; "pass"; "title" ]
    in
    List.iter
      (fun r ->
        Relpipe_util.Table.add_row table
          [
            r.A.Rule.id;
            A.Severity.to_string r.A.Rule.severity;
            A.Rule.pass_name r.A.Rule.pass;
            r.A.Rule.title;
          ])
      (A.Analysis.rules ());
    Relpipe_util.Table.print table
  in
  let report_text ~file diags =
    if diags = [] then Format.printf "%s: clean@." file
    else
      List.iter (fun d -> Format.printf "%a@." (A.Diagnostic.pp ~file) d) diags
  in
  (* Exit reflects the worst finding: 2 on errors, 1 on warnings, 0
     otherwise (hints are informational). *)
  let finish diags =
    let code = A.Diagnostic.exit_code diags in
    if code = 0 then `Ok ()
    else begin
      Format.print_flush ();
      Stdlib.exit code
    end
  in
  let builtin_instances () =
    let jpeg = Relpipe_workload.Jpeg.pipeline () in
    List.map
      (fun e ->
        ( "catalog:" ^ e.Relpipe_workload.Catalog.name,
          Instance.make jpeg e.Relpipe_workload.Catalog.platform ))
      Relpipe_workload.Catalog.all
    @ [
        ("scenario:fig34", Relpipe_workload.Scenarios.fig34 ());
        ("scenario:fig5", Relpipe_workload.Scenarios.fig5 ());
        ( "scenario:grid",
          Relpipe_workload.Scenarios.grid_instance (Relpipe_util.Rng.create 7) );
      ]
  in
  let run file format mapping rules builtin =
    if rules then begin
      print_rules ();
      `Ok ()
    end
    else if builtin then begin
      let diags =
        List.concat_map
          (fun (name, inst) ->
            let ds = A.Analysis.lint_instance inst in
            (match format with `Text -> report_text ~file:name ds | `Json -> ());
            ds)
          (builtin_instances ())
      in
      if format = `Json then
        print_endline (A.Diagnostic.report_to_json ~file:"<builtin>" diags);
      finish diags
    end
    else
      match file with
      | None ->
          `Error (true, "pass an instance FILE (or --rules / --builtin)")
      | Some path ->
          let text = In_channel.with_open_text path In_channel.input_all in
          let instance_diags = A.Analysis.lint_instance_text text in
          let mapping_diags =
            match mapping with
            | None -> []
            | Some mtext -> (
                (* Mapping rules need the instance's shape; skip (with an
                   error already reported) when it does not even parse. *)
                match Textio.parse text with
                | Error _ -> []
                | Ok inst ->
                    let n = Pipeline.length inst.Instance.pipeline in
                    let m = Platform.size inst.Instance.platform in
                    A.Analysis.lint_mapping_text ~n ~m mtext)
          in
          (match format with
          | `Text ->
              report_text ~file:path instance_diags;
              if mapping <> None then
                report_text ~file:"<mapping>" mapping_diags
          | `Json ->
              print_endline
                (A.Diagnostic.report_to_json ~file:path
                   (instance_diags @ mapping_diags)));
          finish (instance_diags @ mapping_diags)
  in
  let doc = "Statically check an instance (and optionally a mapping)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the $(b,relpipe.analysis) diagnostics engine: the instance \
         pass (domain errors, connectivity, dominance), the numeric pass \
         (underflow/absorption hazards) and, with $(b,--mapping), the \
         mapping pass (contiguity, replication, one-port effects).";
      `P
        "Exit status is 2 if any error was reported, 1 if any warning, 0 \
         otherwise.";
    ]
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      ret
        (const run $ file_arg $ format_arg $ mapping_arg $ rules_flag
       $ builtin_flag))

(* ------------------------------------------------------------------ *)
(* Batch service                                                       *)
(* ------------------------------------------------------------------ *)

let workers_arg =
  let doc =
    "Worker domains for the solve phase (0 = all CPUs).  Clamped to the \
     detected CPU count unless $(b,--exact-workers) is set."
  in
  Arg.(value & opt int 0 & info [ "w"; "workers" ] ~doc)

let exact_workers_arg =
  let doc =
    "Spawn exactly the requested number of domains, even beyond the CPU \
     count (oversubscription; used by tests to exercise scheduling on \
     small machines).  Output is byte-identical either way."
  in
  Arg.(value & flag & info [ "exact-workers" ] ~doc)

let cache_size_arg =
  let doc = "Result-cache capacity (canonical instances; 0 disables)." in
  Arg.(value & opt int 1024 & info [ "cache-size" ] ~doc)

let stats_flag =
  let doc = "Print engine and cache counters to stderr after the batch." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let output_arg =
  let doc = "Write JSONL responses here ($(b,-) = stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc)

let make_engine ?obs ?(cache_shards = 1) ~workers ~exact_workers ~cache_size ()
    =
  let workers =
    if workers <= 0 then Service.Pool.cpu_count () else workers
  in
  Service.Engine.create ?obs ~workers ~cap_to_cpus:(not exact_workers)
    ~cache_capacity:cache_size ~cache_shards ()

(* Write failures on the response sink (unwritable path, ENOSPC, a
   closed pipe) surface as a typed CLI error naming the path, never an
   uncaught Sys_error — and never a silently truncated batch. *)
let with_output path f =
  let name = if path = "-" then "stdout" else path in
  match
    match path with
    | "-" ->
        f stdout;
        flush stdout
    | path ->
        (* Flush inside the guarded region: with_open_text closes with
           close_noerr, which would swallow an ENOSPC at close time. *)
        Out_channel.with_open_text path (fun oc ->
            f oc;
            Out_channel.flush oc)
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      Error (Printf.sprintf "cannot write %s: %s" name msg)

let finish_batch engine stats =
  if stats then
    Format.eprintf "%a@." Service.Engine.pp_stats (Service.Engine.stats engine)

let metrics_arg =
  let doc = "Write a JSONL metric snapshot here after the batch." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc = "Write the JSONL span/event trace here after the batch." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let virtual_clock_flag =
  let doc =
    "Timestamp metrics and traces with a deterministic virtual clock \
     (fixed tick per reading) instead of the monotonic clock, so the \
     files are byte-identical across runs and worker counts."
  in
  Arg.(value & flag & info [ "virtual-clock" ] ~doc)

let make_obs ~tracing ~virtual_clock =
  let clock =
    if virtual_clock then Relpipe_obs.Clock.virtual_ ()
    else Relpipe_obs.Clock.monotonic ()
  in
  Relpipe_obs.Obs.create ~tracing ~clock ()

(* Observability sinks are opened eagerly, before any solving, so a bad
   path fails the command instead of discarding a finished batch. *)
let open_sink = function
  | None -> Ok None
  | Some path -> (
      match Out_channel.open_text path with
      | oc -> Ok (Some oc)
      | exception Sys_error msg -> Error msg)

let close_sink = function
  | None -> ()
  | Some oc -> Out_channel.close oc

let write_sink sink content =
  match sink with
  | None -> ()
  | Some oc ->
      Out_channel.output_string oc content;
      Out_channel.close oc

let batch_cmd =
  let input_arg =
    let doc = "JSONL request file ($(b,-) = stdin), one request per line." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"REQUESTS" ~doc)
  in
  let run input output workers exact_workers cache_size stats metrics trace
      virtual_clock =
    match (open_sink metrics, open_sink trace) with
    | Error msg, other ->
        (match other with Ok s -> close_sink s | Error _ -> ());
        `Error (false, msg)
    | Ok metrics_sink, Error msg ->
        close_sink metrics_sink;
        `Error (false, msg)
    | Ok metrics_sink, Ok trace_sink -> (
        match
          match input with
          | "-" -> In_channel.input_lines stdin
          | path -> In_channel.with_open_text path In_channel.input_lines
        with
        | exception Sys_error msg ->
            close_sink metrics_sink;
            close_sink trace_sink;
            `Error (false, msg)
        | lines -> (
            let obs =
              match (metrics_sink, trace_sink) with
              | None, None -> None
              | _ ->
                  Some
                    (make_obs
                       ~tracing:(Option.is_some trace_sink)
                       ~virtual_clock)
            in
            let engine = make_engine ?obs ~workers ~exact_workers ~cache_size () in
            let responses = Service.Engine.run_lines engine lines in
            match
              with_output output (fun oc ->
                  List.iter
                    (fun line ->
                      Out_channel.output_string oc line;
                      Out_channel.output_char oc '\n')
                    responses)
            with
            | Error msg ->
                close_sink metrics_sink;
                close_sink trace_sink;
                `Error (false, msg)
            | Ok () ->
                (match obs with
                | None -> ()
                | Some o ->
                    write_sink metrics_sink (Relpipe_obs.Obs.metrics_jsonl o);
                    write_sink trace_sink (Relpipe_obs.Obs.trace_jsonl o));
                finish_batch engine stats;
                `Ok ()))
  in
  let doc = "Batch-solve a JSON-lines request stream." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line, answers through the \
         $(b,relpipe.service) engine (canonicalization, LRU result cache, \
         Domain worker pool) and writes one JSON response per line, in \
         request order.  Output is deterministic: byte-identical for every \
         worker count.";
      `P
        "Request: {\"v\":1, \"id\":..., \"instance\":TEXT | \
         \"instance_file\":PATH, \"objective\":{\"minimize\":\"failure\", \
         \"max_latency\":L} | {\"minimize\":\"latency\",\"max_failure\":F}, \
         \"method\":NAME, \"budget\":N}.";
      `P
        "Response: {\"v\":1, \"index\":I, \"id\":..., \
         \"cache\":\"hit\"|\"miss\", \"status\":\"ok\"|\"infeasible\"|\
         \"error\", ...}.  Malformed lines yield per-line error responses, \
         never a failed batch.";
      `P
        "$(b,--metrics) and $(b,--trace) record counters, phase spans and \
         per-job timings without changing a single response byte; with \
         $(b,--virtual-clock) the recorded files are themselves \
         byte-deterministic for every worker count.";
    ]
  in
  Cmd.v (Cmd.info "batch" ~doc ~man)
    Term.(
      ret
        (const run $ input_arg $ output_arg $ workers_arg $ exact_workers_arg
       $ cache_size_arg $ stats_flag $ metrics_arg $ trace_arg
       $ virtual_clock_flag))

let prof_cmd =
  let run path objective method_ virtual_clock =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst ->
        let obs = make_obs ~tracing:true ~virtual_clock in
        let engine = Service.Engine.create ~obs ~workers:1 () in
        let r = Service.Engine.solve_instance engine ~method_ inst objective in
        (match r.Service.Protocol.r_outcome with
        | Service.Protocol.Solved { mapping; latency; failure } ->
            Format.printf "status:   solved@.";
            Format.printf "mapping:  %s@." mapping;
            Format.printf "latency:  %g@." latency;
            Format.printf "failure:  %g@." failure
        | Service.Protocol.Infeasible -> Format.printf "status:   infeasible@."
        | Service.Protocol.Failed msg ->
            Format.printf "status:   error (%s)@." msg);
        let module T = Relpipe_util.Table in
        print_newline ();
        let phases = T.create [ "span"; "start_ns"; "dur_ns" ] in
        (match obs.Relpipe_obs.Obs.trace with
        | None -> ()
        | Some tr ->
            List.iter
              (fun (ev : Relpipe_obs.Trace.event) ->
                match ev.Relpipe_obs.Trace.dur with
                | Some d
                  when String.starts_with ~prefix:"engine." ev.Relpipe_obs.Trace.name
                  ->
                    T.add_row phases
                      [
                        ev.Relpipe_obs.Trace.name;
                        string_of_int ev.Relpipe_obs.Trace.ts;
                        string_of_int d;
                      ]
                | _ -> ())
              (Relpipe_obs.Trace.events tr));
        print_string (T.render phases);
        print_newline ();
        let metrics = T.create [ "metric"; "value" ] in
        List.iter
          (fun (name, view) ->
            let value =
              match view with
              | Relpipe_obs.Metric.Counter_v v | Relpipe_obs.Metric.Gauge_v v ->
                  string_of_int v
              | Relpipe_obs.Metric.Histogram_v { count; sum } ->
                  Printf.sprintf "n=%d sum=%s" count (T.fmt_float sum)
            in
            T.add_row metrics [ name; value ])
          (Relpipe_obs.Metric.bindings obs.Relpipe_obs.Obs.metrics);
        print_string (T.render metrics);
        `Ok ()
  in
  let doc = "Profile one solve: per-phase spans and solver counters." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Solves one instance through the batch engine with tracing and \
         metrics enabled, then prints the recorded $(b,engine.*) spans \
         (start and duration in nanoseconds) and every counter, gauge and \
         histogram the run touched — DP cell and relaxation counts, \
         branch-and-bound node/prune totals, cache and pool activity.";
      `P
        "With $(b,--virtual-clock) timestamps come from a deterministic \
         tick, so the report is byte-stable across runs and machines — the \
         golden-snapshot tests and $(b,tools/check.sh) pin it \
         byte-for-byte.";
    ]
  in
  Cmd.v (Cmd.info "prof" ~doc ~man)
    Term.(
      ret
        (const run $ instance_arg $ objective_arg $ method_arg
       $ virtual_clock_flag))

let sweep_cmd =
  let count_arg =
    let doc = "Number of scenarios to generate." in
    Arg.(value & opt int 50 & info [ "n"; "count" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed for the generators." in
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc)
  in
  let class_arg =
    let classes =
      [
        ("fully-hetero", `Fully_hetero);
        ("comm-homog", `Comm_homog);
        ("fully-homog", `Fully_homog);
        ("speed-correlated", `Speed_correlated);
        ("clustered", `Clustered);
        ("two-tier", `Two_tier);
      ]
    in
    let doc =
      Printf.sprintf "Platform class to sample: %s."
        (String.concat ", " (List.map fst classes))
    in
    Arg.(value & opt (enum classes) `Fully_hetero & info [ "class" ] ~doc)
  in
  let stages_arg =
    let doc = "Pipeline length of each scenario." in
    Arg.(value & opt int 8 & info [ "stages" ] ~doc)
  in
  let procs_arg =
    let doc = "Platform size of each scenario." in
    Arg.(value & opt int 6 & info [ "procs" ] ~doc)
  in
  let emit_arg =
    let doc = "Also write the generated requests as JSONL to this file." in
    Arg.(value & opt (some string) None & info [ "emit-requests" ] ~doc)
  in
  let dry_run_arg =
    let doc = "Generate (and $(b,--emit-requests)) only; skip solving." in
    Arg.(value & flag & info [ "dry-run" ] ~doc)
  in
  let gen_platform rng class_ ~m =
    let module P = Relpipe_workload.Plat_gen in
    let module Rng = Relpipe_util.Rng in
    match class_ with
    | `Fully_hetero ->
        P.random_fully_heterogeneous rng ~m ~speed:(1.0, 10.0)
          ~failure:(0.05, 0.6) ~bandwidth:(0.5, 10.0)
    | `Comm_homog ->
        P.random_comm_homogeneous rng ~m ~speed:(1.0, 10.0)
          ~failure:(0.05, 0.6) ~bandwidth:4.0
    | `Fully_homog ->
        P.fully_homogeneous ~m
          ~speed:(Rng.float_range rng 1.0 10.0)
          ~failure:(Rng.float_range rng 0.05 0.6)
          ~bandwidth:(Rng.float_range rng 1.0 10.0)
    | `Speed_correlated ->
        P.speed_correlated_failures rng ~m ~speed:(1.0, 10.0)
          ~failure:(0.05, 0.8) ~bandwidth:4.0
    | `Clustered ->
        P.clustered rng ~clusters:(max 1 (m / 4)) ~cluster_size:4
          ~speed:(1.0, 10.0) ~failure:(0.05, 0.6) ~intra_bandwidth:10.0
          ~inter_bandwidth:1.0 ~io_bandwidth:2.0
    | `Two_tier ->
        P.two_tier ~m_slow:1 ~m_fast:(max 1 (m - 1)) ~slow_speed:1.0
          ~fast_speed:100.0 ~slow_failure:0.1 ~fast_failure:0.8 ~bandwidth:1.0
  in
  let run count seed class_ n m objective method_ output workers exact_workers
      cache_size stats emit dry_run =
    if count <= 0 then `Error (false, "--count must be positive")
    else begin
      let rng = Relpipe_util.Rng.create seed in
      let requests =
        Array.init count (fun k ->
            let pipeline =
              Relpipe_workload.App_gen.random rng
                {
                  Relpipe_workload.App_gen.n;
                  work = (1.0, 20.0);
                  data = (0.5, 10.0);
                }
            in
            let platform = gen_platform rng class_ ~m in
            let inst = Instance.make pipeline platform in
            Service.Protocol.request
              ~id:(Printf.sprintf "sweep-%03d" k)
              ~method_
              ~instance:(Service.Protocol.Inline (Textio.to_string inst))
              objective)
      in
      (match emit with
      | None -> ()
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Array.iter
                (fun r ->
                  Out_channel.output_string oc
                    (Service.Protocol.encode_request r);
                  Out_channel.output_char oc '\n')
                requests);
          Format.eprintf "wrote %d requests to %s@." count path);
      if dry_run then `Ok ()
      else begin
        let engine = make_engine ~workers ~exact_workers ~cache_size () in
        let responses = Service.Engine.run_requests engine requests in
        match
          with_output output (fun oc ->
              Array.iter
                (fun r ->
                  Out_channel.output_string oc
                    (Service.Protocol.encode_response r);
                  Out_channel.output_char oc '\n')
                responses)
        with
        | Error msg -> `Error (false, msg)
        | Ok () ->
            finish_batch engine stats;
            `Ok ()
      end
    end
  in
  let doc =
    "Generate synthetic scenarios and push them through the batch engine."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Samples $(b,--count) instances from the $(b,Relpipe_workload) \
         generators (platform class selected with $(b,--class), shape with \
         $(b,--stages)/$(b,--procs)) and batch-solves them with the same \
         cached parallel engine as $(b,relpipe batch), replacing ad-hoc \
         sequential experiment loops.  With $(b,--emit-requests) the \
         generated batch is also written as JSONL, so it can be replayed, \
         diffed across worker counts, or turned into a regression \
         fixture.";
    ]
  in
  Cmd.v (Cmd.info "sweep" ~doc ~man)
    Term.(
      ret
        (const run $ count_arg $ seed_arg $ class_arg $ stages_arg $ procs_arg
       $ objective_arg $ method_arg $ output_arg $ workers_arg
       $ exact_workers_arg $ cache_size_arg $ stats_flag $ emit_arg
       $ dry_run_arg))

let atlas_cmd =
  let module Stream_gen = Relpipe_workload.Stream_gen in
  let requests_arg =
    let doc = "Stream length (number of requests to replay)." in
    Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~doc)
  in
  let seed_arg =
    let doc = "Master seed for the workload (pool, slots and gaps)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let pool_arg =
    let doc = "Distinct instances in the workload pool." in
    Arg.(value & opt int Stream_gen.default_spec.Stream_gen.pool & info [ "pool" ] ~doc)
  in
  let zipf_arg =
    let doc = "Zipf skew exponent of slot popularity (0 = uniform)." in
    Arg.(
      value
      & opt float Stream_gen.default_spec.Stream_gen.zipf_s
      & info [ "zipf" ] ~doc)
  in
  let burst_arg =
    let doc = "Mean arrival burst length (>= 1)." in
    Arg.(
      value
      & opt float Stream_gen.default_spec.Stream_gen.burst
      & info [ "burst" ] ~doc)
  in
  let chunk_arg =
    let doc =
      "Requests per engine call — the only stream-length-proportional \
       buffer the driver holds."
    in
    Arg.(value & opt int 512 & info [ "chunk" ] ~doc)
  in
  let unix_arg =
    let doc =
      "Stream through a running $(b,relpipe serve) daemon on this Unix \
       socket instead of an in-process engine."
    in
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)
  in
  let gc_stats_flag =
    let doc =
      "Print allocation counters ($(b,Gc.quick_stat)) to stderr after the \
       run — the constant-memory guard in check.sh parses these."
    in
    Arg.(value & flag & info [ "gc-stats" ] ~doc)
  in
  let daemon_solve c reqs =
    (* Lockstep per request: the daemon answers every line in order, and
       strict call/reply alternation cannot deadlock on full socket
       buffers however large the chunk is. *)
    Array.map
      (fun r ->
        match Serve.Client.call c (Service.Protocol.encode_request r) with
        | None -> failwith "atlas: server closed the stream mid-chunk"
        | Some line -> (
            match Service.Protocol.decode_response line with
            | Ok resp -> resp
            | Error msg -> failwith ("atlas: bad response line: " ^ msg)))
      reqs
  in
  let run requests seed pool zipf burst chunk unix_path output workers
      exact_workers cache_size stats metrics virtual_clock gc_stats =
    let spec =
      {
        Stream_gen.default_spec with
        Stream_gen.pool;
        zipf_s = zipf;
        burst;
      }
    in
    match Stream_gen.validate spec with
    | Error msg -> `Error (true, "atlas: " ^ msg)
    | Ok () -> (
        match open_sink metrics with
        | Error msg -> `Error (false, msg)
        | Ok metrics_sink -> (
            let obs =
              match metrics_sink with
              | None -> None
              | Some _ -> Some (make_obs ~tracing:false ~virtual_clock)
            in
            let entries = Stream_gen.pool_entries ~seed spec in
            let slots =
              Array.map
                (fun (e : Stream_gen.entry) ->
                  match
                    Service.Protocol.method_of_string e.Stream_gen.method_name
                  with
                  | Ok m ->
                      {
                        Service.Atlas.sl_text = e.Stream_gen.text;
                        sl_objective = e.Stream_gen.objective;
                        sl_method = m;
                        sl_class = e.Stream_gen.plat_class;
                      }
                  | Error msg -> failwith ("atlas: " ^ msg))
                entries
            in
            let source =
              {
                Service.Atlas.slots;
                events =
                  (fun f ->
                    Stream_gen.iter ~seed spec ~n:requests (fun ev ->
                        f
                          {
                            Service.Atlas.ev_index = ev.Stream_gen.ev_index;
                            ev_slot = ev.Stream_gen.ev_slot;
                            ev_gap_ns = ev.Stream_gen.ev_gap_ns;
                          }));
              }
            in
            let finish report =
              (match obs with
              | None -> ()
              | Some o ->
                  write_sink metrics_sink (Relpipe_obs.Obs.metrics_jsonl o));
              if gc_stats then begin
                let st = Gc.quick_stat () in
                Printf.eprintf
                  "gc: top_heap_words=%d heap_words=%d minor_collections=%d \
                   major_collections=%d\n\
                   %!"
                  st.Gc.top_heap_words st.Gc.heap_words st.Gc.minor_collections
                  st.Gc.major_collections
              end;
              with_output output (fun oc ->
                  Out_channel.output_string oc
                    (Service.Atlas.render report))
            in
            match
              match unix_path with
              | None ->
                  let engine =
                    make_engine ?obs ~workers ~exact_workers ~cache_size ()
                  in
                  let report =
                    Service.Atlas.run ?obs ~chunk
                      ~solve:(Service.Engine.run_requests engine)
                      source
                  in
                  finish_batch engine stats;
                  finish report
              | Some path -> (
                  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
                  match Serve.Client.connect (`Unix path) with
                  | exception Unix.Unix_error (e, _, _) ->
                      Error ("connect: " ^ Unix.error_message e)
                  | c ->
                      let hello =
                        Serve.Client.call c
                          (Service.Protocol.encode_control
                             (Service.Protocol.hello ~client:"atlas" ()))
                      in
                      (match hello with
                      | Some _ -> ()
                      | None -> failwith "atlas: no hello reply");
                      let report =
                        Service.Atlas.run ?obs ~chunk ~solve:(daemon_solve c)
                          source
                      in
                      Serve.Client.finish_sending c;
                      Serve.Client.close c;
                      finish report)
            with
            | Ok () -> `Ok ()
            | Error msg ->
                close_sink metrics_sink;
                `Error (false, msg)
            | exception Failure msg ->
                close_sink metrics_sink;
                `Error (false, msg)))
  in
  let doc = "Stream a seeded million-request workload through the engine." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates a Zipf-skewed, bursty request stream over a bounded \
         pool of distinct instances (mixed platform classes and solver \
         methods) and streams it through the cached parallel engine — or a \
         live $(b,relpipe serve) daemon with $(b,--unix) — without ever \
         materializing the batch.  Aggregation is fully online (mergeable \
         quantile sketches, exponential smoothing, a bloom-filter \
         duplicate tracker), so peak memory is independent of \
         $(b,--requests).";
      `P
        "The report (outcome counts, cache hit rate and curve, latency \
         percentiles, arrival rates, per-class mix) derives only from \
         response contents and the event sequence, so it is byte-identical \
         at every worker count; the snapshot tests pin it at workers 1, 2 \
         and 8.";
    ]
  in
  Cmd.v (Cmd.info "atlas" ~doc ~man)
    Term.(
      ret
        (const run $ requests_arg $ seed_arg $ pool_arg $ zipf_arg $ burst_arg
       $ chunk_arg $ unix_arg $ output_arg $ workers_arg $ exact_workers_arg
       $ cache_size_arg $ stats_flag $ metrics_arg $ virtual_clock_flag
       $ gc_stats_flag))

let fuzz_cmd =
  let module Fuzz = Relpipe_fuzz in
  let seed_arg =
    let doc = "Master seed; the whole campaign is a pure function of it." in
    Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc)
  in
  let count_arg =
    let doc = "Number of random cases to generate." in
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~doc)
  in
  let oracle_arg =
    let doc =
      "Run only this oracle (repeatable; see $(b,--list-oracles))."
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let all_flag =
    let doc =
      "Run every registered oracle (explicit form of the default when no \
       $(b,--oracle) is given; overrides $(b,--oracle))."
    in
    Arg.(value & flag & info [ "all-oracles" ] ~doc)
  in
  let list_flag =
    let doc = "Print the oracle registry and exit." in
    Arg.(value & flag & info [ "list-oracles" ] ~doc)
  in
  let max_stages_arg =
    let doc = "Largest pipeline length to generate." in
    Arg.(
      value
      & opt int Fuzz.Gen.default_shape.Fuzz.Gen.max_stages
      & info [ "max-stages" ] ~doc)
  in
  let max_procs_arg =
    let doc = "Largest platform size to generate." in
    Arg.(
      value
      & opt int Fuzz.Gen.default_shape.Fuzz.Gen.max_procs
      & info [ "max-procs" ] ~doc)
  in
  let out_dir_arg =
    let doc =
      "Write each minimized counterexample here as a replayable \
       $(b,.relpipe) file."
    in
    Arg.(value & opt (some string) None & info [ "out-dir" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a repro file written by a failing campaign (repeatable); \
       skips generation."
    in
    Arg.(value & opt_all file [] & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let perturb_arg =
    let doc =
      "Harness self-test: inject a relative fault of this size into the \
       interval-DP latency, so the $(b,interval-dp) oracle must fail and \
       produce a minimized repro."
    in
    Arg.(value & opt float 0.0 & info [ "perturb" ] ~doc)
  in
  let run seed count oracle_names all_oracles list max_stages max_procs workers
      exact_workers out_dir replays perturb =
    if list then begin
      print_string (Fuzz.Runner.list_oracles_text ());
      `Ok ()
    end
    else if replays <> [] then begin
      let ctx = { Fuzz.Oracle.perturb } in
      let failed = ref false in
      List.iter
        (fun path ->
          match Fuzz.Corpus.replay_file ~ctx path with
          | Error msg ->
              failed := true;
              Printf.printf "%s: error: %s\n" path msg
          | Ok outcome ->
              if Fuzz.Oracle.is_fail outcome then failed := true;
              Printf.printf "%s: %s\n" path
                (Fuzz.Oracle.outcome_to_string outcome))
        replays;
      if !failed then begin
        Stdlib.flush Stdlib.stdout;
        Stdlib.exit 1
      end;
      `Ok ()
    end
    else begin
      let oracles =
        if all_oracles || oracle_names = [] then Ok (Fuzz.Oracles.all ())
        else
          List.fold_left
            (fun acc name ->
              match acc with
              | Error _ -> acc
              | Ok os -> (
                  match Fuzz.Oracles.find name with
                  | Some o -> Ok (os @ [ o ])
                  | None ->
                      Error
                        (Printf.sprintf
                           "unknown oracle %S (try --list-oracles)" name)))
            (Ok []) oracle_names
      in
      match oracles with
      | Error msg -> `Error (false, msg)
      | Ok _ when count < 0 -> `Error (false, "--count must be non-negative")
      | Ok _ when max_stages < 1 || max_procs < 1 ->
          `Error (false, "--max-stages and --max-procs must be positive")
      | Ok oracles ->
          let workers =
            Service.Pool.effective_workers ~cap:(not exact_workers)
              (if workers <= 0 then Service.Pool.cpu_count () else workers)
          in
          let report =
            Fuzz.Runner.run
              {
                Fuzz.Runner.seed;
                count;
                oracles;
                max_stages;
                max_procs;
                workers;
                perturb;
                out_dir;
                obs = None;
              }
          in
          print_string (Fuzz.Runner.render report);
          if report.Fuzz.Runner.r_failures <> [] then begin
            Stdlib.flush Stdlib.stdout;
            Stdlib.exit 1
          end;
          `Ok ()
    end
  in
  let doc =
    "Differential fuzzing: random instances, cross-checking oracles, \
     delta-shrinking."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates seeded random instances across the paper's three \
         platform classes and checks a registry of invariants: exact-DP \
         vs brute-force agreement, shortest-path bounds, heuristic Pareto \
         dominance, validator/lint acceptance, canonicalization symmetry \
         and print/parse round-trips ($(b,--list-oracles) for the full \
         list).";
      `P
        "Campaigns are byte-deterministic: the report depends only on the \
         configuration, never on the worker count.  On failure the \
         offending instance is delta-shrunk (stages and processors \
         dropped, costs rounded) to a minimal repro, printed inline and, \
         with $(b,--out-dir), written as a $(b,.relpipe) file that \
         $(b,--replay) re-checks.";
      `P "Exit status is 1 when any oracle failed, 0 otherwise.";
    ]
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      ret
        (const run $ seed_arg $ count_arg $ oracle_arg $ all_flag $ list_flag
       $ max_stages_arg $ max_procs_arg $ workers_arg $ exact_workers_arg
       $ out_dir_arg $ replay_arg $ perturb_arg))

let devlint_cmd =
  let module DL = Relpipe_devlint in
  let module A = Relpipe_analysis in
  let paths_arg =
    let doc =
      "Files or directories to analyze.  Defaults to lib bin bench test \
       (run from the repository root)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let format_arg =
    let doc = "Output format: text or json." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~doc)
  in
  let list_rules_flag =
    let doc = "Print the source-rule catalog and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let baseline_arg =
    let doc =
      "Baseline file of vetted exceptions (default: devlint.baseline when \
       it exists)."
    in
    Arg.(value & opt (some file) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let no_baseline_flag =
    let doc = "Ignore any baseline file." in
    Arg.(value & flag & info [ "no-baseline" ] ~doc)
  in
  let family_arg =
    let doc =
      "Run only this rule family (repeatable): compare, determinism, race, \
       obs-names."
    in
    Arg.(value & opt_all string [] & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let print_rules () =
    let table =
      Relpipe_util.Table.create
        ~aligns:
          [ Relpipe_util.Table.Left; Relpipe_util.Table.Left;
            Relpipe_util.Table.Left; Relpipe_util.Table.Left ]
        [ "id"; "severity"; "family"; "title" ]
    in
    List.iter
      (fun (r : DL.Drule.t) ->
        Relpipe_util.Table.add_row table
          [
            r.DL.Drule.id;
            A.Severity.to_string r.DL.Drule.severity;
            r.DL.Drule.family;
            r.DL.Drule.title;
          ])
      (DL.Driver.rules ());
    Relpipe_util.Table.print table
  in
  let default_roots = [ "lib"; "bin"; "bench"; "test" ] in
  let run paths format list_rules baseline no_baseline families =
    if list_rules then begin
      print_rules ();
      `Ok ()
    end
    else begin
      let known = List.map fst DL.Driver.passes in
      match List.find_opt (fun f -> not (List.mem f known)) families with
      | Some f ->
          `Error
            ( false,
              Printf.sprintf "unknown rule family %S (known: %s)" f
                (String.concat ", " known) )
      | None -> (
          let roots =
            if paths <> [] then paths
            else List.filter Sys.file_exists default_roots
          in
          if roots = [] then
            `Error
              ( false,
                "none of lib/ bin/ bench/ test/ exist here; run from the \
                 repository root or pass paths" )
          else
            let baseline_result =
              if no_baseline then Ok DL.Baseline.empty
              else
                match baseline with
                | Some path -> DL.Baseline.load path
                | None ->
                    if Sys.file_exists "devlint.baseline" then
                      DL.Baseline.load "devlint.baseline"
                    else Ok DL.Baseline.empty
            in
            match baseline_result with
            | Error msg -> `Error (false, "baseline: " ^ msg)
            | Ok baseline ->
                let report =
                  DL.Driver.run_paths ~baseline ~families roots
                in
                (match format with
                | `Text -> print_string (DL.Driver.render_text report)
                | `Json -> print_endline (DL.Driver.render_json report));
                let code = DL.Driver.exit_code report in
                if code = 0 then `Ok ()
                else begin
                  Format.print_flush ();
                  Stdlib.exit code
                end)
    end
  in
  let doc = "Statically analyze the repository's own OCaml sources." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file under the given roots with the compiler's \
         own parser and runs the relpipe.devlint rule registry: the \
         compare family (polymorphic compare / float equality — the \
         AST-grounded replacement for the old tools/forbid.sh grep), the \
         determinism family (ambient randomness, wall-clock reads, \
         Domain.self, unordered Hashtbl iteration), the race family \
         (unsynchronized writes captured by Service.Pool / Domain.spawn \
         closures) and the obs-names family (metric/span name contract).";
      `P
        "Vetted exceptions live in a baseline file (one \"RULE-ID \
         PATH[:LINE] [-- reason]\" per line) or as in-source \
         \"(* devlint: allow RULE-ID — reason *)\" comments covering \
         their own line and the next.";
      `P
        "Exit status is 2 if any error survives, 1 if any warning, 0 \
         otherwise (hints are informational).";
    ]
  in
  Cmd.v (Cmd.info "devlint" ~doc ~man)
    Term.(
      ret
        (const run $ paths_arg $ format_arg $ list_rules_flag $ baseline_arg
       $ no_baseline_flag $ family_arg))

(* ------------------------------------------------------------------ *)
(* Serve daemon and its client                                         *)
(* ------------------------------------------------------------------ *)

let unix_sock_arg =
  let doc = "Listen on (or connect to) this Unix-domain socket path." in
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)

let tcp_port_arg =
  let doc = "Listen on (or connect to) this TCP port (0 picks a free port)." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Host for $(b,--tcp)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc)

let sockaddr_to_string = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p

let serve_cmd =
  let queue_arg =
    let doc =
      "Global admission-queue bound; readers block (backpressure) when \
       the dispatcher is this many events behind."
    in
    Arg.(value & opt int 256 & info [ "queue-size" ] ~doc)
  in
  let window_arg =
    let doc =
      "Per-session in-flight window: a session's reader blocks while \
       this many of its lines are unanswered or unwritten."
    in
    Arg.(value & opt int 32 & info [ "session-window" ] ~doc)
  in
  let shards_arg =
    let doc =
      "Shards of the result cache (per-shard locks; concurrent sessions \
       contend less).  Replays must use the recording's shard count."
    in
    Arg.(value & opt int 4 & info [ "cache-shards" ] ~doc)
  in
  let record_arg =
    let doc =
      "Append every dispatch batch to this $(b,.session) transcript, \
       replayable with $(b,--replay)."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a recorded $(b,.session) transcript instead of listening; \
       prints each reply as \"SESSION<TAB>LINE\" to $(b,-o).  With \
       $(b,--virtual-clock) the output is byte-identical for every \
       $(b,-w)."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let run unix_path tcp_port host queue window shards record replay output
      workers exact_workers cache_size stats virtual_clock =
    if shards < 1 then `Error (false, "--cache-shards must be positive")
    else
      match replay with
      | Some path -> (
          match Serve.Script.load path with
          | Error msg -> `Error (false, msg)
          | Ok script -> (
              let obs = make_obs ~tracing:false ~virtual_clock in
              let engine =
                make_engine ~obs ~cache_shards:shards ~workers ~exact_workers
                  ~cache_size ()
              in
              let replies = Serve.Replay.run ~obs ~engine script in
              match
                with_output output (fun oc ->
                    Out_channel.output_string oc (Serve.Replay.render replies))
              with
              | Error msg -> `Error (false, msg)
              | Ok () ->
                  finish_batch engine stats;
                  `Ok ()))
      | None -> (
          let endpoints =
            (match unix_path with
            | Some p -> [ Serve.Server.Unix_sock p ]
            | None -> [])
            @
            match tcp_port with
            | Some port -> [ Serve.Server.Tcp (host, port) ]
            | None -> []
          in
          match endpoints with
          | [] ->
              `Error
                (true, "pass --unix PATH and/or --tcp PORT (or --replay FILE)")
          | _ :: _ ->
              let obs = make_obs ~tracing:false ~virtual_clock in
              let engine =
                make_engine ~obs ~cache_shards:shards ~workers ~exact_workers
                  ~cache_size ()
              in
              let config =
                {
                  Serve.Server.endpoints;
                  queue_capacity = queue;
                  session_window = window;
                  max_line = Serve.Frame.default_max_line;
                  record;
                }
              in
              (* A Signal_handle callback only runs at an OCaml
                 safepoint, and an idle daemon has every thread parked
                 in C waits — the handler could be delayed forever.
                 Block the signals in every thread (the mask is
                 inherited) and receive them synchronously on a
                 dedicated thread instead. *)
              ignore
                (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
              let (_ : Thread.t) =
                Thread.create
                  (fun () ->
                    ignore (Thread.wait_signal [ Sys.sigterm; Sys.sigint ]);
                    Serve.Server.signal_drain ())
                  ()
              in
              let on_ready addrs =
                List.iter
                  (fun a ->
                    Format.eprintf "listening on %s@." (sockaddr_to_string a))
                  addrs
              in
              let report = Serve.Server.run ~obs ~engine ~config ~on_ready () in
              Format.eprintf "drained: %d sessions, %d ticks, %d replies@."
                report.Serve.Server.accepted report.Serve.Server.ticks
                report.Serve.Server.answered;
              finish_batch engine stats;
              `Ok ())
  in
  let doc = "Serve the batch protocol to concurrent clients (daemon)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens on a Unix socket and/or TCP port and answers the \
         $(b,relpipe batch) JSONL protocol, multiplexing every connected \
         session onto one shared engine (result cache included) and its \
         Domain worker pool.  Sessions start with a \
         {\"v\":1,\"op\":\"hello\"} handshake; \"stats\" renders the live \
         metric registry; \"shutdown\" — or SIGTERM — drains: the server \
         stops accepting, answers everything already admitted, flushes \
         and exits 0.";
      `P
        "Backpressure is two-stage (per-session window, global admission \
         queue), so a slow or flooding client never stalls the solver \
         pool.";
      `P
        "With $(b,--record) the daemon writes a $(b,.session) transcript \
         of every dispatch batch; $(b,--replay) pushes a transcript back \
         through the same deterministic core, producing byte-identical \
         replies for every worker count under $(b,--virtual-clock) — the \
         CI gate diffs $(b,-w 1) against $(b,-w 8).";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      ret
        (const run $ unix_sock_arg $ tcp_port_arg $ host_arg $ queue_arg
       $ window_arg $ shards_arg $ record_arg $ replay_arg $ output_arg
       $ workers_arg $ exact_workers_arg $ cache_size_arg $ stats_flag
       $ virtual_clock_flag))

let call_cmd =
  let input_arg =
    let doc = "JSONL request file ($(b,-) = stdin), one line per request." in
    Arg.(value & pos 0 string "-" & info [] ~docv:"REQUESTS" ~doc)
  in
  let client_arg =
    let doc = "Client name sent in the hello handshake." in
    Arg.(value & opt string "relpipe-call" & info [ "client" ] ~doc)
  in
  let no_hello_flag =
    let doc = "Skip the handshake (to exercise the server's hello gate)." in
    Arg.(value & flag & info [ "no-hello" ] ~doc)
  in
  let op_arg =
    let doc =
      "Send a single control operation instead of reading requests: \
       $(b,stats) or $(b,shutdown)."
    in
    Arg.(
      value
      & opt (some (enum [ ("stats", `Stats); ("shutdown", `Shutdown) ])) None
      & info [ "op" ] ~docv:"OP" ~doc)
  in
  let run unix_path tcp_port host input client no_hello op =
    let endpoint =
      match (unix_path, tcp_port) with
      | Some p, _ -> Ok (`Unix p)
      | None, Some port -> Ok (`Tcp (host, port))
      | None, None -> Error "pass --unix PATH or --tcp PORT"
    in
    match endpoint with
    | Error msg -> `Error (true, msg)
    | Ok endpoint -> (
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        match
          match input with
          | _ when op <> None -> []
          | "-" -> In_channel.input_lines stdin
          | path -> In_channel.with_open_text path In_channel.input_lines
        with
        | exception Sys_error msg -> `Error (false, msg)
        | request_lines -> (
            match Serve.Client.connect endpoint with
            | exception Unix.Unix_error (e, _, _) ->
                `Error (false, "connect: " ^ Unix.error_message e)
            | c ->
                let lines =
                  (if no_hello then []
                   else
                     [
                       Service.Protocol.encode_control
                         (Service.Protocol.hello ~client ());
                     ])
                  @ (match op with
                    | Some `Stats ->
                        [ Service.Protocol.encode_control Service.Protocol.Stats ]
                    | Some `Shutdown ->
                        [
                          Service.Protocol.encode_control
                            Service.Protocol.Shutdown;
                        ]
                    | None -> [])
                  @ (if op = None then request_lines else [])
                in
                (* Send from a helper thread so deep pipelines cannot
                   deadlock on two full socket buffers. *)
                let sender =
                  Thread.create
                    (fun () ->
                      (* A draining server cuts the receive side; stop
                         sending but keep pumping the replies it still
                         owes for everything it admitted. *)
                      try
                        List.iter (Serve.Client.send c) lines;
                        Serve.Client.finish_sending c
                      with Unix.Unix_error _ -> ())
                    ()
                in
                let rec pump () =
                  match Serve.Client.recv c with
                  | None -> ()
                  | Some line ->
                      print_endline line;
                      pump ()
                in
                pump ();
                Thread.join sender;
                Serve.Client.close c;
                flush stdout;
                `Ok ()))
  in
  let doc = "Send requests to a running $(b,relpipe serve) daemon." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects, performs the hello handshake, streams the given JSONL \
         requests and prints every reply line to stdout — the scripted \
         client the smoke tests drive concurrently.  $(b,--op stats) and \
         $(b,--op shutdown) send a single control message instead.";
    ]
  in
  Cmd.v (Cmd.info "call" ~doc ~man)
    Term.(
      ret
        (const run $ unix_sock_arg $ tcp_port_arg $ host_arg $ input_arg
       $ client_arg $ no_hello_flag $ op_arg))

let churn_cmd =
  let module Churn = Relpipe_churn in
  let events_arg =
    let doc = "Number of churn events to generate and replay." in
    Arg.(value & opt int 20 & info [ "e"; "events" ] ~doc)
  in
  let seed_arg =
    let doc = "Master seed for the scenario driver (one integer replays \
               the whole trace)." in
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc)
  in
  let mission_arg =
    let doc = "Mission duration feeding the lifetime model that picks \
               death victims." in
    Arg.(value & opt float 1000.0 & info [ "mission" ] ~doc)
  in
  let cold_flag =
    let doc =
      "Solve every step from scratch instead of warm-starting.  All \
       solution-derived output is byte-identical to the warm run \
       ($(b,tools/check.sh) diffs the two); only reuse/bound statistics \
       differ."
    in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let verify_flag =
    let doc =
      "After the run, cold-solve every step's world (in parallel on \
       $(b,--workers) domains) and check the recorded answers \
       bit-for-bit; fail loudly on any mismatch."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let churn_stats_flag =
    let doc = "Append per-step reuse/bound/node/time-to-repair columns." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let fmt_value = function
    | None -> "infeasible"
    | Some v -> Printf.sprintf "%.17g" v
  in
  let run path objective events seed mission cold verify stats workers
      exact_workers virtual_clock =
    match load_instance path with
    | Error msg -> `Error (false, msg)
    | Ok inst when Platform.size inst.Instance.platform > Interval_exact.max_procs
      ->
        `Error
          ( false,
            Printf.sprintf "churn needs at most %d processors"
              Interval_exact.max_procs )
    | Ok inst -> (
        match Churn.Driver.trace ~mission ~seed ~count:events
                (Churn.World.of_instance inst)
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | trace ->
            let world = Churn.World.of_instance inst in
            let obs = make_obs ~tracing:false ~virtual_clock in
            let steps = Churn.Engine.run ~obs ~cold ~objective world trace in
            Printf.printf "seed:      %d\n" seed;
            Printf.printf "events:    %d\n" events;
            (match objective with
            | Instance.Min_latency { max_failure } ->
                Printf.printf "objective: min-latency max-failure=%g\n"
                  max_failure
            | Instance.Min_failure { max_latency } ->
                Printf.printf "objective: min-failure max-latency=%g\n"
                  max_latency);
            Printf.printf "\n%-5s %-26s %-5s %-22s %-22s %-22s %s\n" "step"
              "event" "procs" "dp-latency" "latency" "failure" "moved";
            List.iter
              (fun (st : Churn.Engine.step) ->
                let dp_lat = Option.map fst st.Churn.Engine.dp in
                let lat, fail =
                  match st.Churn.Engine.solution with
                  | None -> (None, None)
                  | Some s ->
                      ( Some s.Solution.evaluation.Instance.latency,
                        Some s.Solution.evaluation.Instance.failure )
                in
                Printf.printf "%-5d %-26s %-5d %-22s %-22s %-22s %d"
                  st.Churn.Engine.index st.Churn.Engine.label
                  (Churn.World.size st.Churn.Engine.world)
                  (fmt_value dp_lat) (fmt_value lat) (fmt_value fail)
                  st.Churn.Engine.moved_stages;
                if stats then
                  Printf.printf "  reuse=%d/%d bound=%s nodes=%d ttr=%dns"
                    st.Churn.Engine.reuse.Interval_exact.Dp.cells_reused
                    st.Churn.Engine.reuse.Interval_exact.Dp.cells_total
                    (if st.Churn.Engine.warm_bound then "yes" else "no")
                    st.Churn.Engine.bb_stats.Bb.nodes st.Churn.Engine.ttr_ns;
                print_newline ())
              steps;
            let count kind =
              List.length
                (List.filter
                   (fun (st : Churn.Engine.step) ->
                     match st.Churn.Engine.event with
                     | Some ev -> String.equal (Churn.Event.kind ev) kind
                     | None -> false)
                   steps)
            in
            let total_moved =
              List.fold_left
                (fun acc (st : Churn.Engine.step) ->
                  acc + st.Churn.Engine.moved_stages)
                0 steps
            in
            Printf.printf
              "\nsummary: steps=%d deaths=%d joins=%d speed-drifts=%d \
               bw-drifts=%d moved=%d\n"
              (List.length steps) (count "death") (count "join")
              (count "speed") (count "bandwidth") total_moved;
            (match List.rev steps with
            | last :: _ -> (
                match last.Churn.Engine.solution with
                | Some s ->
                    Format.printf "final:   %a@." Mapping.pp s.Solution.mapping
                | None -> print_string "final:   infeasible\n")
            | [] -> ());
            if verify then begin
              let workers =
                if workers <= 0 then Service.Pool.cpu_count () else workers
              in
              let workers =
                Service.Pool.effective_workers ~cap:(not exact_workers) workers
              in
              if Churn.Engine.verify ~obs ~workers ~objective steps then begin
                Printf.printf "verify:  warm == cold on %d steps\n"
                  (List.length steps);
                `Ok ()
              end
              else
                `Error
                  (false, "churn verify failed: warm and cold solves disagree")
            end
            else `Ok ())
  in
  let doc = "Replay a seeded churn scenario with incremental re-solving." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates a deterministic event trace (processor deaths, \
         speed/bandwidth drift, node joins) from one master seed, then \
         re-solves after every event: the interval DP warm-starts from \
         its previous table and branch-and-bound prunes against the \
         surviving incumbent.  Warm answers are byte-identical to cold \
         solves — $(b,--verify) re-proves it, $(b,--cold) replays the \
         scenario from scratch for diffing.";
      `P
        "Reports per step the re-solved optimum, the mapping stability \
         (stages whose replica set changed, by stable processor \
         identity) and, with $(b,--stats), DP table reuse and \
         time-to-repair through the (optionally virtual) clock.";
    ]
  in
  Cmd.v (Cmd.info "churn" ~doc ~man)
    Term.(
      ret
        (const run $ instance_arg $ objective_arg $ events_arg $ seed_arg
       $ mission_arg $ cold_flag $ verify_flag $ churn_stats_flag
       $ workers_arg $ exact_workers_arg $ virtual_clock_flag))

let demo_cmd =
  let out_arg =
    let doc = "Where to write the sample instance." in
    Arg.(value & opt string "fig5.relpipe" & info [ "o"; "output" ] ~doc)
  in
  let run path =
    let inst = Relpipe_workload.Scenarios.fig5 () in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          ("# The paper's Fig. 5 instance: one slow reliable processor and\n"
         ^ "# ten fast unreliable ones.  Try:\n"
         ^ "#   relpipe solve -i " ^ path ^ " --max-latency 22\n"
          ^ Textio.to_string inst));
    Format.printf "wrote %s@." path;
    `Ok ()
  in
  let doc = "Write a sample instance file (the paper's Fig. 5)." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(ret (const run $ out_arg))

let () =
  let doc =
    "bi-criteria latency/reliability mapping of pipeline workflows \
     (Benoit, Rehn-Sonigo, Robert, RR-6345)"
  in
  let info = Cmd.info "relpipe" ~version:"0.1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            describe_cmd; solve_cmd; exact_cmd; cert_cmd; simulate_cmd;
            pareto_cmd; eval_cmd;
            tri_cmd; goodput_cmd; experiments_cmd; catalog_cmd; lint_cmd;
            batch_cmd; serve_cmd; call_cmd; prof_cmd; sweep_cmd; atlas_cmd;
            fuzz_cmd;
            devlint_cmd; churn_cmd; demo_cmd;
          ]))
