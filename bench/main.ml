(* Benchmark harness.

   Part 1 regenerates every table/figure-level claim of the paper via
   Relpipe_experiments (E1-E14 of DESIGN.md) — the paper is a
   complexity/algorithms paper, so its "tables" are worked examples,
   optimality claims and reduction equivalences rather than testbed
   timings.

   Part 2 runs Bechamel micro-benchmarks of the computational kernels (one
   Test.make per kernel) so the polynomial-vs-exponential landscape of
   Section 4 is visible as wall-clock numbers. *)

open Bechamel
open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng

let make_fully_hetero seed ~n ~m =
  let rng = Rng.create seed in
  let pipeline =
    Relpipe_workload.App_gen.random rng
      { Relpipe_workload.App_gen.n; work = (1.0, 20.0); data = (0.5, 10.0) }
  in
  let platform =
    Relpipe_workload.Plat_gen.random_fully_heterogeneous rng ~m
      ~speed:(1.0, 10.0) ~failure:(0.05, 0.6) ~bandwidth:(0.5, 10.0)
  in
  Instance.make pipeline platform

let make_comm_homog seed ~n ~m =
  let rng = Rng.create seed in
  let pipeline =
    Relpipe_workload.App_gen.random rng
      { Relpipe_workload.App_gen.n; work = (1.0, 20.0); data = (0.5, 10.0) }
  in
  let platform =
    Relpipe_workload.Plat_gen.random_comm_homogeneous rng ~m ~speed:(1.0, 10.0)
      ~failure:(0.2, 0.2) ~bandwidth:4.0
  in
  Instance.make pipeline platform

let benchmarks () =
  let inst_ch = make_comm_homog 1 ~n:8 ~m:8 in
  let inst_fh = make_fully_hetero 2 ~n:8 ~m:8 in
  let rng = Rng.create 3 in
  let mapping_ch =
    Mapping.make ~n:8 ~m:8
      [
        { Mapping.first = 1; last = 4; procs = [ 0; 1; 2 ] };
        { Mapping.first = 5; last = 8; procs = [ 3; 4 ] };
      ]
  in
  let small_exact = make_fully_hetero 4 ~n:3 ~m:4 in
  let small_objective = Instance.Min_failure { max_latency = 1e6 } in
  let tsp = Tsp_reduction.random (Rng.create 5) ~n:8 ~max_cost:9 in
  let partition = Partition_reduction.random (Rng.create 6) ~m:10 ~max_value:12 in
  let big_general = make_fully_hetero 7 ~n:32 ~m:24 in
  let alive = Relpipe_sim.Failure_inject.all_alive inst_fh.Instance.platform in
  let mapping_fh = mapping_ch (* same shape reused on the FH platform *) in
  [
    (* Model evaluation kernels (Eq. 1, Eq. 2, FP formula). *)
    Test.make ~name:"latency-eq1 (n=8, 2 intervals)"
      (Staged.stage (fun () ->
           Latency.eq1 inst_ch.Instance.pipeline inst_ch.Instance.platform
             mapping_ch));
    Test.make ~name:"latency-eq2 (n=8, 2 intervals)"
      (Staged.stage (fun () ->
           Latency.eq2 inst_fh.Instance.pipeline inst_fh.Instance.platform
             mapping_fh));
    Test.make ~name:"failure-probability (n=8)"
      (Staged.stage (fun () -> Failure.of_mapping inst_fh.Instance.platform mapping_fh));
    (* Polynomial algorithms (Theorems 1-2, 4; Algorithms 1-4). *)
    Test.make ~name:"thm1 min-failure (m=8)"
      (Staged.stage (fun () -> Mono.min_failure inst_ch));
    Test.make ~name:"alg1 fully-homog minFP|L (m=8)"
      (Staged.stage
         (let inst =
            Instance.make inst_ch.Instance.pipeline
              (Relpipe_workload.Plat_gen.fully_homogeneous ~m:8 ~speed:5.0
                 ~failure:0.3 ~bandwidth:4.0)
          in
          fun () -> Fully_homog.min_failure_for_latency inst ~max_latency:100.0));
    Test.make ~name:"alg3 comm-homog minFP|L (m=8)"
      (Staged.stage (fun () ->
           Comm_homog.min_failure_for_latency
             (Instance.make inst_ch.Instance.pipeline
                (Relpipe_workload.Plat_gen.random_comm_homogeneous
                   (Rng.copy rng) ~m:8 ~speed:(1.0, 10.0) ~failure:(0.2, 0.2)
                   ~bandwidth:4.0))
             ~max_latency:100.0));
    Test.make ~name:"thm4 shortest-path (n=32, m=24)"
      (Staged.stage (fun () -> General_mapping.solve big_general));
    Test.make ~name:"thm4 direct DP (n=32, m=24)"
      (Staged.stage (fun () -> General_mapping.solve_dp big_general));
    (* Exponential machinery on small instances. *)
    Test.make ~name:"exact enumeration (n=3, m=4)"
      (Staged.stage (fun () -> Exact.solve small_exact small_objective));
    Test.make ~name:"one-to-one branch&bound (n=m=8, TSP-reduced)"
      (Staged.stage
         (let inst, _ = Tsp_reduction.to_instance tsp in
          fun () -> One_to_one.exact inst));
    Test.make ~name:"held-karp hamiltonian (n=8)"
      (Staged.stage (fun () ->
           Relpipe_graph.Hamiltonian.held_karp ~cost:tsp.Tsp_reduction.cost
             ~s:tsp.Tsp_reduction.source ~t:tsp.Tsp_reduction.target));
    Test.make ~name:"2-partition witness search (m=10)"
      (Staged.stage (fun () -> Partition_reduction.witness partition));
    (* Heuristics. *)
    Test.make ~name:"heuristic single-greedy (n=8, m=8)"
      (Staged.stage (fun () ->
           Heuristics.single_greedy inst_fh
             (Instance.Min_failure { max_latency = 1e6 })));
    Test.make ~name:"heuristic split-replicate (n=8, m=8)"
      (Staged.stage (fun () ->
           Heuristics.split_replicate inst_fh
             (Instance.Min_failure { max_latency = 1e6 })));
    (* Simulator. *)
    Test.make ~name:"simulated trial (n=8, 2 intervals)"
      (Staged.stage (fun () ->
           Relpipe_sim.Trial.run inst_fh mapping_fh ~alive
             ~policy:Relpipe_sim.Trial.Pessimistic));
    Test.make ~name:"steady-state 100 data sets (n=8)"
      (Staged.stage (fun () ->
           Relpipe_sim.Steady.run inst_fh mapping_fh ~datasets:100));
    (* Extensions. *)
    Test.make ~name:"period eval (n=8, 2 intervals)"
      (Staged.stage (fun () ->
           Period.of_mapping inst_fh.Instance.pipeline inst_fh.Instance.platform
             mapping_fh));
    Test.make ~name:"branch&bound minFP|L (n=4, m=5)"
      (Staged.stage
         (let inst = make_fully_hetero 8 ~n:4 ~m:5 in
          fun () -> Bb.solve inst (Instance.Min_failure { max_latency = 1e6 })));
    Test.make ~name:"bitmask-DP interval optimum (n=8, m=10)"
      (Staged.stage
         (let inst = make_fully_hetero 9 ~n:8 ~m:10 in
          fun () -> Interval_exact.min_latency inst));
    Test.make ~name:"tri-criteria greedy (n=8, m=8)"
      (Staged.stage (fun () ->
           Tri.greedy_min_failure inst_fh
             { Tri.max_latency = 1e6; max_period = 1e6 }));
  ]

(* One record per kernel, for both the table and the machine-readable
   [--json] report. *)
type kernel_result = { k_name : string; k_ns : float option; k_r2 : float option }

let run_benchmarks () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let table = Relpipe_util.Table.create [ "benchmark"; "ns/run"; "r^2" ] in
  let records = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      (* one grouped test per call: the table holds a single binding, so
         iteration order cannot matter *)
      (* devlint: allow RP-S204 *)
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> Some x
            | _ -> None
          in
          let r2 = Analyze.OLS.r_square ols_result in
          (* Strip the synthetic group prefix. *)
          let name =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          records := { k_name = name; k_ns = ns; k_r2 = r2 } :: !records;
          Relpipe_util.Table.add_row table
            [
              name;
              (match ns with Some x -> Printf.sprintf "%.1f" x | None -> "-");
              (match r2 with Some x -> Printf.sprintf "%.4f" x | None -> "-");
            ])
        analyzed)
    (benchmarks ());
  print_endline "Micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  Relpipe_util.Table.print table;
  List.rev !records

(* ------------------------------------------------------------------ *)
(* Twin harness: optimized kernels vs their frozen Reference twins.    *)
(* ------------------------------------------------------------------ *)

type twin_result = {
  tw_kernel : string;
  tw_shape : string;
  tw_samples : int;
  tw_reps : int;
  tw_ns_opt : float;
  tw_ci_opt : float * float;
  tw_ns_ref : float;
  tw_ci_ref : float * float;
}

(* Warmup, then min-of-N with a seeded bootstrap percentile CI.  The
   point estimate is the minimum of [samples] timed blocks (the classic
   low-noise estimator for deterministic kernels); the CI is the 2.5/97.5
   percentile band of 200 bootstrap resamples of that minimum.  The time
   source is injectable: under a virtual clock every block reads a fixed
   tick, so the whole report is byte-stable (the determinism test relies
   on this). *)
let measure_kernel ~clock ~rng f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let time_reps reps =
    let t0 = Relpipe_obs.Clock.now_ns clock in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t1 = Relpipe_obs.Clock.now_ns clock in
    float_of_int (t1 - t0)
  in
  let reps =
    if Relpipe_obs.Clock.is_virtual clock then 1
    else begin
      (* Grow the block until one block costs >= 1 ms of real time. *)
      let rec calibrate reps =
        if time_reps reps >= 1e6 || reps >= 1 lsl 20 then reps
        else calibrate (reps * 2)
      in
      calibrate 1
    end
  in
  let samples = 25 in
  let xs = Array.init samples (fun _ -> time_reps reps /. float_of_int reps) in
  let point = Array.fold_left Float.min Float.infinity xs in
  let b = 200 in
  let mins =
    Array.init b (fun _ ->
        let acc = ref Float.infinity in
        for _ = 1 to samples do
          acc := Float.min !acc xs.(Rng.int rng samples)
        done;
        !acc)
  in
  Array.sort Float.compare mins;
  (point, (mins.(5), mins.(194)), reps, samples)

let twin_specs () =
  let inst_iv = make_fully_hetero 9 ~n:8 ~m:10 in
  let inst_dp = make_fully_hetero 7 ~n:32 ~m:24 in
  let inst_bb = make_fully_hetero 8 ~n:4 ~m:5 in
  let obj_bb = Instance.Min_failure { max_latency = 1e6 } in
  [
    ( "interval-dp",
      "n=8 m=10 fully-hetero",
      (fun () -> ignore (Sys.opaque_identity (Interval_exact.min_latency inst_iv))),
      fun () ->
        ignore
          (Sys.opaque_identity
             (Reference.interval_min_latency_reference inst_iv)) );
    ( "general-dp",
      "n=32 m=24 fully-hetero",
      (fun () -> ignore (Sys.opaque_identity (General_mapping.solve_dp inst_dp))),
      fun () ->
        ignore (Sys.opaque_identity (Reference.general_dp_reference inst_dp)) );
    ( "bb",
      "n=4 m=5 fully-hetero minFP|L",
      (fun () -> ignore (Sys.opaque_identity (Bb.solve inst_bb obj_bb))),
      fun () ->
        ignore (Sys.opaque_identity (Reference.bb_solve_reference inst_bb obj_bb))
    );
  ]

let speedup_lo tw =
  let _, opt_hi = tw.tw_ci_opt and ref_lo, _ = tw.tw_ci_ref in
  ref_lo /. opt_hi

let run_twins ~clock () =
  (* One seeded stream for all bootstraps keeps the report deterministic
     under the virtual clock. *)
  let rng = Rng.create 77 in
  let results =
    List.map
      (fun (kernel, shape, opt, reference) ->
        let ns_ref, ci_ref, reps_ref, _ = measure_kernel ~clock ~rng reference in
        let ns_opt, ci_opt, reps_opt, samples = measure_kernel ~clock ~rng opt in
        ignore reps_ref;
        {
          tw_kernel = kernel;
          tw_shape = shape;
          tw_samples = samples;
          tw_reps = reps_opt;
          tw_ns_opt = ns_opt;
          tw_ci_opt = ci_opt;
          tw_ns_ref = ns_ref;
          tw_ci_ref = ci_ref;
        })
      (twin_specs ())
  in
  let table =
    Relpipe_util.Table.create
      [ "kernel"; "shape"; "opt ns/run"; "ref ns/run"; "speedup"; "speedup lo" ]
  in
  List.iter
    (fun tw ->
      Relpipe_util.Table.add_row table
        [
          tw.tw_kernel;
          tw.tw_shape;
          Printf.sprintf "%.1f" tw.tw_ns_opt;
          Printf.sprintf "%.1f" tw.tw_ns_ref;
          Printf.sprintf "%.2fx" (tw.tw_ns_ref /. tw.tw_ns_opt);
          Printf.sprintf "%.2fx" (speedup_lo tw);
        ])
    results;
  print_endline "Optimized kernels vs frozen reference twins (min-of-N, bootstrap CI)";
  print_endline "====================================================================";
  Relpipe_util.Table.print table;
  print_newline ();
  results

(* Churn replay: warm-started incremental re-solving vs cold
   from-scratch re-solving of the same seeded scenario.  Both replays
   include the identical initial solve; with 20 events the figure is
   dominated by the per-event re-solves, which is where the carried DP
   table and the surviving incumbent bound pay.  The per-event figures
   are the time-to-repair claim of the churn engine: ci_warm_hi below
   ci_cold_lo means the speedup is CI-separated, not noise. *)
type churn_result = {
  ch_shape : string;
  ch_events : int;
  ch_ns_warm : float;
  ch_ci_warm : float * float;
  ch_ns_cold : float;
  ch_ci_cold : float * float;
}

let churn_specs () =
  let module Churn = Relpipe_churn in
  let mk shape inst ~seed ~events =
    let world = Churn.World.of_instance inst in
    let trace = Churn.Driver.trace ~cap:8 ~seed ~count:events world in
    let objective = Instance.Min_latency { max_failure = 0.5 } in
    (shape, events, world, trace, objective)
  in
  [
    mk "n=6 m=6 fully-hetero" (make_fully_hetero 21 ~n:6 ~m:6) ~seed:11
      ~events:20;
    mk "n=8 m=5 comm-homog" (make_comm_homog 22 ~n:8 ~m:5) ~seed:12 ~events:20;
  ]

let churn_separated ch =
  let _, warm_hi = ch.ch_ci_warm and cold_lo, _ = ch.ch_ci_cold in
  warm_hi < cold_lo

let run_churn ~clock () =
  let module Churn = Relpipe_churn in
  let rng = Rng.create 78 in
  let results =
    List.map
      (fun (shape, events, world, trace, objective) ->
        let warm () =
          ignore (Sys.opaque_identity (Churn.Engine.run ~objective world trace))
        in
        let cold () =
          ignore
            (Sys.opaque_identity
               (Churn.Engine.run ~cold:true ~objective world trace))
        in
        let ns_cold, ci_cold, _, _ = measure_kernel ~clock ~rng cold in
        let ns_warm, ci_warm, _, _ = measure_kernel ~clock ~rng warm in
        {
          ch_shape = shape;
          ch_events = events;
          ch_ns_warm = ns_warm;
          ch_ci_warm = ci_warm;
          ch_ns_cold = ns_cold;
          ch_ci_cold = ci_cold;
        })
      (churn_specs ())
  in
  let table =
    Relpipe_util.Table.create
      [ "scenario"; "events"; "warm ns"; "cold ns"; "speedup"; "CI-separated" ]
  in
  List.iter
    (fun ch ->
      Relpipe_util.Table.add_row table
        [
          ch.ch_shape;
          string_of_int ch.ch_events;
          Printf.sprintf "%.1f" ch.ch_ns_warm;
          Printf.sprintf "%.1f" ch.ch_ns_cold;
          Printf.sprintf "%.2fx" (ch.ch_ns_cold /. ch.ch_ns_warm);
          (if churn_separated ch then "yes" else "no");
        ])
    results;
  print_endline "Churn replay: warm-started vs cold re-solving (min-of-N, bootstrap CI)";
  print_endline "======================================================================";
  Relpipe_util.Table.print table;
  print_newline ();
  results

(* Parallel exact kernels vs their serial forms, at roughly twice the
   twin-bench shapes (bb twins run n=4 m=5; these run n=6 m=6 and
   n=5 m=7).  On a single-core host core-count parallelism cannot help,
   so the B&B figure isolates the algorithmic win of the probe+confirm
   design: the best-first probe publishes inflated incumbents into the
   shared bound cell early, and the confirming serial pass re-searches
   under that bound, visiting far fewer nodes than the cold serial
   solve.  Node counts are reported next to the wall clock so the claim
   is explicit about its mechanism; CI-separated means the parallel
   upper CI sits below the serial lower CI. *)
type par_result = {
  p_kernel : string;
  p_shape : string;
  p_workers : int;
  p_ns_ser : float;
  p_ci_ser : float * float;
  p_ns_par : float;
  p_ci_par : float * float;
  p_nodes_ser : int;
  p_nodes_par : int;
}

let par_separated p =
  let _, par_hi = p.p_ci_par and ser_lo, _ = p.p_ci_ser in
  par_hi < ser_lo

let run_par ~clock () =
  let rng = Rng.create 79 in
  (* Same objective as the bb twin bench, at twice its shapes.  Under
     min-failure the depth-first serial search finds its incumbent late,
     while the probe's best-first frontier reaches a near-optimal
     mapping within its first task budgets — the shared bound then cuts
     the confirming pass to a few hundred nodes, a >10x node reduction
     at every seed tried (not a cherry-picked pair). *)
  let obj = Instance.Min_failure { max_latency = 1e6 } in
  let specs =
    [
      ("bb", "n=6 m=6 fully-hetero minFP|L", make_fully_hetero 31 ~n:6 ~m:6, 2);
      ("bb", "n=5 m=7 fully-hetero minFP|L", make_fully_hetero 32 ~n:5 ~m:7, 2);
    ]
  in
  let results =
    List.map
      (fun (kernel, shape, inst, workers) ->
        let ser () = ignore (Sys.opaque_identity (Bb.solve inst obj)) in
        let par () =
          ignore (Sys.opaque_identity (Bb.solve_par ~workers inst obj))
        in
        let ns_ser, ci_ser, _, _ = measure_kernel ~clock ~rng ser in
        let ns_par, ci_par, _, _ = measure_kernel ~clock ~rng par in
        let _, sstats = Bb.solve_with_stats inst obj in
        let _, pstats = Bb.solve_par_with_stats ~workers inst obj in
        {
          p_kernel = kernel;
          p_shape = shape;
          p_workers = workers;
          p_ns_ser = ns_ser;
          p_ci_ser = ci_ser;
          p_ns_par = ns_par;
          p_ci_par = ci_par;
          p_nodes_ser = sstats.Bb.nodes;
          p_nodes_par = pstats.Bb.probe_nodes + pstats.Bb.confirm.Bb.nodes;
        })
      specs
  in
  let table =
    Relpipe_util.Table.create
      [
        "kernel"; "shape"; "ser ns/run"; "par ns/run"; "ser nodes";
        "par nodes"; "speedup"; "CI-separated";
      ]
  in
  List.iter
    (fun p ->
      Relpipe_util.Table.add_row table
        [
          p.p_kernel;
          p.p_shape;
          Printf.sprintf "%.1f" p.p_ns_ser;
          Printf.sprintf "%.1f" p.p_ns_par;
          string_of_int p.p_nodes_ser;
          string_of_int p.p_nodes_par;
          Printf.sprintf "%.2fx" (p.p_ns_ser /. p.p_ns_par);
          (if par_separated p then "yes" else "no");
        ])
    results;
  print_endline
    "Parallel exact B&B (probe+confirm, w=2) vs serial (min-of-N, bootstrap CI)";
  print_endline
    "==========================================================================";
  Relpipe_util.Table.print table;
  print_newline ();
  results

(* Regression gate: compare this run's optimized timings against a
   baseline BENCH_*.json; >10% slower on any twin kernel is a failure. *)
let check_against ~baseline twins =
  let module J = Relpipe_service.Json in
  let fail_usage msg =
    Printf.eprintf "against: %s\n" msg;
    exit 2
  in
  let text =
    try In_channel.with_open_text baseline In_channel.input_all
    with Sys_error msg -> fail_usage msg
  in
  let json =
    match J.parse text with
    | Ok j -> j
    | Error msg -> fail_usage (Printf.sprintf "%s does not parse: %s" baseline msg)
  in
  let baseline_twins =
    match Option.bind (J.member "twins" json) J.to_list with
    | Some l -> l
    | None -> fail_usage (Printf.sprintf "%s has no \"twins\" array" baseline)
  in
  let find kernel =
    List.find_opt
      (fun j ->
        match Option.bind (J.member "kernel" j) J.to_str with
        | Some s -> String.equal s kernel
        | None -> false)
      baseline_twins
  in
  let regressions = ref [] in
  List.iter
    (fun tw ->
      match find tw.tw_kernel with
      | None ->
          Printf.printf "against: %-12s not in baseline, skipped\n" tw.tw_kernel
      | Some j -> (
          match Option.bind (J.member "ns_opt" j) J.to_float with
          | None ->
              fail_usage
                (Printf.sprintf "baseline entry for %s has no ns_opt" tw.tw_kernel)
          | Some base ->
              let ratio = tw.tw_ns_opt /. base in
              Printf.printf "against: %-12s %10.1f ns vs baseline %10.1f ns (%.2fx)\n"
                tw.tw_kernel tw.tw_ns_opt base ratio;
              if tw.tw_ns_opt > 1.10 *. base then
                regressions := (tw.tw_kernel, ratio) :: !regressions))
    twins;
  match List.rev !regressions with
  | [] -> Printf.printf "against: OK — no kernel regressed by more than 10%%\n"
  | rs ->
      List.iter
        (fun (kernel, ratio) ->
          Printf.eprintf "against: FAIL — %s regressed to %.2fx of baseline\n"
            kernel ratio)
        rs;
      exit 1

(* Batch-engine throughput: the same 200-request fully-heterogeneous sweep
   through a fresh engine at 1 worker and at [par] workers (oversubscribed
   past the CPU count so the pool is exercised even on small machines;
   wall-clock speedup needs real cores). *)
type throughput = {
  t_requests : int;
  t_workers_par : int;
  t_sec_seq : float;
  t_sec_par : float;
}

let batch_throughput ?(n_requests = 200) () =
  let module Engine = Relpipe_service.Engine in
  let module Protocol = Relpipe_service.Protocol in
  let requests =
    Array.init n_requests (fun k ->
        let inst = make_fully_hetero (1000 + k) ~n:8 ~m:5 in
        Protocol.request
          ~id:(Printf.sprintf "bench-%03d" k)
          ~instance:(Protocol.Inline (Textio.to_string inst))
          (Instance.Min_failure { max_latency = 50.0 }))
  in
  let time_run workers =
    let engine = Engine.create ~workers ~cap_to_cpus:false () in
    let t0 = Unix.gettimeofday () in
    let responses = Engine.run_requests engine requests in
    let elapsed = Unix.gettimeofday () -. t0 in
    (elapsed, responses)
  in
  let par = max 4 (Relpipe_service.Pool.cpu_count ()) in
  let sec_seq, r_seq = time_run 1 in
  let sec_par, r_par = time_run par in
  let identical =
    Array.for_all2
      (fun a b ->
        String.equal (Protocol.encode_response a) (Protocol.encode_response b))
      r_seq r_par
  in
  let cpus = Relpipe_service.Pool.cpu_count () in
  Printf.printf "Batch-engine throughput (%d-request sweep, n=8 m=5)\n"
    n_requests;
  print_endline "====================================================";
  Printf.printf "  1 worker : %6.2f s  (%7.1f req/s)\n" sec_seq
    (float_of_int n_requests /. sec_seq);
  Printf.printf "  %d workers: %6.2f s  (%7.1f req/s)  speedup %.2fx on %d cpus%s\n"
    par sec_par
    (float_of_int n_requests /. sec_par)
    (sec_seq /. sec_par) cpus
    (if par > cpus then " [oversubscribed]" else "");
  Printf.printf "  responses byte-identical across worker counts: %b\n\n"
    identical;
  if not identical then failwith "batch engine nondeterminism detected";
  {
    t_requests = n_requests;
    t_workers_par = par;
    t_sec_seq = sec_seq;
    t_sec_par = sec_par;
  }

(* Serve-daemon throughput: the same style of sweep pushed through a live
   [relpipe serve] daemon on a Unix socket by one pipelined client — so
   the figure includes framing, admission batching and the per-session
   window, not just the engine.  Run at 1 worker and at [par] workers;
   the reply stream must be byte-identical across the two (200 distinct
   instances, single session: admission order is send order). *)
type serve_point = { s_workers : int; s_sec : float; s_requests : int }

let serve_throughput () =
  let module Protocol = Relpipe_service.Protocol in
  let module Engine = Relpipe_service.Engine in
  let module Server = Relpipe_serve.Server in
  let module Client = Relpipe_serve.Client in
  let n_requests = 200 in
  let requests =
    Array.init n_requests (fun k ->
        let inst = make_fully_hetero (2000 + k) ~n:8 ~m:5 in
        Protocol.encode_request
          (Protocol.request
             ~id:(Printf.sprintf "serve-%03d" k)
             ~instance:(Protocol.Inline (Textio.to_string inst))
             (Instance.Min_failure { max_latency = 50.0 })))
  in
  let run_at workers =
    let dir = Filename.temp_file "relpipe-bench-serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let sock = Filename.concat dir "bench.sock" in
    let engine = Engine.create ~workers ~cap_to_cpus:false ~cache_shards:4 () in
    let config =
      { Server.default_config with Server.endpoints = [ Server.Unix_sock sock ] }
    in
    let ready = Atomic.make false in
    let srv =
      Thread.create
        (fun () ->
          ignore
            (Server.run ~engine ~config
               ~on_ready:(fun _ -> Atomic.set ready true)
               ()))
        ()
    in
    while not (Atomic.get ready) do
      Thread.yield ()
    done;
    let c = Client.connect (`Unix sock) in
    ignore (Client.call c (Protocol.encode_control (Protocol.hello ())));
    let t0 = Unix.gettimeofday () in
    let sender =
      Thread.create
        (fun () ->
          Array.iter (Client.send c) requests;
          Client.finish_sending c)
        ()
    in
    let replies = ref [] in
    let rec pump () =
      match Client.recv c with
      | None -> ()
      | Some line ->
          replies := line :: !replies;
          pump ()
    in
    pump ();
    let elapsed = Unix.gettimeofday () -. t0 in
    Thread.join sender;
    Client.close c;
    Server.signal_drain ();
    Thread.join srv;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    (elapsed, List.rev !replies)
  in
  let par = max 4 (Relpipe_service.Pool.cpu_count ()) in
  let sec_seq, r_seq = run_at 1 in
  let sec_par, r_par = run_at par in
  if List.length r_seq <> n_requests then
    failwith "serve throughput: missing replies";
  if not (List.equal String.equal r_seq r_par) then
    failwith "serve daemon nondeterminism detected";
  print_endline "Serve-daemon throughput (200-request stream, Unix socket)";
  print_endline "=========================================================";
  Printf.printf "  1 worker : %6.2f s  (%7.1f req/s)\n" sec_seq
    (float_of_int n_requests /. sec_seq);
  Printf.printf
    "  %d workers: %6.2f s  (%7.1f req/s)  speedup %.2fx on %d cpus\n" par
    sec_par
    (float_of_int n_requests /. sec_par)
    (sec_seq /. sec_par)
    (Relpipe_service.Pool.cpu_count ());
  Printf.printf "  replies byte-identical across worker counts: true\n\n";
  [
    { s_workers = 1; s_sec = sec_seq; s_requests = n_requests };
    { s_workers = par; s_sec = sec_par; s_requests = n_requests };
  ]

(* End-to-end atlas: the streaming load harness as a benchmark.  One
   seeded 20k-request stream per Zipf skew (hit rate and latency
   percentiles are deterministic; the wall clock is the benchmark), plus
   the same stream at 1 and [par] workers with the reports compared
   byte-for-byte. *)
type atlas_skew_point = {
  az_zipf : float;
  az_hit_rate : float;
  az_p50 : float;
  az_p95 : float;
  az_p99 : float;
  az_sec : float;
}

type atlas_workers_point = { aw_workers : int; aw_sec : float }

type atlas_bench = {
  ab_requests : int;
  ab_pool : int;
  ab_skew : atlas_skew_point list;
  ab_workers : atlas_workers_point list;
  ab_identical : bool;
}

let atlas_bench ?(n_requests = 20_000) () =
  let module Atlas = Relpipe_service.Atlas in
  let module Engine = Relpipe_service.Engine in
  let module Protocol = Relpipe_service.Protocol in
  let module Stream_gen = Relpipe_workload.Stream_gen in
  let seed = 42 in
  let source_of spec =
    let entries = Stream_gen.pool_entries ~seed spec in
    let slots =
      Array.map
        (fun (e : Stream_gen.entry) ->
          match Protocol.method_of_string e.Stream_gen.method_name with
          | Ok m ->
              {
                Atlas.sl_text = e.Stream_gen.text;
                sl_objective = e.Stream_gen.objective;
                sl_method = m;
                sl_class = e.Stream_gen.plat_class;
              }
          | Error msg -> failwith msg)
        entries
    in
    {
      Atlas.slots;
      events =
        (fun f ->
          Stream_gen.iter ~seed spec ~n:n_requests (fun ev ->
              f
                {
                  Atlas.ev_index = ev.Stream_gen.ev_index;
                  ev_slot = ev.Stream_gen.ev_slot;
                  ev_gap_ns = ev.Stream_gen.ev_gap_ns;
                }))
    }
  in
  let run ~workers spec =
    let engine = Engine.create ~workers ~cap_to_cpus:false () in
    let t0 = Unix.gettimeofday () in
    let report = Atlas.run ~solve:(Engine.run_requests engine) (source_of spec) in
    (Unix.gettimeofday () -. t0, report)
  in
  Printf.printf "Atlas end-to-end (%d-request stream, online aggregation)\n"
    n_requests;
  print_endline "========================================================";
  let skew =
    List.map
      (fun z ->
        let spec = { Stream_gen.default_spec with Stream_gen.zipf_s = z } in
        let sec, r = run ~workers:1 spec in
        let q phi = Relpipe_obs.Stream.Quantile.quantile r.Atlas.latency phi in
        Printf.printf
          "  zipf %.1f: hit rate %.4f, p50 %.4g, p95 %.4g, p99 %.4g  (%5.2f \
           s, %7.1f req/s)\n"
          z (Atlas.hit_rate r) (q 0.5) (q 0.95) (q 0.99) sec
          (float_of_int n_requests /. sec);
        {
          az_zipf = z;
          az_hit_rate = Atlas.hit_rate r;
          az_p50 = q 0.5;
          az_p95 = q 0.95;
          az_p99 = q 0.99;
          az_sec = sec;
        })
      [ 0.0; 0.5; 1.1; 1.5 ]
  in
  let par = max 4 (Relpipe_service.Pool.cpu_count ()) in
  let cpus = Relpipe_service.Pool.cpu_count () in
  let sec1, r1 = run ~workers:1 Stream_gen.default_spec in
  let secp, rp = run ~workers:par Stream_gen.default_spec in
  let identical = String.equal (Atlas.render r1) (Atlas.render rp) in
  Printf.printf "  1 worker : %5.2f s  (%7.1f req/s)\n" sec1
    (float_of_int n_requests /. sec1);
  Printf.printf "  %d workers: %5.2f s  (%7.1f req/s)  on %d cpus%s\n" par secp
    (float_of_int n_requests /. secp)
    cpus
    (if par > cpus then " [oversubscribed]" else "");
  Printf.printf "  reports byte-identical across worker counts: %b\n\n"
    identical;
  if not identical then failwith "atlas report nondeterminism detected";
  {
    ab_requests = n_requests;
    ab_pool = Relpipe_workload.Stream_gen.default_spec.Relpipe_workload.Stream_gen.pool;
    ab_skew = skew;
    ab_workers =
      [
        { aw_workers = 1; aw_sec = sec1 }; { aw_workers = par; aw_sec = secp };
      ];
    ab_identical = identical;
  }

let write_json path ~virtual_clock ~twins ?(serve = []) ?(churn = [])
    ?(par = []) ?atlas kernels throughput =
  let module J = Relpipe_service.Json in
  let date =
    (* The virtual-clock report must be byte-stable across runs, so it
       pins the date to the epoch. *)
    if virtual_clock then "1970-01-01T00:00:00Z"
    else
      let tm = Unix.gmtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
  in
  let opt_float = function Some x -> J.float x | None -> J.Null in
  let kernel_json k =
    J.Obj
      [
        ("name", J.Str k.k_name);
        ("ns_per_run", opt_float k.k_ns);
        ("r_square", opt_float k.k_r2);
      ]
  in
  let twin_json tw =
    let opt_lo, opt_hi = tw.tw_ci_opt and ref_lo, ref_hi = tw.tw_ci_ref in
    J.Obj
      [
        ("kernel", J.Str tw.tw_kernel);
        ("shape", J.Str tw.tw_shape);
        ("samples", J.Int tw.tw_samples);
        ("reps", J.Int tw.tw_reps);
        ("ns_opt", J.float tw.tw_ns_opt);
        ("ci_opt_lo", J.float opt_lo);
        ("ci_opt_hi", J.float opt_hi);
        ("ns_ref", J.float tw.tw_ns_ref);
        ("ci_ref_lo", J.float ref_lo);
        ("ci_ref_hi", J.float ref_hi);
        ("speedup", J.float (tw.tw_ns_ref /. tw.tw_ns_opt));
        ("speedup_lo", J.float (speedup_lo tw));
      ]
  in
  (* Every wall-clock throughput row names the host CPU count and flags
     oversubscription, so a 0.14x "speedup" measured with 4 workers on a
     1-cpu host cannot be misread as a regression. *)
  let cpus = Relpipe_service.Pool.cpu_count () in
  let host_fields workers =
    [ ("cpus", J.Int cpus); ("oversubscribed", J.Bool (workers > cpus)) ]
  in
  let throughput_json =
    match throughput with
    | None -> J.Null
    | Some tp ->
        J.Obj
          ([
             ("requests", J.Int tp.t_requests);
             ("workers", J.Int tp.t_workers_par);
             ("sec_1_worker", J.float tp.t_sec_seq);
             ("sec_n_workers", J.float tp.t_sec_par);
             ("req_per_sec_1_worker", J.float (float_of_int tp.t_requests /. tp.t_sec_seq));
             ("req_per_sec_n_workers", J.float (float_of_int tp.t_requests /. tp.t_sec_par));
             ("speedup", J.float (tp.t_sec_seq /. tp.t_sec_par));
           ]
          @ host_fields tp.t_workers_par)
  in
  let serve_json =
    match serve with
    | [] -> J.Null
    | points ->
        J.List
          (List.map
             (fun p ->
               J.Obj
                 ([
                    ("workers", J.Int p.s_workers);
                    ("requests", J.Int p.s_requests);
                    ("sec", J.float p.s_sec);
                    ( "req_per_sec",
                      J.float (float_of_int p.s_requests /. p.s_sec) );
                  ]
                 @ host_fields p.s_workers))
             points)
  in
  let atlas_json =
    match atlas with
    | None -> J.Null
    | Some ab ->
        J.Obj
          [
            ("requests", J.Int ab.ab_requests);
            ("pool", J.Int ab.ab_pool);
            ( "skew",
              J.List
                (List.map
                   (fun p ->
                     J.Obj
                       [
                         ("zipf", J.float p.az_zipf);
                         ("hit_rate", J.float p.az_hit_rate);
                         ("latency_p50", J.float p.az_p50);
                         ("latency_p95", J.float p.az_p95);
                         ("latency_p99", J.float p.az_p99);
                         ("sec", J.float p.az_sec);
                         ( "req_per_sec",
                           J.float (float_of_int ab.ab_requests /. p.az_sec) );
                       ])
                   ab.ab_skew) );
            ( "workers",
              J.List
                (List.map
                   (fun w ->
                     J.Obj
                       ([
                          ("workers", J.Int w.aw_workers);
                          ("sec", J.float w.aw_sec);
                          ( "req_per_sec",
                            J.float (float_of_int ab.ab_requests /. w.aw_sec)
                          );
                        ]
                       @ host_fields w.aw_workers))
                   ab.ab_workers) );
            ("report_identical", J.Bool ab.ab_identical);
          ]
  in
  let churn_json ch =
    let warm_lo, warm_hi = ch.ch_ci_warm and cold_lo, cold_hi = ch.ch_ci_cold in
    let per_event ns = ns /. float_of_int ch.ch_events in
    J.Obj
      [
        ("shape", J.Str ch.ch_shape);
        ("events", J.Int ch.ch_events);
        ("ns_warm", J.float ch.ch_ns_warm);
        ("ci_warm_lo", J.float warm_lo);
        ("ci_warm_hi", J.float warm_hi);
        ("ns_cold", J.float ch.ch_ns_cold);
        ("ci_cold_lo", J.float cold_lo);
        ("ci_cold_hi", J.float cold_hi);
        ("ttr_warm_ns_per_event", J.float (per_event ch.ch_ns_warm));
        ("ttr_cold_ns_per_event", J.float (per_event ch.ch_ns_cold));
        ("speedup", J.float (ch.ch_ns_cold /. ch.ch_ns_warm));
        ("ci_separated", J.Bool (churn_separated ch));
      ]
  in
  let par_json p =
    let ser_lo, ser_hi = p.p_ci_ser and par_lo, par_hi = p.p_ci_par in
    J.Obj
      [
        ("kernel", J.Str p.p_kernel);
        ("shape", J.Str p.p_shape);
        ("workers", J.Int p.p_workers);
        ("ns_serial", J.float p.p_ns_ser);
        ("ci_serial_lo", J.float ser_lo);
        ("ci_serial_hi", J.float ser_hi);
        ("ns_parallel", J.float p.p_ns_par);
        ("ci_parallel_lo", J.float par_lo);
        ("ci_parallel_hi", J.float par_hi);
        ("nodes_serial", J.Int p.p_nodes_ser);
        ("nodes_parallel", J.Int p.p_nodes_par);
        ("speedup", J.float (p.p_ns_ser /. p.p_ns_par));
        ("ci_separated", J.Bool (par_separated p));
      ]
  in
  let json =
    J.Obj
      [
        ("version", J.Int 2);
        ("date", J.Str date);
        ("cpus", J.Int (Relpipe_service.Pool.cpu_count ()));
        ("virtual_clock", J.Bool virtual_clock);
        ("twins", J.List (List.map twin_json twins));
        ("par_exact", J.List (List.map par_json par));
        ("churn", J.List (List.map churn_json churn));
        ("benchmarks", J.List (List.map kernel_json kernels));
        ("batch_throughput", throughput_json);
        ("serve_throughput", serve_json);
        ("atlas", atlas_json);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (J.to_string json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* Theorem 4 runtime scaling — the performance "figure" of the polynomial
   result: graph shortest path vs the direct DP across instance sizes. *)
let scaling_table () =
  let time_one f =
    (* Repeat until >= 50 ms of CPU time for a stable per-call figure. *)
    let rec calibrate reps =
      let t0 = Sys.time () in
      for _ = 1 to reps do
        ignore (Sys.opaque_identity (f ()))
      done;
      let elapsed = Sys.time () -. t0 in
      if elapsed >= 0.05 then elapsed /. float_of_int reps
      else calibrate (reps * 4)
    in
    calibrate 1
  in
  let table =
    Relpipe_util.Table.create
      [ "n x m (Thm 4)"; "graph vertices"; "Dijkstra us"; "direct DP us" ]
  in
  List.iter
    (fun (n, m) ->
      let inst = make_fully_hetero 11 ~n ~m in
      let t_dij = time_one (fun () -> General_mapping.solve inst) in
      let t_dp = time_one (fun () -> General_mapping.solve_dp inst) in
      Relpipe_util.Table.add_row table
        [
          Printf.sprintf "%dx%d" n m;
          string_of_int ((n * m) + 2);
          Printf.sprintf "%.1f" (1e6 *. t_dij);
          Printf.sprintf "%.1f" (1e6 *. t_dp);
        ])
    [ (4, 4); (8, 8); (16, 12); (32, 16); (64, 24); (128, 32) ];
  print_endline "Theorem 4 runtime scaling (polynomial general mappings)";
  print_endline "=======================================================";
  Relpipe_util.Table.print table;
  print_newline ()

(* Observability cost guard: solver kernels with no ambient context vs an
   ambient no-op sink.  The disabled path is a domain-local read plus
   dead-counter lookups, so the two timings must agree; a regression here
   means instrumentation leaked real work onto the hot path. *)
let obs_guard ~threshold =
  let module Obs = Relpipe_obs.Obs in
  let big_general = make_fully_hetero 7 ~n:32 ~m:24 in
  let inst_bb = make_fully_hetero 8 ~n:4 ~m:5 in
  let inst_iv = make_fully_hetero 9 ~n:8 ~m:10 in
  let kernels =
    [
      ( "thm4 direct DP (n=32, m=24)",
        fun () -> ignore (Sys.opaque_identity (General_mapping.solve_dp big_general)) );
      ( "branch&bound minFP|L (n=4, m=5)",
        fun () ->
          ignore
            (Sys.opaque_identity
               (Bb.solve inst_bb (Instance.Min_failure { max_latency = 1e6 }))) );
      ( "bitmask-DP interval optimum (n=8, m=10)",
        fun () -> ignore (Sys.opaque_identity (Interval_exact.min_latency inst_iv)) );
    ]
  in
  (* Every kernel call takes hundreds of microseconds, so each call is
     timed individually and the off/noop-sink variants are paired
     call-by-call — one pair sits well inside a single CPU-frequency /
     scheduler regime, unlike multi-millisecond blocks, which made the
     guard flaky on noisy machines.  The per-pair ratio is therefore
     tight, and the MEDIAN over all pairs discards the occasional call
     that absorbed a GC slice or an interrupt on one side.  The lead
     order alternates pair by pair to cancel any within-pair bias. *)
  let noop = Obs.noop () in
  let paired_ratio f =
    let timed g =
      let t0 = Unix.gettimeofday () in
      g ();
      Unix.gettimeofday () -. t0
    in
    let off () = timed f in
    let with_noop () = Obs.with_ambient (Some noop) (fun () -> timed f) in
    for _ = 1 to 3 do
      ignore (off ());
      ignore (with_noop ())
    done;
    let pairs = 301 in
    let offs = Array.make pairs 0.0 in
    let noops = Array.make pairs 0.0 in
    let ratios = Array.make pairs 0.0 in
    for i = 0 to pairs - 1 do
      let a, b =
        if i land 1 = 0 then
          let a = off () in
          let b = with_noop () in
          (a, b)
        else
          let b = with_noop () in
          let a = off () in
          (a, b)
      in
      offs.(i) <- a;
      noops.(i) <- b;
      ratios.(i) <- b /. a
    done;
    Array.sort Float.compare offs;
    Array.sort Float.compare noops;
    Array.sort Float.compare ratios;
    let mid = pairs / 2 in
    (offs.(mid), noops.(mid), ratios.(mid))
  in
  let table =
    Relpipe_util.Table.create
      [ "kernel"; "off ns"; "noop-sink ns"; "overhead" ]
  in
  let worst = ref neg_infinity in
  List.iter
    (fun (name, f) ->
      let t_off, t_noop, median_ratio = paired_ratio f in
      let overhead = median_ratio -. 1.0 in
      worst := Float.max !worst overhead;
      Relpipe_util.Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" (1e9 *. t_off);
          Printf.sprintf "%.1f" (1e9 *. t_noop);
          Printf.sprintf "%+.2f%%" (100.0 *. overhead);
        ])
    kernels;
  print_endline "Observability no-op-sink cost guard";
  print_endline "===================================";
  Relpipe_util.Table.print table;
  if !worst > threshold then begin
    Printf.eprintf "obs-guard: FAIL — worst overhead %+.2f%% exceeds %.0f%%\n"
      (100.0 *. !worst) (100.0 *. threshold);
    exit 1
  end;
  Printf.printf "obs-guard: OK — worst overhead %+.2f%% (threshold %.0f%%)\n"
    (100.0 *. !worst) (100.0 *. threshold)

let () =
  (* Flags: [--json FILE] writes a machine-readable report; [--kernels-only]
     skips the slow experiment tables (useful when only the JSON matters);
     [--obs-guard] runs only the observability cost guard; [--virtual-clock]
     times the twin kernels on a deterministic clock (byte-stable report,
     Bechamel and throughput skipped); [--against FILE] exits non-zero when
     an optimized kernel is >10% slower than the baseline report. *)
  let json_path = ref None and kernels_only = ref false in
  let obs_guard_only = ref false in
  let virtual_clock = ref false and against = ref None in
  let throughput_only = ref false and throughput_requests = ref 200 in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--kernels-only" :: rest ->
        kernels_only := true;
        parse rest
    | "--obs-guard" :: rest ->
        obs_guard_only := true;
        parse rest
    | "--virtual-clock" :: rest ->
        virtual_clock := true;
        parse rest
    | "--against" :: path :: rest ->
        against := Some path;
        parse rest
    | "--throughput-only" :: rest ->
        throughput_only := true;
        parse rest
    | "--throughput-requests" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> throughput_requests := v
        | _ ->
            Printf.eprintf "--throughput-requests needs a positive integer\n";
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: %s [--json FILE] [--kernels-only] [--obs-guard] \
           [--virtual-clock] [--against FILE] [--throughput-only] \
           [--throughput-requests N]\n\
          \  unknown argument %S\n"
          Sys.argv.(0) arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !obs_guard_only then begin
    obs_guard ~threshold:0.02;
    exit 0
  end;
  if !throughput_only then begin
    (* The wall-clock throughput section alone, sized by
       [--throughput-requests] — the cheap real-clock path the
       cpus/oversubscribed regression test drives. *)
    let throughput = batch_throughput ~n_requests:!throughput_requests () in
    (match !json_path with
    | None -> ()
    | Some path ->
        write_json path ~virtual_clock:false ~twins:[] [] (Some throughput));
    exit 0
  end;
  print_endline "relpipe benchmark harness";
  print_endline "Paper: Benoit, Rehn-Sonigo, Robert — Optimizing Latency and";
  print_endline "Reliability of Pipeline Workflow Applications (RR-6345, 2008)";
  print_newline ();
  if not !kernels_only then begin
    Relpipe_experiments.Experiments.print_all ();
    scaling_table ()
  end;
  let clock =
    if !virtual_clock then Relpipe_obs.Clock.virtual_ ()
    else Relpipe_obs.Clock.monotonic ()
  in
  let twins = run_twins ~clock () in
  let par = run_par ~clock () in
  let churn = run_churn ~clock () in
  (* Bechamel and the batch throughput read real time internally, so they
     only run on the real clock. *)
  let kernels = if !virtual_clock then [] else run_benchmarks () in
  let throughput = if !virtual_clock then None else Some (batch_throughput ()) in
  let serve = if !virtual_clock then [] else serve_throughput () in
  let atlas = if !virtual_clock then None else Some (atlas_bench ()) in
  (match !json_path with
  | None -> ()
  | Some path ->
      write_json path ~virtual_clock:!virtual_clock ~twins ~serve ~churn ~par
        ?atlas kernels throughput);
  match !against with
  | None -> ()
  | Some baseline -> check_against ~baseline twins
