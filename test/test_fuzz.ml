(* The fuzzing harness itself: registry stability, campaign determinism
   (across runs and worker counts), fault injection through the shrinker,
   exhaustive corpus replay, and the exposed single checks (JSON float
   round-trips, Lru model checking) as fixed-seed unit tests. *)

module Fuzz = Relpipe_fuzz
module Rng = Relpipe_util.Rng

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* The --list-oracles output is part of the CLI surface: scripts select
   oracles by these names, so the listing is pinned byte-for-byte. *)
let expected_listing =
  "interval-dp            exact interval DP matches brute-force interval \
   enumeration (small n, m)\n\
   general-shortest-path  general-mapping solvers agree and lower-bound the \
   interval optimum\n\
   heuristics-pareto      heuristics are feasible, consistent and dominated \
   by the exhaustive Pareto front\n\
   validate-lint          solver outputs pass Validate.check and lint with \
   zero errors\n\
   canon-invariance       processor renumbering: same cache key, engine \
   cache hit, translated mapping\n\
   text-roundtrip         Textio/Mapping_syntax/Protocol print->parse \
   round-trips are byte-identical\n\
   json-floats            JSON float round-trips are bit-identical on \
   adversarial values\n\
   lru                    Util.Lru matches a reference model at capacities \
   0, 1 and k\n\
   metrics-invariance     metrics and tracing sinks never change solver or \
   engine responses\n\
   opt-vs-reference       optimized solver kernels are bit-identical to \
   their frozen reference twins\n\
   churn-incremental      warm-started churn re-solves are byte-identical \
   to cold solves at every event\n\
   par-exact-identity     parallel B&B and layer-parallel DP are \
   bit-identical to serial at workers 1/2/8\n\
   cert-replay            emitted certificates pass the independent checker; \
   raised-bound and dropped-line mutants are rejected\n\
   stream-aggregation     streamed atlas aggregates equal the \
   batch-materialized reference: counters bit-for-bit, sketches within rank \
   tolerance\n"

let registry_tests =
  [
    test "list-oracles is byte-stable" (fun () ->
        Alcotest.(check string)
          "listing" expected_listing
          (Fuzz.Runner.list_oracles_text ()));
    test "find resolves every registered name" (fun () ->
        List.iter
          (fun name ->
            match Fuzz.Oracles.find name with
            | Some o -> Alcotest.(check string) "name" name o.Fuzz.Oracle.name
            | None -> Alcotest.failf "oracle %s not found" name)
          (Fuzz.Oracles.names ());
        Alcotest.(check bool)
          "unknown name" true
          (Option.is_none (Fuzz.Oracles.find "no-such-oracle")));
    test "salts are distinct" (fun () ->
        let salts = List.map (fun o -> o.Fuzz.Oracle.salt) (Fuzz.Oracles.all ()) in
        Alcotest.(check int)
          "distinct" (List.length salts)
          (List.length (List.sort_uniq Int.compare salts)));
  ]

(* ------------------------------------------------------------------ *)
(* Campaign determinism                                                *)
(* ------------------------------------------------------------------ *)

let campaign ?(seed = 4242) ?(count = 25) ?(workers = 1) () =
  Fuzz.Runner.run
    { Fuzz.Runner.default_config with Fuzz.Runner.seed; count; workers }

let determinism_tests =
  [
    test "same seed, same report" (fun () ->
        let a = Fuzz.Runner.render (campaign ())
        and b = Fuzz.Runner.render (campaign ()) in
        Alcotest.(check string) "render" a b);
    test "report is worker-count independent" (fun () ->
        let a = Fuzz.Runner.render (campaign ~workers:1 ())
        and b = Fuzz.Runner.render (campaign ~workers:3 ()) in
        Alcotest.(check string) "render" a b);
    test "clean campaign has no failures" (fun () ->
        let report = campaign ~seed:977 ~count:40 () in
        Alcotest.(check int)
          "failures" 0
          (List.length report.Fuzz.Runner.r_failures);
        List.iter
          (fun t ->
            Alcotest.(check int) (t.Fuzz.Runner.t_oracle ^ " fail") 0
              t.Fuzz.Runner.t_fail;
            Alcotest.(check int)
              (t.Fuzz.Runner.t_oracle ^ " total")
              40
              (t.Fuzz.Runner.t_pass + t.Fuzz.Runner.t_skip))
          report.Fuzz.Runner.r_tallies);
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection: perturbed DP -> minimized repro -> replay          *)
(* ------------------------------------------------------------------ *)

let injection_tests =
  [
    test "perturbed interval DP fails, shrinks, and replays" (fun () ->
        let out_dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "relpipe-fuzz-test-%d" (Unix.getpid ()))
        in
        let interval_dp = Option.get (Fuzz.Oracles.find "interval-dp") in
        let report =
          Fuzz.Runner.run
            {
              Fuzz.Runner.default_config with
              Fuzz.Runner.seed = 42;
              count = 2;
              oracles = [ interval_dp ];
              perturb = 0.05;
              out_dir = Some out_dir;
            }
        in
        Alcotest.(check bool)
          "at least one failure" true
          (report.Fuzz.Runner.r_failures <> []);
        List.iter
          (fun f ->
            (* The injected fault survives any instance, so shrinking must
               reach the 1-stage / 1-processor floor. *)
            let inst = f.Fuzz.Runner.f_minimized.Fuzz.Gen.instance in
            Alcotest.(check int)
              "minimized stages" 1
              (Relpipe_model.Pipeline.length inst.Relpipe_model.Instance.pipeline);
            Alcotest.(check int)
              "minimized procs" 1
              (Relpipe_model.Platform.size inst.Relpipe_model.Instance.platform);
            let path = Option.get f.Fuzz.Runner.f_path in
            (match Fuzz.Corpus.replay_file ~ctx:{ Fuzz.Oracle.perturb = 0.05 } path with
            | Ok (Fuzz.Oracle.Fail _) -> ()
            | Ok other ->
                Alcotest.failf "perturbed replay: expected FAIL, got %s"
                  (Fuzz.Oracle.outcome_to_string other)
            | Error msg -> Alcotest.failf "perturbed replay: %s" msg);
            match Fuzz.Corpus.replay_file path with
            | Ok Fuzz.Oracle.Pass -> ()
            | Ok other ->
                Alcotest.failf "clean replay: expected pass, got %s"
                  (Fuzz.Oracle.outcome_to_string other)
            | Error msg -> Alcotest.failf "clean replay: %s" msg)
          report.Fuzz.Runner.r_failures;
        Array.iter
          (fun name -> Sys.remove (Filename.concat out_dir name))
          (Sys.readdir out_dir);
        Sys.rmdir out_dir);
  ]

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let corpus_dir = Filename.concat "fixtures" "fuzz-corpus"

let corpus_tests =
  [
    test "every corpus entry replays as pass" (fun () ->
        let entries =
          List.filter
            (fun name -> Filename.check_suffix name ".relpipe")
            (Array.to_list (Sys.readdir corpus_dir))
        in
        Alcotest.(check bool) "corpus is non-empty" true (entries <> []);
        (* One entry per registered oracle, so a new oracle without a
           corpus repro fails this count. *)
        Alcotest.(check int)
          "one entry per oracle"
          (List.length (Fuzz.Oracles.names ()))
          (List.length entries);
        List.iter
          (fun name ->
            let path = Filename.concat corpus_dir name in
            match Fuzz.Corpus.replay_file path with
            | Ok Fuzz.Oracle.Pass -> ()
            | Ok outcome ->
                Alcotest.failf "%s: expected pass, got %s" name
                  (Fuzz.Oracle.outcome_to_string outcome)
            | Error msg -> Alcotest.failf "%s: %s" name msg)
          (List.sort String.compare entries));
    test "corpus headers name registered oracles" (fun () ->
        Array.iter
          (fun name ->
            if Filename.check_suffix name ".relpipe" then
              match Fuzz.Corpus.read (Filename.concat corpus_dir name) with
              | Error msg -> Alcotest.failf "%s: %s" name msg
              | Ok r ->
                  Alcotest.(check bool)
                    (name ^ " oracle registered") true
                    (Option.is_some (Fuzz.Oracles.find r.Fuzz.Corpus.oracle)))
          (Sys.readdir corpus_dir));
    test "repro text round-trips through Corpus" (fun () ->
        match Fuzz.Corpus.read (Filename.concat corpus_dir "fuzz-interval-dp-101.relpipe") with
        | Error msg -> Alcotest.fail msg
        | Ok r ->
            let case =
              Fuzz.Gen.of_instance ~seed:r.Fuzz.Corpus.seed r.Fuzz.Corpus.instance
                r.Fuzz.Corpus.objective
            in
            let text = Fuzz.Corpus.to_string ~oracle:r.Fuzz.Corpus.oracle case in
            (match Fuzz.Corpus.of_string text with
            | Error msg -> Alcotest.fail msg
            | Ok r2 ->
                Alcotest.(check string)
                  "oracle" r.Fuzz.Corpus.oracle r2.Fuzz.Corpus.oracle;
                Alcotest.(check int) "seed" r.Fuzz.Corpus.seed r2.Fuzz.Corpus.seed;
                Alcotest.(check string)
                  "instance"
                  (Relpipe_model.Textio.to_string r.Fuzz.Corpus.instance)
                  (Relpipe_model.Textio.to_string r2.Fuzz.Corpus.instance)));
  ]

(* ------------------------------------------------------------------ *)
(* Exposed single checks as fixed-seed unit tests                      *)
(* ------------------------------------------------------------------ *)

let check_roundtrip v =
  match Fuzz.Oracles.json_float_roundtrip v with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let json_tests =
  [
    test "adversarial float round-trips" (fun () ->
        List.iter check_roundtrip
          [
            0.; -0.; 1e308; -1e308; 1e-308; -1e-308;
            Int64.float_of_bits 1L (* min subnormal *);
            Int64.float_of_bits 0x8000_0000_0000_0001L;
            1.5e-310; Float.max_float; -.Float.max_float; Float.min_float;
            0.1; 1. /. 3.; infinity; neg_infinity; nan;
          ]);
    test "negative zero keeps its sign through parse" (fun () ->
        (* Regression: Json.parse "-0" decoded as Int 0, losing the sign. *)
        match Relpipe_service.Json.parse "-0" with
        | Error msg -> Alcotest.fail msg
        | Ok j -> (
            match Relpipe_service.Json.to_float j with
            | Some v ->
                Alcotest.(check bool)
                  "bits of -0." true
                  (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float (-0.)))
            | None -> Alcotest.fail "not a number"));
    Helpers.seed_property ~count:50 "random bit patterns round-trip"
      (fun seed ->
        let rng = Rng.create seed in
        List.for_all
          (fun v -> Result.is_ok (Fuzz.Oracles.json_float_roundtrip v))
          (List.init 8 (fun _ -> Int64.float_of_bits (Rng.int64 rng))));
  ]

let lru_tests =
  [
    Helpers.seed_property ~count:100 "Lru capacity 0 matches the model"
      (fun seed ->
        Result.is_ok
          (Fuzz.Oracles.lru_check (Rng.create seed) ~capacity:0 ~ops:120));
    Helpers.seed_property ~count:100 "Lru capacity 1 matches the model"
      (fun seed ->
        Result.is_ok
          (Fuzz.Oracles.lru_check (Rng.create seed) ~capacity:1 ~ops:120));
    Helpers.seed_property ~count:50 "Lru small capacities match the model"
      (fun seed ->
        let rng = Rng.create seed in
        let capacity = 2 + Rng.int rng 6 in
        Result.is_ok (Fuzz.Oracles.lru_check rng ~capacity ~ops:150));
  ]

(* ------------------------------------------------------------------ *)
(* Oracles as QCheck properties (seed -> case -> Pass/Skip)            *)
(* ------------------------------------------------------------------ *)

let oracle_property (o : Fuzz.Oracle.t) =
  Helpers.seed_property ~count:60
    (Printf.sprintf "oracle %s holds on random cases" o.Fuzz.Oracle.name)
    (fun seed ->
      let case = Fuzz.Gen.generate ~id:0 ~seed Fuzz.Gen.default_shape in
      not (Fuzz.Oracle.is_fail (o.Fuzz.Oracle.check Fuzz.Oracle.default_ctx case)))

let property_tests = List.map oracle_property (Fuzz.Oracles.all ())

let () =
  Alcotest.run "fuzz"
    [
      ("registry", registry_tests);
      ("determinism", determinism_tests);
      ("injection", injection_tests);
      ("corpus", corpus_tests);
      ("json", json_tests);
      ("lru", lru_tests);
      ("properties", property_tests);
    ]
