open Relpipe_util
module Q = QCheck

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_int_bounds =
  Helpers.seed_property "Rng.int stays within bounds" (fun seed ->
      let rng = Rng.create seed in
      let bound = 1 + (seed mod 50) in
      List.for_all
        (fun _ ->
          let v = Rng.int rng bound in
          v >= 0 && v < bound)
        (List.init 200 Fun.id))

let rng_int_rejects_bad () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let rng_float_bounds =
  Helpers.seed_property "Rng.float stays within bounds" (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.float rng 3.5 in
          v >= 0.0 && v < 3.5)
        (List.init 200 Fun.id))

let rng_float_range_order () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.float_range: lo > hi")
    (fun () -> ignore (Rng.float_range rng 2.0 1.0))

let rng_mean_reasonable () =
  let rng = Rng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Rng.float rng 1.0) in
  let mean = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let rng_bernoulli_rate () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let rng_permutation_valid =
  Helpers.seed_property "Rng.permutation is a permutation" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 20) in
      let p = Rng.permutation rng n in
      let sorted = Array.copy p in
      Array.sort Int.compare sorted;
      sorted = Array.init n Fun.id)

let rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = Array.init 32 (fun _ -> Rng.int64 a) in
  let ys = Array.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let rng_exponential_positive () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.exponential rng 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0 && Float.is_finite v)
  done

let rng_pick_member =
  Helpers.seed_property "Rng.pick returns a member" (fun seed ->
      let rng = Rng.create seed in
      let a = [| 1; 5; 9; 12 |] in
      Array.mem (Rng.pick rng a) a)

(* ------------------------------------------------------------------ *)
(* Float_cmp                                                           *)
(* ------------------------------------------------------------------ *)

let float_cmp_basic () =
  Alcotest.(check bool) "equal" true (Float_cmp.approx_eq 1.0 1.0);
  Alcotest.(check bool) "close" true (Float_cmp.approx_eq 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Float_cmp.approx_eq 1.0 1.1);
  Alcotest.(check bool) "relative" true
    (Float_cmp.approx_eq 1e12 (1e12 *. (1.0 +. 1e-12)));
  Alcotest.(check bool) "nan not equal" false (Float_cmp.approx_eq Float.nan 1.0);
  Alcotest.(check bool) "inf equal to itself" true
    (Float_cmp.approx_eq Float.infinity Float.infinity)

let float_cmp_leq () =
  Alcotest.(check bool) "strictly less" true (Float_cmp.leq 1.0 2.0);
  Alcotest.(check bool) "approx equal counts" true (Float_cmp.leq (1.0 +. 1e-12) 1.0);
  Alcotest.(check bool) "greater fails" false (Float_cmp.leq 2.0 1.0)

let float_cmp_compare_consistent =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~name:"Float_cmp.compare antisymmetric" ~count:500
       Q.(pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
       (fun (a, b) -> Float_cmp.compare a b = -Float_cmp.compare b a))

let float_cmp_clamp () =
  Alcotest.(check (float 0.0)) "below" 0.0 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  Alcotest.(check (float 0.0)) "above" 1.0 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 2.0);
  Alcotest.(check (float 0.0)) "inside" 0.5 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 0.5)

let float_cmp_probability () =
  Alcotest.(check bool) "0 ok" true (Float_cmp.is_probability 0.0);
  Alcotest.(check bool) "1 ok" true (Float_cmp.is_probability 1.0);
  Alcotest.(check bool) "1.5 bad" false (Float_cmp.is_probability 1.5);
  Alcotest.(check bool) "nan bad" false (Float_cmp.is_probability Float.nan)

(* ------------------------------------------------------------------ *)
(* Kahan                                                               *)
(* ------------------------------------------------------------------ *)

let kahan_hard_case () =
  (* 1 + 1e-16 added 1e6 times loses the small terms with naive
     summation. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  for _ = 1 to 1_000_000 do
    Kahan.add acc 1e-16
  done;
  Helpers.check_close ~eps:1e-12 "compensated" (1.0 +. 1e-10) (Kahan.sum acc)

let kahan_matches_naive_on_easy =
  Helpers.seed_property "Kahan equals naive on benign input" (fun seed ->
      let rng = Rng.create seed in
      let xs = Array.init 100 (fun _ -> Rng.float rng 10.0) in
      let naive = Array.fold_left ( +. ) 0.0 xs in
      Float_cmp.approx_eq ~eps:1e-9 naive (Kahan.sum_array xs))

let kahan_neumaier_order () =
  (* Neumaier's variant handles a huge term arriving after small ones. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  Kahan.add acc 1e100;
  Kahan.add acc 1.0;
  Kahan.add acc (-1e100);
  Helpers.check_close "big cancellation" 2.0 (Kahan.sum acc)

let kahan_seq_and_map () =
  Helpers.check_close "sum_seq" 6.0 (Kahan.sum_seq (List.to_seq [ 1.0; 2.0; 3.0 ]));
  Helpers.check_close "sum_map" 12.0 (Kahan.sum_map (fun x -> 2.0 *. x) [ 1.0; 2.0; 3.0 ])

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_known_values () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Helpers.check_close "mean" 5.0 (Stats.mean xs);
  Helpers.check_close "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev xs);
  Helpers.check_close "median" 4.5 (Stats.quantile xs 0.5);
  Helpers.check_close "q0" 2.0 (Stats.quantile xs 0.0);
  Helpers.check_close "q1" 9.0 (Stats.quantile xs 1.0)

let stats_quantile_monotone =
  Helpers.seed_property "quantiles are monotone" (fun seed ->
      let rng = Rng.create seed in
      let xs = Array.init 50 (fun _ -> Rng.float rng 100.0) in
      let q1 = Stats.quantile xs 0.25
      and q2 = Stats.quantile xs 0.5
      and q3 = Stats.quantile xs 0.75 in
      q1 <= q2 && q2 <= q3)

let stats_summary_bounds =
  Helpers.seed_property "summary min <= mean <= max" (fun seed ->
      let rng = Rng.create seed in
      let xs = Array.init 30 (fun _ -> Rng.float rng 100.0) in
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean && s.Stats.mean <= s.Stats.max)

let stats_empty_rejected () =
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Stats.summarize: empty sample") (fun () ->
      ignore (Stats.summarize [||]))

let stats_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "sane width" true (hi -. lo < 0.25);
  let lo0, _ = Stats.wilson_interval ~successes:0 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "zero successes" true (lo0 >= 0.0)

let stats_proportion () =
  Helpers.check_close "proportion" 0.25 (Stats.proportion [| true; false; false; false |])

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let pqueue_sorts =
  Helpers.seed_property "pop order is sorted" (fun seed ->
      let rng = Rng.create seed in
      let q = Pqueue.create () in
      let n = 1 + (seed mod 100) in
      for i = 0 to n - 1 do
        Pqueue.push q (Rng.float rng 100.0) i
      done;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain Float.neg_infinity)

let pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 "a";
  Pqueue.push q 1.0 "b";
  Pqueue.push q 1.0 "c";
  let pop () = snd (Option.get (Pqueue.pop q)) in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let pqueue_peek_and_length () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 2.0 20;
  Pqueue.push q 1.0 10;
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  (match Pqueue.peek q with
  | Some (p, v) ->
      Helpers.check_close "peek prio" 1.0 p;
      Alcotest.(check int) "peek value" 10 v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Pqueue.length q)

let pqueue_to_sorted_list () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3.0, 'c'); (1.0, 'a'); (2.0, 'b') ];
  let listed = Pqueue.to_sorted_list q in
  Alcotest.(check (list char)) "sorted payloads" [ 'a'; 'b'; 'c' ]
    (List.map snd listed);
  Alcotest.(check int) "queue unchanged" 3 (Pqueue.length q)

let pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.push q 1.0 1;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let pqueue_oracle_stress () =
  (* 10k random operations against a sorted-list oracle. *)
  let rng = Rng.create 2718 in
  let q = Pqueue.create () in
  let oracle = ref [] in
  (* Oracle entries: (prio, seq); pop order = (prio, seq) lexicographic. *)
  let seq = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.float rng 1.0 < 0.6 || !oracle = [] then begin
      let p = Rng.float rng 100.0 in
      Pqueue.push q p !seq;
      oracle := (p, !seq) :: !oracle;
      incr seq
    end
    else begin
      let sorted =
        List.sort
          (fun (p, s) (p', s') ->
            match Float.compare p p' with 0 -> Int.compare s s' | c -> c)
          !oracle
      in
      match sorted, Pqueue.pop q with
      | (p, s) :: rest, Some (p', s') ->
          Alcotest.(check (float 0.0)) "priority" p p';
          Alcotest.(check int) "payload" s s';
          oracle := rest
      | _, None -> Alcotest.fail "queue empty but oracle not"
      | [], _ -> Alcotest.fail "oracle empty but queue not"
    end
  done;
  Alcotest.(check int) "sizes agree" (List.length !oracle) (Pqueue.length q)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let bitset_model =
  Helpers.seed_property "bitset agrees with a list model" (fun seed ->
      let rng = Rng.create seed in
      let ops = List.init 60 (fun _ -> (Rng.int rng 20, Rng.bool rng)) in
      let set, model =
        List.fold_left
          (fun (set, model) (i, add) ->
            if add then (Bitset.add i set, List.sort_uniq Int.compare (i :: model))
            else (Bitset.remove i set, List.filter (( <> ) i) model))
          (Bitset.empty, []) ops
      in
      Bitset.elements set = model
      && Bitset.cardinal set = List.length model
      && List.for_all (fun i -> Bitset.mem i set) model)

let bitset_set_ops () =
  let a = Bitset.of_list [ 0; 2; 4 ] and b = Bitset.of_list [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 2; 3; 4 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 4 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  Alcotest.(check bool) "disjoint" true
    (Bitset.disjoint a (Bitset.of_list [ 1; 3 ]));
  Alcotest.(check bool) "subset" true
    (Bitset.subset (Bitset.of_list [ 0; 4 ]) a)

let bitset_subsets_count () =
  let s = Bitset.of_list [ 1; 3; 5; 7 ] in
  let subsets = List.of_seq (Bitset.subsets s) in
  Alcotest.(check int) "2^4 subsets" 16 (List.length subsets);
  Alcotest.(check int) "unique" 16
    (List.length (List.sort_uniq Bitset.compare subsets));
  Alcotest.(check bool) "all are subsets" true
    (List.for_all (fun sub -> Bitset.subset sub s) subsets);
  Alcotest.(check int) "nonempty count" 15
    (List.length (List.of_seq (Bitset.nonempty_subsets s)))

let bitset_full_and_choose () =
  Alcotest.(check int) "full cardinal" 5 (Bitset.cardinal (Bitset.full 5));
  Alcotest.(check (option int)) "choose smallest" (Some 3)
    (Bitset.choose (Bitset.of_list [ 7; 3; 9 ]));
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose Bitset.empty)

let bitset_range_checks () =
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: element out of range")
    (fun () -> ignore (Bitset.singleton (-1)))

(* ------------------------------------------------------------------ *)
(* Combin                                                              *)
(* ------------------------------------------------------------------ *)

let combin_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Combin.binomial 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Combin.binomial 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Combin.binomial 10 10);
  Alcotest.(check int) "C(4,7)" 0 (Combin.binomial 4 7);
  Alcotest.(check int) "C(20,10)" 184756 (Combin.binomial 20 10)

let combin_compositions_count () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "2^%d compositions" (n - 1))
        (1 lsl (n - 1))
        (Seq.length (Combin.compositions n)))
    [ 1; 2; 3; 4; 5; 6 ]

let combin_compositions_cover =
  Helpers.seed_property "compositions cover 1..n contiguously" (fun seed ->
      let n = 1 + (seed mod 7) in
      Seq.for_all
        (fun intervals ->
          let rec check expected = function
            | [] -> expected = n + 1
            | (first, last) :: tl ->
                first = expected && last >= first && check (last + 1) tl
          in
          check 1 intervals)
        (Combin.compositions n))

let combin_subsets_of_size () =
  let subsets = List.of_seq (Combin.subsets_of_size 5 3) in
  Alcotest.(check int) "C(5,3)" 10 (List.length subsets);
  Alcotest.(check bool) "sorted & distinct" true
    (List.for_all
       (fun s -> List.length s = 3 && List.sort_uniq Int.compare s = s)
       subsets);
  Alcotest.(check int) "all unique" 10
    (List.length (List.sort_uniq (List.compare Int.compare) subsets))

let combin_permutations_count () =
  Alcotest.(check int) "4! perms" 24
    (Seq.length (Combin.permutations [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "0! perms" 1 (Seq.length (Combin.permutations []))

let combin_permutations_distinct () =
  let perms = List.of_seq (Combin.permutations [ 1; 2; 3; 4 ]) in
  Alcotest.(check int) "distinct" 24 (List.length (List.sort_uniq (List.compare Int.compare) perms));
  Alcotest.(check bool) "each is a permutation" true
    (List.for_all (fun p -> List.sort Int.compare p = [ 1; 2; 3; 4 ]) perms)

let combin_disjoint_assignments () =
  let pool = Relpipe_util.Bitset.full 3 in
  (* p=1: 7 non-empty subsets.  p=2: ordered disjoint non-empty pairs. *)
  Alcotest.(check int) "p=1" 7
    (Seq.length (Combin.disjoint_assignments pool 1));
  let pairs = List.of_seq (Combin.disjoint_assignments pool 2) in
  Alcotest.(check bool) "pairwise disjoint" true
    (List.for_all
       (fun sets ->
         match sets with
         | [ a; b ] ->
             Relpipe_util.Bitset.disjoint a b
             && (not (Relpipe_util.Bitset.is_empty a))
             && not (Relpipe_util.Bitset.is_empty b)
         | _ -> false)
       pairs);
  (* Count: sum over non-empty A of (2^(3-|A|) - 1) = 3*3 + 3*1 + 1*0 = 12. *)
  Alcotest.(check int) "p=2 count" 12 (List.length pairs)

let combin_compositions_up_to () =
  (* Partitions of 1..n into at most p intervals: sum_{q<=p} C(n-1, q-1). *)
  let expected n p =
    let total = ref 0 in
    for q = 1 to p do
      total := !total + Combin.binomial (n - 1) (q - 1)
    done;
    !total
  in
  List.iter
    (fun (n, p) ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d p=%d" n p)
        (expected n p)
        (Seq.length (Combin.compositions_up_to n p)))
    [ (5, 1); (5, 2); (5, 5); (7, 3); (1, 1) ]

let combin_injections () =
  let inj = List.of_seq (Combin.injections 2 [ 1; 2; 3 ]) in
  Alcotest.(check int) "3*2 injections" 6 (List.length inj);
  Alcotest.(check bool) "entries distinct" true
    (List.for_all
       (fun l -> List.length (List.sort_uniq Int.compare l) = List.length l)
       inj)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let table_renders () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    && String.sub out 0 4 = "name");
  (* Columns aligned: every line has the same position for the second
     column. *)
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count (header+rule+2 rows+trailing)" 5
    (List.length lines)

let table_arity_checked () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let table_fmt_float () =
  Alcotest.(check string) "compact" "1.5" (Table.fmt_float 1.5);
  Alcotest.(check string) "digits" "3.14" (Table.fmt_float ~digits:3 3.14159)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          test "deterministic streams" rng_deterministic;
          test "different seeds differ" rng_seeds_differ;
          rng_int_bounds;
          test "int rejects bad bound" rng_int_rejects_bad;
          rng_float_bounds;
          test "float_range rejects inverted" rng_float_range_order;
          test "uniform mean" rng_mean_reasonable;
          test "bernoulli rate" rng_bernoulli_rate;
          rng_permutation_valid;
          test "split independence" rng_split_independent;
          test "exponential positive" rng_exponential_positive;
          rng_pick_member;
        ] );
      ( "float_cmp",
        [
          test "approx_eq basics" float_cmp_basic;
          test "leq" float_cmp_leq;
          float_cmp_compare_consistent;
          test "clamp" float_cmp_clamp;
          test "is_probability" float_cmp_probability;
        ] );
      ( "kahan",
        [
          test "hard case" kahan_hard_case;
          kahan_matches_naive_on_easy;
          test "neumaier order" kahan_neumaier_order;
          test "seq and map" kahan_seq_and_map;
        ] );
      ( "stats",
        [
          test "known values" stats_known_values;
          stats_quantile_monotone;
          stats_summary_bounds;
          test "empty rejected" stats_empty_rejected;
          test "wilson interval" stats_wilson;
          test "proportion" stats_proportion;
        ] );
      ( "pqueue",
        [
          pqueue_sorts;
          test "FIFO among ties" pqueue_fifo_ties;
          test "peek and length" pqueue_peek_and_length;
          test "to_sorted_list" pqueue_to_sorted_list;
          test "clear" pqueue_clear;
          test "oracle stress (10k ops)" pqueue_oracle_stress;
        ] );
      ( "bitset",
        [
          bitset_model;
          test "set operations" bitset_set_ops;
          test "subsets enumeration" bitset_subsets_count;
          test "full and choose" bitset_full_and_choose;
          test "range checks" bitset_range_checks;
        ] );
      ( "combin",
        [
          test "binomial" combin_binomial;
          test "compositions count" combin_compositions_count;
          combin_compositions_cover;
          test "subsets of size" combin_subsets_of_size;
          test "permutations count" combin_permutations_count;
          test "permutations distinct" combin_permutations_distinct;
          test "disjoint assignments" combin_disjoint_assignments;
          test "compositions up to" combin_compositions_up_to;
          test "injections" combin_injections;
        ] );
      ( "table",
        [
          test "renders" table_renders;
          test "arity checked" table_arity_checked;
          test "fmt_float" table_fmt_float;
        ] );
    ]
