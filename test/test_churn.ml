(* Tests for lib/churn: seeded event traces (same seed => same trace),
   world perturbation semantics (deaths compact preserving order, joins
   append, stable identities survive renumbering), the resumable DP's
   reuse accounting against hand-counted cell totals, the engine's
   incremental == cold contract and churn.* metrics on a hand-computed
   3-event scenario, QCheck properties (death never resurrects capacity
   through a reused prefix; a no-op drift reuses the whole table and
   repeats the previous solution), and golden snapshots of the
   [relpipe churn] CLI byte-identical across worker counts. *)

open Relpipe_model
module Rng = Relpipe_util.Rng
module Event = Relpipe_churn.Event
module World = Relpipe_churn.World
module Driver = Relpipe_churn.Driver
module Engine = Relpipe_churn.Engine
module Interval_exact = Relpipe_core.Interval_exact
module Reference = Relpipe_core.Reference
module Solution = Relpipe_core.Solution
module Obs = Relpipe_obs.Obs
module Clock = Relpipe_obs.Clock
module Snapshot = Helpers.Snapshot

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.equal (String.sub hay i ln) needle || go (i + 1))
  in
  go 0

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* A 2-stage pipeline on three processors where p0 is ten times faster
   than the rest: every optimum below is forced by hand-checkable
   arithmetic (bandwidths so large that communication never decides). *)
let hand_instance () =
  let pipeline = Pipeline.of_costs ~input:1.0 [ (1.0, 1.0); (1.0, 1.0) ] in
  let platform =
    Platform.uniform_links
      ~speeds:[| 10.0; 1.0; 1.0 |]
      ~failures:[| 0.1; 0.1; 0.1 |]
      ~bandwidth:1e6
  in
  Instance.make pipeline platform

let objective = Instance.Min_latency { max_failure = 1.0 }

(* ------------------------------------------------------------------ *)
(* Driver: seeded traces                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_deterministic () =
  let world = World.of_instance (hand_instance ()) in
  let a = Driver.trace ~seed:42 ~count:30 world in
  let b = Driver.trace ~seed:42 ~count:30 world in
  check_int "trace length" 30 (List.length a);
  check_bool "same seed, same trace" true (List.equal Event.equal a b);
  let c = Driver.trace ~seed:43 ~count:30 world in
  check_bool "different seed, different trace" false
    (List.equal Event.equal a c)

let test_trace_validation () =
  let world = World.of_instance (hand_instance ()) in
  check_bool "negative count rejected" true
    (raises_invalid (fun () -> Driver.trace ~seed:1 ~count:(-1) world));
  check_bool "non-positive mission rejected" true
    (raises_invalid (fun () ->
         Driver.trace ~mission:0.0 ~seed:1 ~count:1 world));
  check_bool "cap above max_procs rejected" true
    (raises_invalid (fun () ->
         Driver.trace ~cap:(Driver.max_procs + 1) ~seed:1 ~count:1 world));
  check_bool "empty trace fine" true (Driver.trace ~seed:1 ~count:0 world = [])

let test_trace_respects_cap () =
  (* With a cap equal to the current platform size no join can fire, so
     every world along the trace keeps at most that many processors. *)
  let world = World.of_instance (hand_instance ()) in
  let events = Driver.trace ~cap:3 ~seed:7 ~count:40 world in
  let _final =
    List.fold_left
      (fun w ev ->
        check_bool "no join beyond cap" true (World.size w <= 3);
        fst (World.apply w ev))
      world events
  in
  ()

(* ------------------------------------------------------------------ *)
(* World: perturbation semantics                                       *)
(* ------------------------------------------------------------------ *)

let four_proc_world () =
  let pipeline = Pipeline.of_costs ~input:1.0 [ (2.0, 1.0); (3.0, 1.0) ] in
  let platform =
    Platform.uniform_links
      ~speeds:[| 1.0; 2.0; 3.0; 4.0 |]
      ~failures:[| 0.1; 0.2; 0.3; 0.4 |]
      ~bandwidth:5.0
  in
  World.of_instance (Instance.make pipeline platform)

let test_world_death () =
  let w = four_proc_world () in
  let w', prev_of = World.apply w (Event.Death 1) in
  check_int "one fewer processor" 3 (World.size w');
  Alcotest.(check (array int)) "prev_of skips the victim" [| 0; 2; 3 |] prev_of;
  check_int "stable ids shift" 0 (World.id w' 0);
  check_int "stable ids shift (1)" 2 (World.id w' 1);
  check_int "stable ids shift (2)" 3 (World.id w' 2);
  let plat = World.platform w' in
  Helpers.check_close "speeds compact in order" 3.0
    (Platform.speed plat 1);
  check_bool "killing the last processor is refused" true
    (raises_invalid (fun () ->
         let rec kill w =
           if World.size w = 1 then World.apply w (Event.Death 0)
           else kill (fst (World.apply w (Event.Death 0)))
         in
         kill w))

let test_world_join () =
  let w = four_proc_world () in
  let ev = Event.Join { speed = 7.0; failure = 0.05; bandwidth = 2.0 } in
  let w', prev_of = World.apply w ev in
  check_int "one more processor" 5 (World.size w');
  Alcotest.(check (array int))
    "prev_of is the identity plus a fresh slot" [| 0; 1; 2; 3; -1 |] prev_of;
  check_int "fresh stable id" 4 (World.id w' 4);
  Helpers.check_close "joined speed" 7.0 (Platform.speed (World.platform w') 4);
  (* A second join after a death keeps minting fresh ids: identity never
     recycles, so stability metrics can trust it. *)
  let w2, _ = World.apply w' (Event.Death 4) in
  let w3, _ = World.apply w2 ev in
  check_int "ids are never reused" 5 (World.id w3 4)

let test_world_drift () =
  let w = four_proc_world () in
  let w', prev_of = World.apply w (Event.Speed_drift { proc = 2; factor = 0.5 }) in
  Alcotest.(check (array int)) "drift keeps indexing" [| 0; 1; 2; 3 |] prev_of;
  Helpers.check_close "drifted speed" 1.5 (Platform.speed (World.platform w') 2);
  Helpers.check_close "others untouched" 2.0
    (Platform.speed (World.platform w') 1);
  check_bool "zero factor rejected" true
    (raises_invalid (fun () ->
         World.apply w (Event.Speed_drift { proc = 0; factor = 0.0 })));
  check_bool "out-of-range processor rejected" true
    (raises_invalid (fun () -> World.apply w (Event.Death 9)))

(* ------------------------------------------------------------------ *)
(* Resumable DP: cold equivalence and reuse accounting                 *)
(* ------------------------------------------------------------------ *)

let check_dp_eq name a b =
  match (a, b) with
  | None, None -> ()
  | Some (la, ma), Some (lb, mb) ->
      check_bool (name ^ ": latency bits") true (bits_eq la lb);
      check_bool (name ^ ": mapping") true (Mapping.equal ma mb)
  | _ -> Alcotest.fail (name ^ ": feasibility differs")

let test_dp_cold_matches_twins () =
  let rng = Helpers.rng_of_seed 2024 in
  for _ = 1 to 5 do
    let inst = Helpers.random_fully_hetero rng ~n:5 ~m:4 in
    let dp, _, reuse = Interval_exact.Dp.solve inst in
    check_int "cold solve reuses nothing" 0
      reuse.Interval_exact.Dp.cells_reused;
    check_dp_eq "Dp.solve vs min_latency" dp (Interval_exact.min_latency inst);
    check_dp_eq "Dp.solve vs reference" dp
      (Reference.interval_min_latency_reference inst)
  done

let test_dp_reuse_accounting () =
  (* n = 2, m = 3: the table holds n * m * 2^(m-1) = 24 cells.  A drift
     on one processor dirties every mask containing it; the clean masks
     are the non-empty subsets of the other two, worth
     n * (1 + 1 + 2) = 8 cells. *)
  let world = World.of_instance (hand_instance ()) in
  let _, st0, r0 = Interval_exact.Dp.solve (World.instance world) in
  check_int "cold total" 24 r0.Interval_exact.Dp.cells_total;
  check_int "cold reuse" 0 r0.Interval_exact.Dp.cells_reused;
  let drifted, prev_of =
    World.apply world (Event.Speed_drift { proc = 2; factor = 0.5 })
  in
  let dp_w, _, r1 =
    Interval_exact.Dp.solve ~warm:(st0, prev_of) (World.instance drifted)
  in
  check_int "one dirty processor of three" 8 r1.Interval_exact.Dp.cells_reused;
  check_int "total unchanged" 24 r1.Interval_exact.Dp.cells_total;
  let dp_c, _, _ = Interval_exact.Dp.solve (World.instance drifted) in
  check_dp_eq "warm equals cold after drift" dp_w dp_c;
  (* A death leaves every surviving processor's attributes untouched:
     the whole (smaller) table is carried over. *)
  let dead, prev_of = World.apply world (Event.Death 1) in
  let dp_w, _, r2 =
    Interval_exact.Dp.solve ~warm:(st0, prev_of) (World.instance dead)
  in
  check_int "death reuses the whole table" r2.Interval_exact.Dp.cells_total
    r2.Interval_exact.Dp.cells_reused;
  check_int "death shrinks the table" 8 r2.Interval_exact.Dp.cells_total;
  let dp_c, _, _ = Interval_exact.Dp.solve (World.instance dead) in
  check_dp_eq "warm equals cold after death" dp_w dp_c;
  (* A no-op drift dirties nobody. *)
  let same, prev_of =
    World.apply world (Event.Speed_drift { proc = 0; factor = 1.0 })
  in
  let dp_w, _, r3 =
    Interval_exact.Dp.solve ~warm:(st0, prev_of) (World.instance same)
  in
  check_int "no-op reuses every cell" r3.Interval_exact.Dp.cells_total
    r3.Interval_exact.Dp.cells_reused;
  check_dp_eq "no-op repeats the optimum" dp_w
    (Interval_exact.min_latency (World.instance world))

(* ------------------------------------------------------------------ *)
(* Engine: hand-computed 3-event scenario                              *)
(* ------------------------------------------------------------------ *)

(* Speeds [10; 1; 1]: the cold optimum packs both stages on p0.  Then:
   1. a no-op drift (factor 1.0) — nothing moves, the whole table and
      the incumbent bound survive;
   2. p0 dies — the survivors' attributes are untouched (full reuse of
      the shrunken table) but the incumbent used p0, so no bound
      survives, and both stages move;
   3. a speed-50 join — only masks containing the newcomer re-solve
      (8 of 24 cells reused) and both stages move onto it. *)
let hand_events =
  [
    Event.Speed_drift { proc = 1; factor = 1.0 };
    Event.Death 0;
    Event.Join { speed = 50.0; failure = 0.1; bandwidth = 1e6 };
  ]

let test_engine_hand_scenario () =
  let obs = Obs.create ~tracing:false ~clock:(Clock.virtual_ ()) () in
  let world = World.of_instance (hand_instance ()) in
  let steps = Engine.run ~obs ~objective world hand_events in
  check_int "initial solve plus one step per event" 4 (List.length steps);
  let expect =
    (* index, moved stages, cells reused, cells total, warm bound *)
    [ (0, 0, 0, 24, false); (1, 0, 24, 24, true); (2, 2, 8, 8, false);
      (3, 2, 8, 24, true) ]
  in
  List.iter2
    (fun (index, moved, reused, total, bound) (st : Engine.step) ->
      let tag = Printf.sprintf "step %d" index in
      check_int (tag ^ ": index") index st.Engine.index;
      check_int (tag ^ ": moved stages") moved st.Engine.moved_stages;
      check_int (tag ^ ": cells reused") reused
        st.Engine.reuse.Interval_exact.Dp.cells_reused;
      check_int (tag ^ ": cells total") total
        st.Engine.reuse.Interval_exact.Dp.cells_total;
      check_bool (tag ^ ": warm bound") bound st.Engine.warm_bound;
      (* Two clock reads bracket the two solver legs: under the virtual
         clock every repair takes exactly one tick. *)
      check_int (tag ^ ": time to repair") 1000 st.Engine.ttr_ns)
    expect steps;
  (match steps with
  | s0 :: _ ->
      Helpers.check_close ~eps:1e-9 "initial latency: 2/10 plus two hops"
        (0.2 +. 2e-6)
        (fst (Option.get s0.Engine.dp))
  | [] -> Alcotest.fail "no steps");
  (match List.rev steps with
  | last :: _ ->
      Helpers.check_close ~eps:1e-9 "final latency: 2/50 plus two hops"
        (0.04 +. 2e-6)
        (fst (Option.get last.Engine.dp));
      check_int "final world size" 3 (World.size last.Engine.world)
  | [] -> ());
  check_bool "verify accepts the warm run" true
    (Engine.verify ~workers:2 ~objective steps);
  let metrics = Obs.metrics_jsonl obs in
  List.iter
    (fun line -> check_bool ("metrics carry " ^ line) true (contains metrics line))
    [
      "{\"name\":\"churn.steps\",\"type\":\"counter\",\"value\":4}";
      "{\"name\":\"churn.moved_stages\",\"type\":\"counter\",\"value\":4}";
      "{\"name\":\"churn.dp.cells_reused\",\"type\":\"counter\",\"value\":40}";
      "{\"name\":\"churn.bb.warm_bounds\",\"type\":\"counter\",\"value\":2}";
      "{\"name\":\"churn.events.death\",\"type\":\"counter\",\"value\":1}";
      "{\"name\":\"churn.events.speed\",\"type\":\"counter\",\"value\":1}";
      "{\"name\":\"churn.events.join\",\"type\":\"counter\",\"value\":1}";
      "\"churn.ttr_ns\",\"type\":\"histogram\",\"count\":3";
    ]

let test_engine_cold_matches_warm () =
  let world = World.of_instance (hand_instance ()) in
  let warm = Engine.run ~objective world hand_events in
  let cold = Engine.run ~cold:true ~objective world hand_events in
  List.iter2
    (fun (w : Engine.step) (c : Engine.step) ->
      check_bool "cold run reuses nothing" true
        (c.Engine.reuse.Interval_exact.Dp.cells_reused = 0);
      check_bool "cold run never bounds" false c.Engine.warm_bound;
      check_bool "same optimum" true (Engine.equal_dp w.Engine.dp c.Engine.dp);
      check_bool "same solution" true
        (Engine.equal_solution w.Engine.solution c.Engine.solution);
      check_int "same stability" w.Engine.moved_stages c.Engine.moved_stages)
    warm cold

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let random_world rng =
  let n = 2 + Rng.int rng 3 and m = 3 + Rng.int rng 3 in
  World.of_instance (Helpers.random_fully_hetero rng ~n ~m)

let prop_objective = Instance.Min_latency { max_failure = 0.9 }

(* Death never resurrects capacity: after a death, the warm run (which
   carries the whole pre-death table forward, then reuses it again
   across a no-op drift) matches a cold run bit-for-bit, and the dead
   processor's stable identity never reappears in any solution. *)
let prop_death_never_resurrects seed =
  let rng = Helpers.rng_of_seed (0xD0D0 + seed) in
  let world = random_world rng in
  let dead_id = Rng.int rng (World.size world) in
  let events =
    [ Event.Death dead_id; Event.Speed_drift { proc = 0; factor = 1.0 } ]
  in
  let warm = Engine.run ~objective:prop_objective world events in
  let cold = Engine.run ~cold:true ~objective:prop_objective world events in
  let agree =
    List.for_all2
      (fun (w : Engine.step) (c : Engine.step) ->
        Engine.equal_dp w.Engine.dp c.Engine.dp
        && Engine.equal_solution w.Engine.solution c.Engine.solution)
      warm cold
  in
  let never_used (st : Engine.step) =
    (* Step 0 predates the death: the condemned processor is then still
       fair game. *)
    st.Engine.index = 0
    ||
    match st.Engine.solution with
    | None -> true
    | Some s ->
        List.for_all
          (fun u -> World.id st.Engine.world u <> dead_id)
          (Mapping.used_procs s.Solution.mapping)
  in
  agree
  && List.for_all never_used warm
  && (List.nth warm 2).Engine.reuse.Interval_exact.Dp.cells_reused
     = (List.nth warm 2).Engine.reuse.Interval_exact.Dp.cells_total

(* A no-op event reuses the entire table and repeats the previous
   solution exactly. *)
let prop_noop_full_reuse seed =
  let rng = Helpers.rng_of_seed (0x1CE + seed) in
  let world = random_world rng in
  let proc = Rng.int rng (World.size world) in
  let events = [ Event.Speed_drift { proc; factor = 1.0 } ] in
  match Engine.run ~objective:prop_objective world events with
  | [ s0; s1 ] ->
      s1.Engine.reuse.Interval_exact.Dp.cells_reused
      = s1.Engine.reuse.Interval_exact.Dp.cells_total
      && Engine.equal_dp s0.Engine.dp s1.Engine.dp
      && Engine.equal_solution s0.Engine.solution s1.Engine.solution
      && s1.Engine.moved_stages = 0
  | _ -> false

(* ------------------------------------------------------------------ *)
(* CLI: golden snapshot, byte-identical across worker counts           *)
(* ------------------------------------------------------------------ *)

let exe = Filename.concat ".." (Filename.concat "bin" "relpipe_cli.exe")

let run_cli args =
  let out = Filename.temp_file "relpipe-churn" ".out" in
  let err = Filename.temp_file "relpipe-churn" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let churn_args workers =
  [
    "churn"; "-i"; "fixtures/churn_grid.relpipe"; "--max-failure"; "0.5";
    "-e"; "12"; "-s"; "11"; "--stats"; "--verify"; "--virtual-clock";
    "-w"; string_of_int workers; "--exact-workers";
  ]

let test_cli_snapshot () =
  let c1, o1, e1 = run_cli (churn_args 1) in
  check_int "exits 0 (1 worker)" 0 c1;
  check_str "stderr empty" "" e1;
  let c2, o2, _ = run_cli (churn_args 2) in
  let c8, o8, _ = run_cli (churn_args 8) in
  check_int "exits 0 (2 workers)" 0 c2;
  check_int "exits 0 (8 workers)" 0 c8;
  check_str "1 worker == 2 workers" o1 o2;
  check_str "1 worker == 8 workers" o1 o8;
  check_bool "verify line present" true
    (contains o1 "verify:  warm == cold on 13 steps");
  Snapshot.check "churn-grid.snap" o1

let test_cli_missing_instance () =
  let code, _, err =
    run_cli
      [ "churn"; "-i"; "fixtures/no-such-instance.relpipe"; "--max-failure";
        "0.5" ]
  in
  check_bool "missing instance exits non-zero" true (code <> 0);
  check_bool "missing instance diagnosed" true (String.length err > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "churn"
    [
      ( "driver",
        [
          test "same seed, same trace" test_trace_deterministic;
          test "argument validation" test_trace_validation;
          test "join cap bounds the platform" test_trace_respects_cap;
        ] );
      ( "world",
        [
          test "death compacts preserving order" test_world_death;
          test "join appends with a fresh identity" test_world_join;
          test "drift perturbs one processor" test_world_drift;
        ] );
      ( "dp",
        [
          test "cold solve matches both twins" test_dp_cold_matches_twins;
          test "reuse accounting" test_dp_reuse_accounting;
        ] );
      ( "engine",
        [
          test "hand-computed 3-event scenario" test_engine_hand_scenario;
          test "cold replay matches warm" test_engine_cold_matches_warm;
        ] );
      ( "properties",
        [
          Helpers.seed_property ~count:60 "death never resurrects capacity"
            prop_death_never_resurrects;
          Helpers.seed_property ~count:60 "no-op drift reuses everything"
            prop_noop_full_reuse;
        ] );
      ( "cli",
        [
          test "golden snapshot across workers" test_cli_snapshot;
          test "missing instance rejected" test_cli_missing_instance;
        ] );
    ]
