(* Tests for the simulation trace / invariant checker and the lifetime
   (goodput) simulator. *)

open Relpipe_model
open Relpipe_sim
module Rng = Relpipe_util.Rng

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Trace mechanics on hand-built events                                *)
(* ------------------------------------------------------------------ *)

let transfer ?(dataset = 0) src dst start finish =
  Trace.Transfer { src; dst; dataset; start; finish }

let compute ?(dataset = 0) proc start finish =
  Trace.Compute { proc; dataset; start; finish }

let trace_detects_one_port_violation () =
  let t = Trace.create () in
  (* P0 sends to P1 and receives from P2 at the same time: two transfers
     sharing endpoint P0 with overlapping windows. *)
  Trace.record t (transfer (Platform.Proc 0) (Platform.Proc 1) 0.0 2.0);
  Trace.record t (transfer (Platform.Proc 2) (Platform.Proc 0) 1.0 3.0);
  Alcotest.(check int) "one violation" 1 (List.length (Trace.one_port_violations t))

let trace_allows_back_to_back () =
  let t = Trace.create () in
  Trace.record t (transfer (Platform.Proc 0) (Platform.Proc 1) 0.0 2.0);
  Trace.record t (transfer (Platform.Proc 0) (Platform.Proc 2) 2.0 4.0);
  Alcotest.(check int) "touching windows are fine" 0
    (List.length (Trace.one_port_violations t))

let trace_allows_disjoint_pairs () =
  let t = Trace.create () in
  (* Independent pairs may communicate simultaneously (one-port only
     serializes per endpoint). *)
  Trace.record t (transfer (Platform.Proc 0) (Platform.Proc 1) 0.0 2.0);
  Trace.record t (transfer (Platform.Proc 2) (Platform.Proc 3) 0.0 2.0);
  Alcotest.(check int) "independent pairs ok" 0
    (List.length (Trace.one_port_violations t))

let trace_detects_compute_overlap () =
  let t = Trace.create () in
  Trace.record t (compute ~dataset:0 1 0.0 5.0);
  Trace.record t (compute ~dataset:1 1 4.0 6.0);
  Trace.record t (compute ~dataset:2 2 4.0 6.0);
  Alcotest.(check int) "one overlap on P1" 1
    (List.length (Trace.compute_violations t))

let trace_detects_compute_before_receive () =
  let t = Trace.create () in
  Trace.record t (transfer ~dataset:3 Platform.Pin (Platform.Proc 0) 0.0 2.0);
  Trace.record t (compute ~dataset:3 0 1.0 4.0);
  Alcotest.(check int) "causality violation" 1
    (List.length (Trace.causality_violations t))

let trace_detects_send_before_compute () =
  let t = Trace.create () in
  Trace.record t (compute ~dataset:3 0 0.0 4.0);
  Trace.record t (transfer ~dataset:3 (Platform.Proc 0) Platform.Pout 3.0 5.0);
  Alcotest.(check int) "causality violation" 1
    (List.length (Trace.causality_violations t))

(* ------------------------------------------------------------------ *)
(* The steady-state runner satisfies the model invariants              *)
(* ------------------------------------------------------------------ *)

let steady_trace_clean =
  Helpers.seed_property ~count:40 "steady-state traces have no violations"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let trace = Trace.create () in
      let _ = Steady.run ~trace inst mapping ~datasets:8 in
      Trace.all_violations trace = [])

let steady_trace_event_count () =
  (* K data sets through p intervals with k_j replicas each: per data set,
     sum k_j transfers in, sum k_j computations, and 1 transfer to Pout. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let trace = Trace.create () in
  let k = 5 in
  let _ = Steady.run ~trace inst mapping ~datasets:k in
  (* k_1 = 1, k_2 = 10: per data set 11 receives + 11 computes + 1 out. *)
  Alcotest.(check int) "event count" (k * 23) (Trace.length trace)

(* ------------------------------------------------------------------ *)
(* Lifetime / goodput                                                  *)
(* ------------------------------------------------------------------ *)

let lifetime_no_failures () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let rng = Rng.create 1 in
  let r =
    Lifetime.run rng inst mapping ~rates:(Array.make 11 0.0) ~mission:1000.0
  in
  Alcotest.(check bool) "not compromised" false r.Lifetime.compromised;
  Helpers.check_close "full goodput" 1.0 r.Lifetime.goodput;
  Alcotest.(check bool) "stream is long" true (r.Lifetime.offered > 10)

let lifetime_certain_failure () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let rng = Rng.create 2 in
  (* Gigantic rates: everything dies almost immediately. *)
  let r =
    Lifetime.run rng inst mapping ~rates:(Array.make 11 1e6) ~mission:1000.0
  in
  Alcotest.(check bool) "compromised" true r.Lifetime.compromised;
  Alcotest.(check bool) "goodput near zero" true (r.Lifetime.goodput < 0.05)

let lifetime_goodput_monotone =
  Helpers.seed_property ~count:25 "higher rates cannot improve goodput"
    (fun seed ->
      let rng = Rng.create seed in
      let inst = Helpers.random_comm_homog rng ~n:3 ~m:4 in
      let mapping = Helpers.random_mapping rng ~n:3 ~m:4 in
      let rates = Array.init 4 (fun _ -> Rng.float_range rng 0.001 0.05) in
      let doubled = Array.map (fun r -> r *. 4.0) rates in
      (* Same seed for both runs: the underlying exponential draws scale
         deterministically, so the comparison is paired. *)
      let r1 = Lifetime.run (Rng.create (seed + 1)) inst mapping ~rates ~mission:50.0 in
      let r2 =
        Lifetime.run (Rng.create (seed + 1)) inst mapping ~rates:doubled ~mission:50.0
      in
      r2.Lifetime.goodput <= r1.Lifetime.goodput +. 1e-9)

let lifetime_survival_matches_analytic () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let rng = Rng.create 99 in
  let rates =
    Array.init 11 (fun u -> if u = 0 then 0.01 else 0.15)
  in
  let empirical, analytic =
    Lifetime.survival_estimate rng inst mapping ~rates ~mission:10.0
      ~trials:20_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f near analytic %.4f" empirical analytic)
    true
    (Float.abs (empirical -. analytic) < 0.015)

let lifetime_validation () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let mapping = Relpipe_workload.Scenarios.fig5_split () in
  let rng = Rng.create 0 in
  Alcotest.(check bool) "wrong rate arity" true
    (try
       ignore (Lifetime.run rng inst mapping ~rates:[| 0.1 |] ~mission:10.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad mission" true
    (try
       ignore
         (Lifetime.run rng inst mapping ~rates:(Array.make 11 0.1) ~mission:0.0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "trace-lifetime"
    [
      ( "trace",
        [
          test "detects one-port violation" trace_detects_one_port_violation;
          test "allows back-to-back" trace_allows_back_to_back;
          test "allows disjoint pairs" trace_allows_disjoint_pairs;
          test "detects compute overlap" trace_detects_compute_overlap;
          test "detects compute before receive" trace_detects_compute_before_receive;
          test "detects send before compute" trace_detects_send_before_compute;
        ] );
      ( "steady-invariants",
        [
          steady_trace_clean;
          test "event count" steady_trace_event_count;
        ] );
      ( "lifetime",
        [
          test "no failures" lifetime_no_failures;
          test "certain failure" lifetime_certain_failure;
          lifetime_goodput_monotone;
          test "survival matches analytic" lifetime_survival_matches_analytic;
          test "validation" lifetime_validation;
        ] );
    ]
