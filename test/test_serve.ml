(* Tests for relpipe.serve and its satellites: the sharded LRU against
   a per-shard model of plain caches, the byte-pinned control-message
   vocabulary, the .session transcript format, the admission queue, the
   framing layer, the headline determinism contract (the committed
   three-client fixture replays byte-identically at workers 1, 2 and 8),
   a live in-process daemon with two interleaved clients whose recording
   replays to the exact reply streams the clients received, the
   SIGTERM-path drain (every admitted request answered before exit), and
   the `relpipe batch -o` sink-failure regression. *)

open Relpipe_model
open Relpipe_service
module Rng = Relpipe_util.Rng
module Lru = Relpipe_util.Lru
module Metric = Relpipe_obs.Metric
module Clock = Relpipe_obs.Clock
module Obs = Relpipe_obs.Obs
module Script = Relpipe_serve.Script
module Replay = Relpipe_serve.Replay
module Server = Relpipe_serve.Server
module Client = Relpipe_serve.Client
module Admission = Relpipe_serve.Admission
module Frame = Relpipe_serve.Frame

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* The instance the fixtures and live tests solve: 2 stages, 3
   processors, fully connected via a default bandwidth. *)
let inst_text =
  "input 1\nstage 2 1\nstage 3 1\nproc 2 0.1\nproc 4 0.3\nproc 1 0.2\n\
   link default 2\n"

let hello_line name = Protocol.encode_control (Protocol.hello ~client:name ())

let solve_line id =
  Protocol.encode_request
    (Protocol.request ~id
       ~instance:(Protocol.Inline inst_text)
       (Instance.Min_failure { max_latency = 10.0 }))

(* ------------------------------------------------------------------ *)
(* Lru.Sharded vs a per-shard model of plain caches                    *)
(* ------------------------------------------------------------------ *)

(* Drive one deterministic op sequence into the sharded cache and into
   [shards] plain caches routed by the same (exposed) key hash, with the
   same capacity split.  Every find/mem result and the aggregated
   hit/miss/eviction counters must agree — with [shards = 1] this is
   exactly "Sharded behaves like the historical single cache". *)
let prop_sharded_matches_model shards seed =
  let rng = Helpers.rng_of_seed seed in
  let capacity = 1 + Rng.int rng 9 in
  let t = Lru.Sharded.create ~shards ~capacity in
  let model =
    Array.init shards (fun i ->
        let cap =
          (capacity / shards) + if i < capacity mod shards then 1 else 0
        in
        Lru.create ~capacity:cap)
  in
  let model_of key = model.(Lru.Sharded.shard_of_key t key) in
  let ok = ref true in
  for step = 0 to 199 do
    let key = Printf.sprintf "key-%d" (Rng.int rng 12) in
    match Rng.int rng 3 with
    | 0 ->
        Lru.Sharded.add t key step;
        Lru.add (model_of key) key step
    | 1 ->
        if
          not
            (Option.equal Int.equal (Lru.Sharded.find t key)
               (Lru.find (model_of key) key))
        then ok := false
    | _ ->
        if Bool.not (Bool.equal (Lru.Sharded.mem t key) (Lru.mem (model_of key) key))
        then ok := false
  done;
  let s = Lru.Sharded.stats t in
  let agg f = Array.fold_left (fun acc m -> acc + f (Lru.stats m)) 0 model in
  let model_len = Array.fold_left (fun acc m -> acc + Lru.length m) 0 model in
  !ok
  && s.Lru.hits = agg (fun (st : Lru.stats) -> st.Lru.hits)
  && s.Lru.misses = agg (fun (st : Lru.stats) -> st.Lru.misses)
  && s.Lru.evictions = agg (fun (st : Lru.stats) -> st.Lru.evictions)
  && Lru.Sharded.length t = model_len
  && Lru.Sharded.length t <= capacity

let test_sharded_create_in_registers () =
  let reg = Metric.create () in
  let t =
    Lru.Sharded.create_in ~metrics:reg ~name:"serve.cache" ~shards:4
      ~capacity:8
  in
  ignore (Lru.Sharded.find t "absent");
  Lru.Sharded.add t "k" 1;
  ignore (Lru.Sharded.find t "k");
  let v name =
    match List.assoc name (Metric.bindings reg) with
    | Metric.Counter_v v -> v
    | _ -> -1
  in
  (* Same counter names as the unsharded create_in, aggregated across
     shards. *)
  check_int "hits" 1 (v "serve.cache.hits");
  check_int "misses" 1 (v "serve.cache.misses");
  check_int "evictions" 0 (v "serve.cache.evictions");
  let s = Lru.Sharded.stats t in
  check_int "stats view agrees" 1 s.Lru.hits

let test_sharded_invalid_shards () =
  Alcotest.check_raises "shards = 0"
    (Invalid_argument "Lru.Sharded.create: shards must be >= 1") (fun () ->
      ignore (Lru.Sharded.create ~shards:0 ~capacity:4))

(* ------------------------------------------------------------------ *)
(* Protocol control messages: byte-pinned                              *)
(* ------------------------------------------------------------------ *)

let test_control_encode_bytes () =
  check_str "hello" {|{"v":1,"op":"hello","client":"x"}|}
    (Protocol.encode_control (Protocol.hello ~client:"x" ()));
  check_str "hello bare" {|{"v":1,"op":"hello"}|}
    (Protocol.encode_control (Protocol.hello ()));
  check_str "hello with protocols"
    {|{"v":1,"op":"hello","protocols":[1,2]}|}
    (Protocol.encode_control
       (Protocol.Hello { client = None; protocols = [ 1; 2 ] }));
  check_str "stats" {|{"v":1,"op":"stats"}|}
    (Protocol.encode_control Protocol.Stats);
  check_str "shutdown" {|{"v":1,"op":"shutdown"}|}
    (Protocol.encode_control Protocol.Shutdown)

let reply_pins =
  [
    ( Protocol.Hello_ok { protocol = 1 },
      {|{"v":1,"op":"hello","ok":true,"protocol":1}|} );
    ( Protocol.Shutdown_ok { draining = true },
      {|{"v":1,"op":"shutdown","ok":true,"draining":true}|} );
    ( Protocol.Stats_ok
        [
          ("c", Metric.Counter_v 3);
          ("g", Metric.Gauge_v 7);
          ("h", Metric.Histogram_v { count = 2; sum = 2.5 });
        ],
      {|{"v":1,"op":"stats","ok":true,"metrics":[{"name":"c","kind":"counter","value":3},{"name":"g","kind":"gauge","value":7},{"name":"h","kind":"histogram","count":2,"sum":2.5}]}|}
    );
    ( Protocol.Refused (Protocol.Version_mismatch { offered = [ 2; 3 ] }),
      {|{"v":1,"op":"error","ok":false,"code":"version-mismatch","offered":[2,3],"error":"no common protocol version: server speaks 1, client offered 2, 3"}|}
    );
    ( Protocol.Refused (Protocol.Unknown_op "frob"),
      {|{"v":1,"op":"error","ok":false,"code":"unknown-op","method":"frob","error":"unknown method \"frob\" (expected hello, stats or shutdown)"}|}
    );
    ( Protocol.Refused Protocol.Hello_required,
      {|{"v":1,"op":"error","ok":false,"code":"hello-required","error":"session must open with a hello handshake before sending requests"}|}
    );
  ]

let test_control_reply_bytes () =
  List.iter
    (fun (reply, expected) ->
      check_str "encode" expected (Protocol.encode_control_reply reply))
    reply_pins

let test_control_reply_roundtrip () =
  (* decode . encode is the identity on the wire: re-encoding the
     decoded reply reproduces the pinned bytes. *)
  List.iter
    (fun (_, line) ->
      match Protocol.decode_control_reply line with
      | Error e -> Alcotest.failf "decode %s: %s" line e
      | Ok reply ->
          check_str "re-encode" line (Protocol.encode_control_reply reply))
    reply_pins

let test_decode_inbound () =
  (match Protocol.decode_inbound {|{"v":1,"op":"stats"}|} with
  | Ok (Protocol.Control Protocol.Stats) -> ()
  | _ -> Alcotest.fail "stats should classify as Control Stats");
  (match Protocol.decode_inbound {|{"v":1,"op":"hello","client":"x"}|} with
  | Ok (Protocol.Control (Protocol.Hello { client = Some "x"; protocols = [ 1 ] }))
    ->
      ()
  | _ -> Alcotest.fail "hello should classify with default protocols [1]");
  (match Protocol.decode_inbound {|{"v":2,"op":"stats"}|} with
  | Error (Protocol.Version_mismatch { offered = [ 2 ] }) -> ()
  | _ -> Alcotest.fail "foreign v should refuse with version-mismatch");
  (match
     Protocol.decode_inbound {|{"v":1,"op":"hello","protocols":[2,3]}|}
   with
  | Error (Protocol.Version_mismatch { offered = [ 2; 3 ] }) -> ()
  | _ -> Alcotest.fail "no common protocol should refuse");
  (match Protocol.decode_inbound {|{"v":1,"op":"frob"}|} with
  | Error (Protocol.Unknown_op "frob") -> ()
  | _ -> Alcotest.fail "unknown op should refuse with unknown-op");
  (match Protocol.decode_inbound (solve_line "x") with
  | Ok (Protocol.Solve (Ok req)) -> (
      match req.Protocol.id with
      | Some "x" -> ()
      | _ -> Alcotest.fail "solve id should survive")
  | _ -> Alcotest.fail "op-less line should classify as Solve");
  (match Protocol.decode_inbound "{oops" with
  | Ok (Protocol.Solve (Error _)) -> ()
  | _ -> Alcotest.fail "malformed JSON stays on the per-request error path");
  match Protocol.decode_inbound {|{"id":"x"}|} with
  | Ok (Protocol.Solve (Error _)) -> ()
  | _ -> Alcotest.fail "op-less bad request stays on the per-request path"

(* ------------------------------------------------------------------ *)
(* Script (.session) format                                            *)
(* ------------------------------------------------------------------ *)

let fixture = Filename.concat "fixtures" (Filename.concat "sessions" "three-clients.session")

let load_fixture () =
  match Script.load fixture with
  | Ok s -> s
  | Error e -> Alcotest.failf "fixture: %s" e

let test_script_roundtrip () =
  let t = load_fixture () in
  check_int "ticks" 5 (List.length t.Script.ticks);
  check_int "events" 18 (List.length (Script.events t));
  let rendered = Script.render t in
  match Script.parse rendered with
  | Error e -> Alcotest.fail e
  | Ok t2 -> check_str "canonical round-trip" rendered (Script.render t2)

let check_parse_error name text needle =
  match Script.parse text with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error e ->
      check_bool
        (Printf.sprintf "%s: %S mentions %S" name e needle)
        true (contains needle e)

let test_script_errors () =
  check_parse_error "unknown verb" "bogus 1\n" "line 1";
  check_parse_error "bad id" "open x\n" "non-negative";
  check_parse_error "send without payload" "send 3\n" "send ID LINE";
  check_parse_error "foreign header" "#relpipe-session v9\n" "unsupported";
  (match Script.parse "open 0\nsend 0 {}\n" with
  | Ok t -> check_int "implicit final tick" 1 (List.length t.Script.ticks)
  | Error e -> Alcotest.fail e);
  match Script.parse "" with
  | Ok t -> check_int "empty transcript" 0 (List.length t.Script.ticks)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let test_admission_fifo_and_close () =
  let q = Admission.create ~capacity:4 in
  check_bool "push 1" true (Admission.push q 1);
  check_bool "push 2" true (Admission.push q 2);
  check_bool "push 3" true (Admission.push q 3);
  check_int "length" 3 (Admission.length q);
  (match Admission.drain q with
  | [ 1; 2; 3 ] -> ()
  | _ -> Alcotest.fail "drain should return all pending in order");
  check_bool "push 4" true (Admission.push q 4);
  Admission.close q;
  check_bool "push after close" false (Admission.push q 5);
  (match Admission.drain q with
  | [ 4 ] -> ()
  | _ -> Alcotest.fail "drain after close returns the leftovers");
  match Admission.drain q with
  | [] -> ()
  | _ -> Alcotest.fail "closed and empty drains to []"

let test_admission_backpressure () =
  (* A producer pushing through a capacity-2 queue blocks until the
     consumer drains; everything still arrives, in order. *)
  let q = Admission.create ~capacity:2 in
  let producer =
    Thread.create
      (fun () ->
        for i = 0 to 19 do
          ignore (Admission.push q i)
        done;
        Admission.close q)
      ()
  in
  let rec collect acc =
    match Admission.drain q with [] -> List.rev acc | items -> collect (List.rev_append items acc)
  in
  let got = collect [] in
  Thread.join producer;
  check_int "all items" 20 (List.length got);
  check_bool "in order" true (List.for_all2 ( = ) got (List.init 20 Fun.id))

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = Frame.reader b in
  Frame.write_line a "one";
  ignore (Unix.write a (Bytes.of_string "two\r\n") 0 5);
  Frame.write_line a "";
  ignore (Unix.write a (Bytes.of_string "tail") 0 4);
  Unix.close a;
  (match Frame.read_line r with
  | Frame.Line l -> check_str "first" "one" l
  | _ -> Alcotest.fail "expected a line");
  (match Frame.read_line r with
  | Frame.Line l -> check_str "crlf stripped" "two" l
  | _ -> Alcotest.fail "expected a line");
  (match Frame.read_line r with
  | Frame.Line l -> check_str "empty line" "" l
  | _ -> Alcotest.fail "expected a line");
  (match Frame.read_line r with
  | Frame.Line l -> check_str "unterminated tail" "tail" l
  | _ -> Alcotest.fail "expected the tail");
  (match Frame.read_line r with
  | Frame.Eof -> ()
  | _ -> Alcotest.fail "expected EOF");
  Unix.close b

let test_frame_too_long () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = Frame.reader ~max_line:8 b in
  ignore (Unix.write a (Bytes.of_string (String.make 64 'x')) 0 64);
  (match Frame.read_line r with
  | Frame.Too_long -> ()
  | _ -> Alcotest.fail "size guard should trip");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Replay determinism on the committed fixture                         *)
(* ------------------------------------------------------------------ *)

let replay_fixture workers =
  let obs = Obs.create ~clock:(Clock.virtual_ ()) () in
  Replay.run_script ~obs ~workers (load_fixture ())

let test_fixture_replay_identical_across_workers () =
  let w1 = Replay.render (replay_fixture 1) in
  let w2 = Replay.render (replay_fixture 2) in
  let w8 = Replay.render (replay_fixture 8) in
  check_str "workers 1 = 2" w1 w2;
  check_str "workers 1 = 8" w1 w8

let test_fixture_replay_structure () =
  let replies = replay_fixture 1 in
  check_int "one reply per send" 12 (List.length replies);
  let streams = Replay.streams replies in
  check_int "three sessions" 3 (List.length streams);
  let stream sid = List.assoc sid streams in
  (* Session 1's first line answers the pre-handshake solve with the
     typed hello-required refusal. *)
  (match Protocol.decode_control_reply (List.hd (stream 1)) with
  | Ok (Protocol.Refused Protocol.Hello_required) -> ()
  | _ -> Alcotest.fail "expected a hello-required refusal");
  (* Session 0's solves carry per-session indices 0..3. *)
  let indices =
    List.filter_map
      (fun line ->
        match Protocol.decode_response line with
        | Ok r -> Some r.Protocol.r_index
        | Error _ -> None)
      (stream 0)
  in
  check_bool "per-session indices" true
    (List.for_all2 ( = ) indices [ 0; 1; 2; 3 ]);
  (* The duplicate instance across sessions is served from the cache,
     and the processor-permuted duplicate hits symmetrically. *)
  let cache_of line =
    match Protocol.decode_response line with
    | Ok r -> r.Protocol.r_cache
    | Error _ -> Alcotest.fail "undecodable response"
  in
  (match cache_of (List.nth (stream 1) 2) with
  | Protocol.Hit -> ()
  | Protocol.Miss -> Alcotest.fail "b-0 should be a cache hit");
  match cache_of (List.nth (stream 0) 2) with
  | Protocol.Hit -> ()
  | Protocol.Miss -> Alcotest.fail "permuted a-1 should hit symmetrically"

(* ------------------------------------------------------------------ *)
(* Live server                                                         *)
(* ------------------------------------------------------------------ *)

let with_server ?(record = true) f =
  let dir = Filename.temp_file "relpipe-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "s.sock" in
  let record_path = Filename.concat dir "rec.session" in
  let engine = Engine.create ~workers:2 ~cap_to_cpus:false ~cache_shards:4 () in
  let config =
    {
      Server.default_config with
      Server.endpoints = [ Server.Unix_sock sock ];
      record = (if record then Some record_path else None);
    }
  in
  let ready = Atomic.make false in
  let report = ref None in
  let srv =
    Thread.create
      (fun () ->
        report :=
          Some
            (Server.run ~engine ~config
               ~on_ready:(fun _ -> Atomic.set ready true)
               ()))
      ()
  in
  while not (Atomic.get ready) do
    Thread.yield ()
  done;
  let finally () =
    (* Make sure a failing assertion cannot leave the daemon running. *)
    Server.signal_drain ();
    Thread.join srv;
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ sock; record_path ];
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally (fun () ->
      f ~sock ~record_path;
      Server.signal_drain ();
      Thread.join srv;
      match !report with
      | Some r -> r
      | None -> Alcotest.fail "server did not report")

let recv_exn c =
  match Client.recv c with
  | Some l -> l
  | None -> Alcotest.fail "unexpected EOF from server"

let test_live_two_clients_record_replay () =
  let live_streams = ref [] in
  let report =
    with_server (fun ~sock ~record_path ->
        let c1 = Client.connect (`Unix sock) in
        let c2 = Client.connect (`Unix sock) in
        let h1 = Option.get (Client.call c1 (hello_line "t1")) in
        let h2 = Option.get (Client.call c2 (hello_line "t2")) in
        check_str "hello reply" {|{"v":1,"op":"hello","ok":true,"protocol":1}|}
          h1;
        (* Interleaved solves across the two sessions. *)
        Client.send c1 (solve_line "a-0");
        Client.send c2 (solve_line "b-0");
        Client.send c1 (solve_line "a-1");
        let a0 = recv_exn c1 in
        let b0 = recv_exn c2 in
        let a1 = recv_exn c1 in
        let idx line =
          match Protocol.decode_response line with
          | Ok r -> r.Protocol.r_index
          | Error e -> Alcotest.failf "response: %s" e
        in
        check_int "a-0 is session index 0" 0 (idx a0);
        check_int "a-1 is session index 1" 1 (idx a1);
        check_int "b-0 is session index 0" 0 (idx b0);
        let sd =
          Option.get (Client.call c2 (Protocol.encode_control Protocol.Shutdown))
        in
        check_str "shutdown reply"
          {|{"v":1,"op":"shutdown","ok":true,"draining":true}|} sd;
        Client.finish_sending c1;
        Client.finish_sending c2;
        check_bool "c1 drains to EOF" true (Option.is_none (Client.recv c1));
        check_bool "c2 drains to EOF" true (Option.is_none (Client.recv c2));
        Client.close c1;
        Client.close c2;
        live_streams := [ (0, [ h1; a0; a1 ]); (1, [ h2; b0; sd ]) ];
        (* Replay the recording through a fresh engine with the same
           shape: the per-session streams must be byte-identical to
           what the clients just received, whatever tick interleaving
           the live run happened to form. *)
        match Script.load record_path with
        | Error e -> Alcotest.failf "recording: %s" e
        | Ok script ->
            let engine =
              Engine.create ~workers:2 ~cap_to_cpus:false ~cache_shards:4 ()
            in
            let streams = Replay.streams (Replay.run ~engine script) in
            check_str "session 0 replays to the live bytes"
              (String.concat "\n" [ h1; a0; a1 ])
              (String.concat "\n" (List.assoc 0 streams));
            check_str "session 1 replays to the live bytes"
              (String.concat "\n" [ h2; b0; sd ])
              (String.concat "\n" (List.assoc 1 streams)))
  in
  check_int "two sessions accepted" 2 report.Server.accepted;
  check_int "six replies" 6 report.Server.answered;
  ignore !live_streams

let test_sigterm_drain_answers_every_admitted_request () =
  let got = ref [] in
  let admitted = ref 0 in
  let report =
    with_server (fun ~sock ~record_path ->
        let c = Client.connect (`Unix sock) in
        let h = Option.get (Client.call c (hello_line "drain")) in
        check_str "hello before drain"
          {|{"v":1,"op":"hello","ok":true,"protocol":1}|} h;
        for i = 0 to 7 do
          Client.send c (solve_line (Printf.sprintf "d-%d" i))
        done;
        Client.finish_sending c;
        (* The SIGTERM handler's exact body: atomic flag + wake-up
           byte.  Everything admitted before the reader saw the drain
           must still be answered before the server exits. *)
        Server.signal_drain ();
        let rec pump acc =
          match Client.recv c with
          | None -> List.rev acc
          | Some l -> pump (l :: acc)
        in
        got := pump [];
        Client.close c;
        match Script.load record_path with
        | Error e -> Alcotest.failf "recording: %s" e
        | Ok script ->
            admitted :=
              List.length
                (List.filter
                   (fun ev ->
                     match (ev : Script.event) with
                     | Script.Send _ -> true
                     | Script.Open _ | Script.Close _ -> false)
                   (Script.events script)))
  in
  (* One admitted line (hello included) = one reply, none lost. *)
  check_int "every admitted request answered" !admitted
    (1 + List.length !got);
  check_int "report agrees" !admitted report.Server.answered

(* ------------------------------------------------------------------ *)
(* CLI: batch -o sink failures (regression)                            *)
(* ------------------------------------------------------------------ *)

let exe = Filename.concat ".." (Filename.concat "bin" "relpipe_cli.exe")

let run_cli args =
  let out = Filename.temp_file "relpipe-test" ".out" in
  let err = Filename.temp_file "relpipe-test" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let with_request_file f =
  let path = Filename.temp_file "relpipe-serve-req" ".jsonl" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (solve_line "r-0");
      Out_channel.output_char oc '\n');
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_batch_output_unwritable_path () =
  with_request_file (fun req ->
      let code, _, err =
        run_cli [ "batch"; req; "-o"; "/nonexistent-dir/out.jsonl" ]
      in
      check_bool "exits non-zero" true (code <> 0);
      check_bool "names the path" true
        (contains "/nonexistent-dir/out.jsonl" err))

let test_batch_output_enospc () =
  (* /dev/full answers every write with ENOSPC — the classic truncated
     sink.  Skip quietly where the device does not exist. *)
  if Sys.file_exists "/dev/full" then
    with_request_file (fun req ->
        let code, _, err = run_cli [ "batch"; req; "-o"; "/dev/full" ] in
        check_bool "exits non-zero" true (code <> 0);
        check_bool "names the path" true (contains "/dev/full" err))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "lru-sharded",
        [
          Helpers.seed_property ~count:100 "matches plain cache at shards=1"
            (prop_sharded_matches_model 1);
          Helpers.seed_property ~count:100 "matches per-shard model at shards=4"
            (prop_sharded_matches_model 4);
          test "create_in registers shared counters"
            test_sharded_create_in_registers;
          test "rejects shards=0" test_sharded_invalid_shards;
        ] );
      ( "protocol",
        [
          test "control messages encode to pinned bytes"
            test_control_encode_bytes;
          test "control replies encode to pinned bytes"
            test_control_reply_bytes;
          test "control replies round-trip" test_control_reply_roundtrip;
          test "inbound classification" test_decode_inbound;
        ] );
      ( "script",
        [
          test "fixture parses and round-trips" test_script_roundtrip;
          test "parse errors name the line" test_script_errors;
        ] );
      ( "admission",
        [
          test "fifo, close, leftovers" test_admission_fifo_and_close;
          test "bounded queue exerts backpressure" test_admission_backpressure;
        ] );
      ( "frame",
        [
          test "line framing round-trip" test_frame_roundtrip;
          test "oversized line trips the guard" test_frame_too_long;
        ] );
      ( "replay",
        [
          test "fixture byte-identical at workers 1/2/8"
            test_fixture_replay_identical_across_workers;
          test "fixture reply structure" test_fixture_replay_structure;
        ] );
      ( "server",
        [
          test "two interleaved clients; recording replays to live bytes"
            test_live_two_clients_record_replay;
          test "drain answers every admitted request"
            test_sigterm_drain_answers_every_admitted_request;
        ] );
      ( "cli",
        [
          test "batch -o unwritable path" test_batch_output_unwritable_path;
          test "batch -o ENOSPC sink" test_batch_output_enospc;
        ] );
    ]
