(* Tests for relpipe.obs: the injectable clock, the metrics registry
   (counters under Domain parallelism, histogram bucketing laws), the
   span tracer, the Lru counter registration, and the headline
   guarantee — engine traces and metric snapshots under a virtual clock
   are byte-identical across worker counts and never perturb responses.
   The deterministic artifacts (trace/metrics JSONL, [relpipe prof]
   output) are pinned byte-for-byte by the golden-snapshot harness. *)

open Relpipe_model
open Relpipe_service
module Rng = Relpipe_util.Rng
module Lru = Relpipe_util.Lru
module Clock = Relpipe_obs.Clock
module Metric = Relpipe_obs.Metric
module Trace = Relpipe_obs.Trace
module Obs = Relpipe_obs.Obs
module Snapshot = Helpers.Snapshot

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_virtual_clock_sequence () =
  let c = Clock.virtual_ () in
  check_bool "virtual" true (Clock.is_virtual c);
  check_int "first read" 0 (Clock.now_ns c);
  check_int "second read" 1000 (Clock.now_ns c);
  check_int "third read" 2000 (Clock.now_ns c);
  let c2 = Clock.virtual_ ~start:5 ~tick:7 () in
  check_int "custom start" 5 (Clock.now_ns c2);
  check_int "custom tick" 12 (Clock.now_ns c2);
  let m = Clock.monotonic () in
  check_bool "monotonic is not virtual" false (Clock.is_virtual m)

let test_clock_fork () =
  let c = Clock.virtual_ () in
  ignore (Clock.now_ns c);
  let f0 = Clock.fork c 0 in
  let f2 = Clock.fork c 2 in
  (* Each fork is an independent timeline based at (i + 1) seconds. *)
  check_int "fork 0 base" 1_000_000_000 (Clock.now_ns f0);
  check_int "fork 0 advances" 1_000_001_000 (Clock.now_ns f0);
  check_int "fork 2 base" 3_000_000_000 (Clock.now_ns f2);
  (* Forking does not advance the parent. *)
  check_int "parent unperturbed" 1000 (Clock.now_ns c);
  let m = Clock.monotonic () in
  check_bool "monotonic fork stays monotonic" false
    (Clock.is_virtual (Clock.fork m 3))

(* ------------------------------------------------------------------ *)
(* Counters under Domain parallelism                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_parallel_no_lost_updates () =
  let reg = Metric.create () in
  let c = Metric.counter reg "pool.counter" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metric.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost updates" (4 * per_domain) (Metric.Counter.value c);
  (* The registered counter and a fresh lookup are the same instrument. *)
  Metric.Counter.add (Metric.counter reg "pool.counter") 5;
  check_int "lookup aliases" ((4 * per_domain) + 5) (Metric.Counter.value c)

let test_registry_kind_mismatch () =
  let reg = Metric.create () in
  ignore (Metric.counter reg "core.x");
  (match Metric.gauge reg "core.x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a kind error for counter-vs-gauge");
  (match Metric.histogram reg "core.x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a kind error for counter-vs-histogram")

let test_noop_registry_is_silent () =
  let reg = Metric.noop () in
  check_bool "not live" false (Metric.is_live reg);
  Metric.Counter.add (Metric.counter reg "core.c") 7;
  Metric.Gauge.record_max (Metric.gauge reg "core.g") 9;
  Metric.Histogram.observe (Metric.histogram reg "core.h") 3.0;
  check_str "renders empty" "" (Metric.render_jsonl reg);
  check_int "no bindings" 0 (List.length (Metric.bindings reg))

(* ------------------------------------------------------------------ *)
(* Histogram bucketing laws                                            *)
(* ------------------------------------------------------------------ *)

(* A seed-indexed float generator that hits every interesting regime:
   ordinary magnitudes, extreme exponents, zero, negative zero,
   negatives, NaN and both infinities. *)
let float_of_seed seed =
  let rng = Helpers.rng_of_seed (1_000 + seed) in
  match seed mod 8 with
  | 0 -> Rng.float_range rng 0.0 4.0
  | 1 -> Float.ldexp (Rng.float_range rng 1.0 2.0) (Rng.int rng 60 - 10)
  | 2 -> -.Rng.float_range rng 0.0 1e12
  | 3 -> 0.
  | 4 -> -0.
  | 5 -> Float.nan
  | 6 -> Float.infinity
  | _ -> Float.neg_infinity

let prop_every_float_in_exactly_one_bucket seed =
  let v = float_of_seed seed in
  let i = Metric.Histogram.bucket_index v in
  let h = Metric.Histogram.make () in
  Metric.Histogram.observe h v;
  let counts = Metric.Histogram.counts h in
  i >= 0
  && i < Metric.Histogram.num_buckets
  && Array.length counts = Metric.Histogram.num_buckets
  && counts.(i) = 1
  && Array.fold_left ( + ) 0 counts = 1
  && Metric.Histogram.count h = 1

let prop_merge_is_concatenation seed =
  let rng = Helpers.rng_of_seed (2_000 + seed) in
  let a = Metric.Histogram.make () in
  let b = Metric.Histogram.make () in
  let na = Rng.int rng 20 and nb = Rng.int rng 20 in
  for k = 0 to na - 1 do
    Metric.Histogram.observe a (float_of_seed ((seed * 31) + k))
  done;
  for k = 0 to nb - 1 do
    Metric.Histogram.observe b (float_of_seed ((seed * 37) + k + 500))
  done;
  let m = Metric.Histogram.merge a b in
  let ca = Metric.Histogram.counts a
  and cb = Metric.Histogram.counts b
  and cm = Metric.Histogram.counts m in
  let buckets_add = ref true in
  Array.iteri (fun i c -> if c <> ca.(i) + cb.(i) then buckets_add := false) cm;
  !buckets_add
  && Metric.Histogram.count m = na + nb
  && Int64.equal
       (Int64.bits_of_float (Metric.Histogram.sum m))
       (Int64.bits_of_float (Metric.Histogram.sum a +. Metric.Histogram.sum b))

let test_bucket_edges () =
  let idx = Metric.Histogram.bucket_index in
  check_int "0.5 underflows" 0 (idx 0.5);
  check_int "zero underflows" 0 (idx 0.);
  check_int "negative underflows" 0 (idx (-3.0));
  check_int "nan underflows" 0 (idx Float.nan);
  check_int "1.0 opens bucket 1" 1 (idx 1.0);
  check_int "1.999 stays in bucket 1" 1 (idx 1.999);
  check_int "2.0 opens bucket 2" 2 (idx 2.0);
  check_int "2^39 lands in bucket 40" 40 (idx (Float.ldexp 1.0 39));
  check_int "2^40 overflows" 41 (idx (Float.ldexp 1.0 40));
  check_int "infinity overflows" 41 (idx Float.infinity);
  check_bool "bucket 1 lower edge" true
    (Float.equal (Metric.Histogram.bucket_lower 1) 1.0);
  check_bool "bucket 2 lower edge" true
    (Float.equal (Metric.Histogram.bucket_lower 2) 2.0)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_span_timing () =
  let clock = Clock.virtual_ () in
  let t = Trace.create ~clock in
  let v =
    Trace.span t ~attrs:[ ("k", "v") ] "core.outer" (fun () ->
        Trace.instant t "core.mark";
        42)
  in
  check_int "span returns the body's value" 42 v;
  match Trace.events t with
  | [ mark; outer ] ->
      (* Completion order: the instant fires inside the span. *)
      check_str "instant name" "core.mark" mark.Trace.name;
      check_int "instant ts" 1000 mark.Trace.ts;
      check_bool "instant has no duration" true (Option.is_none mark.Trace.dur);
      check_str "span name" "core.outer" outer.Trace.name;
      check_int "span start" 0 outer.Trace.ts;
      (match outer.Trace.dur with
      | Some 2000 -> ()
      | _ -> Alcotest.fail "span duration should cover both inner reads");
      check_str "jsonl rendering"
        ("{\"ts\":1000,\"name\":\"core.mark\"}\n"
       ^ "{\"ts\":0,\"dur\":2000,\"name\":\"core.outer\",\"attrs\":{\"k\":\"v\"}}\n")
        (Trace.to_jsonl t)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_span_records_on_exception () =
  let t = Trace.create ~clock:(Clock.virtual_ ()) in
  (try Trace.span t "core.boom" (fun () -> failwith "boom") with Failure _ -> ());
  match Trace.events t with
  | [ e ] ->
      check_str "event recorded" "core.boom" e.Trace.name;
      check_bool "has duration" true (Option.is_some e.Trace.dur)
  | _ -> Alcotest.fail "span must record on exception"

let test_trace_append_in_job_order () =
  let parent = Trace.create ~clock:(Clock.virtual_ ()) in
  let children =
    List.init 3 (fun i ->
        let c = Trace.create ~clock:(Clock.virtual_ ~start:(i * 100) ()) in
        Trace.instant c ("core.job_" ^ string_of_int i);
        c)
  in
  List.iter (fun c -> Trace.append ~into:parent c) children;
  let names = List.map (fun e -> e.Trace.name) (Trace.events parent) in
  Alcotest.(check (list string))
    "merged in append order"
    [ "core.job_0"; "core.job_1"; "core.job_2" ]
    names

(* ------------------------------------------------------------------ *)
(* Lru registration                                                    *)
(* ------------------------------------------------------------------ *)

let test_lru_create_in_registers_counters () =
  let metrics = Metric.create () in
  let c = Lru.create_in ~metrics ~name:"engine.cache" ~capacity:1 in
  ignore (Lru.find c "a") (* miss *);
  Lru.add c "a" 1;
  ignore (Lru.find c "a") (* hit *);
  Lru.add c "b" 2 (* evicts a *);
  let view name =
    match List.assoc_opt name (Metric.bindings metrics) with
    | Some (Metric.Counter_v v) -> v
    | _ -> Alcotest.failf "counter %s not registered" name
  in
  check_int "hits" 1 (view "engine.cache.hits");
  check_int "misses" 1 (view "engine.cache.misses");
  check_int "evictions" 1 (view "engine.cache.evictions");
  (* The Lru's own stats read the same counters. *)
  let s = Lru.stats c in
  check_int "stats hits agree" 1 s.Lru.hits;
  check_int "stats misses agree" 1 s.Lru.misses;
  check_int "stats evictions agree" 1 s.Lru.evictions

(* ------------------------------------------------------------------ *)
(* Engine: cross-worker identity + golden snapshots                    *)
(* ------------------------------------------------------------------ *)

let loose = Instance.Min_failure { max_latency = 1e6 }

let batch_requests () =
  let req ?id path objective =
    Protocol.request ?id ~instance:(Protocol.File path) objective
  in
  [|
    req ~id:"homog" "fixtures/clean_fully_homog.relpipe" loose;
    req ~id:"hetero" "fixtures/clean_fully_hetero.relpipe" loose;
    req ~id:"homog-dup" "fixtures/clean_fully_homog.relpipe" loose;
    req ~id:"comm" "fixtures/clean_comm_homog.relpipe" loose;
    req ~id:"infeasible" "fixtures/clean_fully_hetero.relpipe"
      (Instance.Min_failure { max_latency = 1e-9 });
  |]

let run_with_obs workers =
  let obs = Obs.create ~tracing:true ~clock:(Clock.virtual_ ()) () in
  let engine =
    Engine.create ~obs ~workers ~cap_to_cpus:false ~cache_capacity:64 ()
  in
  let responses = Engine.run_requests engine (batch_requests ()) in
  let lines =
    Array.to_list (Array.map Protocol.encode_response responses)
  in
  (lines, Obs.metrics_jsonl obs, Obs.trace_jsonl obs)

let test_engine_obs_identical_across_workers () =
  let lines1, metrics1, trace1 = run_with_obs 1 in
  List.iter
    (fun w ->
      let lines, metrics, trace = run_with_obs w in
      Alcotest.(check (list string))
        (Printf.sprintf "responses workers=%d" w)
        lines1 lines;
      check_str (Printf.sprintf "metrics workers=%d" w) metrics1 metrics;
      check_str (Printf.sprintf "trace workers=%d" w) trace1 trace)
    [ 2; 8 ]

let test_engine_obs_never_perturbs_responses () =
  let lines_obs, _, _ = run_with_obs 4 in
  let plain =
    Engine.run_requests
      (Engine.create ~workers:4 ~cap_to_cpus:false ~cache_capacity:64 ())
      (batch_requests ())
  in
  Alcotest.(check (list string))
    "instrumented run answers exactly like a plain run" lines_obs
    (Array.to_list (Array.map Protocol.encode_response plain))

let test_engine_obs_snapshots () =
  let _, metrics, trace = run_with_obs 1 in
  Snapshot.check "engine-metrics.snap" metrics;
  Snapshot.check "engine-trace.snap" trace

(* ------------------------------------------------------------------ *)
(* CLI: prof golden snapshot and negative paths                        *)
(* ------------------------------------------------------------------ *)

let exe = Filename.concat ".." (Filename.concat "bin" "relpipe_cli.exe")

let run_cli args =
  let out = Filename.temp_file "relpipe-test" ".out" in
  let err = Filename.temp_file "relpipe-test" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let test_prof_snapshot () =
  let args =
    [
      "prof"; "-i"; "fixtures/clean_fully_hetero.relpipe"; "--max-failure";
      "0.5"; "--virtual-clock";
    ]
  in
  let code, out, err = run_cli args in
  check_int "prof exits 0" 0 code;
  check_str "prof stderr empty" "" err;
  Snapshot.check "prof-clean-fully-hetero.snap" out;
  (* Byte-stable across reruns: the virtual clock leaves nothing to
     drift. *)
  let code2, out2, _ = run_cli args in
  check_int "prof exits 0 again" 0 code2;
  check_str "prof output byte-stable" out out2

let check_fails name (code, _out, err) =
  Alcotest.(check bool) (name ^ " exits non-zero") true (code <> 0);
  Alcotest.(check bool) (name ^ " prints a diagnostic") true
    (String.length err > 0)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  nl = 0 || go 0

let test_cli_bad_sink_paths () =
  let r = run_cli [ "batch"; "--metrics"; "/nonexistent-dir/m.jsonl" ] in
  check_fails "bad --metrics" r;
  let _, _, err = r in
  check_bool "metrics diagnostic names the path" true
    (contains ~needle:"/nonexistent-dir/m.jsonl" err);
  let r = run_cli [ "batch"; "--trace"; "/nonexistent-dir/t.jsonl" ] in
  check_fails "bad --trace" r;
  let _, _, err = r in
  check_bool "trace diagnostic names the path" true
    (contains ~needle:"/nonexistent-dir/t.jsonl" err)

let test_cli_unknown_subcommand () =
  check_fails "unknown subcommand" (run_cli [ "frobnicate" ])

let test_cli_malformed_instance () =
  let path = Filename.temp_file "relpipe-test" ".relpipe" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "this is not a relpipe instance\n");
  let r = run_cli [ "prof"; "-i"; path; "--max-failure"; "0.5" ] in
  Sys.remove path;
  check_fails "malformed instance" r

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          test "virtual sequence" test_virtual_clock_sequence;
          test "fork" test_clock_fork;
        ] );
      ( "metric",
        [
          test "counter: parallel increments lose nothing"
            test_counter_parallel_no_lost_updates;
          test "registry: kind mismatch" test_registry_kind_mismatch;
          test "noop registry is silent" test_noop_registry_is_silent;
          test "histogram: bucket edges" test_bucket_edges;
          Helpers.seed_property ~count:200
            "histogram: every float in exactly one bucket"
            prop_every_float_in_exactly_one_bucket;
          Helpers.seed_property ~count:100
            "histogram: merge is sample concatenation"
            prop_merge_is_concatenation;
        ] );
      ( "trace",
        [
          test "span timing under virtual clock" test_trace_span_timing;
          test "span records on exception" test_trace_span_records_on_exception;
          test "append merges in job order" test_trace_append_in_job_order;
        ] );
      ( "lru",
        [ test "create_in registers counters" test_lru_create_in_registers_counters ] );
      ( "engine",
        [
          test "identical snapshots across workers"
            test_engine_obs_identical_across_workers;
          test "instrumentation never perturbs responses"
            test_engine_obs_never_perturbs_responses;
          test "golden trace and metrics snapshots" test_engine_obs_snapshots;
        ] );
      ( "cli",
        [
          test "prof golden snapshot" test_prof_snapshot;
          test "bad sink paths fail eagerly" test_cli_bad_sink_paths;
          test "unknown subcommand" test_cli_unknown_subcommand;
          test "malformed instance" test_cli_malformed_instance;
        ] );
    ]
