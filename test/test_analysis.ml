(* Tests for the relpipe.analysis diagnostics engine: fixture files with
   seeded defects must trip exactly the expected rules (with the right
   spans), clean fixtures must lint clean, and the solver/validator
   integration must surface findings as typed values. *)

open Relpipe_model
open Relpipe_analysis
module Rng = Relpipe_util.Rng

let test = Helpers.test

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let fixture name =
  In_channel.with_open_text (Filename.concat "fixtures" name)
    In_channel.input_all

let tally ds =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let r = d.Diagnostic.rule in
      Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r)))
    ds;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (* devlint: allow RP-S204 — the fold's order is erased by the sort *)
    (Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl [])

let pp_tally t =
  String.concat ", " (List.map (fun (r, c) -> Printf.sprintf "%s x%d" r c) t)

(* Expected findings per fixture: (rule, count) pairs, plus the 1-based
   line the named rule's span must start on (None = the finding must be
   spanless). *)
let fixture_cases =
  [
    ("clean_fully_homog.relpipe", [], None);
    ("clean_comm_homog.relpipe", [], None);
    ("clean_fully_hetero.relpipe", [], None);
    ("defect_I001.relpipe", [ ("RP-I001", 1) ], Some ("RP-I001", Some 4));
    ("defect_I002.relpipe", [ ("RP-I002", 1) ], Some ("RP-I002", Some 4));
    ("defect_I003.relpipe", [ ("RP-I003", 1) ], Some ("RP-I003", Some 4));
    ("defect_I004.relpipe", [ ("RP-I004", 1) ], Some ("RP-I004", Some 2));
    ("defect_I005.relpipe", [ ("RP-I005", 1) ], Some ("RP-I005", Some 3));
    ("defect_I006.relpipe", [ ("RP-I006", 1) ], Some ("RP-I006", Some 7));
    ("defect_I007.relpipe", [ ("RP-I007", 1) ], Some ("RP-I007", Some 7));
    ("defect_I008.relpipe", [ ("RP-I008", 1) ], Some ("RP-I008", None));
    ( "defect_I009.relpipe",
      [ ("RP-I006", 3); ("RP-I009", 1) ],
      Some ("RP-I009", Some 5) );
    ("defect_I010.relpipe", [ ("RP-I010", 1) ], Some ("RP-I010", Some 5));
    ("defect_I011.relpipe", [ ("RP-I011", 1) ], Some ("RP-I011", Some 2));
    ("defect_I012.relpipe", [ ("RP-I012", 1) ], Some ("RP-I012", Some 8));
    ("defect_I013.relpipe", [ ("RP-I013", 1) ], Some ("RP-I013", None));
    ( "defect_I014.relpipe",
      [ ("RP-I008", 3); ("RP-I014", 1) ],
      Some ("RP-I014", Some 5) );
    ("defect_N001.relpipe", [ ("RP-N001", 1) ], Some ("RP-N001", None));
    ("defect_N002.relpipe", [ ("RP-N002", 1) ], Some ("RP-N002", Some 3));
    ("defect_N003.relpipe", [ ("RP-N003", 1) ], Some ("RP-N003", Some 4));
    ( "defect_N004.relpipe",
      [ ("RP-N001", 1); ("RP-N004", 1) ],
      Some ("RP-N004", Some 4) );
    ("defect_P001.relpipe", [ ("RP-P001", 1) ], Some ("RP-P001", Some 2));
  ]

let check_fixture (file, expected, span_check) () =
  let ds = Analysis.lint_instance_text (fixture file) in
  let got = tally ds in
  if got <> expected then
    Alcotest.failf "%s: expected [%s] but linted [%s]" file (pp_tally expected)
      (pp_tally got);
  match span_check with
  | None -> ()
  | Some (rule, expected_line) -> (
      let d = List.find (fun d -> d.Diagnostic.rule = rule) ds in
      match d.Diagnostic.span, expected_line with
      | None, None -> ()
      | Some s, Some line ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s span line" file rule)
            line s.Relpipe_util.Loc.start.Relpipe_util.Loc.line
      | Some s, None ->
          Alcotest.failf "%s: %s should be spanless but spans %s" file rule
            (Relpipe_util.Loc.to_string s)
      | None, Some line ->
          Alcotest.failf "%s: %s should span line %d but has no span" file rule
            line)

let fixture_tests =
  List.map
    (fun ((file, _, _) as case) ->
      test (Printf.sprintf "fixture %s" file) (check_fixture case))
    fixture_cases

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let rules = Analysis.rules () in
  Alcotest.(check int) "26 registered rules" 26 (List.length rules);
  let ids = List.map (fun r -> r.Rule.id) rules in
  Alcotest.(check bool)
    "ids sorted and unique" true
    (List.sort_uniq String.compare ids = ids);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Rule.id ^ " id shape") true
        (String.length r.Rule.id = 7 && String.sub r.Rule.id 0 3 = "RP-");
      Alcotest.(check bool)
        (r.Rule.id ^ " has docs") true
        (r.Rule.title <> "" && r.Rule.rationale <> "" && r.Rule.example <> ""))
    rules

(* ------------------------------------------------------------------ *)
(* Mapping pass                                                        *)
(* ------------------------------------------------------------------ *)

let mapping_cases =
  [
    ("3-2:0", [ ("RP-M001", 1) ]);
    ("1:0; 3-4:1", [ ("RP-M002", 1) ]);
    ("1-2:7; 3-4:0", [ ("RP-M003", 1) ]);
    ("1-2:0; 3-4:0,1", [ ("RP-M004", 1) ]);
    ("1-4:0,1,2,3,0", [ ("RP-M004", 1); ("RP-M005", 1) ]);
    ("1-2:0,1; 3-4:2,3", [ ("RP-M006", 1) ]);
    ("1-2-3:0", [ ("RP-P002", 1) ]);
    ("1-2:0; 3-4:1", []);
  ]

let test_mapping_lint () =
  List.iter
    (fun (text, expected) ->
      let got = tally (Analysis.lint_mapping_text ~n:4 ~m:4 text) in
      if got <> expected then
        Alcotest.failf "%S: expected [%s] but linted [%s]" text
          (pp_tally expected) (pp_tally got))
    mapping_cases

let test_mapping_value_lint () =
  (* A structurally valid Mapping.t still gets the one-port warning. *)
  let mapping =
    Mapping.make ~n:4 ~m:4
      [
        { Mapping.first = 1; last = 2; procs = [ 0; 1 ] };
        { Mapping.first = 3; last = 4; procs = [ 2; 3 ] };
      ]
  in
  Alcotest.(check (list string))
    "one-port warning" [ "RP-M006" ]
    (List.map
       (fun d -> d.Diagnostic.rule)
       (Analysis.lint_mapping ~n:4 ~m:4 mapping))

(* ------------------------------------------------------------------ *)
(* Solver and validator integration                                    *)
(* ------------------------------------------------------------------ *)

(* Platform.make accepts fp = 1.0 but the analysis flags it as an error
   (a dead machine breaks the bi-criteria trade-off), so solver entry
   points must reject the instance with a typed diagnostic. *)
let dead_machine_instance () =
  let pipeline = Pipeline.of_costs ~input:4.0 [ (5.0, 2.0); (7.0, 1.0) ] in
  let platform =
    Platform.uniform_links ~speeds:[| 2.0; 3.0 |] ~failures:[| 0.2; 1.0 |]
      ~bandwidth:4.0
  in
  Instance.make pipeline platform

let test_solver_guard () =
  let inst = dead_machine_instance () in
  let objective = Instance.Min_latency { max_failure = 0.9 } in
  (match Relpipe_core.Solver.run inst objective with
  | Error (Relpipe_core.Solver.Invalid_instance ds) ->
      Alcotest.(check (list string))
        "guard reports the dead machine" [ "RP-I002" ]
        (List.map (fun d -> d.Diagnostic.rule) ds)
  | Error e ->
      Alcotest.failf "expected Invalid_instance, got %s"
        (Relpipe_core.Solver.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Invalid_instance, got Ok");
  match Relpipe_core.Solver.solve inst objective with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "legacy solve raises with the rule id" true
        (contains ~needle:"RP-I002" msg)
  | _ -> Alcotest.fail "legacy solve should raise Invalid_argument"

let test_solver_guard_objective () =
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:4.0 [ (5.0, 2.0); (7.0, 1.0) ])
      (Platform.fully_homogeneous ~m:2 ~speed:2.0 ~failure:0.2 ~bandwidth:4.0)
  in
  match
    Relpipe_core.Solver.run inst (Instance.Min_latency { max_failure = Float.nan })
  with
  | Error (Relpipe_core.Solver.Invalid_objective _) -> ()
  | _ -> Alcotest.fail "NaN threshold should be Invalid_objective"

let test_solver_clean_instances_pass () =
  (* Random well-formed instances must never trip the guard. *)
  for seed = 0 to 19 do
    let rng = Rng.create seed in
    let inst = Helpers.random_fully_hetero rng ~n:3 ~m:3 in
    match Analysis.instance_errors inst with
    | [] -> ()
    | ds ->
        Alcotest.failf "seed %d: clean instance flagged: %s" seed
          (String.concat "; " (List.map (fun d -> Diagnostic.to_string d) ds))
  done

let test_validate_diagnostics () =
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:4.0 [ (5.0, 2.0); (7.0, 1.0) ])
      (Platform.fully_homogeneous ~m:4 ~speed:2.0 ~failure:0.2 ~bandwidth:4.0)
  in
  let mapping =
    Mapping.make ~n:2 ~m:4
      [
        { Mapping.first = 1; last = 1; procs = [ 0; 1 ] };
        { Mapping.first = 2; last = 2; procs = [ 2; 3 ] };
      ]
  in
  let s = Relpipe_core.Solution.of_mapping inst mapping in
  let objective = Instance.Min_latency { max_failure = 0.9 } in
  let report = Relpipe_core.Validate.check inst objective s in
  Alcotest.(check bool)
    "one-port warning in diagnostics" true
    (List.exists
       (fun d -> d.Diagnostic.rule = "RP-M006")
       report.Relpipe_core.Validate.diagnostics);
  Alcotest.(check bool)
    "warning rendered into messages" true
    (List.exists
       (fun msg -> contains ~needle:"RP-M006" msg)
       report.Relpipe_core.Validate.messages)

(* ------------------------------------------------------------------ *)
(* Severity, exit codes, JSON                                          *)
(* ------------------------------------------------------------------ *)

let test_severity_lattice () =
  Alcotest.(check int) "empty exits 0" 0 (Diagnostic.exit_code []);
  let d severity =
    Diagnostic.make ~rule:"RP-XXXX" ~severity "synthetic"
  in
  Alcotest.(check int) "hint exits 0" 0 (Diagnostic.exit_code [ d Severity.Hint ]);
  Alcotest.(check int)
    "warning exits 1" 1
    (Diagnostic.exit_code [ d Severity.Hint; d Severity.Warning ]);
  Alcotest.(check int)
    "error exits 2" 2
    (Diagnostic.exit_code [ d Severity.Warning; d Severity.Error ]);
  Alcotest.(check bool)
    "sort puts errors first" true
    (match Diagnostic.sort [ d Severity.Hint; d Severity.Error ] with
    | { Diagnostic.severity = Severity.Error; _ } :: _ -> true
    | _ -> false)

let test_json_report () =
  let ds = Analysis.lint_instance_text (fixture "defect_I001.relpipe") in
  let json = Diagnostic.report_to_json ~file:"defect_I001.relpipe" ds in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true
        (contains ~needle json))
    [
      {|"version":1|}; {|"file":"defect_I001.relpipe"|}; {|"rule":"RP-I001"|};
      {|"severity":"error"|}; {|"line":4|}; {|"summary"|};
    ];
  let escaped =
    Diagnostic.to_json
      (Diagnostic.make ~rule:"RP-XXXX" ~severity:Severity.Hint
         "quote \" backslash \\ newline \n done")
  in
  Alcotest.(check bool)
    "json escapes specials" true
    (contains ~needle:{|quote \" backslash \\ newline \n done|} escaped)

(* ------------------------------------------------------------------ *)
(* Properties: parse errors carry positions; clean inputs round-trip   *)
(* ------------------------------------------------------------------ *)

let bad_instance_lines =
  [ "stage x y"; "proc 1"; "link in"; "bogus 3"; "input"; "link 0 q 5" ]

let prop_instance_errors_positioned =
  QCheck.Test.make ~name:"instance parse errors carry line/col" ~count:100
    QCheck.(pair (int_bound (List.length bad_instance_lines - 1)) (int_bound 5))
    (fun (bad_idx, padding) ->
      (* A valid prefix of [padding] lines, then one malformed line: the
         reported span must sit exactly on the malformed line. *)
      let prefix = List.init padding (fun _ -> "input 4") in
      let text =
        String.concat "\n" (prefix @ [ List.nth bad_instance_lines bad_idx ])
      in
      match Textio.parse_raw text with
      | Ok _ -> false
      | Error { Textio.span = None; _ } -> false
      | Error { Textio.span = Some s; _ } ->
          s.Relpipe_util.Loc.start.Relpipe_util.Loc.line = padding + 1
          && s.Relpipe_util.Loc.start.Relpipe_util.Loc.col >= 1)

let bad_mapping_texts =
  [ "1-:0"; "a-2:0"; "1-2:"; "1-2:x"; "1;2"; ":0"; "1-2:0 1" ]

let prop_mapping_errors_positioned =
  QCheck.Test.make ~name:"mapping parse errors carry line/col" ~count:100
    QCheck.(int_bound (List.length bad_mapping_texts - 1))
    (fun idx ->
      match Mapping_syntax.parse_raw (List.nth bad_mapping_texts idx) with
      | Ok _ -> false
      | Error { Mapping_syntax.span = None; _ } -> false
      | Error { Mapping_syntax.span = Some s; _ } ->
          s.Relpipe_util.Loc.start.Relpipe_util.Loc.line = 1
          && s.Relpipe_util.Loc.start.Relpipe_util.Loc.col >= 1)

let prop_clean_roundtrip =
  QCheck.Test.make ~name:"lint-clean instances round-trip unchanged" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let inst =
        match seed mod 3 with
        | 0 -> Helpers.random_fully_homog rng ~n:3 ~m:3
        | 1 -> Helpers.random_comm_homog rng ~n:4 ~m:3
        | _ -> Helpers.random_fully_hetero rng ~n:3 ~m:4
      in
      let text = Textio.to_string inst in
      QCheck.assume (Diagnostic.errors (Analysis.lint_instance_text text) = []);
      match Textio.parse text with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e
      | Ok inst' -> String.equal text (Textio.to_string inst'))

let prop_tests =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_instance_errors_positioned; prop_mapping_errors_positioned;
      prop_clean_roundtrip;
    ]

let () =
  Alcotest.run "analysis"
    [
      ("fixtures", fixture_tests);
      ( "engine",
        [
          test "rule registry" test_registry;
          test "mapping lint" test_mapping_lint;
          test "mapping value lint" test_mapping_value_lint;
          test "severity lattice and exit codes" test_severity_lattice;
          test "json report" test_json_report;
        ] );
      ( "integration",
        [
          test "solver rejects dead machine" test_solver_guard;
          test "solver rejects NaN threshold" test_solver_guard_objective;
          test "clean instances pass the guard" test_solver_clean_instances_pass;
          test "validate folds diagnostics" test_validate_diagnostics;
        ] );
      ("properties", prop_tests);
    ]
