(* Tests for the relpipe.service batch engine: the LRU cache, the JSON
   codec, the request/response protocol, canonicalization (keys, platform
   symmetries, quantization), the Domain pool, and the engine's headline
   guarantee — byte-identical responses for every worker count. *)

open Relpipe_model
open Relpipe_service
module Rng = Relpipe_util.Rng
module Lru = Relpipe_util.Lru

let test = Helpers.test

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* Touch "a" so "b" becomes the LRU entry. *)
  (match Lru.find c "a" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected a=1");
  Lru.add c "c" 3;
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check bool) "a survives" true (Lru.mem c "a");
  Alcotest.(check bool) "c present" true (Lru.mem c "c");
  check_int "length" 2 (Lru.length c);
  let s = Lru.stats c in
  check_int "hits" 1 s.Lru.hits;
  check_int "evictions" 1 s.Lru.evictions

let test_lru_counters () =
  let c = Lru.create ~capacity:4 in
  ignore (Lru.find c "missing");
  Lru.add c "k" 0;
  ignore (Lru.find c "k");
  ignore (Lru.find c "k");
  let s = Lru.stats c in
  check_int "hits" 2 s.Lru.hits;
  check_int "misses" 1 s.Lru.misses;
  (* [mem] must not perturb the counters. *)
  ignore (Lru.mem c "k");
  ignore (Lru.mem c "missing");
  let s' = Lru.stats c in
  check_int "hits unchanged" s.Lru.hits s'.Lru.hits;
  check_int "misses unchanged" s.Lru.misses s'.Lru.misses

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* Replacing "a" refreshes it; adding "c" must then evict "b". *)
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  (match Lru.find c "a" with
  | Some 10 -> ()
  | _ -> Alcotest.fail "replace lost the new value");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  check_int "length stays at capacity" 2 (Lru.length c)

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  check_int "nothing stored" 0 (Lru.length c);
  Alcotest.(check bool) "no hit" true (Option.is_none (Lru.find c "a"))

let test_lru_clear () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.clear c;
  check_int "empty" 0 (Lru.length c);
  Lru.add c "c" 3;
  (match Lru.find c "c" with
  | Some 3 -> ()
  | _ -> Alcotest.fail "usable after clear")

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_round_trip v =
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')
  | Error e -> Alcotest.failf "re-parse failed: %s" e

let test_json_round_trip () =
  json_round_trip
    (Json.Obj
       [
         ("s", Json.Str "a\"b\\c\nd\te\xc3\xa9");
         ("i", Json.Int (-42));
         ("f", Json.Float 3.0625);
         ("big", Json.Float 1.2345678901234567e300);
         ("b", Json.Bool true);
         ("n", Json.Null);
         ("l", Json.List [ Json.Int 1; Json.Str ""; Json.Obj [] ]);
       ])

let test_json_unicode () =
  (* \u00e9 is é; \ud83d\ude00 is a surrogate pair (U+1F600). *)
  match Json.parse {|"caf\u00e9 \uD83D\uDE00"|} with
  | Ok (Json.Str s) -> check_str "utf-8" "caf\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_malformed () =
  List.iter
    (fun input ->
      match Json.parse input with
      | Ok _ -> Alcotest.failf "accepted malformed %S" input
      | Error e ->
          Alcotest.(check bool)
            "error cites an offset" true
            (String.length e >= 7 && String.sub e 0 7 = "offset "))
    [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"\\q\""; "nul"; ""; "{\"a\" 1}" ]

let test_json_non_finite () =
  let back x =
    match Json.parse (Json.to_string (Json.float x)) with
    | Ok v -> Json.to_float v
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  (match back infinity with
  | Some f when Float.equal f infinity -> ()
  | _ -> Alcotest.fail "inf round trip");
  (match back neg_infinity with
  | Some f when Float.equal f neg_infinity -> ()
  | _ -> Alcotest.fail "-inf round trip");
  match back nan with
  | Some f when Float.is_nan f -> ()
  | _ -> Alcotest.fail "nan round trip"

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let random_instance_text seed =
  let rng = Rng.create seed in
  Textio.to_string (Helpers.random_fully_hetero rng ~n:(2 + Rng.int rng 3) ~m:3)

let random_request seed =
  let rng = Rng.create (seed + 7919) in
  let objective =
    if Rng.bool rng then
      Instance.Min_failure { max_latency = Rng.float_range rng 1.0 100.0 }
    else Instance.Min_latency { max_failure = Rng.float_range rng 0.01 0.9 }
  in
  let methods = List.map snd Protocol.method_names in
  let method_ = List.nth methods (Rng.int rng (List.length methods)) in
  let id = if Rng.bool rng then Some (Printf.sprintf "req-%d" seed) else None in
  let budget = if Rng.bool rng then Some (100 + Rng.int rng 1000) else None in
  let instance =
    if Rng.bool rng then Protocol.Inline (random_instance_text seed)
    else Protocol.File "fixtures/some-instance.relpipe"
  in
  { Protocol.id; instance; objective; method_; budget }

let prop_request_round_trip seed =
  let r = random_request seed in
  match Protocol.decode_request (Protocol.encode_request r) with
  | Ok r' -> r = r'
  | Error e -> Alcotest.failf "decode failed: %s" e

let prop_response_round_trip seed =
  let rng = Rng.create (seed + 104729) in
  let r_outcome =
    match Rng.int rng 3 with
    | 0 ->
        Protocol.Solved
          {
            mapping = "1-2:0,1; 3:2";
            latency = Rng.float_range rng 0.1 100.0;
            failure = Rng.float_range rng 0.0 1.0;
          }
    | 1 -> Protocol.Infeasible
    | _ -> Protocol.Failed "some \"quoted\" message"
  in
  let r =
    {
      Protocol.r_id = (if Rng.bool rng then Some "x" else None);
      r_index = Rng.int rng 1000;
      r_cache = (if Rng.bool rng then Protocol.Hit else Protocol.Miss);
      r_outcome;
    }
  in
  match Protocol.decode_response (Protocol.encode_response r) with
  | Ok r' -> r = r'
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_protocol_malformed () =
  List.iter
    (fun line ->
      match Protocol.decode_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" line)
    [
      "not json at all";
      "{}";
      {|{"v":2,"instance":"x","objective":{"minimize":"failure","max_latency":1}}|};
      {|{"v":1,"objective":{"minimize":"failure","max_latency":1}}|};
      {|{"v":1,"instance":"x"}|};
      {|{"v":1,"instance":"x","objective":{"minimize":"both"}}|};
      {|{"v":1,"instance":"x","objective":{"minimize":"failure","max_latency":1},"method":"quantum"}|};
      {|{"v":1,"instance":"x","instance_file":"y","objective":{"minimize":"failure","max_latency":1}}|};
    ]

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

let key_of inst objective =
  (Canon.normalize ~budget:1000 ~method_:Relpipe_core.Solver.Auto inst objective)
    .Canon.key

let test_canon_stable () =
  let rng = Rng.create 11 in
  let inst = Helpers.random_comm_homog rng ~n:4 ~m:3 in
  let objective = Instance.Min_failure { max_latency = 50.0 } in
  check_str "same instance, same key" (key_of inst objective)
    (key_of inst objective);
  (* A text round trip must not move the key either. *)
  match Textio.parse (Textio.to_string inst) with
  | Ok inst' ->
      check_str "text round trip keeps the key" (key_of inst objective)
        (key_of inst' objective)
  | Error e -> Alcotest.failf "round trip failed: %s" e

let permute_platform perm platform =
  (* New processor [i] is old processor [perm.(i)]. *)
  let speeds = Platform.speeds platform and failures = Platform.failures platform in
  let m = Array.length speeds in
  Platform.make
    ~speeds:(Array.init m (fun i -> speeds.(perm.(i))))
    ~failures:(Array.init m (fun i -> failures.(perm.(i))))
    ~bandwidth:(fun a b ->
      let back = function
        | Platform.Proc u -> Platform.Proc perm.(u)
        | e -> e
      in
      Platform.bandwidth platform (back a) (back b))

let test_canon_symmetry () =
  (* On a link-homogeneous platform, renumbering processors must not change
     the key, and the cached mapping must translate to an equally good one. *)
  let rng = Rng.create 23 in
  let inst = Helpers.random_comm_homog rng ~n:4 ~m:3 in
  let perm = [| 2; 0; 1 |] in
  let inst' =
    Instance.make inst.Instance.pipeline
      (permute_platform perm inst.Instance.platform)
  in
  let objective = Instance.Min_failure { max_latency = 1e6 } in
  check_str "permuted platform, same key" (key_of inst objective)
    (key_of inst' objective);
  let norm = Canon.normalize ~budget:1000 ~method_:Relpipe_core.Solver.Auto inst objective in
  let norm' = Canon.normalize ~budget:1000 ~method_:Relpipe_core.Solver.Auto inst' objective in
  match Relpipe_core.Exact.solve inst objective with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
      let translated =
        Canon.translate ~from_perm:norm.Canon.perm ~to_perm:norm'.Canon.perm
          ~n:4 ~m:3 sol.Relpipe_core.Solution.mapping
      in
      let ev = Instance.evaluate inst' translated in
      let ev0 = sol.Relpipe_core.Solution.evaluation in
      Helpers.check_close "translated failure" ev0.Instance.failure
        ev.Instance.failure;
      Helpers.check_close "translated latency" ev0.Instance.latency
        ev.Instance.latency

let test_canon_hetero_no_symmetry () =
  (* A fully heterogeneous platform's bandwidth matrix pins the processor
     order: renumbering is a different platform, hence a different key. *)
  let rng = Rng.create 37 in
  let inst = Helpers.random_fully_hetero rng ~n:4 ~m:3 in
  let inst' =
    Instance.make inst.Instance.pipeline
      (permute_platform [| 2; 0; 1 |] inst.Instance.platform)
  in
  let objective = Instance.Min_failure { max_latency = 50.0 } in
  Alcotest.(check bool)
    "different keys" false
    (String.equal (key_of inst objective) (key_of inst' objective))

let test_canon_quantization () =
  let rng = Rng.create 41 in
  let inst = Helpers.random_comm_homog rng ~n:4 ~m:3 in
  let key l = key_of inst (Instance.Min_failure { max_latency = l }) in
  let l = 50.0 in
  check_str "noise below 12 digits collapses" (key l) (key (l *. (1.0 +. 1e-14)));
  Alcotest.(check bool)
    "real differences survive" false
    (String.equal (key l) (key (l *. (1.0 +. 1e-6))))

let test_canon_separates_inputs () =
  let rng = Rng.create 43 in
  let inst = Helpers.random_comm_homog rng ~n:4 ~m:3 in
  let o1 = Instance.Min_failure { max_latency = 50.0 } in
  let o2 = Instance.Min_latency { max_failure = 0.5 } in
  Alcotest.(check bool)
    "objective in the key" false
    (String.equal (key_of inst o1) (key_of inst o2));
  let k m =
    (Canon.normalize ~budget:1000 ~method_:m inst o1).Canon.key
  in
  Alcotest.(check bool)
    "method in the key" false
    (String.equal
       (k Relpipe_core.Solver.Auto)
       (k Relpipe_core.Solver.Portfolio))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let jobs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f jobs in
  List.iter
    (fun workers ->
      let got, stats = Pool.map ~workers f jobs in
      Alcotest.(check (array int))
        (Printf.sprintf "workers=%d" workers)
        expected got;
      check_int "all jobs ran" 100 stats.Pool.jobs)
    [ 1; 2; 8 ]

let test_pool_empty () =
  let got, stats = Pool.map ~workers:4 (fun x -> x) [||] in
  check_int "no results" 0 (Array.length got);
  check_int "no jobs" 0 stats.Pool.jobs

let test_pool_exception () =
  match
    Pool.map ~workers:3 (fun x -> if x = 5 then failwith "boom" else x)
      (Array.init 10 (fun i -> i))
  with
  | exception Failure msg -> check_str "original exception" "boom" msg
  | _ -> Alcotest.fail "expected the job's exception to propagate"

let test_pool_effective_workers () =
  let cpus = Pool.cpu_count () in
  check_int "capped" (min 8 cpus) (Pool.effective_workers 8);
  check_int "uncapped" 8 (Pool.effective_workers ~cap:false 8);
  check_int "lower bound" 1 (Pool.effective_workers 0);
  check_int "lower bound uncapped" 1 (Pool.effective_workers ~cap:false (-3))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let batch_lines () =
  (* A deliberately mixed batch: distinct instances, an exact duplicate, a
     processor-renumbered twin (symmetric cache hit), an infeasible
     objective, and a malformed line. *)
  let rng = Rng.create 97 in
  let ch = Helpers.random_comm_homog rng ~n:4 ~m:3 in
  let ch_renumbered =
    Instance.make ch.Instance.pipeline
      (permute_platform [| 1; 2; 0 |] ch.Instance.platform)
  in
  let fh = Helpers.random_fully_hetero rng ~n:3 ~m:3 in
  let req ?id ?method_ inst objective =
    Protocol.encode_request
      (Protocol.request ?id ?method_
         ~instance:(Protocol.Inline (Textio.to_string inst))
         objective)
  in
  let loose = Instance.Min_failure { max_latency = 1e6 } in
  [
    req ~id:"ch" ch loose;
    req ~id:"fh" fh loose;
    "this is not json";
    req ~id:"ch-dup" ch loose;
    req ~id:"ch-renumbered" ch_renumbered loose;
    req ~id:"infeasible" fh (Instance.Min_failure { max_latency = 1e-9 });
    req ~id:"fh-portfolio" ~method_:Relpipe_core.Solver.Portfolio fh loose;
  ]

let test_engine_deterministic_across_workers () =
  let lines = batch_lines () in
  let run workers =
    Engine.run_lines
      (Engine.create ~workers ~cap_to_cpus:false ())
      lines
  in
  let reference = run 1 in
  check_int "one response per request" 7 (List.length reference);
  List.iter
    (fun workers ->
      Alcotest.(check (list string))
        (Printf.sprintf "workers=%d matches workers=1" workers)
        reference (run workers))
    [ 2; 8 ]

let test_engine_batch_semantics () =
  let engine = Engine.create ~workers:2 ~cap_to_cpus:false () in
  let responses =
    List.map
      (fun line ->
        match Protocol.decode_response line with
        | Ok r -> r
        | Error e -> Alcotest.failf "undecodable response %S: %s" line e)
      (Engine.run_lines engine (batch_lines ()))
  in
  let nth i = List.nth responses i in
  (* Submission order is preserved. *)
  List.iteri (fun i r -> check_int "index" i r.Protocol.r_index) responses;
  (match (nth 2).Protocol.r_outcome with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "malformed line must fail, not crash");
  (match (nth 5).Protocol.r_outcome with
  | Protocol.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  (* The duplicate and the renumbered twin ride on request 0's solve. *)
  (match ((nth 3).Protocol.r_cache, (nth 4).Protocol.r_cache) with
  | Protocol.Hit, Protocol.Hit -> ()
  | _ -> Alcotest.fail "duplicate and symmetric twin must be cache hits");
  (match ((nth 0).Protocol.r_outcome, (nth 3).Protocol.r_outcome) with
  | ( Protocol.Solved { mapping = m0; latency = l0; _ },
      Protocol.Solved { mapping = m3; latency = l3; _ } ) ->
      check_str "duplicate gets the identical mapping" m0 m3;
      Alcotest.(check bool) "identical latency" true (l0 = l3)
  | _ -> Alcotest.fail "expected both solved");
  (match ((nth 0).Protocol.r_outcome, (nth 4).Protocol.r_outcome) with
  | ( Protocol.Solved { failure = f0; _ },
      Protocol.Solved { failure = f4; _ } ) ->
      (* Same canonical problem: equally good, indices may differ. *)
      Helpers.check_close "renumbered twin failure" f0 f4
  | _ -> Alcotest.fail "expected both solved");
  let s = Engine.stats engine in
  check_int "requests" 7 s.Engine.requests;
  (* 7 lines: 1 malformed, ch + dup + renumbered share one job. *)
  check_int "solver runs" 4 s.Engine.jobs;
  Alcotest.(check bool) "nonzero hit rate" true (Engine.hit_rate s > 0.0)

let test_engine_cache_across_batches () =
  let engine = Engine.create ~workers:1 () in
  let lines = batch_lines () in
  let first = Engine.run_lines engine lines in
  let jobs_after_first = (Engine.stats engine).Engine.jobs in
  let second = Engine.run_lines engine lines in
  check_int "no new solver runs" jobs_after_first
    (Engine.stats engine).Engine.jobs;
  (* Outcomes are identical; only the cache tag flips to "hit". *)
  List.iter2
    (fun a b ->
      match (Protocol.decode_response a, Protocol.decode_response b) with
      | Ok ra, Ok rb ->
          Alcotest.(check bool)
            "same outcome" true
            (ra.Protocol.r_outcome = rb.Protocol.r_outcome)
      | _ -> Alcotest.fail "undecodable response")
    first second;
  (* Every request that reached the solver is a hit the second time; only
     the malformed line (index 2, never cached) stays a miss. *)
  List.iter
    (fun line ->
      match Protocol.decode_response line with
      | Ok r -> (
          match (r.Protocol.r_cache, r.Protocol.r_index) with
          | Protocol.Hit, _ | Protocol.Miss, 2 -> ()
          | Protocol.Miss, i ->
              Alcotest.failf "request %d missed in the second batch" i)
      | Error e -> Alcotest.failf "undecodable: %s" e)
    second

let test_engine_eviction () =
  let engine = Engine.create ~workers:1 ~cache_capacity:1 () in
  let rng = Rng.create 53 in
  let a = Helpers.random_comm_homog rng ~n:3 ~m:2 in
  let b = Helpers.random_comm_homog rng ~n:3 ~m:2 in
  let loose = Instance.Min_failure { max_latency = 1e6 } in
  let solve inst = ignore (Engine.solve_instance engine inst loose) in
  solve a;
  solve b;
  (* "a" was evicted by "b", so it must be solved again. *)
  solve a;
  let s = Engine.stats engine in
  check_int "three solver runs" 3 s.Engine.jobs;
  Alcotest.(check bool)
    "evictions counted" true
    (s.Engine.cache.Lru.evictions >= 1);
  check_int "cache bounded" 1 s.Engine.cache_len

let test_engine_instance_file () =
  let engine = Engine.create ~workers:1 () in
  let path = Filename.concat "fixtures" "service-fig5.relpipe" in
  let req =
    Protocol.request ~id:"from-file" ~instance:(Protocol.File path)
      (Instance.Min_failure { max_latency = 1e6 })
  in
  let missing =
    Protocol.request ~id:"missing" ~instance:(Protocol.File "no/such/file")
      (Instance.Min_failure { max_latency = 1e6 })
  in
  let rs = Engine.run_requests engine [| req; missing |] in
  (match rs.(0).Protocol.r_outcome with
  | Protocol.Solved _ -> ()
  | _ -> Alcotest.fail "file-sourced request must solve");
  match rs.(1).Protocol.r_outcome with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "missing file must fail per-request"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "lru",
        [
          test "eviction order" test_lru_eviction_order;
          test "hit/miss counters" test_lru_counters;
          test "replace refreshes" test_lru_replace;
          test "capacity 0 disables" test_lru_disabled;
          test "clear" test_lru_clear;
        ] );
      ( "json",
        [
          test "round trip" test_json_round_trip;
          test "unicode escapes" test_json_unicode;
          test "malformed inputs" test_json_malformed;
          test "non-finite floats" test_json_non_finite;
        ] );
      ( "protocol",
        [
          Helpers.seed_property ~count:60 "request round trip"
            prop_request_round_trip;
          Helpers.seed_property ~count:60 "response round trip"
            prop_response_round_trip;
          test "malformed requests rejected" test_protocol_malformed;
        ] );
      ( "canon",
        [
          test "stable keys" test_canon_stable;
          test "link-homogeneous symmetry" test_canon_symmetry;
          test "fully-hetero breaks symmetry" test_canon_hetero_no_symmetry;
          test "quantization" test_canon_quantization;
          test "objective and method in key" test_canon_separates_inputs;
        ] );
      ( "pool",
        [
          test "matches sequential map" test_pool_matches_sequential;
          test "empty job array" test_pool_empty;
          test "exception propagation" test_pool_exception;
          test "effective workers" test_pool_effective_workers;
        ] );
      ( "engine",
        [
          test "deterministic across worker counts"
            test_engine_deterministic_across_workers;
          test "batch semantics" test_engine_batch_semantics;
          test "cache across batches" test_engine_cache_across_batches;
          test "lru eviction bounds the cache" test_engine_eviction;
          test "instance_file sources" test_engine_instance_file;
        ] );
    ]
