open Relpipe_model
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let sample_pipeline () =
  Pipeline.of_costs ~input:4.0 [ (1.0, 2.0); (3.0, 5.0); (7.0, 6.0) ]

let pipeline_accessors () =
  let p = sample_pipeline () in
  Alcotest.(check int) "length" 3 (Pipeline.length p);
  Helpers.check_close "delta0" 4.0 (Pipeline.delta p 0);
  Helpers.check_close "delta1" 2.0 (Pipeline.delta p 1);
  Helpers.check_close "delta3" 6.0 (Pipeline.delta p 3);
  Helpers.check_close "w2" 3.0 (Pipeline.work p 2);
  Helpers.check_close "total work" 11.0 (Pipeline.total_work p)

let pipeline_work_sum () =
  let p = sample_pipeline () in
  Helpers.check_close "1..1" 1.0 (Pipeline.work_sum p ~first:1 ~last:1);
  Helpers.check_close "1..3" 11.0 (Pipeline.work_sum p ~first:1 ~last:3);
  Helpers.check_close "2..3" 10.0 (Pipeline.work_sum p ~first:2 ~last:3)

let pipeline_work_sum_matches_loop =
  Helpers.seed_property "work_sum equals explicit loop" (fun seed ->
      let rng = Rng.create seed in
      let p = Helpers.random_pipeline rng ~n:(2 + (seed mod 8)) in
      let n = Pipeline.length p in
      let first = 1 + (seed mod n) in
      let last = first + ((seed / 7) mod (n - first + 1)) in
      let manual = ref 0.0 in
      for k = first to last do
        manual := !manual +. Pipeline.work p k
      done;
      F.approx_eq !manual (Pipeline.work_sum p ~first ~last))

let pipeline_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Pipeline.make ~input:1.0 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative work rejected" true
    (try
       ignore (Pipeline.of_costs ~input:1.0 [ (-1.0, 1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan input rejected" true
    (try
       ignore (Pipeline.of_costs ~input:Float.nan [ (1.0, 1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero data allowed" true
    (ignore (Pipeline.of_costs ~input:1.0 [ (1.0, 0.0) ]);
     true)

let pipeline_bounds_checked () =
  let p = sample_pipeline () in
  List.iter
    (fun f ->
      Alcotest.(check bool) "raises" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Pipeline.work p 0);
      (fun () -> Pipeline.work p 4);
      (fun () -> Pipeline.delta p (-1));
      (fun () -> Pipeline.delta p 4);
      (fun () -> Pipeline.work_sum p ~first:2 ~last:1);
    ]

(* ------------------------------------------------------------------ *)
(* Platform                                                            *)
(* ------------------------------------------------------------------ *)

let sample_platform () =
  Platform.uniform_links ~speeds:[| 1.0; 2.0; 4.0 |]
    ~failures:[| 0.1; 0.2; 0.3 |] ~bandwidth:5.0

let platform_accessors () =
  let p = sample_platform () in
  Alcotest.(check int) "size" 3 (Platform.size p);
  Helpers.check_close "speed" 2.0 (Platform.speed p 1);
  Helpers.check_close "failure" 0.3 (Platform.failure p 2);
  Helpers.check_close "bandwidth" 5.0
    (Platform.bandwidth p Platform.Pin (Platform.Proc 0));
  Alcotest.(check (list int)) "procs" [ 0; 1; 2 ] (Platform.procs p)

let platform_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true
    (bad (fun () -> Platform.uniform_links ~speeds:[||] ~failures:[||] ~bandwidth:1.0));
  Alcotest.(check bool) "length mismatch" true
    (bad (fun () ->
         Platform.uniform_links ~speeds:[| 1.0 |] ~failures:[| 0.1; 0.2 |]
           ~bandwidth:1.0));
  Alcotest.(check bool) "zero speed" true
    (bad (fun () ->
         Platform.uniform_links ~speeds:[| 0.0 |] ~failures:[| 0.1 |] ~bandwidth:1.0));
  Alcotest.(check bool) "failure > 1" true
    (bad (fun () ->
         Platform.uniform_links ~speeds:[| 1.0 |] ~failures:[| 1.5 |] ~bandwidth:1.0));
  Alcotest.(check bool) "zero bandwidth" true
    (bad (fun () ->
         Platform.uniform_links ~speeds:[| 1.0 |] ~failures:[| 0.1 |] ~bandwidth:0.0));
  Alcotest.(check bool) "self link" true
    (bad (fun () -> Platform.bandwidth (sample_platform ()) Platform.Pin Platform.Pin))

let platform_copies_isolated () =
  let speeds = [| 1.0; 2.0 |] in
  let p = Platform.uniform_links ~speeds ~failures:[| 0.1; 0.2 |] ~bandwidth:1.0 in
  speeds.(0) <- 99.0;
  Helpers.check_close "input array copied" 1.0 (Platform.speed p 0);
  let out = Platform.speeds p in
  out.(1) <- 42.0;
  Helpers.check_close "output array copied" 2.0 (Platform.speed p 1)

(* ------------------------------------------------------------------ *)
(* Classify                                                            *)
(* ------------------------------------------------------------------ *)

let classify_classes () =
  let fully =
    Platform.fully_homogeneous ~m:3 ~speed:2.0 ~failure:0.1 ~bandwidth:1.0
  in
  Alcotest.(check bool) "fully homog" true
    (Classify.comm_class fully = Classify.Fully_homogeneous);
  Alcotest.(check bool) "failure homog" true
    (Classify.failure_class fully = Classify.Failure_homogeneous);
  let comm = sample_platform () in
  Alcotest.(check bool) "comm homog" true
    (Classify.comm_class comm = Classify.Comm_homogeneous);
  Alcotest.(check bool) "failure hetero" true
    (Classify.failure_class comm = Classify.Failure_heterogeneous);
  let hetero =
    Platform.make ~speeds:[| 1.0; 2.0 |] ~failures:[| 0.1; 0.1 |]
      ~bandwidth:(fun a b ->
        match a, b with
        | Platform.Pin, Platform.Proc 0 | Platform.Proc 0, Platform.Pin -> 9.0
        | _ -> 1.0)
  in
  Alcotest.(check bool) "fully hetero" true
    (Classify.comm_class hetero = Classify.Fully_heterogeneous);
  Alcotest.(check (option (float 1e-9))) "common bandwidth" (Some 5.0)
    (Classify.common_bandwidth comm);
  Alcotest.(check (option (float 1e-9))) "no common bandwidth" None
    (Classify.common_bandwidth hetero)

let classify_generators_agree =
  Helpers.seed_property "generators land in their class" (fun seed ->
      let rng = Rng.create seed in
      let ch = Helpers.random_comm_homog rng ~n:3 ~m:4 in
      let fh = Helpers.random_fully_homog rng ~n:3 ~m:4 in
      Classify.links_homogeneous ch.Instance.platform
      && Classify.comm_class fh.Instance.platform = Classify.Fully_homogeneous)

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let mapping_valid () =
  let m =
    Mapping.make ~n:4 ~m:5
      [
        { Mapping.first = 1; last = 2; procs = [ 3; 0 ] };
        { Mapping.first = 3; last = 4; procs = [ 2 ] };
      ]
  in
  Alcotest.(check int) "intervals" 2 (Mapping.num_intervals m);
  Alcotest.(check int) "replication" 2 (Mapping.replication m 0);
  Alcotest.(check (list int)) "procs sorted" [ 0; 3 ]
    (List.hd (Mapping.intervals m)).Mapping.procs;
  Alcotest.(check (list int)) "used procs" [ 0; 2; 3 ] (Mapping.used_procs m);
  let iv = Mapping.interval_of_stage m 3 in
  Alcotest.(check int) "stage 3 interval" 3 iv.Mapping.first

let mapping_rejects () =
  let invalid ivs =
    match Mapping.validate ~n:3 ~m:3 ivs with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "gap" true
    (invalid
       [
         { Mapping.first = 1; last = 1; procs = [ 0 ] };
         { Mapping.first = 3; last = 3; procs = [ 1 ] };
       ]);
  Alcotest.(check bool) "not starting at 1" true
    (invalid [ { Mapping.first = 2; last = 3; procs = [ 0 ] } ]);
  Alcotest.(check bool) "not covering" true
    (invalid [ { Mapping.first = 1; last = 2; procs = [ 0 ] } ]);
  Alcotest.(check bool) "empty procs" true
    (invalid [ { Mapping.first = 1; last = 3; procs = [] } ]);
  Alcotest.(check bool) "duplicate proc in interval" true
    (invalid [ { Mapping.first = 1; last = 3; procs = [ 1; 1 ] } ]);
  Alcotest.(check bool) "proc reused across intervals" true
    (invalid
       [
         { Mapping.first = 1; last = 1; procs = [ 0 ] };
         { Mapping.first = 2; last = 3; procs = [ 0 ] };
       ]);
  Alcotest.(check bool) "proc out of range" true
    (invalid [ { Mapping.first = 1; last = 3; procs = [ 7 ] } ])

let mapping_one_to_one () =
  let m = Mapping.one_to_one ~n:3 ~m:4 [ 2; 0; 3 ] in
  Alcotest.(check int) "three intervals" 3 (Mapping.num_intervals m);
  Alcotest.(check bool) "arity enforced" true
    (try
       ignore (Mapping.one_to_one ~n:3 ~m:4 [ 1; 2 ]);
       false
     with Invalid_argument _ -> true)

let mapping_random_always_valid =
  Helpers.seed_property "random mappings validate" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 6) and m = 2 + (seed mod 5) in
      let m' = max m 6 in
      let mapping = Helpers.random_mapping rng ~n ~m:m' in
      match Mapping.validate ~n ~m:m' (Mapping.intervals mapping) with
      | Ok _ -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Assignment                                                          *)
(* ------------------------------------------------------------------ *)

let assignment_interval_detection () =
  Alcotest.(check bool) "consecutive ok" true
    (Assignment.is_interval_based (Assignment.of_list ~m:3 [ 0; 0; 1; 2; 2 ]));
  Alcotest.(check bool) "reuse rejected" false
    (Assignment.is_interval_based (Assignment.of_list ~m:3 [ 0; 1; 0 ]));
  let a = Assignment.of_list ~m:3 [ 0; 0; 2 ] in
  (match Assignment.to_mapping ~m:3 a with
  | Some mapping -> Alcotest.(check int) "two intervals" 2 (Mapping.num_intervals mapping)
  | None -> Alcotest.fail "expected interval mapping");
  Alcotest.(check bool) "non-interval gives None" true
    (Assignment.to_mapping ~m:3 (Assignment.of_list ~m:3 [ 0; 1; 0 ]) = None)

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let eq1_manual () =
  (* Two intervals on a comm-homogeneous platform, checked against a hand
     computation of Eq. (1). *)
  let pipeline = Pipeline.of_costs ~input:6.0 [ (4.0, 2.0); (8.0, 10.0) ] in
  let platform =
    Platform.uniform_links ~speeds:[| 2.0; 1.0; 4.0 |]
      ~failures:[| 0.1; 0.2; 0.3 |] ~bandwidth:3.0
  in
  let mapping =
    Mapping.make ~n:2 ~m:3
      [
        { Mapping.first = 1; last = 1; procs = [ 0; 1 ] };
        { Mapping.first = 2; last = 2; procs = [ 2 ] };
      ]
  in
  (* k1*d0/b + w1/min(2,1) + k2*d1/b + w2/4 + d2/b
     = 2*(6/3) + 4/1 + 1*(2/3) + 8/4 + 10/3 = 14. *)
  Helpers.check_close "eq1 by hand" 14.0 (Latency.eq1 pipeline platform mapping);
  Helpers.check_close "eq2 agrees" 14.0 (Latency.eq2 pipeline platform mapping)

let eq1_eq2_agree_on_comm_homog =
  Helpers.seed_property "Eq1 = Eq2 on homogeneous links" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let l1 = Latency.eq1 inst.Instance.pipeline inst.Instance.platform mapping in
      let l2 = Latency.eq2 inst.Instance.pipeline inst.Instance.platform mapping in
      F.approx_eq ~eps:1e-9 l1 l2)

let eq1_rejects_hetero_links () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Latency.eq1 inst.Instance.pipeline inst.Instance.platform
            (Relpipe_workload.Scenarios.fig34_single 0));
       false
     with Invalid_argument _ -> true)

let latency_replication_increases =
  Helpers.seed_property "adding a replica cannot reduce Eq1 latency"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) in
      let m = 3 in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let single = Mapping.single_interval ~n ~m [ 0 ] in
      let replicated = Mapping.single_interval ~n ~m [ 0; 1 ] in
      let l1 = Latency.of_mapping inst.Instance.pipeline inst.Instance.platform single in
      let l2 =
        Latency.of_mapping inst.Instance.pipeline inst.Instance.platform replicated
      in
      F.leq l1 l2)

let assignment_latency_manual () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  (* The split mapping of Fig. 3/4 as a general assignment: latency 7. *)
  let a = Assignment.of_list ~m:2 [ 0; 1 ] in
  Helpers.check_close "fig34 assignment" 7.0
    (Latency.of_assignment inst.Instance.pipeline inst.Instance.platform a);
  (* Same processor everywhere: no internal communications: 105. *)
  let b = Assignment.of_list ~m:2 [ 0; 0 ] in
  Helpers.check_close "single proc" 105.0
    (Latency.of_assignment inst.Instance.pipeline inst.Instance.platform b)

let assignment_latency_matches_mapping =
  Helpers.seed_property "interval assignment latency = unreplicated Eq2"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      (* Build a random unreplicated interval mapping. *)
      let mapping = Helpers.random_mapping rng ~n ~m in
      let unreplicated =
        Mapping.make ~n ~m
          (List.map
             (fun iv -> { iv with Mapping.procs = [ List.hd iv.Mapping.procs ] })
             (Mapping.intervals mapping))
      in
      let procs =
        List.concat_map
          (fun iv ->
            List.init
              (iv.Mapping.last - iv.Mapping.first + 1)
              (fun _ -> List.hd iv.Mapping.procs))
          (Mapping.intervals unreplicated)
      in
      let a = Assignment.of_list ~m procs in
      F.approx_eq ~eps:1e-9
        (Latency.of_assignment inst.Instance.pipeline inst.Instance.platform a)
        (Latency.eq2 inst.Instance.pipeline inst.Instance.platform unreplicated))

(* ------------------------------------------------------------------ *)
(* Failure                                                             *)
(* ------------------------------------------------------------------ *)

let failure_manual () =
  let platform = sample_platform () in
  Helpers.check_close "interval product" 0.02
    (Failure.interval_failure platform [ 0; 1 ]);
  let mapping =
    Mapping.make ~n:2 ~m:3
      [
        { Mapping.first = 1; last = 1; procs = [ 0; 1 ] };
        { Mapping.first = 2; last = 2; procs = [ 2 ] };
      ]
  in
  (* FP = 1 - (1 - 0.02)(1 - 0.3) = 1 - 0.98*0.7 = 0.314 *)
  Helpers.check_close "global FP" 0.314 (Failure.of_mapping platform mapping);
  Helpers.check_close "success" 0.686 (Failure.success platform mapping)

let failure_matches_direct =
  Helpers.seed_property "log-space FP equals direct product" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_comm_homog rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let direct =
        1.0
        -. List.fold_left
             (fun acc iv ->
               acc
               *. (1.0
                  -. List.fold_left
                       (fun p u -> p *. Platform.failure inst.Instance.platform u)
                       1.0 iv.Mapping.procs))
             1.0 (Mapping.intervals mapping)
      in
      F.approx_eq ~eps:1e-9 direct (Failure.of_mapping inst.Instance.platform mapping))

let failure_perfect_replica () =
  let platform =
    Platform.uniform_links ~speeds:[| 1.0; 1.0 |] ~failures:[| 0.0; 0.9 |]
      ~bandwidth:1.0
  in
  let mapping = Mapping.single_interval ~n:1 ~m:2 [ 0; 1 ] in
  Helpers.check_close "perfect replica gives FP 0" 0.0
    (Failure.of_mapping platform mapping)

let failure_certain_failure () =
  let platform =
    Platform.uniform_links ~speeds:[| 1.0 |] ~failures:[| 1.0 |] ~bandwidth:1.0
  in
  let mapping = Mapping.single_interval ~n:1 ~m:1 [ 0 ] in
  Helpers.check_close "certain failure" 1.0 (Failure.of_mapping platform mapping);
  Alcotest.(check bool) "log survival -inf" true
    (Float.equal (Failure.log_survival platform mapping) Float.neg_infinity)

let failure_replication_decreases =
  Helpers.seed_property "adding a replica cannot increase FP" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) in
      let inst = Helpers.random_comm_homog rng ~n ~m:3 in
      let single = Mapping.single_interval ~n ~m:3 [ 0 ] in
      let replicated = Mapping.single_interval ~n ~m:3 [ 0; 1 ] in
      F.leq
        (Failure.of_mapping inst.Instance.platform replicated)
        (Failure.of_mapping inst.Instance.platform single))

(* ------------------------------------------------------------------ *)
(* Comm_model ablation                                                 *)
(* ------------------------------------------------------------------ *)

let multiport_below_one_port =
  Helpers.seed_property "multiport latency <= one-port latency" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      F.leq ~eps:1e-9
        (Comm_model.latency Comm_model.Multiport inst.Instance.pipeline
           inst.Instance.platform mapping)
        (Comm_model.latency Comm_model.One_port inst.Instance.pipeline
           inst.Instance.platform mapping))

let models_agree_without_replication =
  Helpers.seed_property "models coincide on unreplicated mappings" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let unreplicated =
        Mapping.make ~n ~m
          (List.map
             (fun iv -> { iv with Mapping.procs = [ List.hd iv.Mapping.procs ] })
             (Mapping.intervals mapping))
      in
      F.approx_eq ~eps:1e-9
        (Comm_model.latency Comm_model.Multiport inst.Instance.pipeline
           inst.Instance.platform unreplicated)
        (Comm_model.latency Comm_model.One_port inst.Instance.pipeline
           inst.Instance.platform unreplicated))

let multiport_dissolves_fig5 () =
  (* Under multiport, replicating the whole fig5 pipeline on everything
     has the same input cost as one send: the latency/reliability tension
     collapses. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let everything = Mapping.single_interval ~n:2 ~m:11 (List.init 11 Fun.id) in
  let mp =
    Comm_model.latency Comm_model.Multiport inst.Instance.pipeline
      inst.Instance.platform everything
  in
  (* delta0/b + slowest compute (101/1) + 0 = 10 + 101 = 111, vs one-port
     11*10 + 101 + 0 = 211. *)
  Helpers.check_close "multiport" 111.0 mp;
  Helpers.check_close "one-port" 211.0
    (Comm_model.latency Comm_model.One_port inst.Instance.pipeline
       inst.Instance.platform everything);
  Helpers.check_close "penalty" (211.0 /. 111.0)
    (Comm_model.replication_penalty inst.Instance.pipeline
       inst.Instance.platform everything)

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let bounds_hold_for_every_mapping =
  Helpers.seed_property ~count:150 "analytic bounds hold for random mappings"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 5) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let e = Instance.evaluate inst mapping in
      F.leq ~eps:1e-9 (Bounds.latency_lower_bound inst) e.Instance.latency
      && F.leq ~eps:1e-9 (Bounds.failure_lower_bound inst) e.Instance.failure
      && F.leq ~eps:1e-9
           (Bounds.period_lower_bound inst)
           (Period.of_mapping inst.Instance.pipeline inst.Instance.platform
              mapping)
      && F.geq ~eps:1e-9 (Bounds.latency_gap inst mapping) 1.0)

let bounds_failure_is_thm1 () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  (* The FP lower bound is exactly Theorem 1's optimum. *)
  let all = Mapping.single_interval ~n:2 ~m:11 (List.init 11 Fun.id) in
  Helpers.check_close "replicate-all FP"
    (Failure.of_mapping inst.Instance.platform all)
    (Bounds.failure_lower_bound inst)

let bounds_tight_on_single_proc () =
  (* One processor, one stage: the bound is attained exactly. *)
  let inst =
    Instance.make
      (Pipeline.of_costs ~input:4.0 [ (6.0, 2.0) ])
      (Platform.fully_homogeneous ~m:1 ~speed:2.0 ~failure:0.1 ~bandwidth:2.0)
  in
  let mapping = Mapping.single_interval ~n:1 ~m:1 [ 0 ] in
  let e = Instance.evaluate inst mapping in
  Helpers.check_close "latency bound tight" e.Instance.latency
    (Bounds.latency_lower_bound inst);
  Helpers.check_close "gap is 1" 1.0 (Bounds.latency_gap inst mapping)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let instance_feasibility () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let split = Instance.evaluate inst (Relpipe_workload.Scenarios.fig5_split ()) in
  Alcotest.(check bool) "split feasible at L=22" true
    (Instance.feasible (Instance.Min_failure { max_latency = 22.0 }) split);
  Alcotest.(check bool) "split infeasible at L=21" false
    (Instance.feasible (Instance.Min_failure { max_latency = 21.0 }) split)

let instance_dominates () =
  let a = { Instance.latency = 1.0; failure = 0.5 } in
  let b = { Instance.latency = 2.0; failure = 0.5 } in
  let c = { Instance.latency = 2.0; failure = 0.4 } in
  Alcotest.(check bool) "a dominates b" true (Instance.dominates a b);
  Alcotest.(check bool) "b not dominates a" false (Instance.dominates b a);
  Alcotest.(check bool) "b,c incomparable" false (Instance.dominates b c);
  Alcotest.(check bool) "a,a incomparable" false (Instance.dominates a a)

(* ------------------------------------------------------------------ *)
(* Scenarios (paper Section 3 numbers)                                 *)
(* ------------------------------------------------------------------ *)

let fig34_numbers () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let lat m = Latency.of_mapping inst.Instance.pipeline inst.Instance.platform m in
  Helpers.check_close "single on P0 = 105" 105.0
    (lat (Relpipe_workload.Scenarios.fig34_single 0));
  Helpers.check_close "single on P1 = 105" 105.0
    (lat (Relpipe_workload.Scenarios.fig34_single 1));
  Helpers.check_close "split = 7" 7.0 (lat (Relpipe_workload.Scenarios.fig34_split ()))

let fig5_numbers () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let e1 = Instance.evaluate inst (Relpipe_workload.Scenarios.fig5_single_two_fast ()) in
  Helpers.check_close "single FP = 0.64" 0.64 e1.Instance.failure;
  Helpers.check_leq "single latency <= 22" e1.Instance.latency 22.0;
  let e2 = Instance.evaluate inst (Relpipe_workload.Scenarios.fig5_split ()) in
  Helpers.check_close "split latency = 22" 22.0 e2.Instance.latency;
  Helpers.check_close "split FP = 1 - 0.9(1-0.8^10)"
    (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0))))
    e2.Instance.failure;
  Helpers.check_leq "split FP < 0.2" e2.Instance.failure 0.2

(* ------------------------------------------------------------------ *)
(* Textio                                                              *)
(* ------------------------------------------------------------------ *)

let textio_parse () =
  let text =
    "# demo instance\n\
     input 10\n\
     stage 1 1\n\
     stage 100 0\n\
     proc 1 0.1\n\
     proc 100 0.8\n\
     link default 1\n"
  in
  match Textio.parse text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok inst ->
      Alcotest.(check int) "stages" 2 (Pipeline.length inst.Instance.pipeline);
      Alcotest.(check int) "procs" 2 (Platform.size inst.Instance.platform);
      Helpers.check_close "fp" 0.8 (Platform.failure inst.Instance.platform 1)

let textio_roundtrip =
  Helpers.seed_property "to_string/parse round-trips" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      match Textio.parse (Textio.to_string inst) with
      | Error _ -> false
      | Ok inst' ->
          Pipeline.equal inst.Instance.pipeline inst'.Instance.pipeline
          && Platform.size inst.Instance.platform
             = Platform.size inst'.Instance.platform
          && List.for_all
               (fun u ->
                 F.approx_eq
                   (Platform.speed inst.Instance.platform u)
                   (Platform.speed inst'.Instance.platform u)
                 && F.approx_eq
                      (Platform.bandwidth inst.Instance.platform Platform.Pin
                         (Platform.Proc u))
                      (Platform.bandwidth inst'.Instance.platform Platform.Pin
                         (Platform.Proc u)))
               (Platform.procs inst.Instance.platform))

let textio_errors () =
  let bad text =
    match Textio.parse text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing input" true (bad "stage 1 1\nproc 1 0.1\nlink default 1\n");
  Alcotest.(check bool) "no stages" true (bad "input 1\nproc 1 0.1\nlink default 1\n");
  Alcotest.(check bool) "no procs" true (bad "input 1\nstage 1 1\nlink default 1\n");
  Alcotest.(check bool) "bad number" true
    (bad "input abc\nstage 1 1\nproc 1 0.1\nlink default 1\n");
  Alcotest.(check bool) "unknown directive" true
    (bad "frobnicate 1\ninput 1\nstage 1 1\nproc 1 0.1\nlink default 1\n");
  Alcotest.(check bool) "no default bandwidth" true
    (bad "input 1\nstage 1 1\nproc 1 0.1\n")

let () =
  Alcotest.run "model"
    [
      ( "pipeline",
        [
          test "accessors" pipeline_accessors;
          test "work_sum" pipeline_work_sum;
          pipeline_work_sum_matches_loop;
          test "validation" pipeline_validation;
          test "bounds checked" pipeline_bounds_checked;
        ] );
      ( "platform",
        [
          test "accessors" platform_accessors;
          test "validation" platform_validation;
          test "copies isolated" platform_copies_isolated;
        ] );
      ( "classify",
        [ test "classes" classify_classes; classify_generators_agree ] );
      ( "mapping",
        [
          test "valid mapping" mapping_valid;
          test "rejects invalid" mapping_rejects;
          test "one-to-one" mapping_one_to_one;
          mapping_random_always_valid;
        ] );
      ("assignment", [ test "interval detection" assignment_interval_detection ]);
      ( "latency",
        [
          test "Eq1 by hand" eq1_manual;
          eq1_eq2_agree_on_comm_homog;
          test "Eq1 rejects hetero links" eq1_rejects_hetero_links;
          latency_replication_increases;
          test "assignment latency by hand" assignment_latency_manual;
          assignment_latency_matches_mapping;
        ] );
      ( "failure",
        [
          test "by hand" failure_manual;
          failure_matches_direct;
          test "perfect replica" failure_perfect_replica;
          test "certain failure" failure_certain_failure;
          failure_replication_decreases;
        ] );
      ( "comm-model",
        [
          multiport_below_one_port;
          models_agree_without_replication;
          test "multiport dissolves fig5" multiport_dissolves_fig5;
        ] );
      ( "bounds",
        [
          bounds_hold_for_every_mapping;
          test "failure bound is Thm 1" bounds_failure_is_thm1;
          test "tight on single proc" bounds_tight_on_single_proc;
        ] );
      ( "instance",
        [ test "feasibility" instance_feasibility; test "dominance" instance_dominates ] );
      ( "scenarios",
        [ test "fig 3/4 numbers" fig34_numbers; test "fig 5 numbers" fig5_numbers ] );
      ( "textio",
        [
          test "parse" textio_parse;
          textio_roundtrip;
          test "errors" textio_errors;
        ] );
    ]
