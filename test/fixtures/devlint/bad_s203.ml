let tag () = (Domain.self () :> int)
