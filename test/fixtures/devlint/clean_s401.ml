let hits reg = Metric.counter reg "core.solver.hits"
