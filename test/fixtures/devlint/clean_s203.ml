let pause () = Domain.cpu_relax ()
