let sorted xs = List.sort Int.compare xs
