let total pool jobs =
  let sum = ref 0 in
  let _ = Pool.map pool (fun j -> sum := !sum + j) jobs in
  !sum
