let hits reg = Metric.counter reg "Solved-Requests"
