let stamp () = Sys.time ()
