let keys t =
  List.sort String.compare
    (* devlint: allow RP-S204 — the fold's order is erased by the sort *)
    (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
