let key inst = Hashtbl.hash inst
