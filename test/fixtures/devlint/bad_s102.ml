let is_free x = x = 0.0
