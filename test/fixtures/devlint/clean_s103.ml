let key inst = Canon.digest inst
