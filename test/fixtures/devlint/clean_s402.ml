let named reg suffix = Metric.counter reg ("core.cache." ^ suffix)
