let sorted xs = List.sort compare xs
