let jitter rng = Rng.float rng 1.0
