let total pool jobs =
  let sum = Atomic.make 0 in
  let _ = Pool.map pool (fun j -> Atomic.fetch_and_add sum j) jobs in
  Atomic.get sum

let total_locked pool mu count jobs =
  let _ =
    Pool.map pool
      (fun j -> Mutex.protect mu (fun () -> count := !count + j))
      jobs
  in
  !count

let per_worker pool jobs =
  Pool.map pool
    (fun j ->
      let acc = ref 0 in
      acc := j;
      !acc)
    jobs
