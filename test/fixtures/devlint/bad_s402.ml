let named reg name = Metric.counter reg name
