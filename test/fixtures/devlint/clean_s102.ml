let is_free x = Float.equal x 0.0
