let jitter () = Random.float 1.0
