let stamp clock = Clock.now_ns clock
