let dump t = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) t
