(* End-to-end tests for the bench harness (bench/main.exe): the
   virtual-clock kernel report must be byte-identical across runs, carry
   the v2 twin schema, pass a regression check against itself, and fail
   one against a doctored twice-as-fast baseline. *)

module Json = Relpipe_service.Json

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let exe = Filename.concat ".." (Filename.concat "bench" "main.exe")

let run_bench args =
  let out = Filename.temp_file "relpipe-bench" ".out" in
  let err = Filename.temp_file "relpipe-bench" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let slurp path = In_channel.with_open_bin path In_channel.input_all

let report_in tmp =
  let code, _out, err =
    run_bench [ "--kernels-only"; "--virtual-clock"; "--json"; tmp ]
  in
  check_int "bench exits 0" 0 code;
  check_str "bench stderr empty" "" err;
  let s = slurp tmp in
  Sys.remove tmp;
  s

let test_deterministic () =
  let a = report_in (Filename.temp_file "relpipe-bench" ".json") in
  let b = report_in (Filename.temp_file "relpipe-bench" ".json") in
  check_str "virtual-clock reports byte-identical" a b

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "bench JSON does not parse: %s" e

let get name v =
  match v with Some x -> x | None -> Alcotest.failf "missing field %s" name

let test_schema () =
  let j = parse_exn (report_in (Filename.temp_file "relpipe-bench" ".json")) in
  let field name = get name (Json.member name j) in
  check_int "version" 2 (get "version" (Json.to_int (field "version")));
  Alcotest.(check bool)
    "virtual_clock" true
    (get "virtual_clock" (Json.to_bool (field "virtual_clock")));
  check_str "date pinned" "1970-01-01T00:00:00Z"
    (get "date" (Json.to_str (field "date")));
  (match field "batch_throughput" with
  | Json.Null -> ()
  | _ -> Alcotest.fail "batch_throughput not null under virtual clock");
  check_int "no bechamel rows under virtual clock" 0
    (List.length (get "benchmarks" (Json.to_list (field "benchmarks"))));
  let twins = get "twins" (Json.to_list (field "twins")) in
  check_int "three kernel twins" 3 (List.length twins);
  let kernels =
    List.map (fun t -> get "kernel" (Json.to_str (get "kernel" (Json.member "kernel" t)))) twins
  in
  check_str "twin order" "interval-dp,general-dp,bb" (String.concat "," kernels);
  List.iter
    (fun t ->
      List.iter
        (fun f ->
          match Json.member f t with
          | Some v ->
              ignore (get f (Json.to_float v));
              (* Under the virtual clock every sample costs exactly one
                 tick, so point estimates and CI endpoints coincide. *)
              ()
          | None -> Alcotest.failf "twin missing field %s" f)
        [ "ns_opt"; "ci_opt_lo"; "ci_opt_hi"; "ns_ref"; "ci_ref_lo";
          "ci_ref_hi"; "speedup"; "speedup_lo" ])
    twins

let test_against_self_passes () =
  let tmp = Filename.temp_file "relpipe-bench" ".json" in
  let code, _out, err =
    run_bench [ "--kernels-only"; "--virtual-clock"; "--json"; tmp ]
  in
  check_int "baseline run exits 0" 0 code;
  check_str "baseline stderr empty" "" err;
  let code, out, _err =
    run_bench [ "--kernels-only"; "--virtual-clock"; "--against"; tmp ]
  in
  Sys.remove tmp;
  check_int "self-comparison exits 0" 0 code;
  Alcotest.(check bool)
    "reports OK" true
    (let ok = "against: OK" in
     let rec mem i =
       i + String.length ok <= String.length out
       && (String.sub out i (String.length ok) = ok || mem (i + 1))
     in
     mem 0)

let test_against_regression_fails () =
  (* Doctor the baseline so every kernel claims to have been 2x faster:
     the current run then looks like a 2x regression and must fail the
     10% gate. *)
  let tmp = Filename.temp_file "relpipe-bench" ".json" in
  let code, _out, _err =
    run_bench [ "--kernels-only"; "--virtual-clock"; "--json"; tmp ]
  in
  check_int "baseline run exits 0" 0 code;
  let j = parse_exn (slurp tmp) in
  let doctored =
    match j with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k <> "twins" then (k, v)
               else
                 match Json.to_list v with
                 | None -> (k, v)
                 | Some twins ->
                     ( k,
                       Json.List
                         (List.map
                            (function
                              | Json.Obj tf ->
                                  Json.Obj
                                    (List.map
                                       (fun (tk, tv) ->
                                         if tk = "ns_opt" then
                                           match Json.to_float tv with
                                           | Some ns ->
                                               (tk, Json.float (ns /. 2.0))
                                           | None -> (tk, tv)
                                         else (tk, tv))
                                       tf)
                              | t -> t)
                            twins) ))
             fields)
    | _ -> Alcotest.fail "bench JSON is not an object"
  in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string doctored));
  let code, _out, err =
    run_bench [ "--kernels-only"; "--virtual-clock"; "--against"; tmp ]
  in
  Sys.remove tmp;
  check_int "regression exits 1" 1 code;
  Alcotest.(check bool)
    "names a failing kernel on stderr" true
    (let needle = "against: FAIL" in
     let rec mem i =
       i + String.length needle <= String.length err
       && (String.sub err i (String.length needle) = needle || mem (i + 1))
     in
     mem 0)

let test_throughput_host_fields () =
  (* PR9's report read "0.14x speedup with 4 workers" without recording
     that the host had a single cpu.  The throughput row must now carry
     the host cpu count and an explicit oversubscription flag so the
     number can be interpreted. *)
  let tmp = Filename.temp_file "relpipe-bench" ".json" in
  let code, _out, _err =
    run_bench [ "--throughput-only"; "--throughput-requests"; "8";
                "--json"; tmp ]
  in
  check_int "throughput-only exits 0" 0 code;
  let j = parse_exn (slurp tmp) in
  Sys.remove tmp;
  let field name = get name (Json.member name j) in
  let row = field "batch_throughput" in
  let rf name = get name (Json.member name row) in
  check_int "requests honours --throughput-requests" 8
    (get "requests" (Json.to_int (rf "requests")));
  let workers = get "workers" (Json.to_int (rf "workers")) in
  let cpus = get "cpus" (Json.to_int (rf "cpus")) in
  let top_cpus = get "cpus" (Json.to_int (field "cpus")) in
  check_int "row cpus matches host cpus" top_cpus cpus;
  Alcotest.(check bool)
    "oversubscribed = workers > cpus" (workers > cpus)
    (get "oversubscribed" (Json.to_bool (rf "oversubscribed")))

let () =
  Alcotest.run "bench"
    [
      ( "virtual-clock",
        [
          Alcotest.test_case "report is deterministic" `Quick test_deterministic;
          Alcotest.test_case "report carries the v2 twin schema" `Quick
            test_schema;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "row records host cpus and oversubscription"
            `Quick test_throughput_host_fields;
        ] );
      ( "against",
        [
          Alcotest.test_case "passes against itself" `Quick
            test_against_self_passes;
          Alcotest.test_case "fails against a doctored 2x-faster baseline"
            `Quick test_against_regression_fails;
        ] );
    ]
