(* Shared test utilities: seed-driven random instances and mappings, and
   tolerant float assertions.  Properties are expressed as functions of an
   integer seed so QCheck shrinking stays meaningful. *)

open Relpipe_model
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

(* Golden-snapshot assertions (committed under test/snapshots/). *)
module Snapshot = Snapshot

let check_close ?(eps = 1e-9) name expected actual =
  if not (F.approx_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let check_leq ?(eps = 1e-9) name a b =
  if not (F.leq ~eps a b) then
    Alcotest.failf "%s: expected %.17g <= %.17g" name a b

let rng_of_seed seed = Rng.create seed

(* ------------------------------------------------------------------ *)
(* Random problem instances                                            *)
(* ------------------------------------------------------------------ *)

let random_pipeline rng ~n =
  Relpipe_workload.App_gen.random rng
    { Relpipe_workload.App_gen.n; work = (1.0, 20.0); data = (0.5, 10.0) }

let random_fully_homog rng ~n ~m =
  let platform =
    Relpipe_workload.Plat_gen.fully_homogeneous ~m
      ~speed:(Rng.float_range rng 1.0 10.0)
      ~failure:(Rng.float_range rng 0.05 0.6)
      ~bandwidth:(Rng.float_range rng 1.0 10.0)
  in
  Instance.make (random_pipeline rng ~n) platform

let random_comm_homog rng ~n ~m =
  let platform =
    Relpipe_workload.Plat_gen.random_comm_homogeneous rng ~m ~speed:(1.0, 10.0)
      ~failure:(0.05, 0.6)
      ~bandwidth:(Rng.float_range rng 1.0 10.0)
  in
  Instance.make (random_pipeline rng ~n) platform

let random_comm_homog_fail_homog rng ~n ~m =
  let fp = Rng.float_range rng 0.05 0.6 in
  let platform =
    Relpipe_workload.Plat_gen.random_comm_homogeneous rng ~m ~speed:(1.0, 10.0)
      ~failure:(fp, fp)
      ~bandwidth:(Rng.float_range rng 1.0 10.0)
  in
  Instance.make (random_pipeline rng ~n) platform

let random_fully_hetero rng ~n ~m =
  let platform =
    Relpipe_workload.Plat_gen.random_fully_heterogeneous rng ~m
      ~speed:(1.0, 10.0) ~failure:(0.05, 0.6) ~bandwidth:(0.5, 10.0)
  in
  Instance.make (random_pipeline rng ~n) platform

(* ------------------------------------------------------------------ *)
(* Random mappings                                                     *)
(* ------------------------------------------------------------------ *)

let random_composition rng n =
  (* Random cut set over positions 1..n-1. *)
  let rec build first k acc =
    if k > n then List.rev acc
    else if k = n || Rng.bool rng then build (k + 1) (k + 1) ((first, k) :: acc)
    else build first (k + 1) acc
  in
  build 1 1 []

let random_mapping rng ~n ~m =
  (* Random interval partition with at most m parts, then a random disjoint
     assignment of processors (each interval gets at least one). *)
  let rec pick_intervals () =
    let ivs = random_composition rng n in
    if List.length ivs <= m then ivs else pick_intervals ()
  in
  let intervals = pick_intervals () in
  let p = List.length intervals in
  let perm = Array.to_list (Rng.permutation rng m) in
  (* Give one processor to each interval, then scatter a random subset of
     the remainder. *)
  let seeds, rest =
    let rec split k = function
      | xs when k = 0 -> ([], xs)
      | [] -> ([], [])
      | x :: tl ->
          let a, b = split (k - 1) tl in
          (x :: a, b)
    in
    split p perm
  in
  let sets = Array.of_list (List.map (fun u -> [ u ]) seeds) in
  List.iter
    (fun u -> if Rng.bool rng then begin
        let j = Rng.int rng p in
        sets.(j) <- u :: sets.(j)
      end)
    rest;
  Mapping.make ~n ~m
    (List.mapi
       (fun j (first, last) -> { Mapping.first; last; procs = sets.(j) })
       intervals)

(* ------------------------------------------------------------------ *)
(* QCheck plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let seed_property ?(count = 100) name prop =
  (* A property over a deterministic seed: reproducible and shrinkable. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count QCheck.small_nat (fun seed -> prop seed))

let test name f = Alcotest.test_case name `Quick f
