(* Golden-snapshot assertions.

   A snapshot test renders some byte-deterministic artifact (a trace, a
   metrics file, a CLI report) and compares it byte-for-byte against a
   committed file under test/snapshots/.  On mismatch the first
   differing line is reported; setting RELPIPE_SNAPSHOT_UPDATE=1
   re-records the snapshot into the source tree instead of failing, so
   intentional changes are a one-command refresh away. *)

let update_requested () =
  match Sys.getenv_opt "RELPIPE_SNAPSHOT_UPDATE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* Tests execute in _build/default/test; dune copies committed snapshots
   next to the test binaries, but updates must land in the source tree
   to be committable. *)
let build_dir = "snapshots"
let source_dir = "../../../test/snapshots"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let first_diff expected actual =
  let e = String.split_on_char '\n' expected in
  let a = String.split_on_char '\n' actual in
  let rec go i pair =
    match pair with
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<end of output>")
    | [], y :: _ -> Some (i, "<end of snapshot>", y)
    | x :: xs, y :: ys ->
        if String.equal x y then go (i + 1) (xs, ys) else Some (i, x, y)
  in
  go 1 (e, a)

let record name content =
  (* Prefer the source tree (tests run under _build); fall back to the
     local directory only when run from somewhere else entirely. *)
  let dir =
    if Sys.file_exists (Filename.dirname source_dir) then source_dir
    else build_dir
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
      Out_channel.output_string oc content);
  Printf.printf "snapshot %s recorded (%d bytes)\n%!" name
    (String.length content)

let check name content =
  if update_requested () then record name content
  else
    let path = Filename.concat build_dir name in
    if not (Sys.file_exists path) then
      Alcotest.failf
        "snapshot %s is missing; record it with RELPIPE_SNAPSHOT_UPDATE=1 \
         dune runtest"
        name
    else
      let expected = read_file path in
      if not (String.equal expected content) then
        match first_diff expected content with
        | None ->
            (* Same lines, different bytes: trailing-newline mismatch. *)
            Alcotest.failf
              "snapshot %s differs only in trailing bytes (%d vs %d); \
               re-record with RELPIPE_SNAPSHOT_UPDATE=1 if intended"
              name
              (String.length expected)
              (String.length content)
        | Some (line, want, got) ->
            Alcotest.failf
              "snapshot %s differs at line %d:\n\
              \  snapshot: %s\n\
              \  output:   %s\n\
               re-record with RELPIPE_SNAPSHOT_UPDATE=1 dune runtest if \
               this change is intended"
              name line want got
