(* Property battery for the streaming aggregators (Relpipe_obs.Stream)
   and the atlas end-to-end snapshot.

   The sketch properties check the two documented guarantees against
   exact offline computations on adversarial streams (sorted, reversed,
   constant, heavy-duplicate, random): relative value error within
   [x*, gamma x*] and rank bracketing.  The merge laws are structural:
   bucket lists must be *equal*, not approximately equal, however the
   stream is chunked, ordered or merged.  Bloom: no false negatives,
   ever; measured false-positive rate within its configured bound.  The
   atlas CLI report is pinned byte-identical at workers 1, 2 and 8. *)

module Rng = Relpipe_util.Rng
module Stream = Relpipe_obs.Stream
module Quantile = Stream.Quantile
module Ewma = Stream.Ewma
module Bloom = Stream.Bloom

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Quantile: accuracy against exact offline quantiles                  *)
(* ------------------------------------------------------------------ *)

let phis = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ]

let exact_quantile sorted phi =
  let n = Array.length sorted in
  let k = int_of_float (Float.ceil (phi *. float_of_int n)) in
  let k = if k < 1 then 1 else if k > n then n else k in
  sorted.(k - 1)

(* The documented guarantee, with ulp-level slack at bucket edges. *)
let check_estimate name values =
  let q = Quantile.create () in
  Array.iter (Quantile.add q) values;
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let gamma = Quantile.gamma q in
  List.iter
    (fun phi ->
      let exact = exact_quantile sorted phi in
      let est = Quantile.quantile q phi in
      if est < exact *. (1.0 -. 1e-9) || est > exact *. gamma *. (1.0 +. 1e-9)
      then
        Alcotest.failf "%s: quantile(%g) = %.17g outside [%.17g, %.17g]" name
          phi est exact (exact *. gamma);
      (* Rank bracketing: at least ceil(phi n) values <= est, fewer than
         ceil(phi n) strictly below the bucket's lower edge. *)
      let n = Array.length values in
      let target =
        let k = int_of_float (Float.ceil (phi *. float_of_int n)) in
        if k < 1 then 1 else if k > n then n else k
      in
      let leq =
        Array.fold_left
          (fun acc v -> if v <= est *. (1.0 +. 1e-12) then acc + 1 else acc)
          0 values
      and below_lower =
        Array.fold_left
          (fun acc v ->
            if v < est /. gamma *. (1.0 -. 1e-12) then acc + 1 else acc)
          0 values
      in
      if leq < target then
        Alcotest.failf "%s: only %d of %d values <= quantile(%g) = %.17g" name
          leq target phi est;
      if below_lower >= target then
        Alcotest.failf
          "%s: %d values below the lower edge of quantile(%g)'s bucket" name
          below_lower phi)
    phis

let test_sorted_stream () =
  check_estimate "sorted" (Array.init 500 (fun i -> 0.1 +. float_of_int i))

let test_reversed_stream () =
  check_estimate "reversed"
    (Array.init 500 (fun i -> 0.1 +. float_of_int (499 - i)))

let test_constant_stream () =
  check_estimate "constant" (Array.make 400 42.0);
  let q = Quantile.create () in
  Array.iter (Quantile.add q) (Array.make 400 42.0);
  check_int "constant stream fills one bucket" 1
    (List.length (Quantile.buckets q))

let test_heavy_duplicate_stream () =
  (* 90% of the stream is one hot value, the tail is a wide spread. *)
  let values =
    Array.init 1000 (fun i ->
        if i mod 10 <> 0 then 7.5 else Float.pow 10.0 (float_of_int (i / 100)))
  in
  check_estimate "heavy-duplicate" values

let prop_random_stream seed =
  let rng = Rng.create (seed + 17) in
  let n = 1 + Rng.int rng 400 in
  (* Mix scales across nine orders of magnitude. *)
  let values =
    Array.init n (fun _ ->
        Rng.float_range rng 1e-3 2.0 *. Float.pow 10.0 (float_of_int (Rng.int rng 7)))
  in
  check_estimate "random" values;
  true

(* ------------------------------------------------------------------ *)
(* Quantile: structural merge laws                                     *)
(* ------------------------------------------------------------------ *)

let structurally_equal a b =
  Quantile.count a = Quantile.count b
  && Quantile.low_count a = Quantile.low_count b
  && List.equal
       (fun (i1, c1) (i2, c2) -> Int.equal i1 i2 && Int.equal c1 c2)
       (Quantile.buckets a) (Quantile.buckets b)

let sketch_of values =
  let q = Quantile.create () in
  Array.iter (Quantile.add q) values;
  q

let prop_merge_concat_assoc_comm seed =
  let rng = Rng.create (seed + 31) in
  let part () =
    Array.init (Rng.int rng 120) (fun _ ->
        (* Include non-positive and non-finite values: merge laws must
           hold for the low bucket and the infinity bucket too. *)
        match Rng.int rng 12 with
        | 0 -> 0.0
        | 1 -> -.Rng.float_range rng 0.0 5.0
        | 2 -> Float.infinity
        | _ -> Rng.float_range rng 1e-3 1e6)
  in
  let a = part () and b = part () and c = part () in
  let whole = sketch_of (Array.concat [ a; b; c ]) in
  let sa = sketch_of a and sb = sketch_of b and sc = sketch_of c in
  (* Concatenation: merging per-part sketches equals one sketch fed the
     whole stream. *)
  if not (structurally_equal (Quantile.merge (Quantile.merge sa sb) sc) whole)
  then QCheck.Test.fail_report "merge of parts <> sketch of concatenation";
  (* Associativity and commutativity, structurally. *)
  if
    not
      (structurally_equal
         (Quantile.merge (Quantile.merge sa sb) sc)
         (Quantile.merge sa (Quantile.merge sb sc)))
  then QCheck.Test.fail_report "merge is not associative";
  if not (structurally_equal (Quantile.merge sa sb) (Quantile.merge sb sa))
  then QCheck.Test.fail_report "merge is not commutative";
  (* Merge must not mutate its operands. *)
  if not (structurally_equal sa (sketch_of a)) then
    QCheck.Test.fail_report "merge mutated its left operand";
  true

let test_low_bucket_and_errors () =
  let q = Quantile.create () in
  Quantile.add q (-1.0);
  Quantile.add q 0.0;
  Quantile.add q Float.nan;
  Quantile.add q 5.0;
  check_int "count includes low values" 4 (Quantile.count q);
  check_int "low bucket holds <= 0 and nan" 3 (Quantile.low_count q);
  check_bool "low-bucket quantile reports 0" true
    (Float.equal (Quantile.quantile q 0.5) 0.0);
  check_bool "high quantile sees the positive value" true
    (Quantile.quantile q 1.0 > 4.9);
  check_bool "empty sketch quantile is 0" true
    (Float.equal (Quantile.quantile (Quantile.create ()) 0.5) 0.0);
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "phi out of range raises" true
    (raises (fun () -> Quantile.quantile q 1.5));
  check_bool "nan phi raises" true
    (raises (fun () -> Quantile.quantile q Float.nan));
  check_bool "bad accuracy raises" true
    (raises (fun () -> Quantile.create ~accuracy:1.0 ()));
  check_bool "accuracy-mismatched merge raises" true
    (raises (fun () ->
         Quantile.merge (Quantile.create ~accuracy:0.02 ()) (Quantile.create ())))

let test_infinity_bucket () =
  let q = Quantile.create () in
  Quantile.add q 1.0;
  Quantile.add q Float.infinity;
  check_bool "max quantile is infinite" true
    (Float.equal (Quantile.quantile q 1.0) Float.infinity);
  check_bool "median stays finite" true
    (Float.is_finite (Quantile.quantile q 0.5))

(* ------------------------------------------------------------------ *)
(* Ewma                                                                *)
(* ------------------------------------------------------------------ *)

let prop_ewma_matches_reference_fold seed =
  let rng = Rng.create (seed + 47) in
  let alpha = Rng.float_range rng 0.01 1.0 in
  let xs = Array.init (1 + Rng.int rng 50) (fun _ -> Rng.float_range rng (-5.0) 5.0) in
  let e = Ewma.create ~alpha in
  Array.iter (Ewma.observe e) xs;
  let expected =
    Array.fold_left
      (fun acc x ->
        match acc with
        | None -> Some x
        | Some s -> Some ((alpha *. x) +. ((1.0 -. alpha) *. s)))
      None xs
  in
  (match expected with
  | None -> assert false
  | Some s ->
      if not (Float.equal s (Ewma.value e)) then
        QCheck.Test.fail_reportf "ewma %.17g <> reference fold %.17g"
          (Ewma.value e) s);
  Ewma.count e = Array.length xs

let test_ewma_basics () =
  let e = Ewma.create ~alpha:0.5 in
  check_bool "value before first observation" true
    (Float.equal (Ewma.value e) 0.0);
  Ewma.observe e 10.0;
  check_bool "first observation seeds" true (Float.equal (Ewma.value e) 10.0);
  Ewma.observe e 20.0;
  check_bool "second observation smooths" true
    (Float.equal (Ewma.value e) 15.0);
  let tracker = Ewma.create ~alpha:1.0 in
  Ewma.observe tracker 3.0;
  Ewma.observe tracker 9.0;
  check_bool "alpha 1 tracks the last value" true
    (Float.equal (Ewma.value tracker) 9.0);
  check_bool "bad alpha raises" true
    (match Ewma.create ~alpha:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Bloom                                                               *)
(* ------------------------------------------------------------------ *)

let key_of seed i = Printf.sprintf "key-%d-%d" seed i

let prop_bloom_no_false_negatives seed =
  let rng = Rng.create (seed + 61) in
  let n = 1 + Rng.int rng 300 in
  let b = Bloom.create ~expected:512 () in
  for i = 0 to n - 1 do
    ignore (Bloom.add b (key_of seed i))
  done;
  check_int "added counts with multiplicity" n (Bloom.added b);
  for i = 0 to n - 1 do
    if not (Bloom.mem b (key_of seed i)) then
      QCheck.Test.fail_reportf "added key %d reported absent" i
  done;
  (* A re-add of any inserted key must report the duplicate. *)
  let i = Rng.int rng n in
  if not (Bloom.add b (key_of seed i)) then
    QCheck.Test.fail_reportf "re-adding key %d was not flagged as seen" i;
  true

let test_bloom_fp_rate_within_bound () =
  let fp_rate = 0.02 in
  let n = 1000 in
  let b = Bloom.create ~fp_rate ~expected:n () in
  for i = 0 to n - 1 do
    ignore (Bloom.add b (Printf.sprintf "member-%d" i))
  done;
  let probes = 20_000 in
  let fps = ref 0 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "stranger-%d" i) then incr fps
  done;
  let measured = float_of_int !fps /. float_of_int probes in
  (* The sizing targets fp_rate at exactly [expected] insertions; allow
     2x for the variance of one deterministic draw. *)
  if measured > 2.0 *. fp_rate then
    Alcotest.failf "measured FP rate %.4f exceeds 2 * configured %.3f"
      measured fp_rate;
  check_bool "some bits are set" true (Bloom.set_bits b > 0);
  check_bool "set bits below width" true (Bloom.set_bits b < Bloom.bits b)

let test_bloom_union_laws () =
  let mk keys =
    let b = Bloom.create ~expected:64 () in
    List.iter (fun k -> ignore (Bloom.add b k)) keys;
    b
  in
  let a = mk [ "a1"; "a2"; "a3" ] and b = mk [ "b1"; "b2" ] in
  let u = Bloom.union a b in
  List.iter
    (fun k -> check_bool ("union remembers " ^ k) true (Bloom.mem u k))
    [ "a1"; "a2"; "a3"; "b1"; "b2" ];
  check_int "union adds the added counts" 5 (Bloom.added u);
  check_int "union is commutative (set bits)" (Bloom.set_bits u)
    (Bloom.set_bits (Bloom.union b a));
  let c = mk [ "c1" ] in
  check_int "union is associative (set bits)"
    (Bloom.set_bits (Bloom.union (Bloom.union a b) c))
    (Bloom.set_bits (Bloom.union a (Bloom.union b c)));
  (* Union must not mutate operands. *)
  check_bool "left operand unchanged" false (Bloom.mem a "b1");
  check_bool "geometry mismatch raises" true
    (match Bloom.union a (Bloom.create ~expected:4096 ()) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad expected raises" true
    (match Bloom.create ~expected:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Atlas CLI: golden report, byte-identical across worker counts       *)
(* ------------------------------------------------------------------ *)

let exe = Filename.concat ".." (Filename.concat "bin" "relpipe_cli.exe")

let run_cli args =
  let out = Filename.temp_file "relpipe-atlas" ".out" in
  let err = Filename.temp_file "relpipe-atlas" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let atlas_args workers =
  [
    "atlas"; "-n"; "600"; "--pool"; "16"; "--seed"; "5"; "--chunk"; "128";
    "--virtual-clock"; "-w"; string_of_int workers; "--exact-workers";
  ]

let test_atlas_snapshot_across_workers () =
  let c1, o1, e1 = run_cli (atlas_args 1) in
  check_int "exits 0 (1 worker)" 0 c1;
  check_str "stderr empty" "" e1;
  Helpers.Snapshot.check "atlas-report.snap" o1;
  let c2, o2, _ = run_cli (atlas_args 2) in
  check_int "exits 0 (2 workers)" 0 c2;
  check_str "byte-identical at 2 workers" o1 o2;
  let c8, o8, _ = run_cli (atlas_args 8) in
  check_int "exits 0 (8 workers)" 0 c8;
  check_str "byte-identical at 8 workers" o1 o8

let () =
  Alcotest.run "stream"
    [
      ( "quantile",
        [
          test "sorted stream within guarantee" test_sorted_stream;
          test "reversed stream within guarantee" test_reversed_stream;
          test "constant stream within guarantee" test_constant_stream;
          test "heavy-duplicate stream within guarantee"
            test_heavy_duplicate_stream;
          Helpers.seed_property ~count:150 "random streams within guarantee"
            prop_random_stream;
          Helpers.seed_property ~count:150
            "merge: concatenation, associativity, commutativity"
            prop_merge_concat_assoc_comm;
          test "low bucket and invalid arguments" test_low_bucket_and_errors;
          test "infinity bucket" test_infinity_bucket;
        ] );
      ( "ewma",
        [
          Helpers.seed_property ~count:200 "matches the reference fold"
            prop_ewma_matches_reference_fold;
          test "seeding, smoothing, alpha bounds" test_ewma_basics;
        ] );
      ( "bloom",
        [
          Helpers.seed_property ~count:100 "no false negatives"
            prop_bloom_no_false_negatives;
          test "measured FP rate within bound" test_bloom_fp_rate_within_bound;
          test "union laws and geometry guard" test_bloom_union_laws;
        ] );
      ( "atlas",
        [
          test "report byte-identical at workers 1/2/8"
            test_atlas_snapshot_across_workers;
        ] );
    ]
