(* Smoke tests for the experiment harness: the fast experiments must run
   and contain their expected headline values, so EXPERIMENTS.md cannot
   silently rot.  (The full E1-E24 sweep runs in bench/main.exe.) *)

open Relpipe_experiments
module Table = Relpipe_util.Table

let test = Helpers.test

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let e1_contains_paper_numbers () =
  let rendered = Table.render (Experiments.e1_fig34 ()) in
  Alcotest.(check bool) "105 present" true (contains "105" rendered);
  Alcotest.(check bool) "7 present" true (contains "7" rendered)

let e2_contains_paper_numbers () =
  let rendered = Table.render (Experiments.e2_fig5 ()) in
  Alcotest.(check bool) "0.64 present" true (contains "0.64" rendered);
  Alcotest.(check bool) "0.196 present" true (contains "0.196" rendered)

let e23_penalties_above_one () =
  let rendered = Table.render (Experiments.e23_comm_model ()) in
  (* Every penalty column value is >= 1; spot-check the known 1.9x rows. *)
  Alcotest.(check bool) "fig5 1.9x penalty" true (contains "1.9" rendered)

let e6_all_agree () =
  let rendered = Table.render (Experiments.e6_general_mapping ()) in
  Alcotest.(check bool) "no disagreement" false (contains "NO" rendered)

let markdown_rendering () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x|y"; "1" ];
  let md = Table.render_markdown t in
  Alcotest.(check bool) "pipe escaped" true (contains "x\\|y" md);
  Alcotest.(check bool) "rule present" true (contains ":--" md)

let all_experiments_are_titled () =
  (* Only checks the (lazy) structure without running the slow tables:
     every title is unique and E-numbered.  Constructing the list runs the
     experiments, so restrict to counting on the cheap ones would still
     run all; instead we validate the title convention on a sample. *)
  List.iter
    (fun (title, prefix) -> Alcotest.(check bool) title true prefix)
    [
      ("e1 table non-empty", Table.render (Experiments.e1_fig34 ()) <> "");
      ("e2 table non-empty", Table.render (Experiments.e2_fig5 ()) <> "");
    ]

(* Golden snapshots pinning solver *answers*.  E16's node counts are
   implementation-dependent and deliberately not snapshotted; the optima
   (and the E10/E11 heuristic-gap tables, which contain only answers and
   exact optima) must stay bit-for-bit stable across solver rewrites. *)

let e16_optima_snapshot () =
  Helpers.Snapshot.check "e16-optima.snap"
    (Table.render (Experiments.e16_optima ()))

let e10_snapshot () =
  Helpers.Snapshot.check "e10-open-case.snap"
    (Table.render (Experiments.e10_open_case ()))

let e11_snapshot () =
  Helpers.Snapshot.check "e11-np-hard-case.snap"
    (Table.render (Experiments.e11_np_hard_case ()))

let () =
  Alcotest.run "experiments"
    [
      ( "smoke",
        [
          test "E1 paper numbers" e1_contains_paper_numbers;
          test "E2 paper numbers" e2_contains_paper_numbers;
          test "E23 penalties" e23_penalties_above_one;
          test "E6 agreement" e6_all_agree;
          test "markdown rendering" markdown_rendering;
          test "tables render" all_experiments_are_titled;
        ] );
      ( "pinned-answers",
        [
          test "E16 optima snapshot" e16_optima_snapshot;
          test "E10 answers snapshot" e10_snapshot;
          test "E11 answers snapshot" e11_snapshot;
        ] );
    ]
