(* The certificate subsystem (PR 9): hand-built certificates with
   hand-computed bounds accepted by the independent checker, emitted
   certificates round-tripping through the text format, line-order
   invariance, and a stable set of mutations every one of which the
   checker must reject. *)

open Relpipe_model
module Cert = Relpipe_cert.Cert
module Check = Relpipe_cert.Check
module Certify = Relpipe_core.Certify
module Interval_exact = Relpipe_core.Interval_exact
module Rng = Relpipe_util.Rng

let test = Helpers.test
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let bump x =
  if x >= 0.0 then Int64.float_of_bits (Int64.add (Int64.bits_of_float x) 1L)
  else Int64.float_of_bits (Int64.sub (Int64.bits_of_float x) 1L)

let accepts what instance cert =
  match Check.check instance cert with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s rejected: %s" what e

let rejects what instance cert =
  match Check.check instance cert with
  | Ok _ -> Alcotest.failf "%s accepted but must be rejected" what
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* The hand instance: 3 stages, 2 processors, power-of-two costs so
   every latency below is an exact float computed by hand.

     input delta_0 = 2, stages (work, output): (4,2) (8,4) (4,2)
     speeds (1, 2), every link bandwidth 2

   Work prefixes: 0, 4, 12, 16.  Input sends cost 2/2 = 1 per target;
   the final output costs 2/2 = 1 from either processor. *)
(* ------------------------------------------------------------------ *)

let hand_instance ~failures =
  Instance.make
    (Pipeline.of_costs ~input:2.0 [ (4.0, 2.0); (8.0, 4.0); (4.0, 2.0) ])
    (Platform.uniform_links ~speeds:[| 1.0; 2.0 |] ~failures ~bandwidth:2.0)

(* Every finite DP cell, by hand.  Masks: {0} = 1, {1} = 2, {0,1} = 3.

   Singletons are input + prefix-work / speed:
     (e,0,{0}): 1 + 4 = 5;  1 + 12 = 13;  1 + 16 = 17
     (e,1,{1}): 1 + 2 = 3;  1 +  6 =  7;  1 +  8 =  9
   Two-processor cells take the cheapest relaxation (communication is
   delta_e / 2):
     (2,0,3) = 3 + 1 + 8           = 12
     (3,0,3) = min(3 + 1 + 12, 7 + 2 + 4)   = 13
     (2,1,3) = 5 + 1 + 8/2         = 10
     (3,1,3) = min(5 + 1 + 12/2, 13 + 2 + 4/2) = 12
   Closing costs +1 everywhere, so the optimum is (3,1,{1}) + 1 = 10 on
   the single interval 1-3:1. *)
let hand_dp_cells =
  [
    (1, 0, 1, 5.0);
    (2, 0, 1, 13.0);
    (3, 0, 1, 17.0);
    (1, 1, 2, 3.0);
    (2, 1, 2, 7.0);
    (3, 1, 2, 9.0);
    (2, 0, 3, 12.0);
    (3, 0, 3, 13.0);
    (2, 1, 3, 10.0);
    (3, 1, 3, 12.0);
  ]

let hand_dp_cert =
  {
    Cert.n = 3;
    m = 2;
    instance_digest = None;
    body =
      Cert.Dp
        {
          latency = 10.0;
          mapping = [ { Mapping.first = 1; last = 3; procs = [ 1 ] } ];
          cells =
            List.map
              (fun (e, u, mask, value) -> { Cert.e; u; mask; value })
              hand_dp_cells;
        };
  }

let dp_hand_built () =
  let instance = hand_instance ~failures:[| 0.125; 0.25 |] in
  accepts "hand-built DP certificate" instance hand_dp_cert;
  (* The hand-computed optimum is also what the solver finds. *)
  match Interval_exact.min_latency instance with
  | None -> Alcotest.fail "DP found no mapping"
  | Some (latency, _) ->
      Alcotest.(check bool) "hand optimum = solver optimum" true
        (bits_eq latency 10.0)

(* A complete hand-built branch-and-bound transcript needs exactly
   representable failure probabilities, so use fp = 0: the search's
   log-space accumulation then yields -0.0 everywhere, which the text
   format round-trips.  One stage, two processors:

     root is expanded (lower bound 4/2 = 2);
     1-1:0    evaluates to 1 + (4 + 1) = 6, becomes the incumbent;
     1-1:1    evaluates to 1 + (2 + 1) = 4, replaces it;
     1-1:0,1  has bound (1+1) + 4/1 = 6 >= 4: dominated. *)
let hand_bb_instance =
  Instance.make
    (Pipeline.of_costs ~input:2.0 [ (4.0, 2.0) ])
    (Platform.uniform_links ~speeds:[| 1.0; 2.0 |] ~failures:[| 0.0; 0.0 |]
       ~bandwidth:2.0)

let hand_bb_objective = Instance.Min_latency { max_failure = 0.5 }

let hand_bb_cert =
  let iv procs = { Mapping.first = 1; last = 1; procs } in
  let node path status = { Cert.path; status } in
  {
    Cert.n = 1;
    m = 2;
    instance_digest = None;
    body =
      Cert.Bb
        {
          objective = hand_bb_objective;
          claim =
            Cert.Feasible
              { latency = 4.0; failure = -0.0; mapping = [ iv [ 1 ] ] };
          nodes =
            [
              node [] Cert.Expanded;
              node [ iv [ 0 ] ]
                (Cert.Evaluated { latency = 6.0; failure = -0.0 });
              node [ iv [ 1 ] ]
                (Cert.Evaluated { latency = 4.0; failure = -0.0 });
              node
                [ iv [ 0; 1 ] ]
                (Cert.Pruned
                   {
                     reason = Cert.Dominated;
                     latency_lb = 6.0;
                     partial_failure = -0.0;
                   });
            ];
        };
  }

let bb_hand_built () =
  accepts "hand-built B&B certificate" hand_bb_instance hand_bb_cert;
  (* The emitter produces the same transcript for the same search. *)
  let _, emitted = Certify.bb hand_bb_instance hand_bb_objective in
  Alcotest.(check bool) "emitted transcript = hand transcript" true
    (Cert.equal { emitted with Cert.instance_digest = None } hand_bb_cert)

let bb_emitted_hand_claim () =
  (* On the 3-stage hand instance the latency optimum is the DP's 10.0
     (replication only adds communication), reached on interval 1-3:1. *)
  let instance = hand_instance ~failures:[| 0.125; 0.25 |] in
  let best, cert = Certify.bb instance (Instance.Min_latency { max_failure = 0.9 }) in
  accepts "emitted B&B certificate" instance cert;
  match best with
  | None -> Alcotest.fail "B&B found no mapping"
  | Some s ->
      Alcotest.(check bool) "claimed latency = hand-computed 10" true
        (bits_eq s.Relpipe_core.Solution.evaluation.Instance.latency 10.0)

(* ------------------------------------------------------------------ *)
(* Round trips and line-order invariance                               *)
(* ------------------------------------------------------------------ *)

let emit_pair seed =
  let rng = Rng.create seed in
  let n = 1 + (seed mod 3) and m = 2 + (seed mod 2) in
  let instance = Helpers.random_fully_hetero rng ~n ~m in
  let objective =
    if seed mod 2 = 0 then
      Instance.Min_latency { max_failure = Rng.float_range rng 0.2 0.9 }
    else
      Instance.Min_failure
        { max_latency = Rng.float_range rng 10.0 100.0 }
  in
  let _, bb_cert = Certify.bb instance objective in
  let _, dp_cert = Certify.interval instance in
  (instance, bb_cert, Option.get dp_cert)

let roundtrip =
  Helpers.seed_property ~count:25 "to_string/of_string round trip" (fun seed ->
      let _, bb_cert, dp_cert = emit_pair seed in
      List.for_all
        (fun cert ->
          match Cert.of_string (Cert.to_string cert) with
          | Ok cert' -> Cert.equal cert cert'
          | Error _ -> false)
        [ bb_cert; dp_cert ])

let shuffle_below_magic rng text =
  match String.split_on_char '\n' (String.trim text) with
  | magic :: rest ->
      let arr = Array.of_list rest in
      Rng.shuffle rng arr;
      String.concat "\n" (magic :: Array.to_list arr)
  | [] -> text

let reorder_invariance =
  Helpers.seed_property ~count:25 "line order below the magic is free"
    (fun seed ->
      let instance, bb_cert, dp_cert = emit_pair seed in
      let rng = Rng.create (seed + 1) in
      List.for_all
        (fun cert ->
          let shuffled = shuffle_below_magic rng (Cert.to_string cert) in
          match Cert.of_string shuffled with
          | Error _ -> false
          | Ok cert' ->
              Cert.equal cert cert'
              && Result.is_ok (Check.check instance cert'))
        [ bb_cert; dp_cert ])

(* ------------------------------------------------------------------ *)
(* The mutation battery: a stable set of defects, every one rejected    *)
(* ------------------------------------------------------------------ *)

let mutation_indices = [ 0; 1; 2; 3; 5; 8 ]

let mutate_claim cert =
  match cert.Cert.body with
  | Cert.Bb ({ claim = Cert.Feasible f; _ } as bb) ->
      Some
        {
          cert with
          Cert.body =
            Cert.Bb
              { bb with claim = Cert.Feasible { f with latency = bump f.latency } };
        }
  | Cert.Bb { claim = Cert.Infeasible; _ } -> None
  | Cert.Dp dp ->
      Some
        { cert with Cert.body = Cert.Dp { dp with latency = bump dp.latency } }

let mutation_battery () =
  let instance = hand_instance ~failures:[| 0.125; 0.25 |] in
  let _, bb_cert = Certify.bb instance (Instance.Min_latency { max_failure = 0.9 }) in
  let _, dp_cert = Certify.interval instance in
  let dp_cert = Option.get dp_cert in
  List.iter
    (fun (what, cert) ->
      accepts (what ^ " (unmutated)") instance cert;
      List.iter
        (fun index ->
          (match Cert.mutate_raise_bound ~index cert with
          | None -> Alcotest.failf "%s: nothing to raise" what
          | Some mutant ->
              rejects (Printf.sprintf "%s with bound %d raised" what index)
                instance mutant);
          match Cert.mutate_drop_line ~index cert with
          | None -> Alcotest.failf "%s: nothing to drop" what
          | Some mutant ->
              rejects (Printf.sprintf "%s with line %d dropped" what index)
                instance mutant)
        mutation_indices;
      match mutate_claim cert with
      | None -> Alcotest.failf "%s: no claim to perturb" what
      | Some mutant -> rejects (what ^ " with a perturbed claim") instance mutant)
    [ ("bb cert", bb_cert); ("dp cert", dp_cert) ]

let digest_binding () =
  let instance = hand_instance ~failures:[| 0.125; 0.25 |] in
  let other = hand_instance ~failures:[| 0.5; 0.5 |] in
  let _, cert = Certify.bb instance (Instance.Min_latency { max_failure = 0.9 }) in
  accepts "digest-stamped certificate" instance cert;
  rejects "certificate replayed against the wrong instance" other cert

let parser_rejects () =
  let reject_text what text =
    match Cert.of_string text with
    | Ok _ -> Alcotest.failf "parser accepted %s" what
    | Error _ -> ()
  in
  reject_text "a bad magic line" "relpipe-cert v0\nkind bb\n";
  reject_text "a duplicate directive"
    (Cert.to_string hand_dp_cert ^ "\nn 3\n");
  reject_text "an unknown directive"
    (Cert.to_string hand_dp_cert ^ "\nwibble 1\n");
  reject_text "cells in a bb certificate"
    (Cert.to_string hand_bb_cert ^ "\ncell 1 0 1 0x1p0\n")

let () =
  Alcotest.run "cert"
    [
      ( "hand",
        [
          test "hand-built DP certificate accepted" dp_hand_built;
          test "hand-built B&B certificate accepted" bb_hand_built;
          test "emitted B&B claim matches hand-computed bound"
            bb_emitted_hand_claim;
        ] );
      ("format", [ roundtrip; reorder_invariance; test "parser rejects" parser_rejects ]);
      ( "mutations",
        [
          test "stable mutation battery rejected" mutation_battery;
          test "digest binds certificate to instance" digest_binding;
        ] );
    ]
