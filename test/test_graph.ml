open Relpipe_graph
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

(* ------------------------------------------------------------------ *)
(* Graph basics                                                        *)
(* ------------------------------------------------------------------ *)

let graph_basics () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.5;
  Graph.add_edge g 1 2 2.5;
  Graph.add_edge g 0 2 10.0;
  Alcotest.(check int) "vertices" 3 (Graph.n_vertices g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g);
  Alcotest.(check (list (pair int (float 1e-9)))) "succ order"
    [ (1, 1.5); (2, 10.0) ]
    (Graph.succ g 0)

let graph_validation () =
  let g = Graph.create 2 in
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "vertex range" true (bad (fun () -> Graph.add_edge g 0 5 1.0));
  Alcotest.(check bool) "nan weight" true
    (bad (fun () -> Graph.add_edge g 0 1 Float.nan));
  Alcotest.(check bool) "negative create" true (bad (fun () -> ignore (Graph.create (-1))))

let graph_parallel_edges () =
  (* Parallel edges: shortest path must use the cheaper one. *)
  let g = Graph.of_edges 2 [ (0, 1, 5.0); (0, 1, 2.0) ] in
  match Dijkstra.shortest_path g ~src:0 ~dst:1 with
  | Some (d, _) -> Helpers.check_close "cheaper parallel edge" 2.0 d
  | None -> Alcotest.fail "expected a path"

let graph_transpose () =
  let g = Graph.of_edges 3 [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let t = Graph.transpose g in
  Alcotest.(check (list (pair int (float 1e-9)))) "reversed" [ (0, 1.0) ]
    (Graph.succ t 1);
  Alcotest.(check int) "edge count preserved" 2 (Graph.n_edges t)

(* ------------------------------------------------------------------ *)
(* Shortest paths: hand-checked                                        *)
(* ------------------------------------------------------------------ *)

let diamond () =
  Graph.of_edges 4
    [ (0, 1, 1.0); (0, 2, 4.0); (1, 2, 1.0); (1, 3, 6.0); (2, 3, 1.0) ]

let dijkstra_hand () =
  let g = diamond () in
  match Dijkstra.shortest_path g ~src:0 ~dst:3 with
  | Some (d, path) ->
      Helpers.check_close "distance" 3.0 d;
      Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] path
  | None -> Alcotest.fail "expected a path"

let dijkstra_unreachable () =
  let g = Graph.of_edges 3 [ (0, 1, 1.0) ] in
  Alcotest.(check bool) "unreachable" true
    (Dijkstra.shortest_path g ~src:0 ~dst:2 = None);
  let dist = Dijkstra.distances g ~src:0 in
  Alcotest.(check bool) "inf distance" true (Float.equal dist.(2) Float.infinity)

let dijkstra_rejects_negative () =
  let g = Graph.of_edges 2 [ (0, 1, -1.0) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dijkstra.distances g ~src:0);
       false
     with Invalid_argument _ -> true)

let bellman_ford_negative_edges () =
  let g = Graph.of_edges 4 [ (0, 1, 5.0); (0, 2, 2.0); (2, 1, -1.0); (1, 3, 1.0) ] in
  match Bellman_ford.shortest_path g ~src:0 ~dst:3 with
  | Ok (Some (d, path)) ->
      Helpers.check_close "distance with negative edge" 2.0 d;
      Alcotest.(check (list int)) "path" [ 0; 2; 1; 3 ] path
  | _ -> Alcotest.fail "expected a path"

let bellman_ford_negative_cycle () =
  let g = Graph.of_edges 3 [ (0, 1, 1.0); (1, 2, -3.0); (2, 1, 1.0) ] in
  Alcotest.(check bool) "detected" true
    (Bellman_ford.distances g ~src:0 = Error `Negative_cycle)

let dag_hand () =
  let g = diamond () in
  Alcotest.(check bool) "is dag" true (Dag.is_dag g);
  match Dag.shortest_path g ~src:0 ~dst:3 with
  | Some (d, _) -> Helpers.check_close "dag distance" 3.0 d
  | None -> Alcotest.fail "expected a path"

let dag_detects_cycle () =
  let g = Graph.of_edges 2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.(check bool) "not a dag" false (Dag.is_dag g);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dag.shortest_path g ~src:0 ~dst:1);
       false
     with Invalid_argument _ -> true)

let topological_order_valid () =
  let g = Graph.of_edges 5 [ (0, 1, 1.); (0, 2, 1.); (1, 3, 1.); (2, 3, 1.); (3, 4, 1.) ] in
  match Dag.topological_order g with
  | None -> Alcotest.fail "expected an order"
  | Some order ->
      let pos = Array.make 5 (-1) in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Graph.iter_edges
        (fun u v _ ->
          Alcotest.(check bool) "edge goes forward" true (pos.(u) < pos.(v)))
        g

(* ------------------------------------------------------------------ *)
(* Shortest paths: random cross-checks                                 *)
(* ------------------------------------------------------------------ *)

let random_dag rng ~n ~density =
  (* Edges only go from lower to higher index: acyclic by construction. *)
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < density then
        Graph.add_edge g u v (Rng.float rng 10.0)
    done
  done;
  g

let three_solvers_agree =
  Helpers.seed_property ~count:200 "Dijkstra = Bellman-Ford = DAG sweep"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + (seed mod 12) in
      let g = random_dag rng ~n ~density:0.5 in
      let d1 = Dijkstra.shortest_path g ~src:0 ~dst:(n - 1) in
      let d2 =
        match Bellman_ford.shortest_path g ~src:0 ~dst:(n - 1) with
        | Ok r -> r
        | Error _ -> None
      in
      let d3 = Dag.shortest_path g ~src:0 ~dst:(n - 1) in
      match d1, d2, d3 with
      | None, None, None -> true
      | Some (a, _), Some (b, _), Some (c, _) ->
          F.approx_eq a b && F.approx_eq b c
      | _ -> false)

let dijkstra_distance_is_minimal =
  Helpers.seed_property ~count:100 "Dijkstra beats random walks" (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + (seed mod 8) in
      let g = random_dag rng ~n ~density:0.7 in
      let dist = Dijkstra.distances g ~src:0 in
      (* Triangle inequality on every edge. *)
      let ok = ref true in
      Graph.iter_edges
        (fun u v w ->
          if Float.is_finite dist.(u) && dist.(u) +. w < dist.(v) -. 1e-9 then
            ok := false)
        g;
      !ok)

(* ------------------------------------------------------------------ *)
(* Hamiltonian paths                                                   *)
(* ------------------------------------------------------------------ *)

let random_costs rng n =
  let cost = Array.make_matrix n n 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then cost.(u).(v) <- float_of_int (1 + Rng.int rng 9)
    done
  done;
  cost

let held_karp_hand () =
  (* 3 vertices: paths 0-1-2 (cost 1+1=2) vs 0-2 direct is not Hamiltonian;
     0-2-1 invalid endpoints.  Only 0-1-2. *)
  let cost = [| [| 0.; 1.; 5. |]; [| 1.; 0.; 1. |]; [| 5.; 1.; 0. |] |] in
  match Hamiltonian.held_karp ~cost ~s:0 ~t:2 with
  | Some (c, path) ->
      Helpers.check_close "cost" 2.0 c;
      Alcotest.(check (list int)) "path" [ 0; 1; 2 ] path
  | None -> Alcotest.fail "expected a path"

let held_karp_matches_brute =
  Helpers.seed_property ~count:60 "Held-Karp = brute force" (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + (seed mod 6) in
      let cost = random_costs rng n in
      match
        ( Hamiltonian.held_karp ~cost ~s:0 ~t:(n - 1),
          Hamiltonian.brute_force ~cost ~s:0 ~t:(n - 1) )
      with
      | Some (a, pa), Some (b, pb) ->
          F.approx_eq a b
          && List.sort Int.compare pa = List.init n Fun.id
          && List.sort Int.compare pb = List.init n Fun.id
      | None, None -> true
      | _ -> false)

let held_karp_asymmetric () =
  (* Directed costs: going 0->1 is cheap, 1->0 expensive. *)
  let cost = [| [| 0.; 1.; 9. |]; [| 9.; 0.; 1. |]; [| 1.; 9.; 0. |] |] in
  match Hamiltonian.held_karp ~cost ~s:0 ~t:2 with
  | Some (c, _) -> Helpers.check_close "asymmetric cost" 2.0 c
  | None -> Alcotest.fail "expected a path"

let hamiltonian_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  let cost = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  Alcotest.(check bool) "same endpoints" true
    (bad (fun () -> Hamiltonian.held_karp ~cost ~s:0 ~t:0));
  Alcotest.(check bool) "endpoint range" true
    (bad (fun () -> Hamiltonian.held_karp ~cost ~s:0 ~t:5));
  Alcotest.(check bool) "non-square" true
    (bad (fun () -> Hamiltonian.held_karp ~cost:[| [| 0. |]; [| 0. |] |] ~s:0 ~t:1))

let exists_leq_boundary () =
  let cost = [| [| 0.; 2. |]; [| 2.; 0. |] |] in
  Alcotest.(check bool) "at bound" true (Hamiltonian.exists_leq ~cost ~s:0 ~t:1 ~bound:2.0);
  Alcotest.(check bool) "below bound" false
    (Hamiltonian.exists_leq ~cost ~s:0 ~t:1 ~bound:1.9)

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          test "basics" graph_basics;
          test "validation" graph_validation;
          test "parallel edges" graph_parallel_edges;
          test "transpose" graph_transpose;
        ] );
      ( "dijkstra",
        [
          test "hand-checked" dijkstra_hand;
          test "unreachable" dijkstra_unreachable;
          test "rejects negative" dijkstra_rejects_negative;
          dijkstra_distance_is_minimal;
        ] );
      ( "bellman-ford",
        [
          test "negative edges" bellman_ford_negative_edges;
          test "negative cycle" bellman_ford_negative_cycle;
        ] );
      ( "dag",
        [
          test "hand-checked" dag_hand;
          test "detects cycle" dag_detects_cycle;
          test "topological order valid" topological_order_valid;
        ] );
      ("cross-check", [ three_solvers_agree ]);
      ( "hamiltonian",
        [
          test "hand-checked" held_karp_hand;
          held_karp_matches_brute;
          test "asymmetric" held_karp_asymmetric;
          test "validation" hamiltonian_validation;
          test "exists_leq boundary" exists_leq_boundary;
        ] );
    ]
