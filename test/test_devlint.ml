(* Tests for relpipe.devlint, the AST-grounded source linter: every rule
   must fire exactly once per seeded violation (with the right span),
   clean fixtures must lint clean, suppression comments and the baseline
   must drop exactly the vetted findings, and the three acceptance
   mutations (polymorphic compare, un-clocked Sys.time, unguarded ref
   write in a Pool closure) must each turn the gate red.  The CLI
   surfaces (--list-rules, --format json) are pinned byte-for-byte by
   the golden-snapshot harness. *)

module DL = Relpipe_devlint
module Driver = DL.Driver
module Baseline = DL.Baseline
module Drule = DL.Drule
module Diagnostic = Relpipe_analysis.Diagnostic
module Loc = Relpipe_util.Loc
module Snapshot = Helpers.Snapshot

let test = Helpers.test

let fixture name =
  In_channel.with_open_text
    (Filename.concat (Filename.concat "fixtures" "devlint") name)
    In_channel.input_all

let run_text ?baseline ?families ~path text =
  Driver.run ?baseline ?families [ (path, text) ]

let rules_of report =
  List.map (fun f -> f.Driver.diag.Diagnostic.rule) report.Driver.findings

(* Last occurrence of [needle] in [hay], as a 1-based column. *)
let last_col ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let best = ref (-1) in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then best := i
  done;
  if !best < 0 then Alcotest.failf "marker %S not in %S" needle hay;
  !best + 1

(* ------------------------------------------------------------------ *)
(* Fixture corpus: one violating and one clean file per rule           *)
(* ------------------------------------------------------------------ *)

(* (fixture, rule, 1-based line of the span, marker substring whose last
   occurrence on that line is the span's start column). *)
let bad_cases =
  [
    ("bad_s101.ml", "RP-S101", 1, "compare xs");
    ("bad_s102.ml", "RP-S102", 1, "x = 0.0");
    ("bad_s103.ml", "RP-S103", 1, "Hashtbl.hash");
    ("bad_s201.ml", "RP-S201", 1, "Random.float");
    ("bad_s202.ml", "RP-S202", 1, "Sys.time");
    ("bad_s203.ml", "RP-S203", 1, "Domain.self");
    ("bad_s204.ml", "RP-S204", 1, "Hashtbl.iter");
    ("bad_s301.ml", "RP-S301", 3, "sum := !sum + j");
    ("bad_s401.ml", "RP-S401", 1, "\"Solved-Requests\"");
    ("bad_s402.ml", "RP-S402", 1, "name");
  ]

let check_bad (file, rule, line, marker) () =
  let text = fixture file in
  let report = run_text ~path:file text in
  (match report.Driver.findings with
  | [ f ] -> (
      Alcotest.(check string) (file ^ " rule") rule f.Driver.diag.Diagnostic.rule;
      match f.Driver.diag.Diagnostic.span with
      | None -> Alcotest.failf "%s: finding has no span" file
      | Some s ->
          Alcotest.(check int) (file ^ " span line") line s.Loc.start.Loc.line;
          let src_line =
            List.nth (String.split_on_char '\n' text) (line - 1)
          in
          Alcotest.(check int)
            (file ^ " span col")
            (last_col ~needle:marker src_line)
            s.Loc.start.Loc.col)
  | fs ->
      Alcotest.failf "%s: expected exactly 1 finding, got %d [%s]" file
        (List.length fs)
        (String.concat ", " (rules_of report)))

let check_clean file () =
  let report = run_text ~path:file (fixture file) in
  match report.Driver.findings with
  | [] -> ()
  | _ ->
      Alcotest.failf "%s: expected no findings, got [%s]" file
        (String.concat ", " (rules_of report))

let corpus_tests =
  List.map
    (fun ((file, _, _, _) as case) -> test ("fixture " ^ file) (check_bad case))
    bad_cases
  @ List.map
      (fun (bad, _, _, _) ->
        let clean = "clean_" ^ String.sub bad 4 (String.length bad - 4) in
        test ("fixture " ^ clean) (check_clean clean))
      bad_cases

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_catalog () =
  let rules = Driver.rules () in
  Alcotest.(check int) "12 source rules" 12 (List.length rules);
  let ids = List.map (fun r -> r.Drule.id) rules in
  Alcotest.(check bool)
    "ids sorted and unique" true
    (List.sort_uniq String.compare ids = ids);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Drule.id ^ " id shape") true
        (String.length r.Drule.id = 7 && String.sub r.Drule.id 0 4 = "RP-S");
      Alcotest.(check bool)
        (r.Drule.id ^ " has docs") true
        (r.Drule.title <> "" && r.Drule.rationale <> "" && r.Drule.example <> ""))
    rules

let test_family_filter () =
  (* A wall-clock read is invisible to the compare family. *)
  let text = fixture "bad_s202.ml" in
  let report =
    run_text ~families:[ "compare" ] ~path:"bad_s202.ml" text
  in
  Alcotest.(check int) "filtered out" 0 (List.length report.Driver.findings);
  let report = run_text ~families:[ "determinism" ] ~path:"bad_s202.ml" text in
  Alcotest.(check int) "selected in" 1 (List.length report.Driver.findings)

(* ------------------------------------------------------------------ *)
(* Property: each violation fires exactly once, on its own line        *)
(* ------------------------------------------------------------------ *)

let violation_lines =
  [
    ("RP-S101", "let f xs = List.sort compare xs");
    ("RP-S102", "let g x = x = 1.0");
    ("RP-S202", "let h () = Sys.time ()");
    ("RP-S204", "let d t = Hashtbl.iter ignore t");
  ]

let prop_fires_once_per_violation =
  QCheck.Test.make ~name:"k copies of a violation yield exactly k findings"
    ~count:60
    QCheck.(pair (int_bound (List.length violation_lines - 1)) (int_range 1 8))
    (fun (which, k) ->
      let rule, line = List.nth violation_lines which in
      let text = String.concat "\n" (List.init k (fun _ -> line)) in
      let report = run_text ~path:"prop.ml" text in
      let hits =
        List.filter
          (fun f -> f.Driver.diag.Diagnostic.rule = rule)
          report.Driver.findings
      in
      List.length hits = k
      && List.for_all2
           (fun f i ->
             match f.Driver.diag.Diagnostic.span with
             | Some s -> s.Loc.start.Loc.line = i
             | None -> false)
           hits
           (List.init k (fun i -> i + 1)))

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

let test_suppression_above () =
  let text = "(* devlint: allow RP-S202 -- vetted here *)\nlet t0 = Sys.time ()\n" in
  let report = run_text ~path:"s.ml" text in
  Alcotest.(check int) "no findings" 0 (List.length report.Driver.findings);
  Alcotest.(check int) "counted as suppressed" 1 report.Driver.suppressed

let test_suppression_same_line () =
  let text = "let t0 = Sys.time () (* devlint: allow RP-S202 *)\n" in
  let report = run_text ~path:"s.ml" text in
  Alcotest.(check int) "no findings" 0 (List.length report.Driver.findings);
  Alcotest.(check int) "counted as suppressed" 1 report.Driver.suppressed

let test_suppression_wrong_rule_does_not_mask () =
  let text = "(* devlint: allow RP-S201 *)\nlet t0 = Sys.time ()\n" in
  let report = run_text ~path:"s.ml" text in
  Alcotest.(check (list string)) "finding survives" [ "RP-S202" ]
    (rules_of report);
  Alcotest.(check int) "nothing suppressed" 0 report.Driver.suppressed

let test_suppression_does_not_leak_two_lines_down () =
  let text =
    "(* devlint: allow RP-S202 *)\nlet a = 1\nlet t0 = Sys.time ()\n"
  in
  let report = run_text ~path:"s.ml" text in
  Alcotest.(check (list string)) "finding survives" [ "RP-S202" ]
    (rules_of report)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let baseline_of text =
  match Baseline.parse ~source:"test.baseline" text with
  | Ok b -> b
  | Error e -> Alcotest.failf "baseline parse failed: %s" e

let test_baseline_match () =
  let b = baseline_of "# vetted\nRP-S202 s.ml -- bench needs wall time\n" in
  let report = run_text ~baseline:b ~path:"s.ml" "let t0 = Sys.time ()\n" in
  Alcotest.(check int) "no findings" 0 (List.length report.Driver.findings);
  Alcotest.(check int) "counted as baselined" 1 report.Driver.baselined

let test_baseline_line_pinning () =
  let b = baseline_of "RP-S202 s.ml:1\n" in
  let report = run_text ~baseline:b ~path:"s.ml" "let t0 = Sys.time ()\n" in
  Alcotest.(check int) "line 1 matches" 0 (List.length report.Driver.findings);
  let b = baseline_of "RP-S202 s.ml:5\n" in
  let report = run_text ~baseline:b ~path:"s.ml" "let t0 = Sys.time ()\n" in
  (* The finding survives and the mismatched entry is reported stale. *)
  Alcotest.(check (list string))
    "survives + stale entry" [ "RP-S002"; "RP-S202" ]
    (List.sort String.compare (rules_of report))

let test_baseline_stale_entry () =
  let b = baseline_of "RP-S201 gone.ml -- removed module\n" in
  let report = run_text ~baseline:b ~path:"s.ml" "let x = 1\n" in
  match report.Driver.findings with
  | [ f ] ->
      Alcotest.(check string) "stale rule" "RP-S002" f.Driver.diag.Diagnostic.rule;
      Alcotest.(check string) "on the baseline file" "test.baseline" f.Driver.file
  | fs -> Alcotest.failf "expected 1 stale hint, got %d" (List.length fs)

let test_baseline_rejects_garbage () =
  match Baseline.parse ~source:"bad" "not-a-rule-id\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Acceptance mutations: each must turn the gate red (exit 2)          *)
(* ------------------------------------------------------------------ *)

let mutation_cases =
  [
    ("polymorphic compare", "let order a b = compare a b\n");
    ("un-clocked Sys.time", "let t0 = Sys.time ()\n");
    ( "unguarded ref write in a Pool closure",
      "let go pool jobs =\n\
      \  let hits = ref 0 in\n\
      \  let _ = Pool.map pool (fun j -> hits := !hits + j) jobs in\n\
      \  !hits\n" );
  ]

let test_mutations_turn_gate_red () =
  List.iter
    (fun (label, text) ->
      let report = run_text ~path:"mutant.ml" text in
      Alcotest.(check int) (label ^ " exits 2") 2 (Driver.exit_code report))
    mutation_cases

let test_parse_error_is_an_error () =
  let report = run_text ~path:"broken.ml" "let x = (\n" in
  Alcotest.(check (list string)) "RP-S001" [ "RP-S001" ] (rules_of report);
  Alcotest.(check int) "exits 2" 2 (Driver.exit_code report)

(* ------------------------------------------------------------------ *)
(* Negatives: the sanctioned forms stay silent                         *)
(* ------------------------------------------------------------------ *)

let negative_cases =
  [
    ("Float.equal", "let same a b = Float.equal a b\n");
    ("typed comparator", "let xs l = List.sort Float.compare l\n");
    ( "Atomic in a Pool closure",
      "let go pool jobs =\n\
      \  let hits = Atomic.make 0 in\n\
      \  let _ = Pool.map pool (fun j -> Atomic.incr hits; j) jobs in\n\
      \  Atomic.get hits\n" );
    ( "Mutex.lock/unlock around the write",
      "let go pool mu hits jobs =\n\
      \  Pool.map pool\n\
      \    (fun j ->\n\
      \      Mutex.lock mu;\n\
      \      hits := !hits + j;\n\
      \      Mutex.unlock mu;\n\
      \      j)\n\
      \    jobs\n" );
    ( "module defining its own compare",
      "let compare a b = Int.compare a.rank b.rank\n\
       let sorted xs = List.sort compare xs\n" );
    ("obs name with a vetted literal head",
     "let c reg s = Metric.counter reg (\"engine.cache.\" ^ s)\n");
  ]

let test_negatives_stay_silent () =
  List.iter
    (fun (label, text) ->
      let report = run_text ~path:"neg.ml" text in
      match report.Driver.findings with
      | [] -> ()
      | _ ->
          Alcotest.failf "%s: expected silence, got [%s]" label
            (String.concat ", " (rules_of report)))
    negative_cases

let test_obs_bad_literal_head () =
  let report =
    run_text ~path:"n.ml" "let c reg s = Metric.counter reg (\"bogus.\" ^ s)\n"
  in
  Alcotest.(check (list string)) "bad concat head" [ "RP-S401" ]
    (rules_of report)

(* ------------------------------------------------------------------ *)
(* CLI: byte-pinned --list-rules and JSON report                       *)
(* ------------------------------------------------------------------ *)

let exe = Filename.concat ".." (Filename.concat "bin" "relpipe_cli.exe")

let run_cli args =
  let out = Filename.temp_file "relpipe-test" ".out" in
  let err = Filename.temp_file "relpipe-test" ".err" in
  let cmd =
    Printf.sprintf "%s %s </dev/null >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp path =
    let s = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let test_cli_list_rules_snapshot () =
  let code, out, err = run_cli [ "devlint"; "--list-rules" ] in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check string) "stderr empty" "" err;
  Snapshot.check "devlint-list-rules.snap" out

let test_cli_json_snapshot () =
  let code, out, _ =
    run_cli
      [
        "devlint"; "--no-baseline"; "--format"; "json";
        "fixtures/devlint/bad_s101.ml";
      ]
  in
  Alcotest.(check int) "error finding exits 2" 2 code;
  Snapshot.check "devlint-bad-s101-json.snap" out

let test_cli_clean_fixture_exits_zero () =
  let code, out, err =
    run_cli [ "devlint"; "--no-baseline"; "fixtures/devlint/clean_s101.ml" ]
  in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check string) "stderr empty" "" err;
  Alcotest.(check string) "clean summary"
    "devlint: 1 files clean (0 suppressed, 0 baselined)\n" out

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "devlint"
    [
      ("corpus", corpus_tests);
      ( "engine",
        [
          test "rule catalog" test_catalog;
          test "family filter" test_family_filter;
          QCheck_alcotest.to_alcotest prop_fires_once_per_violation;
        ] );
      ( "suppressions",
        [
          test "comment above the line" test_suppression_above;
          test "comment on the line" test_suppression_same_line;
          test "wrong rule id does not mask" test_suppression_wrong_rule_does_not_mask;
          test "does not leak two lines down"
            test_suppression_does_not_leak_two_lines_down;
        ] );
      ( "baseline",
        [
          test "entry drops the finding" test_baseline_match;
          test "line pinning" test_baseline_line_pinning;
          test "stale entry is reported" test_baseline_stale_entry;
          test "garbage is rejected" test_baseline_rejects_garbage;
        ] );
      ( "gate",
        [
          test "acceptance mutations turn it red" test_mutations_turn_gate_red;
          test "parse error is an error" test_parse_error_is_an_error;
          test "sanctioned forms stay silent" test_negatives_stay_silent;
          test "bad literal head is caught" test_obs_bad_literal_head;
        ] );
      ( "cli",
        [
          test "--list-rules golden snapshot" test_cli_list_rules_snapshot;
          test "json report golden snapshot" test_cli_json_snapshot;
          test "clean fixture exits zero" test_cli_clean_fixture_exits_zero;
        ] );
    ]
