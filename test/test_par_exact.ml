(* Tests for the parallel exact solvers (PR 9): bit-identical answers at
   every worker count, byte-identical metric snapshots, the shared
   incumbent cell under races, and the unified bound-inflation slack. *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp
module Obs = Relpipe_obs.Obs
module Clock = Relpipe_obs.Clock
module Pool = Relpipe_pool.Pool
module Snapshot = Helpers.Snapshot

let test = Helpers.test
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let sol_eq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      Mapping.equal a.Solution.mapping b.Solution.mapping
      && bits_eq a.Solution.evaluation.Instance.latency
           b.Solution.evaluation.Instance.latency
      && bits_eq a.Solution.evaluation.Instance.failure
           b.Solution.evaluation.Instance.failure
  | (None | Some _), _ -> false

let dp_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (l1, m1), Some (l2, m2) -> bits_eq l1 l2 && Mapping.equal m1 m2
  | (None | Some _), _ -> false

let thresholds_for rng inst =
  let n = Pipeline.length inst.Instance.pipeline in
  let m = Platform.size inst.Instance.platform in
  let lo =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m
         [ Mono.fastest_proc inst.Instance.platform ])
  in
  let hi =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
  in
  (Rng.float_range rng lo (hi *. 1.2), Rng.float_range rng 0.01 0.8)

(* ------------------------------------------------------------------ *)
(* Cross-worker determinism                                            *)
(* ------------------------------------------------------------------ *)

let worker_counts = [ 1; 2; 8 ]

let bb_par_identity =
  Helpers.seed_property ~count:25 "parallel B&B == serial at 1/2/8 workers"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, max_failure = thresholds_for rng inst in
      List.for_all
        (fun objective ->
          let serial = Bb.solve inst objective in
          List.for_all
            (fun workers ->
              sol_eq serial (Bb.solve_par ~workers inst objective))
            worker_counts)
        [
          Instance.Min_failure { max_latency };
          Instance.Min_latency { max_failure };
        ])

let bb_par_identity_under_bound =
  Helpers.seed_property ~count:15
    "parallel B&B == serial under a warm ?prune_above" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let _, max_failure = thresholds_for rng inst in
      let objective = Instance.Min_latency { max_failure } in
      match Bb.solve inst objective with
      | None -> true
      | Some s ->
          (* A sound warm bound: the optimum itself, inflated. *)
          let bound =
            Bb.inflate_bound s.Solution.evaluation.Instance.latency
          in
          List.for_all
            (fun workers ->
              sol_eq (Some s)
                (Bb.solve_par ~prune_above:bound ~workers inst objective))
            worker_counts)

let dp_par_identity =
  Helpers.seed_property ~count:25
    "layer-parallel DP == serial at 1/2/8 workers" (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 5) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let serial = Interval_exact.min_latency inst in
      List.for_all
        (fun workers ->
          dp_eq serial (Interval_exact.min_latency_par ~workers inst))
        worker_counts)

(* Seeded stress: oversubscribe a small machine far beyond its cores
   (the [~cap:false] discipline of Pool.effective_workers) and keep the
   answers pinned. *)
let par_oversubscription_stress () =
  let workers = Pool.effective_workers ~cap:false 16 in
  Alcotest.(check int) "oversubscription is not capped" 16 workers;
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let inst = Helpers.random_fully_hetero rng ~n:4 ~m:4 in
      let _, max_failure = thresholds_for rng inst in
      let objective = Instance.Min_latency { max_failure } in
      Alcotest.(check bool)
        (Printf.sprintf "bb oversubscribed seed=%d" seed)
        true
        (sol_eq (Bb.solve inst objective) (Bb.solve_par ~workers inst objective));
      Alcotest.(check bool)
        (Printf.sprintf "dp oversubscribed seed=%d" seed)
        true
        (dp_eq
           (Interval_exact.min_latency inst)
           (Interval_exact.min_latency_par ~workers inst)))
    [ 3; 11; 42 ]

(* ------------------------------------------------------------------ *)
(* Obs snapshots across worker counts                                  *)
(* ------------------------------------------------------------------ *)

let par_obs_run workers =
  let obs = Obs.create ~tracing:true ~clock:(Clock.virtual_ ()) () in
  Obs.with_ambient (Some obs) (fun () ->
      let rng = Rng.create 7 in
      let inst = Helpers.random_fully_hetero rng ~n:4 ~m:4 in
      let objective = Instance.Min_latency { max_failure = 0.5 } in
      ignore (Bb.solve_par ~workers inst objective);
      ignore (Interval_exact.min_latency_par ~workers inst));
  (Obs.metrics_jsonl obs, Obs.trace_jsonl obs)

let par_obs_identical_across_workers () =
  let metrics1, trace1 = par_obs_run 1 in
  List.iter
    (fun w ->
      let metrics, trace = par_obs_run w in
      Alcotest.(check string)
        (Printf.sprintf "metrics workers=%d" w)
        metrics1 metrics;
      Alcotest.(check string)
        (Printf.sprintf "trace workers=%d" w)
        trace1 trace)
    [ 2; 8 ]

let par_obs_snapshot () =
  let metrics, _ = par_obs_run 1 in
  Snapshot.check "par-exact-metrics.snap" metrics

(* ------------------------------------------------------------------ *)
(* The shared incumbent cell                                           *)
(* ------------------------------------------------------------------ *)

(* No lost updates: 8 domains race tens of thousands of improvements
   into one cell; the surviving value must be the exact minimum of
   everything any domain published. *)
let bound_no_lost_updates () =
  let cell = Bb.Bound.create Float.infinity in
  let domains = 8 and per = 20_000 in
  let seqs =
    Array.init domains (fun d ->
        let rng = Rng.create (1000 + d) in
        Array.init per (fun _ -> Rng.float_range rng 1.0 1000.0))
  in
  let spawned =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            Array.iter (fun v -> Bb.Bound.improve cell v) seqs.(d)))
  in
  Array.iter Domain.join spawned;
  let expected =
    Array.fold_left
      (fun acc s -> Array.fold_left Float.min acc s)
      Float.infinity seqs
  in
  Alcotest.(check bool)
    "cell holds the exact global minimum" true
    (bits_eq expected (Bb.Bound.get cell))

let bound_is_monotone () =
  let cell = Bb.Bound.create 10.0 in
  Bb.Bound.improve cell 12.0;
  Alcotest.(check bool) "raising is a no-op" true
    (bits_eq 10.0 (Bb.Bound.get cell));
  Bb.Bound.improve cell 4.0;
  Alcotest.(check bool) "lowering lands" true
    (bits_eq 4.0 (Bb.Bound.get cell))

(* ------------------------------------------------------------------ *)
(* The unified inflation slack                                         *)
(* ------------------------------------------------------------------ *)

let prune_slack_pinned () =
  (* One named constant for churn warm starts and the parallel probe:
     16 x the default comparison eps.  Pin the exact value so any drift
     between the two users is a test failure, not a latent asymmetry. *)
  Alcotest.(check bool)
    "prune_slack = 16 * default_eps" true
    (bits_eq Bb.prune_slack (16. *. F.default_eps));
  Alcotest.(check bool)
    "prune_slack = 1.6e-8 exactly" true
    (bits_eq Bb.prune_slack 1.6e-08)

let inflate_bound_matches_churn_formula =
  Helpers.seed_property ~count:200 "inflate_bound == the PR 8 warm-bound formula"
    (fun seed ->
      let rng = Rng.create seed in
      let b0 = Rng.float_range rng (-1e6) 1e6 in
      bits_eq (Bb.inflate_bound b0)
        (b0 +. (16. *. F.default_eps *. Float.max 1.0 (Float.abs b0))))

let inflate_bound_is_sound =
  Helpers.seed_property ~count:200 "inflate_bound strictly exceeds its input"
    (fun seed ->
      let rng = Rng.create seed in
      let b0 = Rng.float_range rng 0.0 1e9 in
      Bb.inflate_bound b0 > b0)

let () =
  Alcotest.run "par_exact"
    [
      ( "identity",
        [
          bb_par_identity;
          bb_par_identity_under_bound;
          dp_par_identity;
          test "oversubscription stress (~cap:false)"
            par_oversubscription_stress;
        ] );
      ( "obs",
        [
          test "metric snapshots identical at 1/2/8 workers"
            par_obs_identical_across_workers;
          test "golden metrics snapshot" par_obs_snapshot;
        ] );
      ( "bound",
        [
          test "no lost updates under 8-domain races" bound_no_lost_updates;
          test "monotone min cell" bound_is_monotone;
        ] );
      ( "slack",
        [
          test "prune_slack pinned" prune_slack_pinned;
          inflate_bound_matches_churn_formula;
          inflate_bound_is_sound;
        ] );
    ]
