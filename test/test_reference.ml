(* Differential tests: the optimized solver kernels must be bit-identical
   to their frozen pre-optimization twins in Core.Reference — on seeded
   random instances over all three platform classes, on hand-written
   adversarial shapes, and across workspace reuse (big solve, small solve,
   big solve again). *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng

let test = Helpers.test
let bits = Int64.bits_of_float

let same_float name a b =
  if not (Int64.equal (bits a) (bits b)) then
    Alcotest.failf "%s: %.17g is not bit-identical to %.17g" name a b

let check_interval inst =
  match
    ( Interval_exact.min_latency inst,
      Reference.interval_min_latency_reference inst )
  with
  | None, None -> ()
  | Some _, None -> Alcotest.fail "interval: optimized solved, reference did not"
  | None, Some _ -> Alcotest.fail "interval: reference solved, optimized did not"
  | Some (l1, m1), Some (l2, m2) ->
      same_float "interval latency" l1 l2;
      if not (Mapping.equal m1 m2) then
        Alcotest.fail "interval mapping differs from reference"

let check_general inst =
  let l1, a1 = General_mapping.solve_dp inst in
  let l2, a2 = Reference.general_dp_reference inst in
  same_float "general-DP latency" l1 l2;
  if not (Assignment.equal a1 a2) then
    Alcotest.fail "general-DP assignment differs from reference"

let check_bb inst objective =
  match (Bb.solve inst objective, Reference.bb_solve_reference inst objective) with
  | None, None -> ()
  | Some _, None -> Alcotest.fail "B&B: optimized solved, reference did not"
  | None, Some _ -> Alcotest.fail "B&B: reference solved, optimized did not"
  | Some s1, Some s2 ->
      let e1 = s1.Solution.evaluation and e2 = s2.Solution.evaluation in
      same_float "B&B latency" e1.Instance.latency e2.Instance.latency;
      same_float "B&B failure" e1.Instance.failure e2.Instance.failure;
      if not (Mapping.equal s1.Solution.mapping s2.Solution.mapping) then
        Alcotest.fail "B&B mapping differs from reference"

let check_all rng inst =
  check_interval inst;
  check_general inst;
  let hi =
    let n = Pipeline.length inst.Instance.pipeline in
    let m = Platform.size inst.Instance.platform in
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
  in
  check_bb inst (Instance.Min_failure { max_latency = Rng.float_range rng 0.0 (hi *. 1.5) });
  check_bb inst (Instance.Min_latency { max_failure = Rng.float_range rng 0.0 1.0 })

(* ------------------------------------------------------------------ *)
(* Randomized, across the paper's three platform classes               *)
(* ------------------------------------------------------------------ *)

let property_for name gen =
  Helpers.seed_property ~count:40 name (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 3) in
      check_all rng (gen rng ~n ~m);
      true)

let fully_homog_matches =
  property_for "optimized = reference (fully homogeneous)"
    Helpers.random_fully_homog

let comm_homog_matches =
  property_for "optimized = reference (comm homogeneous)"
    Helpers.random_comm_homog

let fully_hetero_matches =
  property_for "optimized = reference (fully heterogeneous)"
    Helpers.random_fully_hetero

(* ------------------------------------------------------------------ *)
(* Adversarial shapes                                                  *)
(* ------------------------------------------------------------------ *)

let adversarial name inst =
  test name (fun () -> check_all (Rng.create 7) inst)

let one_stage_one_proc =
  adversarial "1 stage on 1 processor"
    (Instance.make
       (Pipeline.of_costs ~input:1.0 [ (2.0, 1.0) ])
       (Platform.fully_homogeneous ~m:1 ~speed:1.0 ~failure:0.3 ~bandwidth:1.0))

let one_stage_many_procs =
  adversarial "1 stage on 4 processors"
    (Instance.make
       (Pipeline.of_costs ~input:3.0 [ (5.0, 2.0) ])
       (Platform.uniform_links
          ~speeds:[| 1.0; 2.0; 4.0; 8.0 |]
          ~failures:[| 0.1; 0.2; 0.3; 0.4 |]
          ~bandwidth:2.0))

let zero_cost_stages =
  adversarial "zero-cost stages and zero-size data"
    (Instance.make
       (Pipeline.of_costs ~input:0.0 [ (0.0, 0.0); (0.0, 0.0); (0.0, 0.0) ])
       (Platform.uniform_links
          ~speeds:[| 1.0; 3.0; 2.0 |]
          ~failures:[| 0.2; 0.4; 0.1 |]
          ~bandwidth:1.5))

let identical_speeds =
  (* Ties everywhere: any order-dependence between the twins shows up as a
     different argmin/mapping. *)
  adversarial "all-identical speeds and links"
    (Instance.make
       (Pipeline.of_costs ~input:2.0 [ (4.0, 1.0); (4.0, 1.0); (4.0, 1.0); (4.0, 1.0) ])
       (Platform.fully_homogeneous ~m:4 ~speed:3.0 ~failure:0.25 ~bandwidth:2.0))

let failure_zero =
  adversarial "failure probability 0 everywhere"
    (Instance.make
       (Pipeline.of_costs ~input:1.0 [ (3.0, 2.0); (1.0, 1.0) ])
       (Platform.uniform_links
          ~speeds:[| 2.0; 1.0; 5.0 |]
          ~failures:[| 0.0; 0.0; 0.0 |]
          ~bandwidth:1.0))

let failure_near_one =
  adversarial "failure probability ~1 everywhere"
    (Instance.make
       (Pipeline.of_costs ~input:1.0 [ (3.0, 2.0); (1.0, 1.0) ])
       (Platform.uniform_links
          ~speeds:[| 2.0; 1.0; 5.0 |]
          ~failures:[| 0.999999; 0.999999; 0.999999 |]
          ~bandwidth:1.0))

(* ------------------------------------------------------------------ *)
(* Workspace reuse                                                     *)
(* ------------------------------------------------------------------ *)

let workspace_reuse () =
  (* Big solve, then tiny solve, then the same big solve again: any state
     leaking through the reusable workspaces (stale DP cells, stale memo
     entries) breaks the second big solve against the reference. *)
  let rng = Rng.create 4242 in
  let big = Helpers.random_fully_hetero rng ~n:8 ~m:8 in
  let tiny = Helpers.random_fully_hetero rng ~n:1 ~m:2 in
  let wide = Helpers.random_fully_hetero rng ~n:24 ~m:12 in
  check_interval big;
  check_interval tiny;
  check_interval big;
  check_general wide;
  check_general tiny;
  check_general wide;
  let bb_a = Helpers.random_fully_hetero rng ~n:3 ~m:4 in
  let bb_b = Helpers.random_fully_hetero rng ~n:4 ~m:3 in
  let obj = Instance.Min_failure { max_latency = 1e6 } in
  check_bb bb_a obj;
  check_bb bb_b obj;
  check_bb bb_a obj

let () =
  Alcotest.run "reference"
    [
      ( "randomized",
        [ fully_homog_matches; comm_homog_matches; fully_hetero_matches ] );
      ( "adversarial",
        [
          one_stage_one_proc;
          one_stage_many_procs;
          zero_cost_stages;
          identical_speeds;
          failure_zero;
          failure_near_one;
        ] );
      ("workspace", [ test "reuse leaks no state" workspace_reuse ]);
    ]
