(* Tests for the branch-and-bound exact solver and the tri-criteria
   extension. *)

open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp

let test = Helpers.test

let thresholds_for rng inst =
  let n = Pipeline.length inst.Instance.pipeline in
  let m = Platform.size inst.Instance.platform in
  let lo =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m [ Mono.fastest_proc inst.Instance.platform ])
  in
  let hi =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
  in
  (Rng.float_range rng lo (hi *. 1.2), Rng.float_range rng 0.01 0.8)

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

let bb_matches_enumeration_min_fp =
  Helpers.seed_property ~count:40 "B&B = enumeration (min FP | L)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match (Bb.solve inst objective, Exact.solve inst objective) with
      | None, None -> true
      | Some a, Some b ->
          F.approx_eq ~eps:1e-6 a.Solution.evaluation.Instance.failure
            b.Solution.evaluation.Instance.failure
      | Some _, None | None, Some _ -> false)

let bb_matches_enumeration_min_latency =
  Helpers.seed_property ~count:40 "B&B = enumeration (min L | FP)"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let _, max_failure = thresholds_for rng inst in
      let objective = Instance.Min_latency { max_failure } in
      match (Bb.solve inst objective, Exact.solve inst objective) with
      | None, None -> true
      | Some a, Some b ->
          F.approx_eq ~eps:1e-6 a.Solution.evaluation.Instance.latency
            b.Solution.evaluation.Instance.latency
      | Some _, None | None, Some _ -> false)

let bb_solution_is_consistent =
  Helpers.seed_property ~count:40 "B&B incremental latency = Eq2" (fun seed ->
      (* The search computes latency incrementally; the reported value must
         equal the from-scratch evaluation of the returned mapping. *)
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      match Bb.solve inst (Instance.Min_failure { max_latency }) with
      | None -> true
      | Some s ->
          F.approx_eq ~eps:1e-9 s.Solution.evaluation.Instance.latency
            (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
               s.Solution.mapping))

let bb_prunes () =
  (* On a mid-size instance the B&B must expand far fewer nodes than the
     flat enumeration has mappings. *)
  let rng = Rng.create 99 in
  let inst = Helpers.random_fully_hetero rng ~n:4 ~m:5 in
  let max_latency, _ = thresholds_for rng inst in
  let _, stats = Bb.solve_with_stats inst (Instance.Min_failure { max_latency }) in
  let space = Exact.count_mappings ~n:4 ~m:5 () in
  Alcotest.(check bool)
    (Printf.sprintf "nodes %d < space %d" stats.Bb.nodes space)
    true
    (stats.Bb.evaluated < space)

let bb_fig5 () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 22.0 } in
  match Bb.solve inst objective with
  | None -> Alcotest.fail "expected a solution"
  | Some s ->
      Helpers.check_close "finds the paper's optimum"
        (1.0 -. (0.9 *. (1.0 -. (0.8 ** 10.0))))
        s.Solution.evaluation.Instance.failure

let bb_stats_independent () =
  (* The search statistics and the bound memo tables must reset between
     solves: interleaving an unrelated instance must leave a repeated
     solve's stats (and answer) exactly as they were the first time. *)
  let rng = Rng.create 99 in
  let inst_a = Helpers.random_fully_hetero rng ~n:4 ~m:5 in
  let inst_b = Helpers.random_fully_hetero rng ~n:3 ~m:4 in
  let obj = Instance.Min_failure { max_latency = 1e6 } in
  let check_stats name (a : Bb.stats) (b : Bb.stats) =
    Alcotest.(check int) (name ^ " nodes") a.Bb.nodes b.Bb.nodes;
    Alcotest.(check int) (name ^ " evaluated") a.Bb.evaluated b.Bb.evaluated;
    Alcotest.(check int) (name ^ " pruned") a.Bb.pruned b.Bb.pruned
  in
  let sol1, stats1 = Bb.solve_with_stats inst_a obj in
  let solb, statsb = Bb.solve_with_stats inst_b obj in
  let sol2, stats2 = Bb.solve_with_stats inst_a obj in
  check_stats "repeat solve" stats1 stats2;
  (match (sol1, sol2) with
  | Some s1, Some s2 ->
      Alcotest.(check bool)
        "repeat solve same mapping" true
        (Mapping.equal s1.Solution.mapping s2.Solution.mapping)
  | None, None -> ()
  | _ -> Alcotest.fail "repeat solve disagrees on feasibility");
  let solb', statsb' = Bb.solve_with_stats inst_b obj in
  check_stats "repeat solve (other instance)" statsb statsb';
  match (solb, solb') with
  | Some s1, Some s2 ->
      Alcotest.(check bool)
        "other instance same mapping" true
        (Mapping.equal s1.Solution.mapping s2.Solution.mapping)
  | None, None -> ()
  | _ -> Alcotest.fail "other instance disagrees on feasibility"

(* ------------------------------------------------------------------ *)
(* Tri-criteria                                                        *)
(* ------------------------------------------------------------------ *)

let tri_evaluate_consistent =
  Helpers.seed_property ~count:60 "Tri.evaluate = individual evaluators"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 4) and m = 2 + (seed mod 4) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let mapping = Helpers.random_mapping rng ~n ~m in
      let e = Tri.evaluate inst mapping in
      F.approx_eq e.Tri.latency
        (Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping)
      && F.approx_eq e.Tri.period
           (Period.of_mapping inst.Instance.pipeline inst.Instance.platform mapping)
      && F.approx_eq e.Tri.failure
           (Failure.of_mapping inst.Instance.platform mapping))

let tri_exact_respects_constraints =
  Helpers.seed_property ~count:30 "tri-criteria optimum is feasible"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let constraints =
        { Tri.max_latency; max_period = max_latency (* loose on period *) }
      in
      match Tri.exact_min_failure inst constraints with
      | None -> true
      | Some s -> Tri.feasible constraints s.Tri.evaluation)

let tri_tightening_period_cannot_help =
  Helpers.seed_property ~count:25 "tighter period => no better FP"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let loose = { Tri.max_latency; max_period = max_latency } in
      let tight = { Tri.max_latency; max_period = max_latency /. 2.0 } in
      match (Tri.exact_min_failure inst loose, Tri.exact_min_failure inst tight) with
      | _, None -> true
      | None, Some _ -> false
      | Some l, Some t -> F.leq ~eps:1e-9 l.Tri.evaluation.Tri.failure
                            t.Tri.evaluation.Tri.failure)

let tri_loose_period_equals_bicriteria =
  Helpers.seed_property ~count:25 "infinite period bound = bi-criteria optimum"
    (fun seed ->
      (* With the period constraint slack (period <= latency always), the
         tri-criteria optimum must coincide with the bi-criteria one. *)
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let constraints = { Tri.max_latency; max_period = Float.max_float } in
      match
        ( Tri.exact_min_failure inst constraints,
          Exact.solve inst (Instance.Min_failure { max_latency }) )
      with
      | None, None -> true
      | Some a, Some b ->
          F.approx_eq ~eps:1e-6 a.Tri.evaluation.Tri.failure
            b.Solution.evaluation.Instance.failure
      | Some _, None | None, Some _ -> false)

let tri_greedy_feasible_and_bounded =
  Helpers.seed_property ~count:25 "greedy is feasible and >= exact"
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + (seed mod 3) and m = 2 + (seed mod 3) in
      let inst = Helpers.random_fully_hetero rng ~n ~m in
      let max_latency, _ = thresholds_for rng inst in
      let constraints = { Tri.max_latency; max_period = 0.8 *. max_latency } in
      match (Tri.greedy_min_failure inst constraints, Tri.exact_min_failure inst constraints) with
      | None, _ -> true
      | Some _, None -> false
      | Some g, Some e ->
          Tri.feasible constraints g.Tri.evaluation
          && F.geq ~eps:1e-6 g.Tri.evaluation.Tri.failure
               e.Tri.evaluation.Tri.failure)

let tri_fig5_period_pressure () =
  (* On Fig. 5, a tight period bound forbids the 10-fold replication (Pin
     must serialize 10 sends of size 10), pushing the optimum away from the
     paper's split mapping. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let split_eval = Tri.evaluate inst (Relpipe_workload.Scenarios.fig5_split ()) in
  Alcotest.(check bool) "split has a large period" true (split_eval.Tri.period >= 10.0);
  let tight = { Tri.max_latency = 22.0; max_period = 5.0 } in
  match Tri.exact_min_failure inst tight with
  | None -> () (* acceptable: nothing fits such a tight period *)
  | Some s ->
      Alcotest.(check bool) "tight-period optimum is not the big split" true
        (s.Tri.evaluation.Tri.failure > split_eval.Tri.failure)

let () =
  Alcotest.run "bb-tri"
    [
      ( "branch-and-bound",
        [
          bb_matches_enumeration_min_fp;
          bb_matches_enumeration_min_latency;
          bb_solution_is_consistent;
          test "prunes the space" bb_prunes;
          test "solves fig5" bb_fig5;
          test "stats and memo reset between solves" bb_stats_independent;
        ] );
      ( "tri-criteria",
        [
          tri_evaluate_consistent;
          tri_exact_respects_constraints;
          tri_tightening_period_cannot_help;
          tri_loose_period_equals_bicriteria;
          tri_greedy_feasible_and_bounded;
          test "fig5 under period pressure" tri_fig5_period_pressure;
        ] );
    ]
