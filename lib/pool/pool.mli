(** Domain-based worker pool over a mutex/condvar job queue.

    {!map} runs a pure function over an array of jobs on [workers]
    domains (the calling domain participates, so [workers = 1] spawns
    nothing) and reassembles the results {e in submission order}: the
    output is independent of scheduling, so any engine built on it stays
    deterministic for every worker count.

    Jobs must not share mutable state — the pool provides no
    synchronization beyond the queue itself. *)

type stats = {
  workers : int;  (** domains that executed jobs (including the caller) *)
  jobs : int;  (** jobs executed *)
}

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val effective_workers : ?cap:bool -> int -> int
(** Clamp a requested worker count to [1 .. cpu_count] ([cap] defaults to
    [true]; with [~cap:false] only the lower bound applies, letting tests
    oversubscribe a small machine with more domains than cores). *)

val map :
  ?obs:Relpipe_obs.Obs.t -> workers:int -> ('a -> 'b) -> 'a array -> 'b array * stats
(** [map ~workers f jobs] spawns exactly [max 1 workers] workers (apply
    {!effective_workers} first for the [min(requested, cpus)] policy).
    If any [f job] raises, the first exception in submission order is
    re-raised after all workers have drained.

    With [obs], the pool records the [pool.jobs] counter, the
    [pool.queue.peak_depth] gauge and the [pool.task.duration_ns]
    histogram (per-task durations on per-slot forked clocks, observed in
    submission order).  No worker-count-dependent value is recorded, so
    snapshots stay identical across [~workers] settings. *)
