let cpu_count () = max 1 (Domain.recommended_domain_count ())

let effective_workers ?(cap = true) requested =
  let w = max 1 requested in
  if cap then min w (cpu_count ()) else w

(* ------------------------------------------------------------------ *)
(* Job queue                                                           *)
(* ------------------------------------------------------------------ *)

(* A closable FIFO: workers block in [pop] until a job arrives or the
   queue is closed.  The batch engine pushes every job before spawning
   workers, so [close] races nothing; the queue still supports the
   general push/close order for future streaming use. *)
module Jobq = struct
  type 'a t = {
    q : 'a Queue.t;
    mu : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); mu = Mutex.create (); nonempty = Condition.create (); closed = false }

  let push t x =
    Mutex.lock t.mu;
    Queue.push x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    let item = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.mu;
    item
end

type stats = { workers : int; jobs : int }

module Obs = Relpipe_obs.Obs
module Clock = Relpipe_obs.Clock

let map ?obs ~workers f jobs =
  let n = Array.length jobs in
  let w = max 1 (min workers (max 1 n)) in
  (* All n jobs are enqueued before any worker starts, so the queue's
     peak depth is n for every worker count — recording it (and the job
     count) keeps metric snapshots identical across [--workers]. *)
  Obs.add obs "pool.jobs" n;
  if n > 0 then Obs.gauge_max obs "pool.queue.peak_depth" n;
  (* Per-slot durations, written by whichever domain runs the slot and
     read only after the joins below; observed into the histogram in
     submission order so the result is scheduling-independent.  Each
     slot times itself on a clock forked from the context's clock, which
     under a virtual clock makes every duration a fixed tick count. *)
  let durs = Array.make (if Option.is_none obs then 0 else n) 0 in
  let timed i job =
    match obs with
    | None -> f job
    | Some o ->
        let clk = Clock.fork o.Obs.clock i in
        let t0 = Clock.now_ns clk in
        let r = f job in
        durs.(i) <- Clock.now_ns clk - t0;
        r
  in
  let finish out =
    Array.iter
      (fun d -> Obs.observe obs "pool.task.duration_ns" (float_of_int d))
      durs;
    (out, { workers = w; jobs = n })
  in
  if w = 1 then finish (Array.mapi timed jobs)
  else begin
    let queue = Jobq.create () in
    Array.iteri (fun i job -> Jobq.push queue (i, job)) jobs;
    Jobq.close queue;
    (* Each slot is written by exactly one worker and read only after the
       joins below, which establish the happens-before edge. *)
    let results = Array.make n None in
    let worker () =
      let rec loop () =
        match Jobq.pop queue with
        | None -> ()
        | Some (i, job) ->
            let r = match timed i job with v -> Ok v | exception e -> Error e in
            (* devlint: allow RP-S301 — exactly one writer per slot i *)
            results.(i) <- Some r;
            loop ()
      in
      loop ()
    in
    let domains = Array.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    let out =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* every index was queued *))
        results
    in
    finish out
  end
