(** Re-export of {!Relpipe_pool.Pool}.

    The domain pool lives in [lib/pool] (library [relpipe_pool]) so the
    exact solver kernels in [lib/core] can parallelize over it without a
    dependency cycle; this alias preserves the historical
    [Relpipe_service.Pool] path. *)

include module type of struct
  include Relpipe_pool.Pool
end
