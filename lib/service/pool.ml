(* Compatibility re-export: the pool moved to [lib/pool] (library
   [relpipe_pool]) so that [lib/core]'s parallel exact solvers can use it
   without a dependency cycle.  Existing [Relpipe_service.Pool] callers
   keep compiling unchanged. *)
include Relpipe_pool.Pool
