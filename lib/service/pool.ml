let cpu_count () = max 1 (Domain.recommended_domain_count ())

let effective_workers ?(cap = true) requested =
  let w = max 1 requested in
  if cap then min w (cpu_count ()) else w

(* ------------------------------------------------------------------ *)
(* Job queue                                                           *)
(* ------------------------------------------------------------------ *)

(* A closable FIFO: workers block in [pop] until a job arrives or the
   queue is closed.  The batch engine pushes every job before spawning
   workers, so [close] races nothing; the queue still supports the
   general push/close order for future streaming use. *)
module Jobq = struct
  type 'a t = {
    q : 'a Queue.t;
    mu : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); mu = Mutex.create (); nonempty = Condition.create (); closed = false }

  let push t x =
    Mutex.lock t.mu;
    Queue.push x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    let item = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.mu;
    item
end

type stats = { workers : int; jobs : int }

let map ~workers f jobs =
  let n = Array.length jobs in
  let w = max 1 (min workers (max 1 n)) in
  if w = 1 then (Array.map f jobs, { workers = 1; jobs = n })
  else begin
    let queue = Jobq.create () in
    Array.iteri (fun i job -> Jobq.push queue (i, job)) jobs;
    Jobq.close queue;
    (* Each slot is written by exactly one worker and read only after the
       joins below, which establish the happens-before edge. *)
    let results = Array.make n None in
    let worker () =
      let rec loop () =
        match Jobq.pop queue with
        | None -> ()
        | Some (i, job) ->
            let r = match f job with v -> Ok v | exception e -> Error e in
            results.(i) <- Some r;
            loop ()
      in
      loop ()
    in
    let domains = Array.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    let out =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false (* every index was queued *))
        results
    in
    (out, { workers = w; jobs = n })
  end
