(** Streaming atlas driver: a request stream through the engine, chunk
    by chunk, with fully online aggregation.

    The atlas answers "what does this service look like under a
    million-request workload?" without ever materializing the workload:
    the driver holds one [chunk] of requests plus O(1) aggregator state
    ({!Relpipe_obs.Stream} sketches, EWMAs, a bloom filter), so peak
    memory is independent of the stream length.

    {b Determinism.}  Everything in the {!report} derives from response
    {e contents} (outcomes, cache origins, mapping latencies) and the
    event sequence — all of which the engine guarantees are byte-identical
    at every worker count — so {!render} is a worker-count-independent
    artifact; the atlas snapshot test pins it at workers 1, 2 and 8.

    {b Layering.}  This module knows nothing about workload generation or
    transports: the {!source} carries pre-rendered slot texts and an event
    iterator (the CLI adapts [Relpipe_workload.Stream_gen]; the fuzz
    oracle feeds hand-built slots), and [solve] is any batch function —
    an {!Engine.run_requests} closure or a [relpipe serve] client. *)

open Relpipe_model

(** {1 Workload source} *)

type slot = {
  sl_text : string;  (** instance text, rendered once *)
  sl_objective : Instance.objective;
  sl_method : Relpipe_core.Solver.method_;
  sl_class : string;  (** grouping tag for the report (platform class) *)
}

type event = {
  ev_index : int;  (** 0-based stream position *)
  ev_slot : int;  (** index into {!source.slots} *)
  ev_gap_ns : int;  (** arrival gap since the previous event *)
}

type source = {
  slots : slot array;
  events : (event -> unit) -> unit;
      (** Must call the callback once per request, in stream order;
          it is called at most [chunk] requests ahead of the solver. *)
}

(** {1 Running} *)

type report = {
  requests : int;
  pool : int;  (** number of slots *)
  chunk : int;
  chunks : int;  (** solver calls made *)
  solved : int;
  infeasible : int;
  failed : int;
  cache_hits : int;  (** responses with [r_cache = Hit] *)
  distinct_slots : int;  (** slots actually touched (exact) *)
  bloom_dups : int;  (** adds the bloom filter flagged as possibly-seen *)
  bloom_bits : int;
  bloom_hashes : int;
  bloom_set_bits : int;
  latency : Relpipe_obs.Stream.Quantile.t;
      (** sketch over solved mapping latencies *)
  gap_ewma_ns : float;  (** smoothed arrival gap, ns *)
  hit_ewma : float;  (** smoothed instantaneous hit indicator *)
  total_gap_ns : int;  (** exact sum of gaps (virtual stream duration) *)
  curve : (int * float) list;
      (** cumulative hit rate at decade checkpoints (and the stream end) *)
  class_counts : (string * int) list;
      (** requests per slot class, sorted by class tag *)
}

val run :
  ?obs:Relpipe_obs.Obs.t ->
  ?chunk:int ->
  ?accuracy:float ->
  ?ewma_alpha:float ->
  ?bloom_fp:float ->
  ?bloom_expected:int ->
  solve:(Protocol.request array -> Protocol.response array) ->
  source ->
  report
(** Stream the source through [solve] in [chunk]-sized batches (default
    [512]).  [accuracy] (default [0.01]) sizes the latency sketch,
    [ewma_alpha] (default [0.05]) both smoothers, [bloom_fp]/
    [bloom_expected] (defaults [0.01] / [65536]) the duplicate filter.
    With [obs], records [atlas.*] counters/histograms and [stream.*]
    gauges as the stream progresses.
    @raise Invalid_argument on an empty slot array, a non-positive
    [chunk], an event whose slot is out of range, or [solve] returning
    the wrong number of responses. *)

val hit_rate : report -> float
(** [cache_hits / requests] ([0.] on an empty stream). *)

val render : report -> string
(** The deterministic plain-text atlas report (ends with a newline). *)
