open Relpipe_model
module Solver = Relpipe_core.Solver
module Solution = Relpipe_core.Solution
module Lru = Relpipe_util.Lru
module Analysis = Relpipe_analysis.Analysis
module Diagnostic = Relpipe_analysis.Diagnostic
module Obs = Relpipe_obs.Obs

(* A cache entry is the representative's full solve outcome plus the
   permutation that canonicalized its platform, so hits on symmetric
   instances can be re-indexed. *)
type entry = {
  e_outcome : (Solution.t option, Solver.error) result;
  e_perm : int array;
}

type t = {
  eff_workers : int;
  exact_budget : int;
  cache : entry Lru.Sharded.t;
  obs : Obs.t option;
  mutable n_requests : int;
  mutable n_solved : int;
  mutable n_infeasible : int;
  mutable n_failed : int;
  mutable n_jobs : int;
  mutable n_shared : int;
}

let create ?obs ?workers ?(cap_to_cpus = true) ?(cache_capacity = 1024)
    ?(cache_shards = 1) ?(exact_budget = 200_000) () =
  let requested = match workers with Some w -> w | None -> Pool.cpu_count () in
  let cache =
    match obs with
    | Some o ->
        Lru.Sharded.create_in ~metrics:o.Obs.metrics ~name:"engine.cache"
          ~shards:cache_shards ~capacity:cache_capacity
    | None -> Lru.Sharded.create ~shards:cache_shards ~capacity:cache_capacity
  in
  {
    eff_workers = Pool.effective_workers ~cap:cap_to_cpus requested;
    exact_budget;
    cache;
    obs;
    n_requests = 0;
    n_solved = 0;
    n_infeasible = 0;
    n_failed = 0;
    n_jobs = 0;
    n_shared = 0;
  }

let workers t = t.eff_workers

(* ------------------------------------------------------------------ *)
(* Batch pipeline                                                      *)
(* ------------------------------------------------------------------ *)

(* A prepared request: parsed, canonicalized, ready to plan. *)
type ready = {
  rq : Protocol.request;
  inst : Instance.t;
  norm : Canon.normalized;
  budget : int;
}

type prepared = Bad of string option * string  (* id, message *) | Ready of ready

type plan =
  | Answer_bad of string option * string
  | From_cache of ready * entry
  | From_job of ready * int  (* index into the job array *)
  | Shared_job of ready * int

let prepare t req =
  match req with
  | Error msg -> Bad (None, msg)
  | Ok rq -> (
      let text =
        match rq.Protocol.instance with
        | Protocol.Inline text -> Ok text
        | Protocol.File path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | text -> Ok text
            | exception Sys_error msg -> Error msg)
      in
      match text with
      | Error msg -> Bad (rq.Protocol.id, msg)
      | Ok text -> (
          match Analysis.parse_instance_text text with
          | Error ds ->
              let file =
                match rq.Protocol.instance with
                | Protocol.File path -> Some path
                | Protocol.Inline _ -> None
              in
              Bad
                ( rq.Protocol.id,
                  String.concat "; "
                    (List.map (fun d -> Diagnostic.to_string ?file d) ds) )
          | Ok inst ->
              let budget =
                match rq.Protocol.budget with
                | Some b -> b
                | None -> t.exact_budget
              in
              let norm =
                Canon.normalize ~budget ~method_:rq.Protocol.method_ inst
                  rq.Protocol.objective
              in
              Ready { rq; inst; norm; budget }))

let solve_job (r : ready) =
  match
    Solver.run ~method_:r.rq.Protocol.method_ ~exact_budget:r.budget r.inst
      r.rq.Protocol.objective
  with
  | outcome -> outcome
  | exception e ->
      (* [Solver.run] already types its own failures; anything else
         (stack overflow on a pathological instance, ...) must still
         yield a per-request error response, not kill the batch. *)
      Error (Solver.Not_applicable (Printexc.to_string e))

let outcome_of_entry (r : ready) entry =
  match entry.e_outcome with
  | Error e -> Protocol.Failed (Solver.error_to_string e)
  | Ok None -> Protocol.Infeasible
  | Ok (Some sol) ->
      if Canon.same_perm entry.e_perm r.norm.Canon.perm then
        Protocol.Solved
          {
            mapping = Protocol.mapping_to_syntax sol.Solution.mapping;
            latency = sol.Solution.evaluation.Instance.latency;
            failure = sol.Solution.evaluation.Instance.failure;
          }
      else begin
        (* Symmetric hit: the representative's processor order differs;
           re-index its mapping and re-evaluate on this instance. *)
        let n = Pipeline.length r.inst.Instance.pipeline in
        let m = Platform.size r.inst.Instance.platform in
        let mapping =
          Canon.translate ~from_perm:entry.e_perm ~to_perm:r.norm.Canon.perm ~n
            ~m sol.Solution.mapping
        in
        let ev = Instance.evaluate r.inst mapping in
        Protocol.Solved
          {
            mapping = Protocol.mapping_to_syntax mapping;
            latency = ev.Instance.latency;
            failure = ev.Instance.failure;
          }
      end

let run_batch t reqs =
  let n_reqs = Array.length reqs in
  Obs.add t.obs "engine.requests" n_reqs;
  let prepared =
    Obs.span t.obs
      ~attrs:[ ("requests", string_of_int n_reqs) ]
      "engine.phase.prepare"
      (fun () -> Array.map (prepare t) reqs)
  in
  (* Plan phase: sequential, in submission order, so cache decisions are
     independent of how the solve phase is scheduled. *)
  let jobs = ref [] and num_jobs = ref 0 in
  let pending = Hashtbl.create 64 in
  let plan =
    Obs.span t.obs "engine.phase.plan" (fun () ->
        Array.map
          (fun p ->
            match p with
            | Bad (id, msg) -> Answer_bad (id, msg)
            | Ready r -> (
                let key = r.norm.Canon.key in
                match Lru.Sharded.find t.cache key with
                | Some entry -> From_cache (r, entry)
                | None -> (
                    match Hashtbl.find_opt pending key with
                    | Some j ->
                        t.n_shared <- t.n_shared + 1;
                        Obs.incr t.obs "engine.shared";
                        Shared_job (r, j)
                    | None ->
                        let j = !num_jobs in
                        incr num_jobs;
                        Hashtbl.replace pending key j;
                        jobs := r :: !jobs;
                        From_job (r, j))))
          prepared)
  in
  let jobs = Array.of_list (List.rev !jobs) in
  Obs.add t.obs "engine.jobs" (Array.length jobs);
  (* Solve phase: the only parallel part; each job is a pure function of
     its own request — except for its observability context, which is a
     per-job fork (shared atomic counters, private tracer on a forked
     clock) merged back in job order below, so traces and metrics stay
     identical across worker counts. *)
  let children = Array.make (Array.length jobs) None in
  let solve_one (j, r) =
    match t.obs with
    | None -> solve_job r
    | Some o ->
        let child = Obs.fork o j in
        (* slot j is written only by job j's worker and read after Pool.map
           returns, which joins its domains *)
        (* devlint: allow RP-S301 *)
        children.(j) <- Some child;
        Obs.with_ambient (Some child) (fun () ->
            Obs.span (Some child)
              ~attrs:[ ("job", string_of_int j) ]
              "engine.job"
              (fun () -> solve_job r))
  in
  let outcomes =
    Obs.span t.obs
      ~attrs:[ ("jobs", string_of_int (Array.length jobs)) ]
      "engine.phase.solve"
      (fun () ->
        let outcomes, _pool_stats =
          Pool.map ?obs:t.obs ~workers:t.eff_workers solve_one
            (Array.mapi (fun j r -> (j, r)) jobs)
        in
        (match t.obs with
        | Some o ->
            Array.iter
              (function
                | Some child -> Obs.merge_child ~into:o child | None -> ())
              children
        | None -> ());
        outcomes)
  in
  t.n_jobs <- t.n_jobs + Array.length jobs;
  Obs.span t.obs "engine.phase.emit" (fun () ->
      (* Populate the cache in job order (deterministic). *)
      let entries =
        Array.mapi
          (fun j outcome ->
            let entry =
              { e_outcome = outcome; e_perm = jobs.(j).norm.Canon.perm }
            in
            Lru.Sharded.add t.cache jobs.(j).norm.Canon.key entry;
            entry)
          outcomes
      in
      (* Emit phase: responses in submission order. *)
      Array.mapi
        (fun i p ->
          t.n_requests <- t.n_requests + 1;
          let r_id, r_cache, r_outcome =
            match p with
            | Answer_bad (id, msg) -> (id, Protocol.Miss, Protocol.Failed msg)
            | From_job (r, j) ->
                (r.rq.Protocol.id, Protocol.Miss, outcome_of_entry r entries.(j))
            | Shared_job (r, j) ->
                (r.rq.Protocol.id, Protocol.Hit, outcome_of_entry r entries.(j))
            | From_cache (r, entry) ->
                (r.rq.Protocol.id, Protocol.Hit, outcome_of_entry r entry)
          in
          (match r_outcome with
          | Protocol.Solved _ ->
              t.n_solved <- t.n_solved + 1;
              Obs.incr t.obs "engine.solved"
          | Protocol.Infeasible ->
              t.n_infeasible <- t.n_infeasible + 1;
              Obs.incr t.obs "engine.infeasible"
          | Protocol.Failed _ ->
              t.n_failed <- t.n_failed + 1;
              Obs.incr t.obs "engine.failed");
          Obs.instant t.obs "engine.request"
            ~attrs:
              [
                ("index", string_of_int i);
                ( "cache",
                  match r_cache with
                  | Protocol.Hit -> "hit"
                  | Protocol.Miss -> "miss" );
                ( "status",
                  match r_outcome with
                  | Protocol.Solved _ -> "solved"
                  | Protocol.Infeasible -> "infeasible"
                  | Protocol.Failed _ -> "failed" );
              ];
          { Protocol.r_id; r_index = i; r_cache; r_outcome })
        plan)

let run_requests t reqs = run_batch t (Array.map (fun r -> Ok r) reqs)

let run_lines t lines =
  let nonblank = List.filter (fun l -> String.trim l <> "") lines in
  let batch = Array.of_list (List.map Protocol.decode_request nonblank) in
  Array.to_list (Array.map Protocol.encode_response (run_batch t batch))

let normalize t ?(method_ = Solver.Auto) ?budget inst objective =
  let budget = match budget with Some b -> b | None -> t.exact_budget in
  Canon.normalize ~budget ~method_ inst objective

let solve_instance t ?method_ ?budget inst objective =
  let rq =
    Protocol.request ?budget ?method_
      ~instance:(Protocol.Inline (Textio.to_string inst))
      objective
  in
  (run_requests t [| rq |]).(0)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  requests : int;
  solved : int;
  infeasible : int;
  failed : int;
  jobs : int;
  shared : int;
  cache : Lru.stats;
  cache_len : int;
  cache_capacity : int;
  effective_workers : int;
}

let stats t =
  {
    requests = t.n_requests;
    solved = t.n_solved;
    infeasible = t.n_infeasible;
    failed = t.n_failed;
    jobs = t.n_jobs;
    shared = t.n_shared;
    cache = Lru.Sharded.stats t.cache;
    cache_len = Lru.Sharded.length t.cache;
    cache_capacity = Lru.Sharded.capacity t.cache;
    effective_workers = t.eff_workers;
  }

let hit_rate s =
  if s.requests = 0 then 0.0
  else float_of_int (s.cache.Lru.hits + s.shared) /. float_of_int s.requests

let pp_stats ppf s =
  Format.fprintf ppf "workers:   %d (of %d cpus)@." s.effective_workers
    (Pool.cpu_count ());
  Format.fprintf ppf "requests:  %d (ok %d, infeasible %d, error %d)@."
    s.requests s.solved s.infeasible s.failed;
  Format.fprintf ppf "jobs:      %d solver runs@." s.jobs;
  Format.fprintf ppf
    "cache:     %d/%d entries, hits %d, shared %d, misses %d, evictions %d@."
    s.cache_len s.cache_capacity s.cache.Lru.hits s.shared s.cache.Lru.misses
    s.cache.Lru.evictions;
  Format.fprintf ppf "hit rate:  %.1f%%" (100.0 *. hit_rate s)
