type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else
        escape_to buf
          (if Float.is_nan x then "nan" else if x > 0.0 then "inf" else "-inf")
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let utf8_add buf cp =
  (* Encode a Unicode code point as UTF-8 bytes. *)
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse text =
  let len = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let fail msg = raise (Fail (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.equal (String.sub text !pos n) word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match text.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape";
           match text.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 (* Combine a high surrogate with the low one that must
                    follow it. *)
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   if
                     !pos + 1 < len
                     && Char.equal text.[!pos] '\\'
                     && Char.equal text.[!pos + 1] 'u'
                   then begin
                     pos := !pos + 2;
                     let low = hex4 () in
                     if low < 0xDC00 || low > 0xDFFF then
                       fail "invalid low surrogate";
                     0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00)
                   end
                   else fail "lone high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "lone low surrogate"
                 else cp
               in
               utf8_add buf cp
           | c -> fail (Printf.sprintf "invalid escape \\%c" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    let has_float_syntax =
      String.exists
        (fun c -> match c with '.' | 'e' | 'E' -> true | _ -> false)
        s
    in
    if has_float_syntax then
      match float_of_string_opt s with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "invalid number %S" s)
    else
      match int_of_string_opt s with
      (* "-0" must keep its sign: Int cannot represent negative zero, so
         the round-trip Float (-0.) -> "-0" -> parse stays bit-identical
         only through the Float constructor. *)
      | Some 0 when String.length s > 0 && s.[0] = '-' -> Float (-0.)
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with
          | Some x -> Float x
          | None -> fail (Printf.sprintf "invalid number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < len then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float x when Float.is_integer x && Float.abs x < 1e15 ->
      Some (int_of_float x)
  | _ -> None

let nonfinite_of_string s =
  match String.lowercase_ascii s with
  | "inf" | "+inf" | "infinity" -> Some Float.infinity
  | "-inf" | "-infinity" -> Some Float.neg_infinity
  | "nan" -> Some Float.nan
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | Str s -> nonfinite_of_string s
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let float x =
  if Float.is_finite x then Float x
  else Str (if Float.is_nan x then "nan" else if x > 0.0 then "inf" else "-inf")
