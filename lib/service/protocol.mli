(** JSON-lines request/response codec of the batch-solving service.

    One request or response per line, versioned ([{"v":1,...}]).

    {b Request} fields:
    - ["v"] (required int) — protocol version, currently [1];
    - ["id"] (optional string) — opaque tag echoed in the response;
    - ["instance"] (string) — instance text inline (the {!Relpipe_model.Textio}
      grammar, newlines escaped), {e or}
    - ["instance_file"] (string) — path to an instance file, resolved by
      the engine when the batch runs;
    - ["objective"] (required object) — [{"minimize":"failure",
      "max_latency":L}] or [{"minimize":"latency","max_failure":F}];
    - ["method"] (optional string, default ["auto"]) — one of
      {!method_names};
    - ["budget"] (optional int) — exact-enumeration budget override.

    {b Response} fields: ["v"], ["index"] (position of the request in the
    batch), ["id"] (echoed when present), ["cache"] (["hit"]/["miss"]),
    ["status"] and then per status:
    - ["ok"] — ["mapping"] (in the {!Relpipe_model.Mapping_syntax} grammar,
      so responses can be fed back to [relpipe eval]), ["latency"],
      ["failure"];
    - ["infeasible"] — no extra fields (no mapping satisfies the
      objective);
    - ["error"] — ["error"], a human-readable message (parse failure,
      inapplicable method, exceeded budget, ...). *)

open Relpipe_model
open Relpipe_core

val version : int

(** {1 Requests} *)

type instance_src =
  | Inline of string  (** instance text *)
  | File of string  (** path, read by the engine *)

type request = {
  id : string option;
  instance : instance_src;
  objective : Instance.objective;
  method_ : Solver.method_;
  budget : int option;
}

val request :
  ?id:string ->
  ?budget:int ->
  ?method_:Solver.method_ ->
  instance:instance_src ->
  Instance.objective ->
  request
(** [method_] defaults to [Solver.Auto]. *)

val method_names : (string * Solver.method_) list
(** The CLI's method vocabulary (["auto"], ["exact"], ["polynomial"],
    ["portfolio"], and the heuristic names). *)

val method_to_string : Solver.method_ -> string

val method_of_string : string -> (Solver.method_, string) result

val encode_request : request -> string
(** One JSON line (no trailing newline). *)

val decode_request : string -> (request, string) result
(** Inverse of {!encode_request}; rejects missing/foreign versions,
    malformed JSON and unknown methods with a message (never raises). *)

(** {1 Responses} *)

type outcome =
  | Solved of { mapping : string; latency : float; failure : float }
      (** [mapping] in {!Relpipe_model.Mapping_syntax} concrete syntax *)
  | Infeasible
  | Failed of string

type cache_origin = Hit | Miss

type response = {
  r_id : string option;
  r_index : int;
  r_cache : cache_origin;
  r_outcome : outcome;
}

val mapping_to_syntax : Mapping.t -> string
(** ["1-2:0,1; 3:2"] — parses back with {!Relpipe_model.Mapping_syntax}. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Control messages}

    The serve daemon's session vocabulary, sharing the JSONL framing and
    version field with solve requests.  A control message is any line
    whose object carries an ["op"] field:

    - [{"v":1,"op":"hello","client":C?,"protocols":[1,...]?}] — the
      mandatory handshake.  [protocols] (default [[1]]) lists the
      versions the client speaks; the server accepts when it contains
      {!version} and answers
      [{"v":1,"op":"hello","ok":true,"protocol":1}], else it refuses
      with a typed [version-mismatch] error.
    - [{"v":1,"op":"stats"}] — answered with the server's live metric
      registry, [{"v":1,"op":"stats","ok":true,"metrics":[...]}].
    - [{"v":1,"op":"shutdown"}] — asks the server to drain; answered
      [{"v":1,"op":"shutdown","ok":true,"draining":true}].

    Refusals are
    [{"v":1,"op":"error","ok":false,"code":CODE,...,"error":MSG}] with
    [code] one of [version-mismatch] (plus [offered]), [unknown-op]
    (plus [method]), [invalid-control] and [hello-required]. *)

type control =
  | Hello of { client : string option; protocols : int list }
  | Stats
  | Shutdown

val hello : ?client:string -> unit -> control
(** A handshake offering exactly [{!version}]. *)

type server_error =
  | Version_mismatch of { offered : int list }
      (** no common version; [offered] echoes the client's list (or its
          ["v"] field when that was already foreign) *)
  | Unknown_op of string
  | Invalid_control of string  (** op message with missing/ill-typed fields *)
  | Hello_required  (** a solve request arrived before the handshake *)

val error_code : server_error -> string

val server_error_to_string : server_error -> string

(** An inbound session line: a control message, or a solve request whose
    decode result is carried through so request-level errors keep being
    answered on the per-request path (like [relpipe batch]). *)
type inbound =
  | Control of control
  | Solve of (request, string) result

val decode_inbound : string -> (inbound, server_error) result
(** Classify one session line.  [Error] only for op-shaped (control)
    lines — version gate first, then op dispatch; never raises. *)

val encode_control : control -> string

(** {1 Control replies} *)

type control_reply =
  | Hello_ok of { protocol : int }
  | Stats_ok of (string * Relpipe_obs.Metric.view) list
      (** metric bindings, sorted by name as
          {!Relpipe_obs.Metric.bindings} yields them *)
  | Shutdown_ok of { draining : bool }
  | Refused of server_error

val encode_control_reply : control_reply -> string

val decode_control_reply : string -> (control_reply, string) result
(** Inverse of {!encode_control_reply} (modulo the human-readable
    [error] text of [Invalid_control], which round-trips as itself). *)
