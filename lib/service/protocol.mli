(** JSON-lines request/response codec of the batch-solving service.

    One request or response per line, versioned ([{"v":1,...}]).

    {b Request} fields:
    - ["v"] (required int) — protocol version, currently [1];
    - ["id"] (optional string) — opaque tag echoed in the response;
    - ["instance"] (string) — instance text inline (the {!Relpipe_model.Textio}
      grammar, newlines escaped), {e or}
    - ["instance_file"] (string) — path to an instance file, resolved by
      the engine when the batch runs;
    - ["objective"] (required object) — [{"minimize":"failure",
      "max_latency":L}] or [{"minimize":"latency","max_failure":F}];
    - ["method"] (optional string, default ["auto"]) — one of
      {!method_names};
    - ["budget"] (optional int) — exact-enumeration budget override.

    {b Response} fields: ["v"], ["index"] (position of the request in the
    batch), ["id"] (echoed when present), ["cache"] (["hit"]/["miss"]),
    ["status"] and then per status:
    - ["ok"] — ["mapping"] (in the {!Relpipe_model.Mapping_syntax} grammar,
      so responses can be fed back to [relpipe eval]), ["latency"],
      ["failure"];
    - ["infeasible"] — no extra fields (no mapping satisfies the
      objective);
    - ["error"] — ["error"], a human-readable message (parse failure,
      inapplicable method, exceeded budget, ...). *)

open Relpipe_model
open Relpipe_core

val version : int

(** {1 Requests} *)

type instance_src =
  | Inline of string  (** instance text *)
  | File of string  (** path, read by the engine *)

type request = {
  id : string option;
  instance : instance_src;
  objective : Instance.objective;
  method_ : Solver.method_;
  budget : int option;
}

val request :
  ?id:string ->
  ?budget:int ->
  ?method_:Solver.method_ ->
  instance:instance_src ->
  Instance.objective ->
  request
(** [method_] defaults to [Solver.Auto]. *)

val method_names : (string * Solver.method_) list
(** The CLI's method vocabulary (["auto"], ["exact"], ["polynomial"],
    ["portfolio"], and the heuristic names). *)

val method_to_string : Solver.method_ -> string

val method_of_string : string -> (Solver.method_, string) result

val encode_request : request -> string
(** One JSON line (no trailing newline). *)

val decode_request : string -> (request, string) result
(** Inverse of {!encode_request}; rejects missing/foreign versions,
    malformed JSON and unknown methods with a message (never raises). *)

(** {1 Responses} *)

type outcome =
  | Solved of { mapping : string; latency : float; failure : float }
      (** [mapping] in {!Relpipe_model.Mapping_syntax} concrete syntax *)
  | Infeasible
  | Failed of string

type cache_origin = Hit | Miss

type response = {
  r_id : string option;
  r_index : int;
  r_cache : cache_origin;
  r_outcome : outcome;
}

val mapping_to_syntax : Mapping.t -> string
(** ["1-2:0,1; 3:2"] — parses back with {!Relpipe_model.Mapping_syntax}. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result
