open Relpipe_model

let version = 1

let quantize x =
  if Float.is_finite x then float_of_string (Printf.sprintf "%.12g" x) else x

(* The canonical serialization renders every float at the quantization
   precision, so values equal after quantization serialize identically. *)
let q x = Printf.sprintf "%.12g" x

type normalized = { key : string; perm : int array }

let canonical_perm platform ~symmetric =
  let m = Platform.size platform in
  let perm = Array.init m Fun.id in
  if symmetric then
    (* Stable order on (quantized speed, quantized failure), falling back
       to the declared index so equal processors keep a deterministic
       relative order. *)
    Array.sort
      (fun a b ->
        let c =
          Float.compare
            (quantize (Platform.speed platform a))
            (quantize (Platform.speed platform b))
        in
        if c <> 0 then c
        else
          let c =
            Float.compare
              (quantize (Platform.failure platform a))
              (quantize (Platform.failure platform b))
          in
          if c <> 0 then c else Int.compare a b)
      perm;
  perm

let normalize ~budget ~method_ instance objective =
  let pipeline = instance.Instance.pipeline in
  let platform = instance.Instance.platform in
  let n = Pipeline.length pipeline in
  let m = Platform.size platform in
  let common_bw = Classify.common_bandwidth platform in
  let symmetric = Option.is_some common_bw in
  let perm = canonical_perm platform ~symmetric in
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "relpipe-canon/v%d\n" version;
  addf "method %s budget %d\n" (Protocol.method_to_string method_) budget;
  (match objective with
  | Instance.Min_failure { max_latency } ->
      addf "objective min_failure %s\n" (q max_latency)
  | Instance.Min_latency { max_failure } ->
      addf "objective min_latency %s\n" (q max_failure));
  addf "n %d m %d\n" n m;
  addf "input %s\n" (q (Pipeline.delta pipeline 0));
  for k = 1 to n do
    addf "stage %s %s\n" (q (Pipeline.work pipeline k)) (q (Pipeline.delta pipeline k))
  done;
  Array.iter
    (fun u ->
      addf "proc %s %s\n" (q (Platform.speed platform u)) (q (Platform.failure platform u)))
    perm;
  (match common_bw with
  | Some b -> addf "links homog %s\n" (q b)
  | None ->
      (* Full matrix in declared order ([perm] is the identity here): the
         one-port clique including the Pin/Pout endpoints. *)
      let endpoints =
        (Platform.Pin :: List.map (fun u -> Platform.Proc u) (Platform.procs platform))
        @ [ Platform.Pout ]
      in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then addf "link %d %d %s\n" i j (q (Platform.bandwidth platform a b)))
            endpoints)
        endpoints);
  let key = Printf.sprintf "v%d:%s" version (Digest.to_hex (Digest.string (Buffer.contents buf))) in
  { key; perm }

let same_perm a b =
  Array.length a = Array.length b && Array.for_all2 Int.equal a b

let translate ~from_perm ~to_perm ~n ~m mapping =
  if Array.length from_perm <> Array.length to_perm then
    invalid_arg "Canon.translate: permutation lengths differ";
  if same_perm from_perm to_perm then mapping
  else begin
    let inv = Array.make (Array.length from_perm) 0 in
    Array.iteri (fun position u -> inv.(u) <- position) from_perm;
    let tr u = to_perm.(inv.(u)) in
    Mapping.make ~n ~m
      (List.map
         (fun iv ->
           { iv with Mapping.procs = List.sort Int.compare (List.map tr iv.Mapping.procs) })
         (Mapping.intervals mapping))
  end
