(* Streaming atlas driver.  See atlas.mli for the contract. *)

open Relpipe_model
module Obs = Relpipe_obs.Obs
module Stream = Relpipe_obs.Stream
module Smap = Map.Make (String)

type slot = {
  sl_text : string;
  sl_objective : Instance.objective;
  sl_method : Relpipe_core.Solver.method_;
  sl_class : string;
}

type event = { ev_index : int; ev_slot : int; ev_gap_ns : int }

type source = { slots : slot array; events : (event -> unit) -> unit }

type report = {
  requests : int;
  pool : int;
  chunk : int;
  chunks : int;
  solved : int;
  infeasible : int;
  failed : int;
  cache_hits : int;
  distinct_slots : int;
  bloom_dups : int;
  bloom_bits : int;
  bloom_hashes : int;
  bloom_set_bits : int;
  latency : Stream.Quantile.t;
  gap_ewma_ns : float;
  hit_ewma : float;
  total_gap_ns : int;
  curve : (int * float) list;
  class_counts : (string * int) list;
}

(* The bloom filter keys on request content, not slot index, so it sees
   exactly what a cache in front of the service would see.  [%h] renders
   thresholds exactly (hex floats), keeping keys injective. *)
let bloom_key slot =
  let obj =
    match slot.sl_objective with
    | Instance.Min_latency { max_failure } -> Printf.sprintf "ml:%h" max_failure
    | Instance.Min_failure { max_latency } -> Printf.sprintf "mf:%h" max_latency
  in
  Printf.sprintf "%s\n%s\n%s"
    (Protocol.method_to_string slot.sl_method)
    obj slot.sl_text

let request_of_slot slot =
  Protocol.request ~method_:slot.sl_method
    ~instance:(Protocol.Inline slot.sl_text) slot.sl_objective

let run ?obs ?(chunk = 512) ?(accuracy = 0.01) ?(ewma_alpha = 0.05)
    ?(bloom_fp = 0.01) ?(bloom_expected = 65536) ~solve source =
  if Array.length source.slots = 0 then
    invalid_arg "Atlas.run: empty slot array";
  if chunk <= 0 then invalid_arg "Atlas.run: chunk must be positive";
  let pool = Array.length source.slots in
  let latency = Stream.Quantile.create ~accuracy () in
  let gap_ewma = Stream.Ewma.create ~alpha:ewma_alpha in
  let hit_ewma = Stream.Ewma.create ~alpha:ewma_alpha in
  let bloom = Stream.Bloom.create ~fp_rate:bloom_fp ~expected:bloom_expected () in
  let touched = Array.make pool false in
  let requests = ref 0 in
  let answered = ref 0 in
  let chunks = ref 0 in
  let solved = ref 0 in
  let infeasible = ref 0 in
  let failed = ref 0 in
  let cache_hits = ref 0 in
  let bloom_dups = ref 0 in
  let total_gap_ns = ref 0 in
  let curve = ref [] in
  let class_counts = ref Smap.empty in
  (* One chunk of pending requests: the only stream-length-proportional
     thing the driver ever holds is this buffer. *)
  let buf = Array.make chunk None in
  let buf_len = ref 0 in
  let next_checkpoint = ref 10 in
  let flush () =
    if !buf_len > 0 then begin
      let reqs =
        Array.init !buf_len (fun i ->
            match buf.(i) with Some r -> r | None -> assert false)
      in
      Array.fill buf 0 !buf_len None;
      let n = !buf_len in
      buf_len := 0;
      let resps = solve reqs in
      if Array.length resps <> n then
        invalid_arg "Atlas.run: solver returned wrong response count";
      incr chunks;
      Obs.incr obs "atlas.chunks";
      Array.iter
        (fun (r : Protocol.response) ->
          (match r.Protocol.r_cache with
          | Protocol.Hit ->
              incr cache_hits;
              Obs.incr obs "atlas.cache_hits";
              Stream.Ewma.observe hit_ewma 1.0
          | Protocol.Miss -> Stream.Ewma.observe hit_ewma 0.0);
          incr answered;
          if !answered = !next_checkpoint then begin
            curve :=
              (!answered, float_of_int !cache_hits /. float_of_int !answered)
              :: !curve;
            next_checkpoint := !next_checkpoint * 10
          end;
          match r.Protocol.r_outcome with
          | Protocol.Solved { latency = l; _ } ->
              incr solved;
              Obs.incr obs "atlas.solved";
              Obs.observe obs "atlas.latency" l;
              Stream.Quantile.add latency l
          | Protocol.Infeasible ->
              incr infeasible;
              Obs.incr obs "atlas.infeasible"
          | Protocol.Failed _ ->
              incr failed;
              Obs.incr obs "atlas.failed")
        resps
    end
  in
  source.events (fun ev ->
      if ev.ev_slot < 0 || ev.ev_slot >= pool then
        invalid_arg "Atlas.run: event slot out of range";
      let slot = source.slots.(ev.ev_slot) in
      incr requests;
      Obs.incr obs "atlas.requests";
      touched.(ev.ev_slot) <- true;
      if ev.ev_index > 0 then begin
        total_gap_ns := !total_gap_ns + ev.ev_gap_ns;
        Stream.Ewma.observe gap_ewma (float_of_int ev.ev_gap_ns)
      end;
      if Stream.Bloom.add bloom (bloom_key slot) then begin
        incr bloom_dups;
        Obs.incr obs "atlas.bloom_dups"
      end;
      class_counts :=
        Smap.update slot.sl_class
          (function None -> Some 1 | Some c -> Some (c + 1))
          !class_counts;
      buf.(!buf_len) <- Some (request_of_slot slot);
      incr buf_len;
      if !buf_len >= chunk then flush ());
  flush ();
  (* Final checkpoint: the stream end, whatever the length. *)
  let curve =
    let c = !curve in
    let at_end =
      match c with (p, _) :: _ when p = !answered -> true | _ -> false
    in
    let c =
      if at_end || !answered = 0 then c
      else (!answered, float_of_int !cache_hits /. float_of_int !answered) :: c
    in
    List.rev c
  in
  let distinct_slots =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 touched
  in
  Obs.gauge_set obs "atlas.pool" pool;
  Obs.gauge_set obs "atlas.distinct_slots" distinct_slots;
  Obs.gauge_set obs "stream.bloom.set_bits" (Stream.Bloom.set_bits bloom);
  Obs.gauge_set obs "stream.sketch.buckets"
    (List.length (Stream.Quantile.buckets latency));
  {
    requests = !requests;
    pool;
    chunk;
    chunks = !chunks;
    solved = !solved;
    infeasible = !infeasible;
    failed = !failed;
    cache_hits = !cache_hits;
    distinct_slots;
    bloom_dups = !bloom_dups;
    bloom_bits = Stream.Bloom.bits bloom;
    bloom_hashes = Stream.Bloom.hashes bloom;
    bloom_set_bits = Stream.Bloom.set_bits bloom;
    latency;
    gap_ewma_ns = Stream.Ewma.value gap_ewma;
    hit_ewma = Stream.Ewma.value hit_ewma;
    total_gap_ns = !total_gap_ns;
    curve;
    class_counts = Smap.bindings !class_counts;
  }

let hit_rate r =
  if r.requests = 0 then 0.0
  else float_of_int r.cache_hits /. float_of_int r.requests

let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "relpipe atlas report\n";
  pf "requests:       %d (pool %d, distinct %d)\n" r.requests r.pool
    r.distinct_slots;
  pf "chunks:         %d (chunk %d)\n" r.chunks r.chunk;
  pf "outcomes:       solved %d, infeasible %d, failed %d\n" r.solved
    r.infeasible r.failed;
  pf "cache:          hits %d (rate %.4f, ewma %.4f)\n" r.cache_hits
    (hit_rate r) r.hit_ewma;
  pf "bloom:          dups %d (bits %d, hashes %d, set %d)\n" r.bloom_dups
    r.bloom_bits r.bloom_hashes r.bloom_set_bits;
  let q phi = Stream.Quantile.quantile r.latency phi in
  pf "latency:        p50 %.6g, p90 %.6g, p95 %.6g, p99 %.6g (n %d, accuracy %g)\n"
    (q 0.5) (q 0.9) (q 0.95) (q 0.99)
    (Stream.Quantile.count r.latency)
    (Stream.Quantile.accuracy r.latency);
  let rate =
    if r.requests <= 1 || r.total_gap_ns = 0 then 0.0
    else
      float_of_int (r.requests - 1) *. 1e9 /. float_of_int r.total_gap_ns
  in
  pf "arrivals:       %.1f req/s offered (gap ewma %.0f ns, stream span %d ns)\n"
    rate r.gap_ewma_ns r.total_gap_ns;
  pf "hit-rate curve:";
  List.iter (fun (pos, rate) -> pf " %d:%.4f" pos rate) r.curve;
  pf "\n";
  pf "classes:       ";
  List.iter (fun (cls, n) -> pf " %s:%d" cls n) r.class_counts;
  pf "\n";
  Buffer.contents b
