open Relpipe_model
open Relpipe_core

let version = 1

type instance_src = Inline of string | File of string

type request = {
  id : string option;
  instance : instance_src;
  objective : Instance.objective;
  method_ : Solver.method_;
  budget : int option;
}

let request ?id ?budget ?(method_ = Solver.Auto) ~instance objective =
  { id; instance; objective; method_; budget }

let method_names =
  [
    ("auto", Solver.Auto);
    ("exact", Solver.Exact_enum);
    ("polynomial", Solver.Polynomial);
    ("portfolio", Solver.Portfolio);
    ("single-greedy", Solver.Heuristic Heuristics.Single_greedy);
    ("split-replicate", Solver.Heuristic Heuristics.Split_replicate);
    ("local-search", Solver.Heuristic Heuristics.Local_search);
    ("annealing", Solver.Heuristic Heuristics.Annealing);
    ("iterated-ls", Solver.Heuristic Heuristics.Iterated);
  ]

let method_to_string m =
  match m with
  | Solver.Auto -> "auto"
  | Solver.Exact_enum -> "exact"
  | Solver.Polynomial -> "polynomial"
  | Solver.Portfolio -> "portfolio"
  | Solver.Heuristic h -> (
      match h with
      | Heuristics.Single_greedy -> "single-greedy"
      | Heuristics.Split_replicate -> "split-replicate"
      | Heuristics.Local_search -> "local-search"
      | Heuristics.Annealing -> "annealing"
      | Heuristics.Iterated -> "iterated-ls")

let method_of_string s =
  match List.assoc_opt s method_names with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown method %S (expected one of %s)" s
           (String.concat ", " (List.map fst method_names)))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let objective_to_json = function
  | Instance.Min_failure { max_latency } ->
      Json.Obj
        [ ("minimize", Json.Str "failure"); ("max_latency", Json.float max_latency) ]
  | Instance.Min_latency { max_failure } ->
      Json.Obj
        [ ("minimize", Json.Str "latency"); ("max_failure", Json.float max_failure) ]

let encode_request r =
  let fields = [ ("v", Json.Int version) ] in
  let fields =
    fields @ (match r.id with Some id -> [ ("id", Json.Str id) ] | None -> [])
  in
  let fields =
    fields
    @ (match r.instance with
      | Inline text -> [ ("instance", Json.Str text) ]
      | File path -> [ ("instance_file", Json.Str path) ])
    @ [
        ("objective", objective_to_json r.objective);
        ("method", Json.Str (method_to_string r.method_));
      ]
    @ (match r.budget with Some b -> [ ("budget", Json.Int b) ] | None -> [])
  in
  Json.to_string (Json.Obj fields)

let ( let* ) = Result.bind

let check_version j =
  match Json.member "v" j with
  | None -> Error "missing \"v\" (protocol version)"
  | Some v -> (
      match Json.to_int v with
      | Some n when n = version -> Ok ()
      | Some n -> Error (Printf.sprintf "unsupported protocol version %d" n)
      | None -> Error "\"v\" must be an integer")

let decode_objective j =
  match Json.member "objective" j with
  | None -> Error "missing \"objective\""
  | Some o -> (
      let threshold name =
        match Option.bind (Json.member name o) Json.to_float with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "objective: missing number %S" name)
      in
      match Option.bind (Json.member "minimize" o) Json.to_str with
      | Some "failure" ->
          let* max_latency = threshold "max_latency" in
          Ok (Instance.Min_failure { max_latency })
      | Some "latency" ->
          let* max_failure = threshold "max_failure" in
          Ok (Instance.Min_latency { max_failure })
      | Some other ->
          Error
            (Printf.sprintf
               "objective: \"minimize\" must be \"failure\" or \"latency\", \
                got %S"
               other)
      | None -> Error "objective: missing string \"minimize\"")

let decode_request line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* () = check_version j in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let* instance =
    match (str "instance", str "instance_file") with
    | Some text, None -> Ok (Inline text)
    | None, Some path -> Ok (File path)
    | Some _, Some _ -> Error "pass \"instance\" or \"instance_file\", not both"
    | None, None -> Error "missing \"instance\" or \"instance_file\""
  in
  let* objective = decode_objective j in
  let* method_ =
    match str "method" with
    | None -> Ok Solver.Auto
    | Some name -> method_of_string name
  in
  let* budget =
    match Json.member "budget" j with
    | None -> Ok None
    | Some b -> (
        match Json.to_int b with
        | Some n when n > 0 -> Ok (Some n)
        | _ -> Error "\"budget\" must be a positive integer")
  in
  Ok { id = str "id"; instance; objective; method_; budget }

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Solved of { mapping : string; latency : float; failure : float }
  | Infeasible
  | Failed of string

type cache_origin = Hit | Miss

type response = {
  r_id : string option;
  r_index : int;
  r_cache : cache_origin;
  r_outcome : outcome;
}

let mapping_to_syntax mapping =
  String.concat "; "
    (List.map
       (fun iv ->
         let range =
           if iv.Mapping.first = iv.Mapping.last then
             string_of_int iv.Mapping.first
           else Printf.sprintf "%d-%d" iv.Mapping.first iv.Mapping.last
         in
         range ^ ":" ^ String.concat "," (List.map string_of_int iv.Mapping.procs))
       (Mapping.intervals mapping))

let encode_response r =
  let fields =
    [ ("v", Json.Int version); ("index", Json.Int r.r_index) ]
    @ (match r.r_id with Some id -> [ ("id", Json.Str id) ] | None -> [])
    @ [ ("cache", Json.Str (match r.r_cache with Hit -> "hit" | Miss -> "miss")) ]
    @ (match r.r_outcome with
      | Solved { mapping; latency; failure } ->
          [
            ("status", Json.Str "ok");
            ("mapping", Json.Str mapping);
            ("latency", Json.float latency);
            ("failure", Json.float failure);
          ]
      | Infeasible -> [ ("status", Json.Str "infeasible") ]
      | Failed msg -> [ ("status", Json.Str "error"); ("error", Json.Str msg) ])
  in
  Json.to_string (Json.Obj fields)

let decode_response line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* () = check_version j in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let* r_index =
    match Option.bind (Json.member "index" j) Json.to_int with
    | Some i -> Ok i
    | None -> Error "missing integer \"index\""
  in
  let* r_cache =
    match str "cache" with
    | Some "hit" -> Ok Hit
    | Some "miss" -> Ok Miss
    | Some other -> Error (Printf.sprintf "invalid \"cache\" value %S" other)
    | None -> Error "missing \"cache\""
  in
  let* r_outcome =
    match str "status" with
    | Some "ok" -> (
        let num name = Option.bind (Json.member name j) Json.to_float in
        match (str "mapping", num "latency", num "failure") with
        | Some mapping, Some latency, Some failure ->
            Ok (Solved { mapping; latency; failure })
        | _ -> Error "status \"ok\" requires mapping, latency and failure")
    | Some "infeasible" -> Ok Infeasible
    | Some "error" -> (
        match str "error" with
        | Some msg -> Ok (Failed msg)
        | None -> Error "status \"error\" requires an \"error\" message")
    | Some other -> Error (Printf.sprintf "invalid \"status\" value %S" other)
    | None -> Error "missing \"status\""
  in
  Ok { r_id = str "id"; r_index; r_cache; r_outcome }

(* ------------------------------------------------------------------ *)
(* Control messages (the serve daemon's session vocabulary)            *)
(* ------------------------------------------------------------------ *)

type control =
  | Hello of { client : string option; protocols : int list }
  | Stats
  | Shutdown

let hello ?client () = Hello { client; protocols = [ version ] }

type server_error =
  | Version_mismatch of { offered : int list }
  | Unknown_op of string
  | Invalid_control of string
  | Hello_required

let error_code = function
  | Version_mismatch _ -> "version-mismatch"
  | Unknown_op _ -> "unknown-op"
  | Invalid_control _ -> "invalid-control"
  | Hello_required -> "hello-required"

let server_error_to_string = function
  | Version_mismatch { offered } ->
      Printf.sprintf "no common protocol version: server speaks %d, client offered %s"
        version
        (String.concat ", " (List.map string_of_int offered))
  | Unknown_op op -> Printf.sprintf "unknown method %S (expected hello, stats or shutdown)" op
  | Invalid_control msg -> msg
  | Hello_required -> "session must open with a hello handshake before sending requests"

type inbound =
  | Control of control
  | Solve of (request, string) result

let decode_inbound line =
  match Json.parse line with
  | Error _ ->
      (* Malformed JSON is answered on the solve path (a per-request
         [error] response), exactly as `relpipe batch` answers it. *)
      Ok (Solve (decode_request line))
  | Ok j -> (
      match Json.member "op" j with
      | None -> Ok (Solve (decode_request line))
      | Some op_j -> (
          match Json.to_str op_j with
          | None -> Error (Invalid_control "\"op\" must be a string")
          | Some op -> (
              match Option.bind (Json.member "v" j) Json.to_int with
              | None -> Error (Invalid_control "missing integer \"v\" (protocol version)")
              | Some n when n <> version -> Error (Version_mismatch { offered = [ n ] })
              | Some _ -> (
                  match op with
                  | "hello" -> (
                      let client = Option.bind (Json.member "client" j) Json.to_str in
                      let protocols =
                        match Json.member "protocols" j with
                        | None -> Ok [ version ]
                        | Some l -> (
                            match
                              Option.map
                                (List.map Json.to_int)
                                (Json.to_list l)
                            with
                            | Some items when List.for_all Option.is_some items
                              ->
                                Ok (List.filter_map Fun.id items)
                            | _ ->
                                Error
                                  (Invalid_control
                                     "\"protocols\" must be a list of integers"))
                      in
                      match protocols with
                      | Error e -> Error e
                      | Ok ps when not (List.exists (fun p -> p = version) ps)
                        ->
                          Error (Version_mismatch { offered = ps })
                      | Ok ps -> Ok (Control (Hello { client; protocols = ps })))
                  | "stats" -> Ok (Control Stats)
                  | "shutdown" -> Ok (Control Shutdown)
                  | other -> Error (Unknown_op other)))))

let encode_control c =
  let fields = [ ("v", Json.Int version) ] in
  let fields =
    match c with
    | Hello { client; protocols } ->
        fields
        @ [ ("op", Json.Str "hello") ]
        @ (match client with Some c -> [ ("client", Json.Str c) ] | None -> [])
        @ (match protocols with
          | [ p ] when p = version -> []  (* the default; keep the line short *)
          | ps -> [ ("protocols", Json.List (List.map (fun p -> Json.Int p) ps)) ])
    | Stats -> fields @ [ ("op", Json.Str "stats") ]
    | Shutdown -> fields @ [ ("op", Json.Str "shutdown") ]
  in
  Json.to_string (Json.Obj fields)

(* ------------------------------------------------------------------ *)
(* Control replies                                                     *)
(* ------------------------------------------------------------------ *)

type control_reply =
  | Hello_ok of { protocol : int }
  | Stats_ok of (string * Relpipe_obs.Metric.view) list
  | Shutdown_ok of { draining : bool }
  | Refused of server_error

let metric_to_json (name, view) =
  let module M = Relpipe_obs.Metric in
  Json.Obj
    (("name", Json.Str name)
    ::
    (match view with
    | M.Counter_v v -> [ ("kind", Json.Str "counter"); ("value", Json.Int v) ]
    | M.Gauge_v v -> [ ("kind", Json.Str "gauge"); ("value", Json.Int v) ]
    | M.Histogram_v { count; sum } ->
        [
          ("kind", Json.Str "histogram");
          ("count", Json.Int count);
          ("sum", Json.float sum);
        ]))

let encode_control_reply r =
  let obj fields = Json.to_string (Json.Obj (("v", Json.Int version) :: fields)) in
  match r with
  | Hello_ok { protocol } ->
      obj
        [
          ("op", Json.Str "hello"); ("ok", Json.Bool true);
          ("protocol", Json.Int protocol);
        ]
  | Stats_ok metrics ->
      obj
        [
          ("op", Json.Str "stats"); ("ok", Json.Bool true);
          ("metrics", Json.List (List.map metric_to_json metrics));
        ]
  | Shutdown_ok { draining } ->
      obj
        [
          ("op", Json.Str "shutdown"); ("ok", Json.Bool true);
          ("draining", Json.Bool draining);
        ]
  | Refused err ->
      obj
        ([
           ("op", Json.Str "error"); ("ok", Json.Bool false);
           ("code", Json.Str (error_code err));
         ]
        @ (match err with
          | Version_mismatch { offered } ->
              [ ("offered", Json.List (List.map (fun p -> Json.Int p) offered)) ]
          | Unknown_op op -> [ ("method", Json.Str op) ]
          | Invalid_control _ | Hello_required -> [])
        @ [ ("error", Json.Str (server_error_to_string err)) ])

let decode_control_reply line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* () = check_version j in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int_ name = Option.bind (Json.member name j) Json.to_int in
  match str "op" with
  | Some "hello" -> (
      match int_ "protocol" with
      | Some protocol -> Ok (Hello_ok { protocol })
      | None -> Error "hello reply: missing integer \"protocol\"")
  | Some "stats" -> (
      let module M = Relpipe_obs.Metric in
      let metric_of_json m =
        let mstr name = Option.bind (Json.member name m) Json.to_str in
        let mint name = Option.bind (Json.member name m) Json.to_int in
        match (mstr "name", mstr "kind") with
        | Some name, Some "counter" -> (
            match mint "value" with
            | Some v -> Ok (name, M.Counter_v v)
            | None -> Error "stats reply: counter without integer \"value\"")
        | Some name, Some "gauge" -> (
            match mint "value" with
            | Some v -> Ok (name, M.Gauge_v v)
            | None -> Error "stats reply: gauge without integer \"value\"")
        | Some name, Some "histogram" -> (
            match (mint "count", Option.bind (Json.member "sum" m) Json.to_float)
            with
            | Some count, Some sum -> Ok (name, M.Histogram_v { count; sum })
            | _ -> Error "stats reply: histogram without count/sum")
        | Some _, Some other ->
            Error (Printf.sprintf "stats reply: unknown metric kind %S" other)
        | _ -> Error "stats reply: metric without name/kind"
      in
      match Option.bind (Json.member "metrics" j) Json.to_list with
      | None -> Error "stats reply: missing \"metrics\" list"
      | Some items ->
          let rec go acc = function
            | [] -> Ok (Stats_ok (List.rev acc))
            | m :: rest -> (
                match metric_of_json m with
                | Ok binding -> go (binding :: acc) rest
                | Error e -> Error e)
          in
          go [] items)
  | Some "shutdown" -> (
      match Option.bind (Json.member "draining" j) Json.to_bool with
      | Some draining -> Ok (Shutdown_ok { draining })
      | None -> Error "shutdown reply: missing boolean \"draining\"")
  | Some "error" -> (
      let msg = Option.value ~default:"" (str "error") in
      match str "code" with
      | Some "version-mismatch" ->
          let offered =
            match Option.bind (Json.member "offered" j) Json.to_list with
            | Some items -> List.filter_map Json.to_int items
            | None -> []
          in
          Ok (Refused (Version_mismatch { offered }))
      | Some "unknown-op" -> (
          match str "method" with
          | Some op -> Ok (Refused (Unknown_op op))
          | None -> Error "error reply: unknown-op without \"method\"")
      | Some "invalid-control" -> Ok (Refused (Invalid_control msg))
      | Some "hello-required" -> Ok (Refused Hello_required)
      | Some other -> Error (Printf.sprintf "error reply: unknown code %S" other)
      | None -> Error "error reply: missing \"code\"")
  | Some other -> Error (Printf.sprintf "invalid reply \"op\" value %S" other)
  | None -> Error "missing \"op\""
