open Relpipe_model
open Relpipe_core

let version = 1

type instance_src = Inline of string | File of string

type request = {
  id : string option;
  instance : instance_src;
  objective : Instance.objective;
  method_ : Solver.method_;
  budget : int option;
}

let request ?id ?budget ?(method_ = Solver.Auto) ~instance objective =
  { id; instance; objective; method_; budget }

let method_names =
  [
    ("auto", Solver.Auto);
    ("exact", Solver.Exact_enum);
    ("polynomial", Solver.Polynomial);
    ("portfolio", Solver.Portfolio);
    ("single-greedy", Solver.Heuristic Heuristics.Single_greedy);
    ("split-replicate", Solver.Heuristic Heuristics.Split_replicate);
    ("local-search", Solver.Heuristic Heuristics.Local_search);
    ("annealing", Solver.Heuristic Heuristics.Annealing);
    ("iterated-ls", Solver.Heuristic Heuristics.Iterated);
  ]

let method_to_string m =
  match m with
  | Solver.Auto -> "auto"
  | Solver.Exact_enum -> "exact"
  | Solver.Polynomial -> "polynomial"
  | Solver.Portfolio -> "portfolio"
  | Solver.Heuristic h -> (
      match h with
      | Heuristics.Single_greedy -> "single-greedy"
      | Heuristics.Split_replicate -> "split-replicate"
      | Heuristics.Local_search -> "local-search"
      | Heuristics.Annealing -> "annealing"
      | Heuristics.Iterated -> "iterated-ls")

let method_of_string s =
  match List.assoc_opt s method_names with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown method %S (expected one of %s)" s
           (String.concat ", " (List.map fst method_names)))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let objective_to_json = function
  | Instance.Min_failure { max_latency } ->
      Json.Obj
        [ ("minimize", Json.Str "failure"); ("max_latency", Json.float max_latency) ]
  | Instance.Min_latency { max_failure } ->
      Json.Obj
        [ ("minimize", Json.Str "latency"); ("max_failure", Json.float max_failure) ]

let encode_request r =
  let fields = [ ("v", Json.Int version) ] in
  let fields =
    fields @ (match r.id with Some id -> [ ("id", Json.Str id) ] | None -> [])
  in
  let fields =
    fields
    @ (match r.instance with
      | Inline text -> [ ("instance", Json.Str text) ]
      | File path -> [ ("instance_file", Json.Str path) ])
    @ [
        ("objective", objective_to_json r.objective);
        ("method", Json.Str (method_to_string r.method_));
      ]
    @ (match r.budget with Some b -> [ ("budget", Json.Int b) ] | None -> [])
  in
  Json.to_string (Json.Obj fields)

let ( let* ) = Result.bind

let check_version j =
  match Json.member "v" j with
  | None -> Error "missing \"v\" (protocol version)"
  | Some v -> (
      match Json.to_int v with
      | Some n when n = version -> Ok ()
      | Some n -> Error (Printf.sprintf "unsupported protocol version %d" n)
      | None -> Error "\"v\" must be an integer")

let decode_objective j =
  match Json.member "objective" j with
  | None -> Error "missing \"objective\""
  | Some o -> (
      let threshold name =
        match Option.bind (Json.member name o) Json.to_float with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "objective: missing number %S" name)
      in
      match Option.bind (Json.member "minimize" o) Json.to_str with
      | Some "failure" ->
          let* max_latency = threshold "max_latency" in
          Ok (Instance.Min_failure { max_latency })
      | Some "latency" ->
          let* max_failure = threshold "max_failure" in
          Ok (Instance.Min_latency { max_failure })
      | Some other ->
          Error
            (Printf.sprintf
               "objective: \"minimize\" must be \"failure\" or \"latency\", \
                got %S"
               other)
      | None -> Error "objective: missing string \"minimize\"")

let decode_request line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* () = check_version j in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let* instance =
    match (str "instance", str "instance_file") with
    | Some text, None -> Ok (Inline text)
    | None, Some path -> Ok (File path)
    | Some _, Some _ -> Error "pass \"instance\" or \"instance_file\", not both"
    | None, None -> Error "missing \"instance\" or \"instance_file\""
  in
  let* objective = decode_objective j in
  let* method_ =
    match str "method" with
    | None -> Ok Solver.Auto
    | Some name -> method_of_string name
  in
  let* budget =
    match Json.member "budget" j with
    | None -> Ok None
    | Some b -> (
        match Json.to_int b with
        | Some n when n > 0 -> Ok (Some n)
        | _ -> Error "\"budget\" must be a positive integer")
  in
  Ok { id = str "id"; instance; objective; method_; budget }

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Solved of { mapping : string; latency : float; failure : float }
  | Infeasible
  | Failed of string

type cache_origin = Hit | Miss

type response = {
  r_id : string option;
  r_index : int;
  r_cache : cache_origin;
  r_outcome : outcome;
}

let mapping_to_syntax mapping =
  String.concat "; "
    (List.map
       (fun iv ->
         let range =
           if iv.Mapping.first = iv.Mapping.last then
             string_of_int iv.Mapping.first
           else Printf.sprintf "%d-%d" iv.Mapping.first iv.Mapping.last
         in
         range ^ ":" ^ String.concat "," (List.map string_of_int iv.Mapping.procs))
       (Mapping.intervals mapping))

let encode_response r =
  let fields =
    [ ("v", Json.Int version); ("index", Json.Int r.r_index) ]
    @ (match r.r_id with Some id -> [ ("id", Json.Str id) ] | None -> [])
    @ [ ("cache", Json.Str (match r.r_cache with Hit -> "hit" | Miss -> "miss")) ]
    @ (match r.r_outcome with
      | Solved { mapping; latency; failure } ->
          [
            ("status", Json.Str "ok");
            ("mapping", Json.Str mapping);
            ("latency", Json.float latency);
            ("failure", Json.float failure);
          ]
      | Infeasible -> [ ("status", Json.Str "infeasible") ]
      | Failed msg -> [ ("status", Json.Str "error"); ("error", Json.Str msg) ])
  in
  Json.to_string (Json.Obj fields)

let decode_response line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* () = check_version j in
  let str name = Option.bind (Json.member name j) Json.to_str in
  let* r_index =
    match Option.bind (Json.member "index" j) Json.to_int with
    | Some i -> Ok i
    | None -> Error "missing integer \"index\""
  in
  let* r_cache =
    match str "cache" with
    | Some "hit" -> Ok Hit
    | Some "miss" -> Ok Miss
    | Some other -> Error (Printf.sprintf "invalid \"cache\" value %S" other)
    | None -> Error "missing \"cache\""
  in
  let* r_outcome =
    match str "status" with
    | Some "ok" -> (
        let num name = Option.bind (Json.member name j) Json.to_float in
        match (str "mapping", num "latency", num "failure") with
        | Some mapping, Some latency, Some failure ->
            Ok (Solved { mapping; latency; failure })
        | _ -> Error "status \"ok\" requires mapping, latency and failure")
    | Some "infeasible" -> Ok Infeasible
    | Some "error" -> (
        match str "error" with
        | Some msg -> Ok (Failed msg)
        | None -> Error "status \"error\" requires an \"error\" message")
    | Some other -> Error (Printf.sprintf "invalid \"status\" value %S" other)
    | None -> Error "missing \"status\""
  in
  Ok { r_id = str "id"; r_index; r_cache; r_outcome }
