(** Canonicalization of solve requests into stable cache keys.

    Two requests share a key exactly when the engine may serve them from
    one solve.  The canonical form is a digest over:

    - a schema version tag (bump {!version} whenever the serialization,
      the quantization or the symmetry rules change — stale keys must
      never alias fresh ones);
    - the method and exact-enumeration budget;
    - the objective with its threshold {e quantized} to 12 significant
      digits ({!quantize}), so thresholds differing only by float noise
      below that precision collapse;
    - the pipeline (input size and per-stage work/output, quantized);
    - the platform, {e modulo the platform class's symmetries}: on
      link-homogeneous platforms (Fully Homogeneous and Communication
      Homogeneous) processors are interchangeable, so they are sorted by
      (quantized speed, quantized failure) and the permutation is
      recorded; on Fully Heterogeneous platforms the bandwidth matrix
      breaks the symmetry and processors keep their declared order (the
      permutation is the identity).

    A cached solution is expressed in its {e representative}'s processor
    indices; {!translate} re-indexes it for another instance with the
    same key through the two recorded permutations. *)

open Relpipe_model

val version : int
(** Schema version baked into every key (currently [1]). *)

val quantize : float -> float
(** Round to 12 significant decimal digits (identity on non-finite
    values). *)

type normalized = {
  key : string;  (** ["v1:<hex digest>"] — the cache key *)
  perm : int array;
      (** canonical position -> original processor index; [perm.(p)] is
          the processor declared at index [perm.(p)] that canonicalizes
          to position [p] *)
}

val normalize :
  budget:int ->
  method_:Relpipe_core.Solver.method_ ->
  Instance.t ->
  Instance.objective ->
  normalized

val same_perm : int array -> int array -> bool

val translate :
  from_perm:int array ->
  to_perm:int array ->
  n:int ->
  m:int ->
  Mapping.t ->
  Mapping.t
(** [translate ~from_perm ~to_perm ~n ~m mapping] re-indexes a mapping
    expressed over the [from_perm] instance onto the [to_perm] instance
    (both with the same canonical key, hence the same [m]).  Returns
    [mapping] unchanged when the permutations agree.
    @raise Invalid_argument if the permutations have different lengths. *)
