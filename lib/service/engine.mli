(** The batch-solving engine: canonicalization, result cache, worker
    pool, protocol — assembled.

    A batch runs in four phases; only phase 3 is parallel, and its jobs
    are pure, so the whole engine is {b deterministic}: the same request
    stream against a fresh engine produces byte-identical response lines
    for {e every} worker count and scheduling.

    + {b prepare} (sequential) — resolve [instance_file] sources, parse
      instance text ({!Relpipe_analysis.Analysis.parse_instance_text}),
      canonicalize ({!Canon.normalize});
    + {b plan} (sequential, submission order) — look each canonical key
      up in the LRU result cache; group unresolved duplicates behind the
      first request with that key (a {e shared} hit);
    + {b solve} (parallel) — run [Solver.run] once per unique miss on the
      {!Pool};
    + {b emit} (sequential) — populate the cache in job order, re-index
      cached mappings through {!Canon.translate} for symmetric hits, and
      encode responses in submission order.

    Cached entries store the full [Solver.run] outcome — including typed
    errors and definitive infeasibility — so failing requests are not
    re-solved either. *)

open Relpipe_model

type t

val create :
  ?obs:Relpipe_obs.Obs.t ->
  ?workers:int ->
  ?cap_to_cpus:bool ->
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?exact_budget:int ->
  unit ->
  t
(** [workers] defaults to {!Pool.cpu_count}[ ()] and is clamped by
    [min(requested, cpu_count)] unless [cap_to_cpus] is [false] (testing:
    oversubscribe a small machine).  [cache_capacity] (default [1024])
    bounds the LRU; [cache_shards] (default [1]) splits it into that many
    independently locked shards ({!Relpipe_util.Lru.Sharded}) so a serve
    daemon can share one engine across concurrent sessions — with one
    shard the hit/miss/eviction sequence is exactly the historical
    single-cache behaviour; [exact_budget] (default [200_000]) is used
    when a request carries none.

    With [obs], the engine records phase spans
    ([engine.phase.prepare/plan/solve/emit]), one [engine.job] span per
    solver run (on a per-job forked clock, merged back in job order), a
    per-response [engine.request] instant, counters
    [engine.requests/solved/infeasible/failed/jobs/shared] and the LRU's
    [engine.cache.hits/misses/evictions].  Instrumentation never changes
    responses, and under a virtual clock the recorded trace and metric
    snapshots are byte-identical for every worker count. *)

val workers : t -> int
(** The effective worker count after clamping. *)

val run_batch : t -> (Protocol.request, string) result array -> Protocol.response array
(** Answer a batch.  [Error msg] slots (e.g. protocol decode failures)
    become per-request [error] responses, never exceptions; response [i]
    answers request [i].  The cache persists across calls on the same
    engine. *)

val run_requests : t -> Protocol.request array -> Protocol.response array
(** {!run_batch} over all-well-formed requests. *)

val run_lines : t -> string list -> string list
(** Decode JSONL request lines (blank lines are dropped), run the batch,
    encode JSONL response lines in request order. *)

val normalize :
  t ->
  ?method_:Relpipe_core.Solver.method_ ->
  ?budget:int ->
  Instance.t ->
  Instance.objective ->
  Canon.normalized
(** The canonical form this engine would compute for a request ([budget]
    defaults to the engine's [exact_budget], [method_] to [Auto]) — the
    hook the fuzzer's cache-invariance oracle uses to compare keys
    without running a solve. *)

val solve_instance :
  t ->
  ?method_:Relpipe_core.Solver.method_ ->
  ?budget:int ->
  Instance.t ->
  Instance.objective ->
  Protocol.response
(** One in-memory instance through the engine (index 0, no id) — the
    cache-aware replacement for a bare [Solver.run] in sweep loops. *)

(** {1 Statistics} *)

type stats = {
  requests : int;  (** requests answered since [create] *)
  solved : int;
  infeasible : int;
  failed : int;
  jobs : int;  (** solver executions (unique cache misses) *)
  shared : int;  (** within-batch duplicates served from a sibling's job *)
  cache : Relpipe_util.Lru.stats;
  cache_len : int;
  cache_capacity : int;
  effective_workers : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** [(cache.hits + shared) / requests], [0.] on an empty engine — the
    fraction of requests that did not need their own solver run. *)

val pp_stats : Format.formatter -> stats -> unit
(** The multi-line [--stats] report. *)
