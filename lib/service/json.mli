(** Minimal JSON values, parser and printer for the JSON-lines protocol.

    The toolchain ships no JSON library, so the service carries its own:
    a strict recursive-descent parser (RFC 8259 values, [\uXXXX] escapes
    including surrogate pairs) and a deterministic printer (object fields
    in construction order, floats as ["%.17g"] so numeric payloads
    round-trip bit-exactly).  Non-finite floats have no JSON encoding;
    {!to_string} renders them as the strings ["inf"], ["-inf"], ["nan"]
    and {!to_float} decodes those strings back, keeping the
    request/response codec total. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in declaration order *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error.
    Errors read ["offset N: message"].  The literal ["-0"] parses as
    [Float (-0.)] (not [Int 0]) so negative zero survives a print→parse
    round-trip bit-identically. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines, no spaces), suitable for
    JSON-lines output. *)

(** {1 Accessors}

    All return [Option]; absent fields and type mismatches are [None]. *)

val member : string -> t -> t option
(** Field of an object ([None] on non-objects too). *)

val to_int : t -> int option
(** [Int], or a [Float] with integral value. *)

val to_float : t -> float option
(** [Int] or [Float], plus the non-finite spellings (["inf"], ["-inf"],
    ["nan"], case-insensitive) as strings. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val float : float -> t
(** Non-finite-safe constructor: finite values become [Float], non-finite
    ones the string spellings accepted by {!to_float}. *)
