(** Compensated prefix sums over float arrays.

    The solver kernels price stage intervals [\[first, last\]] thousands of
    times per solve; a prefix-sum table makes each interval total an O(1)
    subtraction instead of a rescan.  Building goes through {!Kahan}
    accumulation so the table is as accurate as summing each interval
    directly — {!Relpipe_model.Pipeline} builds its work table with exactly
    this routine, so local copies taken by hot kernels price intervals
    bit-for-bit identically to [Pipeline.work_sum]. *)

val build : float array -> float array
(** [build xs] is the table [p] of length [Array.length xs + 1] with
    [p.(0) = 0.] and [p.(k)] the compensated sum of [xs.(0) .. xs.(k-1)]. *)

val range : float array -> first:int -> last:int -> float
(** [range p ~first ~last] prices the 1-indexed inclusive interval
    [\[first, last\]] against a table built by {!build}:
    [p.(last) -. p.(first - 1)].
    @raise Invalid_argument on an interval outside the table. *)
