type pos = { line : int; col : int }

type span = { start : pos; stop : pos }

let pos ~line ~col = { line; col }

let span start stop = { start; stop }

let span_of_cols ~line ~start_col ~stop_col =
  { start = { line; col = start_col }; stop = { line; col = stop_col } }

let dummy = span_of_cols ~line:1 ~start_col:1 ~stop_col:1

let compare_pos a b =
  let c = Int.compare a.line b.line in
  if c <> 0 then c else Int.compare a.col b.col

let compare_span a b =
  let c = compare_pos a.start b.start in
  if c <> 0 then c else compare_pos a.stop b.stop

let union a b =
  {
    start = (if compare_pos a.start b.start <= 0 then a.start else b.start);
    stop = (if compare_pos a.stop b.stop >= 0 then a.stop else b.stop);
  }

let of_offset text i =
  let i = Int.min (Int.max i 0) (String.length text) in
  let line = ref 1 and bol = ref 0 in
  for j = 0 to i - 1 do
    if text.[j] = '\n' then begin
      incr line;
      bol := j + 1
    end
  done;
  { line = !line; col = i - !bol + 1 }

let span_of_offsets text start stop =
  { start = of_offset text start; stop = of_offset text stop }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if s.start.line = s.stop.line then
    if s.stop.col <= s.start.col + 1 then pp_pos ppf s.start
    else Format.fprintf ppf "%d:%d-%d" s.start.line s.start.col (s.stop.col - 1)
  else Format.fprintf ppf "%a-%a" pp_pos s.start pp_pos s.stop

let to_string s = Format.asprintf "%a" pp_span s
