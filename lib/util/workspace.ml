type floats = float array ref Domain.DLS.key
type ints = int array ref Domain.DLS.key

let floats () : floats = Domain.DLS.new_key (fun () -> ref [||])
let ints () : ints = Domain.DLS.new_key (fun () -> ref [||])

let grow_pow2 have need =
  let cap = ref (if have = 0 then 16 else have) in
  while !cap < need do
    cap := !cap * 2
  done;
  !cap

let get_floats (w : floats) ~len ~fill =
  let cell = Domain.DLS.get w in
  if Array.length !cell < len then
    cell := Array.make (grow_pow2 (Array.length !cell) len) 0.0;
  Array.fill !cell 0 len fill;
  !cell

let get_ints (w : ints) ~len ~fill =
  let cell = Domain.DLS.get w in
  if Array.length !cell < len then
    cell := Array.make (grow_pow2 (Array.length !cell) len) 0;
  Array.fill !cell 0 len fill;
  !cell
