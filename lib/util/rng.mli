(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator.  Every randomized component of
    relpipe threads an explicit [Rng.t] so that experiments and tests are
    reproducible given a seed.  The generator is splittable: [split] derives
    an independent stream, which keeps parallel experiment legs decorrelated
    without global state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val derive : seed:int -> salt:int -> t
(** [derive ~seed ~salt] builds the sub-stream of master [seed] tagged by
    [salt]: [create ((seed lxor (salt * 0x9E3779B9)) land max_int)].
    Distinct salts give decorrelated streams from one master seed — the
    discipline the fuzzer's oracle registry and the churn driver's
    per-event streams share, so whole scenarios replay from a single
    integer. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate).  @raise Invalid_argument if
    [rate <= 0]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)
