(** Source positions and spans for the textual input formats.

    Lines and columns are 1-based; a span covers columns
    [[start.col, stop.col)] (stop column exclusive), possibly across
    lines.  Used by the instance/mapping parsers to report where a
    directive or token came from, and by the static-analysis engine to
    anchor diagnostics. *)

type pos = { line : int; col : int }

type span = { start : pos; stop : pos }

val pos : line:int -> col:int -> pos

val span : pos -> pos -> span

val span_of_cols : line:int -> start_col:int -> stop_col:int -> span
(** Single-line span covering [[start_col, stop_col)]. *)

val dummy : span
(** The whole-input placeholder (line 1, column 1, empty). *)

val union : span -> span -> span
(** Smallest span covering both arguments. *)

val of_offset : string -> int -> pos
(** [of_offset text i] is the position of byte offset [i] in [text]
    (clamped to the text's end). *)

val span_of_offsets : string -> int -> int -> span
(** [span_of_offsets text start stop] spans byte offsets
    [[start, stop)]. *)

val compare_pos : pos -> pos -> int
val compare_span : span -> span -> int

val pp_pos : Format.formatter -> pos -> unit
(** ["line:col"]. *)

val pp_span : Format.formatter -> span -> unit
(** ["line:col-col"] on one line, ["line:col-line:col"] otherwise. *)

val to_string : span -> string
