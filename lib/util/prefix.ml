let build xs =
  let n = Array.length xs in
  let p = Array.make (n + 1) 0.0 in
  let acc = Kahan.create () in
  for k = 1 to n do
    Kahan.add acc xs.(k - 1);
    p.(k) <- Kahan.sum acc
  done;
  p

let range p ~first ~last =
  if first < 1 || last >= Array.length p || first > last + 1 then
    invalid_arg "Prefix.range: invalid interval";
  p.(last) -. p.(first - 1)
