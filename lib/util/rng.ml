type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let derive ~seed ~salt = create ((seed lxor (salt * 0x9E3779B9)) land max_int)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then go () else v
  in
  go ()

let float t x =
  (* 53 random mantissa bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  let u = float_of_int bits *. 0x1p-53 in
  u *. x

let float_range t lo hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
