(* Classic hash-table + doubly-linked-list LRU.  The list is ordered from
   most recent (head) to least recent (tail); every hit or insertion moves
   the node to the head, and overflow pops the tail. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards the head (more recent) *)
  mutable next : 'v node option;  (* towards the tail (less recent) *)
}

type stats = { hits : int; misses : int; evictions : int }

module Counter = Relpipe_obs.Metric.Counter

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  c_hits : Counter.t;
  c_misses : Counter.t;
  c_evictions : Counter.t;
}

let make_counters counter =
  (counter "hits", counter "misses", counter "evictions")

let create_with counter ~capacity =
  let c_hits, c_misses, c_evictions = make_counters counter in
  {
    cap = capacity;
    table = Hashtbl.create (max 16 (min capacity 4096));
    head = None;
    tail = None;
    c_hits;
    c_misses;
    c_evictions;
  }

let create ~capacity = create_with (fun _ -> Counter.make ()) ~capacity

let create_in ~metrics ~name ~capacity =
  create_with
    (fun suffix -> Relpipe_obs.Metric.counter metrics (name ^ "." ^ suffix))
    ~capacity

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      Counter.incr t.c_hits;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      Counter.incr t.c_misses;
      None

let mem t key = Hashtbl.mem t.table key

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Counter.incr t.c_evictions

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        if Hashtbl.length t.table > t.cap then evict_tail t

let stats t =
  {
    hits = Counter.value t.c_hits;
    misses = Counter.value t.c_misses;
    evictions = Counter.value t.c_evictions;
  }

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

(* ------------------------------------------------------------------ *)
(* Sharded variant                                                     *)
(* ------------------------------------------------------------------ *)

module Sharded = struct
  type 'v plain = 'v t

  type 'v t = {
    lrus : 'v plain array;  (* per-shard single-lock caches *)
    locks : Mutex.t array;
    total_cap : int;
    (* The three counters are shared by every shard (Counter is atomic),
       so stats aggregate across shards under the same names. *)
    s_hits : Counter.t;
    s_misses : Counter.t;
    s_evictions : Counter.t;
  }

  (* FNV-1a (32-bit), written out so the shard of a key is a documented
     pure function of its bytes — never of OCaml's polymorphic hash. *)
  let hash_key key =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
      key;
    !h

  let create_with counter ~shards ~capacity =
    if shards < 1 then invalid_arg "Lru.Sharded.create: shards must be >= 1";
    let capacity = max 0 capacity in
    let c_hits, c_misses, c_evictions = make_counters counter in
    let shared = function
      | "hits" -> c_hits
      | "misses" -> c_misses
      | _ -> c_evictions
    in
    (* Distribute the capacity across shards, the first [capacity mod
       shards] shards getting one extra slot, so the total is exact. *)
    let lrus =
      Array.init shards (fun i ->
          let cap = (capacity / shards) + (if i < capacity mod shards then 1 else 0) in
          create_with shared ~capacity:cap)
    in
    {
      lrus;
      locks = Array.init shards (fun _ -> Mutex.create ());
      total_cap = capacity;
      s_hits = c_hits;
      s_misses = c_misses;
      s_evictions = c_evictions;
    }

  let create ~shards ~capacity =
    create_with (fun _ -> Counter.make ()) ~shards ~capacity

  let create_in ~metrics ~name ~shards ~capacity =
    create_with
      (fun suffix -> Relpipe_obs.Metric.counter metrics (name ^ "." ^ suffix))
      ~shards ~capacity

  let shards t = Array.length t.lrus
  let capacity t = t.total_cap
  let shard_of_key t key = hash_key key mod Array.length t.lrus

  let with_shard t key f =
    let i = shard_of_key t key in
    let mu = t.locks.(i) in
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) (fun () -> f t.lrus.(i))

  let find t key = with_shard t key (fun lru -> find lru key)
  let mem t key = with_shard t key (fun lru -> mem lru key)
  let add t key value = with_shard t key (fun lru -> add lru key value)

  let length t =
    let n = ref 0 in
    Array.iteri
      (fun i lru ->
        Mutex.lock t.locks.(i);
        n := !n + length lru;
        Mutex.unlock t.locks.(i))
      t.lrus;
    !n

  let stats t =
    {
      hits = Counter.value t.s_hits;
      misses = Counter.value t.s_misses;
      evictions = Counter.value t.s_evictions;
    }

  let clear t =
    Array.iteri
      (fun i lru ->
        Mutex.lock t.locks.(i);
        clear lru;
        Mutex.unlock t.locks.(i))
      t.lrus
end
