(* Classic hash-table + doubly-linked-list LRU.  The list is ordered from
   most recent (head) to least recent (tail); every hit or insertion moves
   the node to the head, and overflow pops the tail. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards the head (more recent) *)
  mutable next : 'v node option;  (* towards the tail (less recent) *)
}

type stats = { hits : int; misses : int; evictions : int }

module Counter = Relpipe_obs.Metric.Counter

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  c_hits : Counter.t;
  c_misses : Counter.t;
  c_evictions : Counter.t;
}

let make_counters counter =
  (counter "hits", counter "misses", counter "evictions")

let create_with counter ~capacity =
  let c_hits, c_misses, c_evictions = make_counters counter in
  {
    cap = capacity;
    table = Hashtbl.create (max 16 (min capacity 4096));
    head = None;
    tail = None;
    c_hits;
    c_misses;
    c_evictions;
  }

let create ~capacity = create_with (fun _ -> Counter.make ()) ~capacity

let create_in ~metrics ~name ~capacity =
  create_with
    (fun suffix -> Relpipe_obs.Metric.counter metrics (name ^ "." ^ suffix))
    ~capacity

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      Counter.incr t.c_hits;
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      Counter.incr t.c_misses;
      None

let mem t key = Hashtbl.mem t.table key

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Counter.incr t.c_evictions

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        if Hashtbl.length t.table > t.cap then evict_tail t

let stats t =
  {
    hits = Counter.value t.c_hits;
    misses = Counter.value t.c_misses;
    evictions = Counter.value t.c_evictions;
  }

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
