(** Domain-local reusable scratch buffers for hot solver kernels.

    The exact solvers used to allocate fresh DP tables on every call; under
    sweep-scale traffic that allocation (and the GC pressure it creates)
    dominates solve time for small instances.  A workspace hands out a
    buffer that is grown on demand and reused across calls, with the
    requested prefix re-initialised each time so no state leaks between
    solves.

    Buffers are domain-local ({!Domain.DLS}): the batch engine solves in
    parallel across OCaml 5 domains, and each domain gets its own scratch
    space, so kernels sharing a workspace never race. *)

type floats
(** A reusable [float array] buffer, one per domain. *)

type ints
(** A reusable [int array] buffer, one per domain. *)

val floats : unit -> floats
(** Create a float workspace.  Call once at module level; the underlying
    storage is created lazily per domain. *)

val ints : unit -> ints
(** Create an int workspace. *)

val get_floats : floats -> len:int -> fill:float -> float array
(** [get_floats w ~len ~fill] returns the calling domain's buffer, grown to
    at least [len] cells, with cells [0 .. len-1] set to [fill].  Cells past
    [len] hold garbage from previous calls.  The same array is returned by
    subsequent calls on this domain — callers must finish with it before
    requesting it again. *)

val get_ints : ints -> len:int -> fill:int -> int array
(** Same contract as {!get_floats} for int buffers. *)
