type t = int

let max_width = Sys.int_size - 1

let check i =
  if i < 0 || i >= max_width then invalid_arg "Bitset: element out of range"

let empty = 0
let is_empty t = t = 0

let singleton i =
  check i;
  1 lsl i

let full n =
  if n < 0 || n > max_width then invalid_arg "Bitset.full: width out of range";
  if n = 0 then 0 else (1 lsl n) - 1

let add i t =
  check i;
  t lor (1 lsl i)

let remove i t =
  check i;
  t land lnot (1 lsl i)

let mem i t = i >= 0 && i < max_width && t land (1 lsl i) <> 0

let cardinal t =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 t

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let disjoint a b = a land b = 0
let subset a b = a land b = a

let iter f t =
  let rec go x =
    if x <> 0 then begin
      let low = x land -x in
      (* Position of the lowest set bit. *)
      let rec pos bit acc = if bit = 1 then acc else pos (bit lsr 1) (acc + 1) in
      f (pos low 0);
      go (x land (x - 1))
    end
  in
  go t

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list = List.fold_left (fun acc i -> add i acc) empty

let choose t =
  if t = 0 then None
  else begin
    let low = t land -t in
    let rec pos bit acc = if bit = 1 then acc else pos (bit lsr 1) (acc + 1) in
    Some (pos low 0)
  end

let subsets t =
  (* The classic [(s - 1) land t] walk visits every submask exactly once,
     in decreasing order; collect and reverse for increasing mask order. *)
  let rec collect s acc =
    if s = 0 then 0 :: acc else collect ((s - 1) land t) (s :: acc)
  in
  List.to_seq (collect t [])

let nonempty_subsets t = Seq.filter (fun s -> s <> 0) (subsets t)

let iter_nonempty_subsets f t =
  (* Increasing mask order without materialising a list: the successor of
     submask [s] of [t] is [((s lor (lnot t)) + 1) land t]. *)
  if t <> 0 then begin
    let s = ref (t land -t) in
    (* First non-empty submask: lowest set bit of [t]. *)
    let continue = ref true in
    while !continue do
      f !s;
      let next = ((!s lor lnot t) + 1) land t in
      if next = 0 then continue := false else s := next
    done
  end

let equal = Int.equal
let compare = Int.compare

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
