(** Small integer sets packed in one native [int] (up to 62 elements).

    Processor subsets in the exact solvers are represented this way: the
    paper's exhaustive cases only ever enumerate subsets of at most a few
    dozen processors, and packed sets make subset enumeration and
    disjointness tests O(1). *)

type t = private int
(** A set of integers in [\[0, max_width)]. *)

val max_width : int
(** Largest representable element count (62 on 64-bit platforms). *)

val empty : t
val is_empty : t -> bool

val singleton : int -> t
(** @raise Invalid_argument if the element is out of range. *)

val full : int -> t
(** [full n] is [{0, ..., n-1}].  @raise Invalid_argument if out of range. *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val cardinal : t -> int

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val disjoint : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] holds when every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val elements : t -> int list
(** Ascending order. *)

val of_list : int list -> t

val choose : t -> int option
(** Smallest element, if any. *)

val subsets : t -> t Seq.t
(** All subsets of the given set, including the empty set, in increasing
    mask order. *)

val nonempty_subsets : t -> t Seq.t
(** All non-empty subsets. *)

val iter_nonempty_subsets : (t -> unit) -> t -> unit
(** [iter_nonempty_subsets f t] applies [f] to every non-empty subset of
    [t] in the same increasing mask order as {!nonempty_subsets}, without
    allocating the intermediate sequence.  Hot path of the branch-and-bound
    solver. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
