(** Size-bounded LRU cache with string keys.

    The service layer keys its result cache on canonical-form digests
    (strings), so the cache is monomorphic in the key and polymorphic in
    the value: no polymorphic hashing or comparison is involved beyond
    [String] equality.  Counters record hits, misses and evictions so a
    long-running engine can report its effectiveness; they live on a
    {!Relpipe_obs.Metric.t} registry when one is supplied to {!create}
    (as [<name>.hits] etc.), and on private instances otherwise — the
    {!stats} view is identical either way. *)

type 'v t

type stats = {
  hits : int;  (** [find] calls that returned a value *)
  misses : int;  (** [find] calls that returned [None] *)
  evictions : int;  (** entries dropped to respect the capacity *)
}

val create : capacity:int -> 'v t
(** [create ~capacity] holds at most [capacity] entries; [capacity <= 0]
    disables storage entirely (every [add] is a no-op and every [find]
    a miss).  Counters are private to the cache. *)

val create_in :
  metrics:Relpipe_obs.Metric.t -> name:string -> capacity:int -> 'v t
(** Like {!create}, but the counters live on [metrics] under
    [<name>.hits], [<name>.misses] and [<name>.evictions] — so cache
    effectiveness shows up in metric snapshots alongside everything
    else.  If [metrics] is a no-op registry the counters discard their
    updates and {!stats} reports zeros. *)

val capacity : 'v t -> int

val length : 'v t -> int
(** Number of live entries, [<= capacity]. *)

val find : 'v t -> string -> 'v option
(** Look up a key; a hit refreshes its recency and bumps [hits], a miss
    bumps [misses]. *)

val mem : 'v t -> string -> bool
(** Presence test; does {e not} touch recency or counters. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace a binding as the most recent entry, evicting the
    least recently used entry when the capacity is exceeded. *)

val stats : 'v t -> stats

val clear : 'v t -> unit
(** Drop every entry; counters are preserved. *)

(** {1 Sharded variant}

    A thread-safe LRU split into [shards] independent single-lock
    caches.  A key's shard is a pure function of its bytes (FNV-1a),
    so lookups from concurrent sessions contend only when they touch
    the same shard — the serve daemon shares one of these across every
    client session.  With [shards = 1] the behaviour (hit/miss/eviction
    sequence) is exactly that of the plain cache above, plus the lock.

    Counters are shared across shards: {!Sharded.stats} aggregates all
    shards under the same [hits]/[misses]/[evictions] names, and
    {!Sharded.create_in} registers the same [<name>.hits] (etc.)
    instruments as the unsharded {!create_in}. *)

module Sharded : sig
  type 'v t

  val create : shards:int -> capacity:int -> 'v t
  (** [capacity] is the {e total} across shards (shard [i] holds
      [capacity/shards], the remainder spread one-per-shard from shard
      0).  @raise Invalid_argument when [shards < 1]. *)

  val create_in :
    metrics:Relpipe_obs.Metric.t ->
    name:string ->
    shards:int ->
    capacity:int ->
    'v t

  val shards : 'v t -> int

  val capacity : 'v t -> int

  val shard_of_key : 'v t -> string -> int
  (** The shard a key maps to — exposed so tests can model eviction. *)

  val find : 'v t -> string -> 'v option

  val mem : 'v t -> string -> bool

  val add : 'v t -> string -> 'v -> unit

  val length : 'v t -> int

  val stats : 'v t -> stats
  (** Aggregated across shards. *)

  val clear : 'v t -> unit
end
