let default_eps = 1e-9

let approx_eq ?(eps = default_eps) a b =
  if a = b then true
  else if Float.is_nan a || Float.is_nan b then false
  else if Float.is_finite a && Float.is_finite b then
    let diff = Float.abs (a -. b) in
    let scale = Float.max (Float.abs a) (Float.abs b) in
    diff <= eps || diff <= eps *. scale
  else false

let leq ?eps a b = a < b || approx_eq ?eps a b

let approx_eq_rel ?(eps = default_eps) a b =
  if a = b then true
  else if Float.is_nan a || Float.is_nan b then false
  else if Float.is_finite a && Float.is_finite b then begin
    let diff = Float.abs (a -. b) in
    let scale = Float.max (Float.abs a) (Float.abs b) in
    diff <= eps *. scale
  end
  else false

let leq_rel ?eps a b = a < b || approx_eq_rel ?eps a b
let geq ?eps a b = a > b || approx_eq ?eps a b

let compare ?eps a b = if approx_eq ?eps a b then 0 else Float.compare a b

let clamp ~lo ~hi x = Float.min hi (Float.max lo x)

let is_probability x = Float.is_finite x && x >= 0.0 && x <= 1.0
