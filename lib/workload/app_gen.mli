(** Synthetic pipeline generators.

    The paper motivates the model with digital image processing workflows
    (steady streams of data sets through a fixed stage chain).  These
    generators produce pipelines with controlled computation/communication
    balance so experiments can sweep the regimes where mapping decisions
    flip (compute-bound vs communication-bound). *)

open Relpipe_model

type spec = {
  n : int;  (** number of stages *)
  work : float * float;  (** uniform range for w_k *)
  data : float * float;  (** uniform range for delta_k (incl. delta_0) *)
}

val random : Relpipe_util.Rng.t -> spec -> Pipeline.t
(** Uniform i.i.d. stage costs within the spec's ranges. *)

val uniform : n:int -> work:float -> data:float -> Pipeline.t
(** All stages identical: w_k = [work], delta_k = [data] for all k
    (including delta_0). *)

val default_spec : n:int -> spec
(** The reference ranges used across experiments and the fuzzer: work in
    [\[1, 20\]], data in [\[0.5, 10\]]. *)

val random_sized : Relpipe_util.Rng.t -> n:int -> Pipeline.t
(** [random rng (default_spec ~n)] — the seeded sub-generator shared by
    test helpers and [relpipe fuzz]. *)

val compute_bound : Relpipe_util.Rng.t -> n:int -> Pipeline.t
(** Heavy computation, light data: work in [\[50, 200\]], data in
    [\[1, 5\]]. *)

val data_bound : Relpipe_util.Rng.t -> n:int -> Pipeline.t
(** Light computation, heavy data: work in [\[1, 5\]], data in
    [\[50, 200\]]. *)

val alternating : n:int -> light:float -> heavy:float -> Pipeline.t
(** Stages alternate heavy and light computation with the complementary
    data size — the shape where interval splitting pays off. *)
