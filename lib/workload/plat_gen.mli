(** Synthetic platform generators for the paper's three platform classes.

    Speeds, bandwidths and failure probabilities are the only platform
    parameters of the model, so sampling them uniformly (or with the
    speed-correlated failure model below) reproduces the experimental
    regime of the paper and its companion evaluations. *)

open Relpipe_model

val fully_homogeneous :
  m:int -> speed:float -> failure:float -> bandwidth:float -> Platform.t
(** Re-export of {!Platform.fully_homogeneous} for symmetry. *)

val random_fully_homogeneous :
  Relpipe_util.Rng.t ->
  m:int ->
  speed:float * float ->
  failure:float * float ->
  bandwidth:float * float ->
  Platform.t
(** Fully Homogeneous platform whose one speed, one failure probability
    and one bandwidth are each sampled uniformly — the seeded sub-generator
    the fuzzer uses for the paper's first platform class. *)

val random_comm_homogeneous :
  Relpipe_util.Rng.t ->
  m:int ->
  speed:float * float ->
  failure:float * float ->
  bandwidth:float ->
  Platform.t
(** Identical links, speeds and failure probabilities sampled uniformly. *)

val random_fully_heterogeneous :
  Relpipe_util.Rng.t ->
  m:int ->
  speed:float * float ->
  failure:float * float ->
  bandwidth:float * float ->
  Platform.t
(** Heterogeneous everything; each (unordered) link gets an independent
    uniform bandwidth. *)

val speed_correlated_failures :
  Relpipe_util.Rng.t ->
  m:int ->
  speed:float * float ->
  failure:float * float ->
  bandwidth:float ->
  Platform.t
(** Communication Homogeneous platform in the spirit of the paper's Fig. 5:
    the fastest processors are the least reliable.  Failure probabilities
    interpolate linearly between the [failure] bounds as speed goes from
    the slowest to the fastest sampled processor. *)

val clustered :
  Relpipe_util.Rng.t ->
  clusters:int ->
  cluster_size:int ->
  speed:float * float ->
  failure:float * float ->
  intra_bandwidth:float ->
  inter_bandwidth:float ->
  io_bandwidth:float ->
  Platform.t
(** Grid-like Fully Heterogeneous platform: [clusters] homogeneous groups
    of [cluster_size] processors (one speed and failure probability drawn
    per cluster), fast links inside a cluster, slow links between clusters,
    and [io_bandwidth] on every Pin/Pout link.  The canonical shape where
    interval splitting must weigh communication locality. *)

val two_tier :
  m_slow:int ->
  m_fast:int ->
  slow_speed:float ->
  fast_speed:float ->
  slow_failure:float ->
  fast_failure:float ->
  bandwidth:float ->
  Platform.t
(** Deterministic "slow reliable + fast unreliable" platform (the exact
    shape of the paper's Fig. 5 example). Slow processors come first. *)
