(** Seeded request-stream generator for the million-request atlas.

    Real request logs are not uniform: a few hot instances dominate
    (Zipf-skewed popularity) and arrivals cluster into bursts.  This
    module reproduces both from a single integer seed, at any stream
    length, without materializing the stream: a bounded {e pool} of
    distinct instances is rendered once, then {!iter} replays a
    deterministic sequence of [(slot, gap)] events over it.

    Layering: this library depends on [util] and [model] only, so pool
    entries carry solver method {e names} (the service vocabulary) and
    rendered instance {e text}; the atlas driver turns them into protocol
    requests. *)

open Relpipe_model

(** Zipf-skewed sampling over [{0, ..., n-1}]: slot [i] has weight
    [1 / (i + 1)^s].  [s = 0] is uniform; larger [s] concentrates mass
    on low slots.  Sampling is inverse-CDF binary search over
    precomputed cumulative weights — O(log n) per draw, deterministic
    for a given generator state. *)
module Zipf : sig
  type t

  val create : s:float -> n:int -> t
  (** @raise Invalid_argument unless [n > 0] and [s >= 0] is finite. *)

  val n : t -> int
  val s : t -> float

  val pmf : t -> int -> float
  (** Normalized probability of slot [i].
      @raise Invalid_argument when [i] is out of range. *)

  val sample : t -> Relpipe_util.Rng.t -> int
end

type entry = {
  slot : int;
  text : string;  (** rendered instance ({!Relpipe_model.Textio} grammar) *)
  objective : Instance.objective;
  method_name : string;  (** service method vocabulary, e.g. ["auto"] *)
  plat_class : string;  (** platform-class tag for the report *)
  app_kind : string;  (** pipeline-shape tag for the report *)
}

type event = {
  ev_index : int;  (** 0-based position in the stream *)
  ev_slot : int;  (** pool slot this request duplicates *)
  ev_gap_ns : int;  (** arrival gap since the previous event, >= 0 *)
}

type spec = {
  pool : int;  (** distinct instances (cache working set) *)
  zipf_s : float;  (** popularity skew across pool slots *)
  burst : float;  (** mean burst length (>= 1); arrivals inside a burst
                      are [intra_gap_ns] apart on average *)
  intra_gap_ns : float;  (** mean gap inside a burst, ns *)
  inter_gap_ns : float;  (** mean gap between bursts, ns *)
}

val default_spec : spec
(** pool 64, [zipf_s = 1.1], bursts of mean length 16, 2 us intra /
    200 us inter gaps — a cache-friendly, visibly bursty default. *)

val validate : spec -> (unit, string) result
(** All the invariants {!pool_entries} and {!iter} assume. *)

val pool_entries : seed:int -> spec -> entry array
(** The [spec.pool] distinct instances, rendered once.  Slot [i] mixes
    platform classes (fully homogeneous, communication homogeneous,
    fully heterogeneous, speed-correlated, clustered), pipeline shapes
    (reference random, compute-bound, data-bound) and the service method
    vocabulary deterministically from [seed].  Instances stay small
    (3-8 stages, 2-6 processors) so any slot solves quickly; scale comes
    from the stream, not the instances.
    @raise Invalid_argument when {!validate} rejects [spec]. *)

val iter : seed:int -> spec -> n:int -> (event -> unit) -> unit
(** Replay the first [n] events of the stream for [seed], in order,
    without materializing anything.  Slots are Zipf-draws over the pool;
    gaps alternate exponential intra-burst and inter-burst means with
    geometric burst lengths.  The event sequence depends only on [seed],
    [spec] and [n] — and is a prefix-stable function of [n].
    @raise Invalid_argument when {!validate} rejects [spec] or [n < 0]. *)
