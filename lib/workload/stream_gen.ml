(* Seeded Zipf/bursty request-stream generator.  See stream_gen.mli. *)

open Relpipe_model
module Rng = Relpipe_util.Rng

module Zipf = struct
  type t = { z_s : float; z_n : int; z_cum : float array }

  let create ~s ~n =
    if n <= 0 then invalid_arg "Stream_gen.Zipf.create: n must be positive";
    if Float.is_nan s || not (Float.is_finite s) || not (s >= 0.0) then
      invalid_arg "Stream_gen.Zipf.create: s must be finite and >= 0";
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
      cum.(i) <- !acc
    done;
    { z_s = s; z_n = n; z_cum = cum }

  let n t = t.z_n
  let s t = t.z_s

  let pmf t i =
    if i < 0 || i >= t.z_n then invalid_arg "Stream_gen.Zipf.pmf: slot out of range";
    let total = t.z_cum.(t.z_n - 1) in
    let prev = if i = 0 then 0.0 else t.z_cum.(i - 1) in
    (t.z_cum.(i) -. prev) /. total

  let sample t rng =
    let u = Rng.float rng t.z_cum.(t.z_n - 1) in
    (* First index whose cumulative weight exceeds u. *)
    let lo = ref 0 and hi = ref (t.z_n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.z_cum.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
end

type entry = {
  slot : int;
  text : string;
  objective : Instance.objective;
  method_name : string;
  plat_class : string;
  app_kind : string;
}

type event = { ev_index : int; ev_slot : int; ev_gap_ns : int }

type spec = {
  pool : int;
  zipf_s : float;
  burst : float;
  intra_gap_ns : float;
  inter_gap_ns : float;
}

let default_spec =
  {
    pool = 64;
    zipf_s = 1.1;
    burst = 16.0;
    intra_gap_ns = 2_000.0;
    inter_gap_ns = 200_000.0;
  }

let validate spec =
  if spec.pool <= 0 then Error "pool must be positive"
  else if
    Float.is_nan spec.zipf_s
    || not (Float.is_finite spec.zipf_s)
    || not (spec.zipf_s >= 0.0)
  then Error "zipf_s must be finite and >= 0"
  else if Float.is_nan spec.burst || not (spec.burst >= 1.0) then
    Error "burst must be >= 1"
  else if Float.is_nan spec.intra_gap_ns || not (spec.intra_gap_ns > 0.0) then
    Error "intra_gap_ns must be positive"
  else if Float.is_nan spec.inter_gap_ns || not (spec.inter_gap_ns > 0.0) then
    Error "inter_gap_ns must be positive"
  else Ok ()

let check_spec who spec =
  match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Stream_gen.%s: %s" who msg)

(* Distinct salts under one master seed, following the fuzz/churn
   discipline: one sub-stream per concern so pool contents never depend
   on how many events were drawn and vice versa. *)
let pool_salt = 0x0A51
let slot_salt = 0x0A52
let gap_salt = 0x0A53

let plat_classes =
  [| "fully-homogeneous"; "comm-homogeneous"; "fully-heterogeneous";
     "speed-correlated"; "clustered" |]

let app_kinds = [| "reference"; "compute-bound"; "data-bound" |]

(* Service method vocabulary.  [polynomial] is optimal-but-partial
   (Not_applicable off the tractable classes), so it only enters the
   rotation on fully homogeneous slots; the rest are total. *)
let methods_total =
  [| "auto"; "auto"; "portfolio"; "single-greedy"; "split-replicate";
     "local-search" |]

let methods_homogeneous =
  [| "auto"; "polynomial"; "polynomial"; "portfolio"; "single-greedy";
     "split-replicate"; "local-search" |]

let gen_platform rng class_ ~m =
  let speed = (1.0, 10.0) and failure = (0.01, 0.3) in
  match class_ with
  | "fully-homogeneous" ->
      Plat_gen.random_fully_homogeneous rng ~m ~speed ~failure
        ~bandwidth:(1.0, 10.0)
  | "comm-homogeneous" ->
      Plat_gen.random_comm_homogeneous rng ~m ~speed ~failure ~bandwidth:5.0
  | "fully-heterogeneous" ->
      Plat_gen.random_fully_heterogeneous rng ~m ~speed ~failure
        ~bandwidth:(1.0, 10.0)
  | "speed-correlated" ->
      Plat_gen.speed_correlated_failures rng ~m ~speed ~failure ~bandwidth:5.0
  | "clustered" ->
      Plat_gen.clustered rng ~clusters:2 ~cluster_size:(max 1 (m / 2)) ~speed
        ~failure ~intra_bandwidth:10.0 ~inter_bandwidth:1.0 ~io_bandwidth:5.0
  | _ -> assert false

let gen_pipeline rng kind ~n =
  match kind with
  | "reference" -> App_gen.random_sized rng ~n
  | "compute-bound" -> App_gen.compute_bound rng ~n
  | "data-bound" -> App_gen.data_bound rng ~n
  | _ -> assert false

let pool_entries ~seed spec =
  check_spec "pool_entries" spec;
  let rng = Rng.derive ~seed ~salt:pool_salt in
  Array.init spec.pool (fun slot ->
      let plat_class = plat_classes.(slot mod Array.length plat_classes) in
      let app_kind = app_kinds.(slot / Array.length plat_classes mod Array.length app_kinds) in
      let n = 3 + Rng.int rng 6 in
      let m = 2 + Rng.int rng 5 in
      let pipeline = gen_pipeline rng app_kind ~n in
      let platform = gen_platform rng plat_class ~m in
      let inst = Instance.make pipeline platform in
      (* Loose thresholds so most slots are feasible; the stream is about
         caching and aggregation, not about stressing infeasibility. *)
      let objective =
        if slot mod 2 = 0 then
          Instance.Min_latency { max_failure = Rng.float_range rng 0.5 0.99 }
        else
          Instance.Min_failure
            { max_latency = Rng.float_range rng 200.0 2_000.0 }
      in
      let vocab =
        match plat_class with
        | "fully-homogeneous" -> methods_homogeneous
        | _ -> methods_total
      in
      let method_name = Rng.pick rng vocab in
      {
        slot;
        text = Textio.to_string inst;
        objective;
        method_name;
        plat_class;
        app_kind;
      })

let iter ~seed spec ~n f =
  check_spec "iter" spec;
  if n < 0 then invalid_arg "Stream_gen.iter: n must be >= 0";
  let slot_rng = Rng.derive ~seed ~salt:slot_salt in
  let gap_rng = Rng.derive ~seed ~salt:gap_salt in
  let zipf = Zipf.create ~s:spec.zipf_s ~n:spec.pool in
  (* Geometric burst lengths with mean [spec.burst]: each arrival ends
     the current burst with probability 1/burst. *)
  let p_break = 1.0 /. spec.burst in
  for i = 0 to n - 1 do
    let slot = Zipf.sample zipf slot_rng in
    let gap_ns =
      if i = 0 then 0
      else
        let mean =
          if Rng.bernoulli gap_rng p_break then spec.inter_gap_ns
          else spec.intra_gap_ns
        in
        int_of_float (Rng.exponential gap_rng (1.0 /. mean))
    in
    f { ev_index = i; ev_slot = slot; ev_gap_ns = gap_ns }
  done
