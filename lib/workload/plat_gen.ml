open Relpipe_model
module Rng = Relpipe_util.Rng

let sample rng (lo, hi) =
  if lo > hi then invalid_arg "Plat_gen: empty range";
  if lo = hi then lo else Rng.float_range rng lo hi

let fully_homogeneous ~m ~speed ~failure ~bandwidth =
  Platform.fully_homogeneous ~m ~speed ~failure ~bandwidth

let random_fully_homogeneous rng ~m ~speed ~failure ~bandwidth =
  if m <= 0 then invalid_arg "Plat_gen: m must be positive";
  Platform.fully_homogeneous ~m ~speed:(sample rng speed)
    ~failure:(sample rng failure) ~bandwidth:(sample rng bandwidth)

let random_comm_homogeneous rng ~m ~speed ~failure ~bandwidth =
  if m <= 0 then invalid_arg "Plat_gen: m must be positive";
  let speeds = Array.init m (fun _ -> sample rng speed) in
  let failures = Array.init m (fun _ -> sample rng failure) in
  Platform.uniform_links ~speeds ~failures ~bandwidth

let endpoint_id ~m = function
  | Platform.Pin -> 0
  | Platform.Proc u -> u + 1
  | Platform.Pout -> m + 1

let random_fully_heterogeneous rng ~m ~speed ~failure ~bandwidth =
  if m <= 0 then invalid_arg "Plat_gen: m must be positive";
  let speeds = Array.init m (fun _ -> sample rng speed) in
  let failures = Array.init m (fun _ -> sample rng failure) in
  (* Pre-sample a symmetric bandwidth matrix so the closure passed to
     Platform.make is deterministic and symmetric. *)
  let size = m + 2 in
  let bw = Array.make_matrix size size 0.0 in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      let v = sample rng bandwidth in
      bw.(i).(j) <- v;
      bw.(j).(i) <- v
    done
  done;
  Platform.make ~speeds ~failures ~bandwidth:(fun a b ->
      bw.(endpoint_id ~m a).(endpoint_id ~m b))

let speed_correlated_failures rng ~m ~speed ~failure ~bandwidth =
  if m <= 0 then invalid_arg "Plat_gen: m must be positive";
  let speeds = Array.init m (fun _ -> sample rng speed) in
  let smin = Array.fold_left Float.min speeds.(0) speeds in
  let smax = Array.fold_left Float.max speeds.(0) speeds in
  let flo, fhi = failure in
  let failures =
    Array.map
      (fun s ->
        if smax = smin then 0.5 *. (flo +. fhi)
        else flo +. ((fhi -. flo) *. (s -. smin) /. (smax -. smin)))
      speeds
  in
  Platform.uniform_links ~speeds ~failures ~bandwidth

let clustered rng ~clusters ~cluster_size ~speed ~failure ~intra_bandwidth
    ~inter_bandwidth ~io_bandwidth =
  if clusters <= 0 || cluster_size <= 0 then
    invalid_arg "Plat_gen.clustered: need positive cluster dimensions";
  let m = clusters * cluster_size in
  let cluster_speed = Array.init clusters (fun _ -> sample rng speed) in
  let cluster_failure = Array.init clusters (fun _ -> sample rng failure) in
  let cluster_of u = u / cluster_size in
  let speeds = Array.init m (fun u -> cluster_speed.(cluster_of u)) in
  let failures = Array.init m (fun u -> cluster_failure.(cluster_of u)) in
  let bandwidth a b =
    match a, b with
    | Platform.Proc u, Platform.Proc v ->
        if cluster_of u = cluster_of v then intra_bandwidth else inter_bandwidth
    | Platform.Pin, _ | _, Platform.Pin | Platform.Pout, _ | _, Platform.Pout ->
        io_bandwidth
  in
  Platform.make ~speeds ~failures ~bandwidth

let two_tier ~m_slow ~m_fast ~slow_speed ~fast_speed ~slow_failure ~fast_failure
    ~bandwidth =
  if m_slow < 0 || m_fast < 0 || m_slow + m_fast = 0 then
    invalid_arg "Plat_gen.two_tier: need at least one processor";
  let speeds =
    Array.append (Array.make m_slow slow_speed) (Array.make m_fast fast_speed)
  in
  let failures =
    Array.append (Array.make m_slow slow_failure) (Array.make m_fast fast_failure)
  in
  Platform.uniform_links ~speeds ~failures ~bandwidth
