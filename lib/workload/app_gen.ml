open Relpipe_model
module Rng = Relpipe_util.Rng

type spec = { n : int; work : float * float; data : float * float }

let sample rng (lo, hi) =
  if lo > hi then invalid_arg "App_gen: empty range";
  if lo = hi then lo else Rng.float_range rng lo hi

let random rng spec =
  if spec.n <= 0 then invalid_arg "App_gen.random: n must be positive";
  let input = sample rng spec.data in
  let stages =
    List.init spec.n (fun _ ->
        { Pipeline.work = sample rng spec.work; output = sample rng spec.data })
  in
  Pipeline.make ~input stages

let uniform ~n ~work ~data =
  if n <= 0 then invalid_arg "App_gen.uniform: n must be positive";
  Pipeline.make ~input:data (List.init n (fun _ -> { Pipeline.work; output = data }))

let default_spec ~n = { n; work = (1.0, 20.0); data = (0.5, 10.0) }
let random_sized rng ~n = random rng (default_spec ~n)

let compute_bound rng ~n = random rng { n; work = (50.0, 200.0); data = (1.0, 5.0) }
let data_bound rng ~n = random rng { n; work = (1.0, 5.0); data = (50.0, 200.0) }

let alternating ~n ~light ~heavy =
  if n <= 0 then invalid_arg "App_gen.alternating: n must be positive";
  if light <= 0.0 || heavy <= 0.0 then
    invalid_arg "App_gen.alternating: costs must be positive";
  let stage k =
    if k mod 2 = 0 then { Pipeline.work = heavy; output = light }
    else { Pipeline.work = light; output = heavy }
  in
  Pipeline.make ~input:heavy (List.init n stage)
