open Relpipe_model

type result = {
  datasets : int;
  first_completion : float;
  makespan : float;
  estimated_period : float;
  analytic_latency : float;
  analytic_period : float;
}

(* Compute-plus-forwarding cost of a replica (the Eq. 2 inner term) — used
   to pick the fixed worst-case forwarder and the send order. *)
let eq2_term pipeline platform intervals j u =
  let iv = intervals.(j) in
  let work =
    Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
  in
  let out_size = Pipeline.delta pipeline iv.Mapping.last in
  let targets =
    if j = Array.length intervals - 1 then [ Platform.Pout ]
    else List.map (fun v -> Platform.Proc v) intervals.(j + 1).Mapping.procs
  in
  (work /. Platform.speed platform u)
  +. Relpipe_util.Kahan.sum_map
       (fun v -> out_size /. Platform.bandwidth platform (Platform.Proc u) v)
       targets

let run ?trace instance mapping ~datasets =
  let note e = match trace with Some t -> Trace.record t e | None -> () in
  if datasets < 1 then invalid_arg "Steady.run: need at least one data set";
  let { Instance.pipeline; platform } = instance in
  let m = Platform.size platform in
  let n = Pipeline.length pipeline in
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  if intervals.(p - 1).Mapping.last <> n then
    invalid_arg "Steady.run: mapping does not cover the pipeline";
  (* Per-endpoint communication ports (0 = Pin, 1..m, m+1 = Pout) and
     per-processor compute units. *)
  let comm = Array.init (m + 2) (fun _ -> Port.create ()) in
  let compute = Array.init m (fun _ -> Port.create ()) in
  let comm_of = function
    | Platform.Pin -> comm.(0)
    | Platform.Proc u -> comm.(u + 1)
    | Platform.Pout -> comm.(m + 1)
  in
  (* Fixed send order (worst replica last) and forwarder (worst replica). *)
  let order =
    Array.init p (fun j ->
        let procs = Array.of_list intervals.(j).Mapping.procs in
        let keyed =
          Array.map (fun u -> (eq2_term pipeline platform intervals j u, u)) procs
        in
        let by_term (ka, ua) (kb, ub) =
          let c = Float.compare ka kb in
          if c <> 0 then c else Int.compare ua ub
        in
        Array.sort by_term keyed;
        Array.map snd keyed)
  in
  let forwarder = Array.map (fun o -> o.(Array.length o - 1)) order in
  let first_completion = ref 0.0 in
  let makespan = ref 0.0 in
  for d = 0 to datasets - 1 do
    (* data_ready: when the current sender holds data set [d]. *)
    let data_ready = ref 0.0 in
    let sender = ref Platform.Pin in
    for j = 0 to p - 1 do
      let iv = intervals.(j) in
      let in_size = Pipeline.delta pipeline (iv.Mapping.first - 1) in
      let work =
        Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
      in
      let fwd_done = ref 0.0 in
      Array.iter
        (fun u ->
          let duration =
            in_size /. Platform.bandwidth platform !sender (Platform.Proc u)
          in
          let start =
            Port.reserve_pair (comm_of !sender)
              (comm_of (Platform.Proc u))
              ~earliest:!data_ready ~duration
          in
          let received = start +. duration in
          note
            (Trace.Transfer
               { src = !sender; dst = Platform.Proc u; dataset = d; start;
                 finish = received });
          (* The replica's compute unit serializes data sets. *)
          let cduration = work /. Platform.speed platform u in
          let cstart = Port.reserve compute.(u) ~earliest:received ~duration:cduration in
          let finished = cstart +. cduration in
          note (Trace.Compute { proc = u; dataset = d; start = cstart; finish = finished });
          if u = forwarder.(j) then fwd_done := finished)
        order.(j);
      sender := Platform.Proc forwarder.(j);
      data_ready := !fwd_done
    done;
    (* Final output to Pout. *)
    let out_size = Pipeline.delta pipeline n in
    let duration =
      out_size /. Platform.bandwidth platform !sender Platform.Pout
    in
    let start =
      Port.reserve_pair (comm_of !sender) (comm_of Platform.Pout)
        ~earliest:!data_ready ~duration
    in
    let completion = start +. duration in
    note
      (Trace.Transfer
         { src = !sender; dst = Platform.Pout; dataset = d; start;
           finish = completion });
    if d = 0 then first_completion := completion;
    makespan := completion
  done;
  {
    datasets;
    first_completion = !first_completion;
    makespan = !makespan;
    estimated_period =
      (if datasets = 1 then 0.0
       else (!makespan -. !first_completion) /. float_of_int (datasets - 1));
    analytic_latency = Latency.of_mapping pipeline platform mapping;
    analytic_period = Period.of_mapping pipeline platform mapping;
  }
