open Relpipe_model
module Rng = Relpipe_util.Rng

type result = {
  completed : int;
  offered : int;
  goodput : float;
  compromised : bool;
  compromise_time : float option;
}

let check_inputs instance ~rates ~mission =
  let m = Platform.size instance.Instance.platform in
  if Array.length rates <> m then
    invalid_arg "Lifetime: one rate per processor required";
  Array.iter
    (fun r ->
      if r < 0.0 || not (Float.is_finite r) then
        invalid_arg "Lifetime: rates must be finite and non-negative")
    rates;
  if mission <= 0.0 || not (Float.is_finite mission) then
    invalid_arg "Lifetime: mission must be positive"

let sample_failure_times rng rates =
  Array.map
    (fun rate -> if Float.equal rate 0.0 then Float.infinity else Rng.exponential rng rate)
    rates

(* Dedicated sub-stream salt (see Failure_inject.salt). *)
let salt = 0x11FE

let failure_times ~seed ~rates =
  Array.iter
    (fun r ->
      if r < 0.0 || not (Float.is_finite r) then
        invalid_arg "Lifetime.failure_times: rates must be finite and non-negative")
    rates;
  sample_failure_times (Rng.derive ~seed ~salt) rates

let interval_death_time platform mapping failure_times =
  ignore platform;
  (* An interval dies when its last replica dies. *)
  List.fold_left
    (fun earliest iv ->
      let death =
        List.fold_left
          (fun acc u -> Float.max acc failure_times.(u))
          0.0 iv.Mapping.procs
      in
      Float.min earliest death)
    Float.infinity (Mapping.intervals mapping)

let run rng instance mapping ~rates ~mission =
  check_inputs instance ~rates ~mission;
  let { Instance.pipeline; platform } = instance in
  let period = Period.of_mapping pipeline platform mapping in
  let latency = Latency.of_mapping pipeline platform mapping in
  let failure_times = sample_failure_times rng rates in
  let death = interval_death_time platform mapping failure_times in
  let compromised = death <= mission in
  (* Data set k enters at [k * period] and completes by
     [latency + k * period] (pipelining bound, validated by Steady). *)
  let offered = max 1 (int_of_float (Float.floor (mission /. period)) + 1) in
  let completed_by horizon =
    let k = Float.floor ((horizon -. latency) /. period) in
    if k < 0.0 then 0 else min offered (int_of_float k + 1)
  in
  (* Data sets in flight when the mission clock runs out still finish (the
     workflow keeps draining); only a compromise truncates the stream. *)
  let completed = if compromised then completed_by death else offered in
  {
    completed;
    offered;
    goodput = float_of_int completed /. float_of_int offered;
    compromised;
    compromise_time = (if compromised then Some death else None);
  }

let survival_estimate rng instance mapping ~rates ~mission ~trials =
  check_inputs instance ~rates ~mission;
  if trials <= 0 then invalid_arg "Lifetime.survival_estimate: trials must be positive";
  let survived = ref 0 in
  for _ = 1 to trials do
    let failure_times = sample_failure_times rng rates in
    let death =
      interval_death_time instance.Instance.platform mapping failure_times
    in
    if death > mission then incr survived
  done;
  let empirical = float_of_int !survived /. float_of_int trials in
  let fps =
    Array.map (fun rate -> Failure_rate.fp_of_rate ~rate ~mission) rates
  in
  let platform' =
    Platform.make
      ~speeds:(Platform.speeds instance.Instance.platform)
      ~failures:fps
      ~bandwidth:(Platform.bandwidth instance.Instance.platform)
  in
  (empirical, Failure.success platform' mapping)
