open Relpipe_model

type policy = Optimistic | Pessimistic

type outcome = Completed of float | Failed of int

(* Per-interval mutable simulation state. *)
type interval_state = {
  order : int array;  (* replicas in send order (worst served last) *)
  alive_total : int;
  mutable alive_finished : int;
  mutable forwarder : int option;
}

let eq2_term instance intervals j u =
  (* Compute-plus-forwarding cost of replica u of interval j: the inner
     term of Eq. (2). *)
  let { Instance.pipeline; platform } = instance in
  let iv = intervals.(j) in
  let work =
    Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
  in
  let out_size = Pipeline.delta pipeline iv.Mapping.last in
  let targets =
    if j = Array.length intervals - 1 then [ Platform.Pout ]
    else
      List.map (fun v -> Platform.Proc v) intervals.(j + 1).Mapping.procs
  in
  (work /. Platform.speed platform u)
  +. Relpipe_util.Kahan.sum_map
       (fun v -> out_size /. Platform.bandwidth platform (Platform.Proc u) v)
       targets

let send_order instance intervals j =
  (* Serve the replica with the largest compute-plus-forwarding term last,
     matching the adversarial ordering behind Eq. (1)/(2). *)
  let procs = Array.of_list intervals.(j).Mapping.procs in
  let keyed = Array.map (fun u -> (eq2_term instance intervals j u, u)) procs in
  let by_term (ka, ua) (kb, ub) =
    let c = Float.compare ka kb in
    if c <> 0 then c else Int.compare ua ub
  in
  Array.sort by_term keyed;
  Array.map snd keyed

let run instance mapping ~alive ~policy =
  let { Instance.pipeline; platform } = instance in
  let m = Platform.size platform in
  let n = Pipeline.length pipeline in
  if Array.length alive <> m then invalid_arg "Trial.run: alive vector size mismatch";
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let p = Array.length intervals in
  if intervals.(p - 1).Mapping.last <> n then
    invalid_arg "Trial.run: mapping does not cover the pipeline";
  (* An interval with no survivor fails the whole data set. *)
  let failed_interval = ref None in
  Array.iteri
    (fun j st ->
      if !failed_interval = None
         && not (List.exists (fun u -> alive.(u)) st.Mapping.procs)
      then failed_interval := Some j)
    intervals;
  match !failed_interval with
  | Some j -> Failed j
  | None ->
      let engine = Engine.create () in
      (* Port 0 = Pin, 1..m = processors, m+1 = Pout. *)
      let ports = Array.init (m + 2) (fun _ -> Port.create ()) in
      let port_of = function
        | Platform.Pin -> ports.(0)
        | Platform.Proc u -> ports.(u + 1)
        | Platform.Pout -> ports.(m + 1)
      in
      let states =
        Array.init p (fun j ->
            let iv = intervals.(j) in
            {
              order = send_order instance intervals j;
              alive_total =
                List.length (List.filter (fun u -> alive.(u)) iv.Mapping.procs);
              alive_finished = 0;
              forwarder = None;
            })
      in
      let completion = ref None in
      let rec forward_from j u =
        (* Replica u of interval j becomes the forwarder: serialize sends of
           the interval's output to the next interval (or Pout). *)
        let out_size = Pipeline.delta pipeline intervals.(j).Mapping.last in
        let src = Platform.Proc u in
        if j = p - 1 then begin
          let duration =
            out_size /. Platform.bandwidth platform src Platform.Pout
          in
          let start =
            Port.reserve_pair (port_of src) (port_of Platform.Pout)
              ~earliest:(Engine.now engine) ~duration
          in
          Engine.schedule engine ~at:(start +. duration) (fun () ->
              completion := Some (Engine.now engine))
        end
        else
          Array.iter
            (fun v ->
              let dst = Platform.Proc v in
              let duration = out_size /. Platform.bandwidth platform src dst in
              let start =
                Port.reserve_pair (port_of src) (port_of dst)
                  ~earliest:(Engine.now engine) ~duration
              in
              Engine.schedule engine ~at:(start +. duration) (fun () ->
                  replica_received (j + 1) v))
            states.(j + 1).order
      and replica_received j v =
        if alive.(v) then begin
          let iv = intervals.(j) in
          let work =
            Pipeline.work_sum pipeline ~first:iv.Mapping.first ~last:iv.Mapping.last
          in
          let delay = work /. Platform.speed platform v in
          Engine.schedule_after engine ~delay (fun () -> replica_computed j v)
        end
      and replica_computed j v =
        let st = states.(j) in
        match policy with
        | Optimistic ->
            if st.forwarder = None then begin
              st.forwarder <- Some v;
              forward_from j v
            end
        | Pessimistic ->
            st.alive_finished <- st.alive_finished + 1;
            if st.alive_finished = st.alive_total then begin
              st.forwarder <- Some v;
              forward_from j v
            end
      in
      (* Kick off: Pin serializes the input to the first interval. *)
      let input_size = Pipeline.delta pipeline 0 in
      Array.iter
        (fun v ->
          let dst = Platform.Proc v in
          let duration =
            input_size /. Platform.bandwidth platform Platform.Pin dst
          in
          let start =
            Port.reserve_pair (port_of Platform.Pin) (port_of dst) ~earliest:0.0
              ~duration
          in
          Engine.schedule engine ~at:(start +. duration) (fun () ->
              replica_received 0 v))
        states.(0).order;
      Engine.run engine;
      (match !completion with
      | Some t -> Completed t
      | None ->
          (* Unreachable: every interval had a survivor, so the forwarding
             chain always reaches Pout. *)
          assert false)

let worst_case_alive instance mapping =
  let { Instance.platform; _ } = instance in
  let intervals = Array.of_list (Mapping.intervals mapping) in
  let alive = Array.make (Platform.size platform) false in
  Array.iteri
    (fun j iv ->
      let worst =
        List.fold_left
          (fun best u ->
            match best with
            | None -> Some u
            | Some b ->
                if eq2_term instance intervals j u >= eq2_term instance intervals j b
                then Some u
                else best)
          None iv.Mapping.procs
      in
      match worst with Some u -> alive.(u) <- true | None -> assert false)
    intervals;
  alive

let worst_case_latency instance mapping =
  let alive = worst_case_alive instance mapping in
  match run instance mapping ~alive ~policy:Pessimistic with
  | Completed t -> t
  | Failed _ -> assert false
