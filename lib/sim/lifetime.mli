(** Goodput under mid-stream failures.

    The paper folds time out of the failure model: [fp_u] is the chance
    that processor [u] breaks down at {e some} point during the (long)
    mission, and the workflow is compromised when an interval loses all
    its replicas.  This module puts time back in, under the standard
    exponential-lifetime refinement ({!Relpipe_model.Failure_rate}):
    each processor draws a failure instant, the stream of data sets runs
    until some interval is dead, and we measure the {e goodput} — the
    fraction of the stream completed before the compromise.

    Two cross-checks anchor it to the paper's model (property-tested):
    the probability that the whole stream survives matches
    [1 - FP] computed from [fp_u = 1 - exp (-rate_u * mission)], and
    goodput is monotone: scaling all rates up cannot improve it. *)

open Relpipe_model

type result = {
  completed : int;  (** data sets that finished before the compromise *)
  offered : int;  (** data sets offered during the mission *)
  goodput : float;  (** completed / offered *)
  compromised : bool;  (** some interval lost all replicas *)
  compromise_time : float option;  (** earliest interval-death instant *)
}

val failure_times : seed:int -> rates:float array -> float array
(** Per-processor exponential failure instants (rate [0.] never fails:
    [infinity]) drawn from a private sub-stream of the master [seed]
    ({!Relpipe_util.Rng.derive} with this module's salt), so the draw is a
    pure function of [(seed, rates)] — the replayability contract churn
    scenarios rely on.
    @raise Invalid_argument on negative or non-finite rates. *)

val run :
  Relpipe_util.Rng.t ->
  Instance.t ->
  Mapping.t ->
  rates:float array ->
  mission:float ->
  result
(** One mission: failure instants are drawn per processor (exponential
    with the given rates; rate [0.] never fails), the stream is paced by
    the mapping's analytic period, and a data set counts as completed when
    it finishes before every interval it used died.
    @raise Invalid_argument on bad rates/mission or a mapping mismatch. *)

val survival_estimate :
  Relpipe_util.Rng.t ->
  Instance.t ->
  Mapping.t ->
  rates:float array ->
  mission:float ->
  trials:int ->
  float * float
(** [(empirical, analytic)] probability that the mission is not
    compromised; [analytic] is [Failure.success] on the platform with
    [fp_u] derived from the rates. *)
