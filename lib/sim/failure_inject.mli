(** Sampling of processor failures.

    The paper models a constant per-processor failure probability over the
    whole (long-running) workflow execution, so a trial's failure pattern
    is one independent Bernoulli draw per processor. *)

open Relpipe_model

val sample : Relpipe_util.Rng.t -> Platform.t -> bool array
(** [sample rng platform] draws an aliveness vector: entry [u] is [false]
    with probability [Platform.failure platform u]. *)

val sample_seeded : seed:int -> Platform.t -> bool array
(** [sample] on a private sub-stream of the master [seed]
    ({!Relpipe_util.Rng.derive} with this module's salt): the vector is a
    pure function of [(seed, platform)], independent of any other
    generator traffic — the replayability contract churn scenarios rely
    on. *)

val all_alive : Platform.t -> bool array

val kill : bool array -> int list -> bool array
(** Copy of the vector with the listed processors marked dead. *)
