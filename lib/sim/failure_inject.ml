open Relpipe_model
module Rng = Relpipe_util.Rng

let sample rng platform =
  Array.init (Platform.size platform) (fun u ->
      not (Rng.bernoulli rng (Platform.failure platform u)))

(* Dedicated sub-stream salt: replays depend only on the master seed, not
   on how many draws other components made first (see Rng.derive). *)
let salt = 0xFA11

let sample_seeded ~seed platform = sample (Rng.derive ~seed ~salt) platform

let all_alive platform = Array.make (Platform.size platform) true

let kill alive procs =
  let out = Array.copy alive in
  List.iter
    (fun u ->
      if u < 0 || u >= Array.length out then
        invalid_arg "Failure_inject.kill: processor out of range";
      out.(u) <- false)
    procs;
  out
