open Relpipe_model
module F = Relpipe_util.Float_cmp

type optimality = Optimal | Suboptimal of float | Unknown

type report = {
  structurally_valid : bool;
  evaluation_consistent : bool;
  feasible : bool;
  optimality : optimality;
  messages : string list;
  diagnostics : Relpipe_analysis.Diagnostic.t list;
}

let certify ?(certify_budget = 36) instance objective (s : Solution.t) =
  let reference =
    if Fully_homog.applicable instance then Fully_homog.solve instance objective
    else if Comm_homog.applicable instance then Comm_homog.solve instance objective
    else begin
      let n = Pipeline.length instance.Instance.pipeline in
      let m = Platform.size instance.Instance.platform in
      if certify_budget > 0 && n * m <= certify_budget then
        Bb.solve instance objective
      else None
    end
  in
  match reference with
  | None ->
      (* Either not certifiable, or the reference says infeasible — the
         caller's feasibility flag distinguishes. *)
      Unknown
  | Some reference ->
      let mine = Instance.objective_value objective s.Solution.evaluation in
      let best = Instance.objective_value objective reference.Solution.evaluation in
      if F.approx_eq ~eps:1e-6 mine best then Optimal
      else Suboptimal (mine -. best)

let check ?certify_budget instance objective s =
  let n = Pipeline.length instance.Instance.pipeline in
  let m = Platform.size instance.Instance.platform in
  let messages = ref [] in
  let say fmt = Format.kasprintf (fun msg -> messages := msg :: !messages) fmt in
  let structurally_valid =
    match Mapping.validate ~n ~m (Mapping.intervals s.Solution.mapping) with
    | Ok _ -> true
    | Error msg ->
        say "invalid mapping: %s" msg;
        false
  in
  let evaluation_consistent =
    if not structurally_valid then false
    else begin
      let fresh = Instance.evaluate instance s.Solution.mapping in
      let lat_ok =
        F.approx_eq ~eps:1e-9 fresh.Instance.latency
          s.Solution.evaluation.Instance.latency
      in
      let fp_ok =
        F.approx_eq ~eps:1e-9 fresh.Instance.failure
          s.Solution.evaluation.Instance.failure
      in
      if not lat_ok then
        say "stored latency %g but re-evaluation gives %g"
          s.Solution.evaluation.Instance.latency fresh.Instance.latency;
      if not fp_ok then
        say "stored failure %g but re-evaluation gives %g"
          s.Solution.evaluation.Instance.failure fresh.Instance.failure;
      lat_ok && fp_ok
    end
  in
  let feasible =
    structurally_valid
    &&
    let holds = Instance.feasible objective s.Solution.evaluation in
    if not holds then
      say "threshold violated: %a but solution has %a" Instance.pp_objective
        objective Instance.pp_evaluation s.Solution.evaluation;
    holds
  in
  let optimality =
    if not (structurally_valid && feasible) then Unknown
    else begin
      match certify ?certify_budget instance objective s with
      | Optimal -> Optimal
      | Suboptimal gap ->
          say "suboptimal by %g (certified)" gap;
          Suboptimal gap
      | Unknown -> Unknown
    end
  in
  (* Fold the static-analysis findings in: instance-level numeric hazards
     plus the mapping-pass view of the solution (one-port serialization,
     ...).  Warnings and errors join [messages]; everything, hints
     included, is kept in [diagnostics]. *)
  let diagnostics =
    Relpipe_analysis.Analysis.lint_solution instance s.Solution.mapping
  in
  List.iter
    (fun d ->
      if
        Relpipe_analysis.Severity.compare
          d.Relpipe_analysis.Diagnostic.severity Relpipe_analysis.Severity.Warning
        >= 0
      then say "%s" (Relpipe_analysis.Diagnostic.to_string d))
    diagnostics;
  {
    structurally_valid;
    evaluation_consistent;
    feasible;
    optimality;
    messages = List.rev !messages;
    diagnostics;
  }

let ok r = r.structurally_valid && r.evaluation_consistent && r.feasible

let pp ppf r =
  let flag b = if b then "ok" else "FAIL" in
  Format.fprintf ppf "@[<v>structure: %s@,evaluation: %s@,feasibility: %s@,"
    (flag r.structurally_valid)
    (flag r.evaluation_consistent)
    (flag r.feasible);
  (match r.optimality with
  | Optimal -> Format.fprintf ppf "optimality: certified optimal@,"
  | Suboptimal gap -> Format.fprintf ppf "optimality: suboptimal by %g@," gap
  | Unknown -> Format.fprintf ppf "optimality: no tractable certificate@,");
  List.iter (fun msg -> Format.fprintf ppf "  - %s@," msg) r.messages;
  Format.fprintf ppf "@]"
