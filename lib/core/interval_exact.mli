(** Exact latency-optimal {e interval} mappings on Fully Heterogeneous
    platforms — the problem the paper leaves open (Section 4.1: polynomial
    for general mappings by Theorem 4, NP-hard for one-to-one by Theorem 3,
    open in between).

    Without replication an interval mapping is a sequence of (interval,
    processor) pairs with pairwise-distinct processors.  We solve it
    exactly by dynamic programming over (last stage, last processor, set
    of used processors): [O(n^2 m^2 2^m)] time and [O(n m 2^m)] space — an
    exponential-in-[m] certificate algorithm, far faster than enumerating
    compositions times injections, and the reference point for measuring
    how much the interval restriction costs relative to Theorem 4's
    general mappings (experiment E19).

    The DP runs over domain-local reusable flat tables and a prefix-sum
    snapshot of the instance (PR 5); results are pinned bit-for-bit to the
    original implementation kept in {!Reference}. *)

open Relpipe_model

val max_procs : int
(** Hard cap on [m] (memory guard, 14). *)

val min_latency : Instance.t -> (float * Mapping.t) option
(** The optimal unreplicated interval mapping and its latency; [None] is
    impossible for valid instances (a single interval on one processor
    always exists), so the option only signals [n > 0] trivia — callers
    can [Option.get].  Agrees with {!Exact.min_latency_unreplicated}
    (property-tested).
    @raise Invalid_argument when [m > max_procs]. *)

val min_latency_par :
  ?workers:int -> Instance.t -> (float * Mapping.t) option
(** Layer-parallel twin of {!min_latency} over the {!Relpipe_pool.Pool}
    domains.  The DP table decomposes into independent relaxation layers
    by mask popcount — every cell's predecessors live one layer down — so
    each layer is recomputed pull-style, one pool job per mask, with a
    join between layers.  Each cell replays the serial nest's candidate
    order (source stage ascending, then source processor ascending) with
    the same strict-< update, so the value {e and} the tie-breaking
    parent chain are bit-identical to {!min_latency} at every worker
    count — deterministic structurally, not just observably
    (test/test_par_exact.ml and the [par-exact-identity] fuzz oracle).

    Records the deterministic [core.exact.par.dp.*] counters (runs,
    cells, layers, states) plus the pool's own metrics.
    @raise Invalid_argument when [m > max_procs]. *)

val interval_vs_general_gap : Instance.t -> float
(** [optimal interval latency / optimal general latency >= 1]: the price
    of the interval restriction on this instance. *)

(** Resumable twin of {!min_latency} for incremental re-solving under
    platform churn (PR 8).

    A DP cell [(e, u, mask)] depends only on the pipeline and on the
    attributes of the processors in [mask] (speeds, input links, links
    within the set) — never on processors outside it, and the output link
    only enters the final closing scan, which is always recomputed.  A
    warm solve therefore carries over, bit-for-bit, every cell whose mask
    avoids the processors touched by an event, and re-runs the identical
    loop nest only on the rest, so its answer is byte-identical to a cold
    solve's (the [churn-incremental] fuzz oracle and
    [test/test_churn.ml] pin this). *)
module Dp : sig
  type state
  (** Owned snapshot of one solve: the instance's cost inputs plus the
      full DP/parent tables.  Unlike {!min_latency} this does not use the
      shared domain-local workspace, so states survive later solves. *)

  type reuse = { cells_reused : int; cells_total : int }
  (** Carried-over vs. total meaningful cells ([n * m * 2^(m-1)]: cells
      whose processor belongs to their mask; the rest are structurally
      infinite).  A cold solve reports [cells_reused = 0]. *)

  val solve :
    ?warm:state * int array ->
    Instance.t ->
    (float * Mapping.t) option * state * reuse
  (** [solve ?warm instance] returns the same optimum as
      {!min_latency instance} plus the owned state for the next warm
      start.  [warm = (prev, prev_of)] gives the previous state and the
      index translation: [prev_of.(u)] is processor [u]'s index in the
      previous platform, [-1] for a fresh join.  [prev_of] must be
      strictly increasing on its defined entries (deaths compact, joins
      append — the churn driver's discipline); anything else, or a
      pipeline change, safely degrades to a full recompute.
      @raise Invalid_argument when [m > max_procs]. *)

  val dims : state -> int * int
  (** [(n, m)] of the solved instance. *)

  val fold_finite_cells :
    state ->
    init:'a ->
    f:('a -> e:int -> u:int -> mask:int -> float -> 'a) ->
    'a
  (** Fold over every finite DP cell in deterministic (e, u, mask)
      ascending order: the raw material for the interval-DP optimality
      certificate ({!Certify.interval}).  The value passed to [f] is the
      exact stored float. *)
end
