(** Exact latency-optimal {e interval} mappings on Fully Heterogeneous
    platforms — the problem the paper leaves open (Section 4.1: polynomial
    for general mappings by Theorem 4, NP-hard for one-to-one by Theorem 3,
    open in between).

    Without replication an interval mapping is a sequence of (interval,
    processor) pairs with pairwise-distinct processors.  We solve it
    exactly by dynamic programming over (last stage, last processor, set
    of used processors): [O(n^2 m^2 2^m)] time and [O(n m 2^m)] space — an
    exponential-in-[m] certificate algorithm, far faster than enumerating
    compositions times injections, and the reference point for measuring
    how much the interval restriction costs relative to Theorem 4's
    general mappings (experiment E19).

    The DP runs over domain-local reusable flat tables and a prefix-sum
    snapshot of the instance (PR 5); results are pinned bit-for-bit to the
    original implementation kept in {!Reference}. *)

open Relpipe_model

val max_procs : int
(** Hard cap on [m] (memory guard, 14). *)

val min_latency : Instance.t -> (float * Mapping.t) option
(** The optimal unreplicated interval mapping and its latency; [None] is
    impossible for valid instances (a single interval on one processor
    always exists), so the option only signals [n > 0] trivia — callers
    can [Option.get].  Agrees with {!Exact.min_latency_unreplicated}
    (property-tested).
    @raise Invalid_argument when [m > max_procs]. *)

val interval_vs_general_gap : Instance.t -> float
(** [optimal interval latency / optimal general latency >= 1]: the price
    of the interval restriction on this instance. *)
