(** Certificate emission for the exact solvers.

    These are the only bridges between [lib/core] and [lib/cert]: the
    solvers produce the raw material (a recorded search transcript, a DP
    table) and this module shapes it into a {!Relpipe_cert.Cert.t} that
    the independent {!Relpipe_cert.Check} replays against the instance
    alone.  Both emitters stamp the certificate with the MD5 of the
    instance's canonical {!Textio} text, so a certificate can never be
    replayed against the wrong instance unnoticed.

    Records [cert.emit.bb] / [cert.emit.dp] counters and
    [cert.emit.entries] on the ambient collector. *)

open Relpipe_model
module Cert = Relpipe_cert.Cert

val bb : Instance.t -> Instance.objective -> Solution.t option * Cert.t
(** Solve with {!Bb.solve_recorded} and package the full transcript.  The
    claim is the returned solution (or infeasibility); every recorded
    number is exactly the float the search computed, so the checker's
    bit-exact replay accepts.  test/test_cert.ml and the [cert-replay]
    fuzz oracle pin acceptance — and rejection of mutants. *)

val interval : Instance.t -> (float * Mapping.t) option * Cert.t option
(** Solve with {!Interval_exact.Dp.solve} and package every finite DP
    cell as a potential function.  [None] certificate only when the DP
    itself returns no mapping ([n = 0] trivia).
    @raise Invalid_argument when [m > Interval_exact.max_procs]. *)
