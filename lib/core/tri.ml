open Relpipe_model
module F = Relpipe_util.Float_cmp

type evaluation = { latency : float; period : float; failure : float }

type constraints = { max_latency : float; max_period : float }

type solution = { mapping : Mapping.t; evaluation : evaluation }

let evaluate instance mapping =
  let { Instance.pipeline; platform } = instance in
  {
    latency = Latency.of_mapping pipeline platform mapping;
    period = Period.of_mapping pipeline platform mapping;
    failure = Failure.of_mapping platform mapping;
  }

let feasible ?eps c e =
  F.leq ?eps e.latency c.max_latency && F.leq ?eps e.period c.max_period

let exact_min_failure ?(budget = 5_000_000) instance constraints =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best = ref None in
  let seen = ref 0 in
  Exact.iter_mappings ~n ~m (fun mapping ->
      incr seen;
      if !seen > budget then
        raise (Exact.Too_large "Tri.exact_min_failure: over budget");
      let e = evaluate instance mapping in
      if feasible constraints e then begin
        match !best with
        | Some b when b.evaluation.failure <= e.failure -> ()
        | _ -> best := Some { mapping; evaluation = e }
      end);
  !best

(* Balanced composition (same construction as Heuristics). *)
let balanced_composition pipeline p =
  let n = Pipeline.length pipeline in
  let total = Pipeline.total_work pipeline in
  let target j = float_of_int j *. total /. float_of_int p in
  let cuts = ref [] in
  let made = ref 0 in
  let acc = ref 0.0 in
  for k = 1 to n - 1 do
    acc := !acc +. Pipeline.work pipeline k;
    if !made < p - 1 && !acc >= target (!made + 1) && n - k >= p - 1 - !made
    then begin
      cuts := k :: !cuts;
      incr made
    end
  done;
  let rec force k =
    if !made < p - 1 then begin
      if not (List.mem k !cuts) then begin
        cuts := k :: !cuts;
        incr made
      end;
      force (k - 1)
    end
  in
  force (n - 1);
  let bounds = List.sort Int.compare !cuts in
  let rec build first = function
    | [] -> [ (first, n) ]
    | c :: tl -> (first, c) :: build (c + 1) tl
  in
  build 1 bounds

let greedy_min_failure instance constraints =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best = ref None in
  let keep mapping =
    let e = evaluate instance mapping in
    if feasible constraints e then begin
      match !best with
      | Some b when b.evaluation.failure <= e.failure -> ()
      | _ -> best := Some { mapping; evaluation = e }
    end
  in
  let try_p p =
    let intervals = Array.of_list (balanced_composition pipeline p) in
    if Array.length intervals <> p then ()
    else begin
      let order_by_work =
        List.sort
          (fun i j ->
            Float.compare
              (Pipeline.work_sum pipeline ~first:(fst intervals.(j))
                 ~last:(snd intervals.(j)))
              (Pipeline.work_sum pipeline ~first:(fst intervals.(i))
                 ~last:(snd intervals.(i))))
          (List.init p Fun.id)
      in
      let fastest = Array.of_list (Mono.fastest_procs platform) in
      let sets = Array.make p [] in
      List.iteri (fun rank j -> sets.(j) <- [ fastest.(rank) ]) order_by_work;
      let used = Array.make m false in
      Array.iter (List.iter (fun u -> used.(u) <- true)) sets;
      let build () =
        Mapping.make ~n ~m
          (List.init p (fun j ->
               {
                 Mapping.first = fst intervals.(j);
                 last = snd intervals.(j);
                 procs = List.sort Int.compare sets.(j);
               }))
      in
      keep (build ());
      (* Greedy additions: take the (proc, interval) pair that most reduces
         FP while both thresholds stay satisfied. *)
      let improved = ref true in
      while !improved do
        improved := false;
        let current_best_fp =
          match !best with Some b -> b.evaluation.failure | None -> Float.infinity
        in
        let best_move = ref None in
        for u = 0 to m - 1 do
          if not used.(u) then
            for j = 0 to p - 1 do
              sets.(j) <- u :: sets.(j);
              let mapping = build () in
              let e = evaluate instance mapping in
              if feasible constraints e && e.failure < current_best_fp then begin
                match !best_move with
                | Some (fp, _, _) when fp <= e.failure -> ()
                | _ -> best_move := Some (e.failure, u, j)
              end;
              sets.(j) <- List.tl sets.(j)
            done
        done;
        match !best_move with
        | Some (_, u, j) ->
            sets.(j) <- u :: sets.(j);
            used.(u) <- true;
            keep (build ());
            improved := true
        | None -> ()
      done
    end
  in
  for p = 1 to min n m do
    try_p p
  done;
  !best

let pp_evaluation ppf e =
  Format.fprintf ppf "latency=%g period=%g failure=%g" e.latency e.period
    e.failure
