open Relpipe_model
module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp

(* The pre-optimization solver kernels, kept alive verbatim (minus the obs
   instrumentation) as differential twins.  The [opt-vs-reference] fuzz
   oracle and [test/test_reference.ml] pin the optimized kernels to these
   on randomized and adversarial instances; the bench harness measures the
   optimized kernels against them.  Do not "improve" this module — its
   whole value is that it does not change. *)

let interval_min_latency_reference instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > Interval_exact.max_procs then
    invalid_arg "Reference.interval_min_latency_reference: too many processors";
  let masks = 1 lsl m in
  (* dp.(e).(u).(mask): cheapest cost of stages 1..e split into intervals
     with distinct processors (set = mask), last interval on u; includes
     the input communication and all computations/communications up to
     stage e, excludes the final output. *)
  let dp =
    Array.init (n + 1) (fun _ -> Array.make_matrix m masks Float.infinity)
  in
  let parent = Array.init (n + 1) (fun _ -> Array.make_matrix m masks (-1)) in
  for v = 0 to m - 1 do
    let input =
      Pipeline.delta pipeline 0
      /. Platform.bandwidth platform Platform.Pin (Platform.Proc v)
    in
    for e = 1 to n do
      dp.(e).(v).(1 lsl v) <-
        input +. (Pipeline.work_sum pipeline ~first:1 ~last:e /. Platform.speed platform v)
    done
  done;
  for e = 1 to n - 1 do
    for u = 0 to m - 1 do
      let row = dp.(e).(u) in
      for mask = 0 to masks - 1 do
        let base = row.(mask) in
        if Float.is_finite base then begin
          let hop v =
            Pipeline.delta pipeline e
            /. Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
          in
          for v = 0 to m - 1 do
            if mask land (1 lsl v) = 0 then begin
              let comm = hop v in
              let nmask = mask lor (1 lsl v) in
              for e' = e + 1 to n do
                let cand =
                  base +. comm
                  +. Pipeline.work_sum pipeline ~first:(e + 1) ~last:e'
                     /. Platform.speed platform v
                in
                if cand < dp.(e').(v).(nmask) then begin
                  dp.(e').(v).(nmask) <- cand;
                  parent.(e').(v).(nmask) <- (e * m) + u
                end
              done
            end
          done
        end
      done
    done
  done;
  (* Close against Pout. *)
  let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
  for u = 0 to m - 1 do
    let out =
      Pipeline.delta pipeline n
      /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout
    in
    for mask = 0 to masks - 1 do
      let total = dp.(n).(u).(mask) +. out in
      if total < !best then begin
        best := total;
        best_u := u;
        best_mask := mask
      end
    done
  done;
  if not (Float.is_finite !best) then None
  else begin
    (* Reconstruct the interval chain. *)
    let rec rebuild e u mask acc =
      match parent.(e).(u).(mask) with
      | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
      | code ->
          let pe = code / m and pu = code mod m in
          rebuild pe pu
            (mask land lnot (1 lsl u))
            ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
    in
    let intervals = rebuild n !best_u !best_mask [] in
    Some (!best, Mapping.make ~n ~m intervals)
  end

let general_dp_reference instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  (* best.(u): cheapest cost of a partial mapping of stages 1..i with stage
     i on processor u, including stage i's computation. *)
  let best = Array.make m 0.0 in
  let parent = Array.make_matrix (n + 1) m (-1) in
  for u = 0 to m - 1 do
    best.(u) <-
      (Pipeline.delta pipeline 0
       /. Platform.bandwidth platform Platform.Pin (Platform.Proc u))
      +. (Pipeline.work pipeline 1 /. Platform.speed platform u)
  done;
  for i = 2 to n do
    let next = Array.make m Float.infinity in
    for v = 0 to m - 1 do
      let compute = Pipeline.work pipeline i /. Platform.speed platform v in
      for u = 0 to m - 1 do
        let comm =
          if u = v then 0.0
          else
            Pipeline.delta pipeline (i - 1)
            /. Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
        in
        let cand = best.(u) +. comm +. compute in
        if cand < next.(v) then begin
          next.(v) <- cand;
          parent.(i).(v) <- u
        end
      done
    done;
    Array.blit next 0 best 0 m
  done;
  let final = ref Float.infinity and final_u = ref (-1) in
  for u = 0 to m - 1 do
    let total =
      best.(u)
      +. Pipeline.delta pipeline n
         /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout
    in
    if total < !final then begin
      final := total;
      final_u := u
    end
  done;
  let procs = Array.make n 0 in
  let u = ref !final_u in
  for i = n downto 1 do
    procs.(i - 1) <- !u;
    if i > 1 then u := parent.(i).(!u)
  done;
  (!final, Assignment.make ~m procs)

(* --- Branch and bound, pre-memoization. --- *)

type bb_ctx = {
  instance : Instance.t;
  objective : Instance.objective;
  n : int;
  m : int;
  max_speed : float;
  mutable best : Solution.t option;
  mutable nodes : int;
  mutable evaluated : int;
  mutable pruned : int;
}

let incumbent_objective ctx =
  match ctx.best with
  | None -> Float.infinity
  | Some s -> Instance.objective_value ctx.objective s.Solution.evaluation

(* Lower bound on the latency still to be paid for stages > done_upto:
   remaining work at the fastest speed (communications >= 0). *)
let remaining_bound ctx done_upto =
  if done_upto >= ctx.n then 0.0
  else
    Pipeline.work_sum ctx.instance.Instance.pipeline ~first:(done_upto + 1)
      ~last:ctx.n
    /. ctx.max_speed

let prune ctx ~partial_latency ~partial_failure ~done_upto =
  let latency_lb = partial_latency +. remaining_bound ctx done_upto in
  let incumbent = incumbent_objective ctx in
  match ctx.objective with
  | Instance.Min_failure { max_latency } ->
      (not (F.leq latency_lb max_latency)) || partial_failure >= incumbent
  | Instance.Min_latency { max_failure } ->
      (not (F.leq partial_failure max_failure)) || latency_lb >= incumbent

(* The Eq. 2 term of a closed interval, given the replication set of its
   successor (or Pout). *)
let interval_term ctx (first, last, procs) next_targets =
  let { Instance.pipeline; platform } = ctx.instance in
  let work = Pipeline.work_sum pipeline ~first ~last in
  let out_size = Pipeline.delta pipeline last in
  B.fold
    (fun u acc ->
      let compute = work /. Platform.speed platform u in
      let comm =
        List.fold_left
          (fun sum v ->
            sum +. (out_size /. Platform.bandwidth platform (Platform.Proc u) v))
          0.0 next_targets
      in
      Float.max acc (compute +. comm))
    procs Float.neg_infinity

(* Lower bound on a pending interval's eventual term: its computation on
   its own slowest replica (outgoing communications >= 0). *)
let pending_bound ctx (first, last, procs) =
  let { Instance.pipeline; platform } = ctx.instance in
  let work = Pipeline.work_sum pipeline ~first ~last in
  B.fold
    (fun u acc -> Float.max acc (work /. Platform.speed platform u))
    procs Float.neg_infinity

let endpoints_of procs = B.fold (fun u acc -> Platform.Proc u :: acc) procs []

let rec branch (ctx : bb_ctx) ~next_stage ~used ~closed ~pending
    ~latency_closed ~log_survival =
  (* [closed]: reversed list of finalized intervals (term already added to
     latency_closed).  [pending]: the last chosen interval, whose outgoing
     term depends on the next decision. *)
  ctx.nodes <- ctx.nodes + 1;
  let partial_failure = -.Float.expm1 log_survival in
  let pending_lb =
    match pending with None -> 0.0 | Some iv -> pending_bound ctx iv
  in
  if
    prune ctx
      ~partial_latency:(latency_closed +. pending_lb)
      ~partial_failure ~done_upto:(next_stage - 1)
  then ctx.pruned <- ctx.pruned + 1
  else if next_stage > ctx.n then begin
    (* Close the final interval against Pout and record the solution. *)
    match pending with
    | None -> assert false
    | Some ((_, _, _) as iv) ->
        let total =
          latency_closed +. interval_term ctx iv [ Platform.Pout ]
        in
        ctx.evaluated <- ctx.evaluated + 1;
        let mapping =
          Mapping.make ~n:ctx.n ~m:ctx.m
            (List.rev_map
               (fun (first, last, procs) ->
                 { Mapping.first; last; procs = B.elements procs })
               (iv :: closed))
        in
        let evaluation = { Instance.latency = total; failure = partial_failure } in
        if Instance.feasible ctx.objective evaluation then begin
          let candidate = { Solution.mapping; evaluation } in
          match ctx.best with
          | Some b
            when not
                   (Instance.better ctx.objective evaluation
                      b.Solution.evaluation) ->
              ()
          | _ -> ctx.best <- Some candidate
        end
  end
  else begin
    let unused = B.diff (B.full ctx.m) used in
    (* Choose the next interval [next_stage .. e] and its replication set. *)
    for e = next_stage to ctx.n do
      Seq.iter
        (fun subset ->
          let iv = (next_stage, e, subset) in
          let latency_closed', log_survival' =
            match pending with
            | None ->
                (* First interval: pay the input sends. *)
                let input =
                  B.fold
                    (fun u acc ->
                      acc
                      +. Pipeline.delta ctx.instance.Instance.pipeline 0
                         /. Platform.bandwidth ctx.instance.Instance.platform
                              Platform.Pin (Platform.Proc u))
                    subset 0.0
                in
                (latency_closed +. input, log_survival)
            | Some prev ->
                ( latency_closed +. interval_term ctx prev (endpoints_of subset),
                  log_survival )
          in
          let pi =
            Failure.interval_failure ctx.instance.Instance.platform
              (B.elements subset)
          in
          let log_survival' = log_survival' +. Float.log1p (-.pi) in
          let closed' = match pending with None -> closed | Some p -> p :: closed in
          branch ctx ~next_stage:(e + 1) ~used:(B.union used subset)
            ~closed:closed' ~pending:(Some iv) ~latency_closed:latency_closed'
            ~log_survival:log_survival')
        (B.nonempty_subsets unused)
    done
  end

let bb_solve_with_stats_reference instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > B.max_width then
    invalid_arg "Reference.bb_solve_with_stats_reference: too many processors";
  let ctx =
    {
      instance;
      objective;
      n;
      m;
      max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform);
      best = None;
      nodes = 0;
      evaluated = 0;
      pruned = 0;
    }
  in
  branch ctx ~next_stage:1 ~used:B.empty ~closed:[] ~pending:None
    ~latency_closed:0.0 ~log_survival:0.0;
  ( ctx.best,
    {
      Bb.nodes = ctx.nodes;
      evaluated = ctx.evaluated;
      pruned = ctx.pruned;
    } )

let bb_solve_reference instance objective =
  fst (bb_solve_with_stats_reference instance objective)
