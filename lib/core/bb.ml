open Relpipe_model
module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp
module Obs = Relpipe_obs.Obs
module W = Relpipe_util.Workspace

type stats = { nodes : int; evaluated : int; pruned : int }

(* Per-mask memo tables, workspace-backed and NaN-reset at the start of
   every solve (the reset is what keeps consecutive solves independent —
   see the regression test in test/test_bb.ml).  Only allocated up to
   [memo_max_procs]: beyond that 2^m tables would dwarf the search itself,
   and the solver falls back to recomputing each term. *)
let memo_max_procs = 16
let ws_minspd = W.floats ()
let ws_input = W.floats ()
let ws_logsurv = W.floats ()

type memo = {
  minspd : float array;  (* slowest speed in the mask *)
  input : float array;  (* cost of the Pin sends to every mask member *)
  logsurv : float array;  (* log1p (-. interval failure) of the mask *)
}

(* Mutable search context. *)
type ctx = {
  instance : Instance.t;
  objective : Instance.objective;
  n : int;
  m : int;
  (* Flat snapshots of the instance, so the search never allocates
     [Platform.Proc _] endpoints or re-derives interval work sums. *)
  wp : float array;  (* work prefix sums, wp.(k) = w_1 + ... + w_k *)
  deltas : float array;  (* deltas.(k) = delta_k *)
  spd : float array;
  bw_out : float array;  (* u -> Pout *)
  bw_pp : float array;  (* u -> v at u*m+v, diagonal unused *)
  rem : float array;  (* rem.(d): remaining-work bound after stage d *)
  (* Static upper bound on the objective (PR 8 warm starts): subtrees
     whose objective lower bound strictly exceeds it cannot contain the
     optimum, so cutting them leaves the returned solution bit-identical
     to an unbounded solve.  [Float.infinity] disables it. *)
  bound0 : float;
  memo : memo option;
  mutable best : Solution.t option;
  mutable nodes : int;
  mutable evaluated : int;
  mutable pruned : int;
}

let incumbent_objective ctx =
  match ctx.best with
  | None -> Float.infinity
  | Some s -> Instance.objective_value ctx.objective s.Solution.evaluation

let prune ctx ~partial_latency ~partial_failure ~done_upto =
  (* ctx.rem.(done_upto) is the lower bound on the latency still to be
     paid for stages > done_upto: remaining work at the fastest speed
     (communications >= 0). *)
  let latency_lb = partial_latency +. ctx.rem.(done_upto) in
  let incumbent = incumbent_objective ctx in
  match ctx.objective with
  | Instance.Min_failure { max_latency } ->
      (not (F.leq latency_lb max_latency))
      || partial_failure >= incumbent
      || partial_failure > ctx.bound0
  | Instance.Min_latency { max_failure } ->
      (not (F.leq partial_failure max_failure))
      || latency_lb >= incumbent
      || latency_lb > ctx.bound0

(* Slowest speed in [procs]; memoized per mask.  Ascending scan, matching
   the reference's fold order. *)
let min_speed ctx procs =
  let mask = (procs : B.t :> int) in
  let compute () =
    let acc = ref Float.infinity in
    for u = 0 to ctx.m - 1 do
      if mask land (1 lsl u) <> 0 then acc := Float.min !acc ctx.spd.(u)
    done;
    !acc
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let cached = memo.minspd.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.minspd.(mask) <- value;
        value
      end
      else cached

(* Lower bound on a pending interval's eventual term: its computation on
   its own slowest replica (outgoing communications >= 0).  Division by a
   positive speed is antitone and rounding is monotone, so the reference's
   max over [work /. speed u] is exactly [work /. min speed] — one
   division against the memoized slowest speed. *)
let pending_bound ctx (first, last, procs) =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  work /. min_speed ctx procs

(* The Eq. 2 term of a closed interval, given the replication set of its
   successor.  Targets are scanned in descending processor order — the
   order [endpoints_of] produced in the reference — so the communication
   sums round identically. *)
let interval_term ctx (first, last, procs) next_mask =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  let out_size = ctx.deltas.(last) in
  let pmask = (procs : B.t :> int) in
  let acc = ref Float.neg_infinity in
  for u = 0 to ctx.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. ctx.spd.(u) in
      let comm = ref 0.0 in
      let bw_row = u * ctx.m in
      for v = ctx.m - 1 downto 0 do
        if next_mask land (1 lsl v) <> 0 then
          comm := !comm +. (out_size /. ctx.bw_pp.(bw_row + v))
      done;
      acc := Float.max !acc (compute +. !comm)
    end
  done;
  !acc

(* Same term when the successor is Pout (the final close). *)
let interval_term_out ctx (first, last, procs) =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  let out_size = ctx.deltas.(last) in
  let pmask = (procs : B.t :> int) in
  let acc = ref Float.neg_infinity in
  for u = 0 to ctx.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. ctx.spd.(u) in
      let comm = 0.0 +. (out_size /. ctx.bw_out.(u)) in
      acc := Float.max !acc (compute +. comm)
    end
  done;
  !acc

(* Cost of the input sends to every member of [subset]; memoized per mask.
   Ascending accumulation, matching the reference's fold order. *)
let input_cost ctx subset =
  let mask = (subset : B.t :> int) in
  let compute () =
    let acc = ref 0.0 in
    let platform = ctx.instance.Instance.platform in
    for u = 0 to ctx.m - 1 do
      if mask land (1 lsl u) <> 0 then
        acc :=
          !acc
          +. ctx.deltas.(0)
             /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)
    done;
    !acc
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let cached = memo.input.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.input.(mask) <- value;
        value
      end
      else cached

(* log1p (-. pi) of a replication set; memoized per mask. *)
let log_survival_term ctx subset =
  let compute () =
    let pi =
      Failure.interval_failure ctx.instance.Instance.platform
        (B.elements subset)
    in
    Float.log1p (-.pi)
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let mask = (subset : B.t :> int) in
      let cached = memo.logsurv.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.logsurv.(mask) <- value;
        value
      end
      else cached

let rec branch (ctx : ctx) ~next_stage ~used ~closed ~pending ~latency_closed
    ~log_survival =
  (* [closed]: reversed list of finalized intervals (term already added to
     latency_closed).  [pending]: the last chosen interval, whose outgoing
     term depends on the next decision. *)
  ctx.nodes <- ctx.nodes + 1;
  let partial_failure = -.Float.expm1 log_survival in
  let pending_lb =
    match pending with None -> 0.0 | Some iv -> pending_bound ctx iv
  in
  if
    prune ctx
      ~partial_latency:(latency_closed +. pending_lb)
      ~partial_failure ~done_upto:(next_stage - 1)
  then ctx.pruned <- ctx.pruned + 1
  else if next_stage > ctx.n then begin
    (* Close the final interval against Pout and record the solution. *)
    match pending with
    | None -> assert false
    | Some ((_, _, _) as iv) ->
        let total = latency_closed +. interval_term_out ctx iv in
        ctx.evaluated <- ctx.evaluated + 1;
        let mapping =
          Mapping.make ~n:ctx.n ~m:ctx.m
            (List.rev_map
               (fun (first, last, procs) ->
                 { Mapping.first; last; procs = B.elements procs })
               (iv :: closed))
        in
        let evaluation = { Instance.latency = total; failure = partial_failure } in
        if Instance.feasible ctx.objective evaluation then begin
          let candidate = { Solution.mapping; evaluation } in
          match ctx.best with
          | Some b
            when not
                   (Instance.better ctx.objective evaluation
                      b.Solution.evaluation) ->
              ()
          | _ -> ctx.best <- Some candidate
        end
  end
  else begin
    let unused = B.diff (B.full ctx.m) used in
    (* Choose the next interval [next_stage .. e] and its replication set. *)
    for e = next_stage to ctx.n do
      B.iter_nonempty_subsets
        (fun subset ->
          let iv = (next_stage, e, subset) in
          let latency_closed' =
            match pending with
            | None ->
                (* First interval: pay the input sends. *)
                latency_closed +. input_cost ctx subset
            | Some prev ->
                latency_closed
                +. interval_term ctx prev (subset : B.t :> int)
          in
          let log_survival' = log_survival +. log_survival_term ctx subset in
          let closed' = match pending with None -> closed | Some p -> p :: closed in
          branch ctx ~next_stage:(e + 1) ~used:(B.union used subset)
            ~closed:closed' ~pending:(Some iv) ~latency_closed:latency_closed'
            ~log_survival:log_survival')
        unused
    done
  end

let solve_with_stats ?(prune_above = Float.infinity) instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > B.max_width then invalid_arg "Bb.solve: too many processors";
  let wp = Pipeline.work_prefixes pipeline in
  let deltas = Array.init (n + 1) (Pipeline.delta pipeline) in
  let spd = Array.init m (Platform.speed platform) in
  let bw_out =
    Array.init m (fun u ->
        Platform.bandwidth platform (Platform.Proc u) Platform.Pout)
  in
  let bw_pp = Array.make (m * m) 0.0 in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      if u <> v then
        bw_pp.((u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  let max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform) in
  let rem = Array.make (n + 1) 0.0 in
  for d = 0 to n - 1 do
    rem.(d) <- (wp.(n) -. wp.(d)) /. max_speed
  done;
  let memo =
    if m > memo_max_procs then None
    else begin
      let masks = 1 lsl m in
      (* NaN-fill resets every table: a hit can never be a stale value
         from a previous solve. *)
      Some
        {
          minspd = W.get_floats ws_minspd ~len:masks ~fill:Float.nan;
          input = W.get_floats ws_input ~len:masks ~fill:Float.nan;
          logsurv = W.get_floats ws_logsurv ~len:masks ~fill:Float.nan;
        }
    end
  in
  let ctx =
    {
      instance;
      objective;
      n;
      m;
      wp;
      deltas;
      spd;
      bw_out;
      bw_pp;
      rem;
      bound0 = prune_above;
      memo;
      best = None;
      nodes = 0;
      evaluated = 0;
      pruned = 0;
    }
  in
  branch ctx ~next_stage:1 ~used:B.empty ~closed:[] ~pending:None
    ~latency_closed:0.0 ~log_survival:0.0;
  let obs = Obs.ambient () in
  Obs.incr obs "core.bb.solves";
  Obs.add obs "core.bb.nodes" ctx.nodes;
  Obs.add obs "core.bb.evaluated" ctx.evaluated;
  Obs.add obs "core.bb.pruned" ctx.pruned;
  (ctx.best, { nodes = ctx.nodes; evaluated = ctx.evaluated; pruned = ctx.pruned })

let solve ?prune_above instance objective =
  fst (solve_with_stats ?prune_above instance objective)
