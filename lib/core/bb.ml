open Relpipe_model
module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp
module Obs = Relpipe_obs.Obs
module Pool = Relpipe_pool.Pool
module W = Relpipe_util.Workspace

type stats = { nodes : int; evaluated : int; pruned : int }

(* ------------------------------------------------------------------ *)
(* Epsilon-safe bound inflation                                        *)
(* ------------------------------------------------------------------ *)

(* The one slack constant shared by every sound-upper-bound cut: churn
   warm starts (PR 8) and the parallel probe's shared incumbent both
   inflate a known-feasible objective by [prune_slack] (relative, with an
   absolute floor of the same magnitude) before using it as
   [?prune_above].  The slack strictly dominates the eps-tolerance of
   {!Instance.better} (16 x its default eps), so an optimum that ties the
   bound within tolerance is never cut.  test/test_par_exact.ml pins the
   value. *)
let prune_slack = 16. *. F.default_eps
let inflate_bound b = b +. (prune_slack *. Float.max 1.0 (Float.abs b))

(* Lock-free monotone-min cell: the shared incumbent of the parallel
   probe.  [improve] is a CAS retry loop; losing a race only means
   re-reading a value that some other domain already lowered, so no
   published improvement is ever lost (test/test_par_exact.ml races 8
   domains over one cell to check exactly that). *)
module Bound = struct
  type t = float Atomic.t

  let create v = Atomic.make v
  let get = Atomic.get

  let rec improve t v =
    let cur = Atomic.get t in
    if v < cur && not (Atomic.compare_and_set t cur v) then improve t v
end

(* ------------------------------------------------------------------ *)
(* Search transcript (certificates)                                    *)
(* ------------------------------------------------------------------ *)

module Record = struct
  type reason = Threshold | Dominated

  type status =
    | Expanded
    | Evaluated of { latency : float; failure : float }
    | Pruned of { reason : reason; latency_lb : float; partial_failure : float }

  type node = { path : (int * int * B.t) list; status : status }
end

(* Per-mask memo tables, workspace-backed and NaN-reset at the start of
   every solve (the reset is what keeps consecutive solves independent —
   see the regression test in test/test_bb.ml).  Only allocated up to
   [memo_max_procs]: beyond that 2^m tables would dwarf the search itself,
   and the solver falls back to recomputing each term. *)
let memo_max_procs = 16
let ws_minspd = W.floats ()
let ws_input = W.floats ()
let ws_logsurv = W.floats ()

type memo = {
  minspd : float array;  (* slowest speed in the mask *)
  input : float array;  (* cost of the Pin sends to every mask member *)
  logsurv : float array;  (* log1p (-. interval failure) of the mask *)
}

(* Mutable search context. *)
type ctx = {
  instance : Instance.t;
  objective : Instance.objective;
  n : int;
  m : int;
  (* Flat snapshots of the instance, so the search never allocates
     [Platform.Proc _] endpoints or re-derives interval work sums. *)
  wp : float array;  (* work prefix sums, wp.(k) = w_1 + ... + w_k *)
  deltas : float array;  (* deltas.(k) = delta_k *)
  spd : float array;
  bw_out : float array;  (* u -> Pout *)
  bw_pp : float array;  (* u -> v at u*m+v, diagonal unused *)
  rem : float array;  (* rem.(d): remaining-work bound after stage d *)
  (* Upper bound on the objective: subtrees whose objective lower bound
     strictly exceeds it cannot contain the optimum, so cutting them
     leaves the returned solution bit-identical to an unbounded solve.
     A static [?prune_above] (PR 8 warm starts) and the probe phase's
     shared cell both live here; serial solves never write it. *)
  bound : Bound.t;
  (* Publish improvements of the local incumbent into [bound] (inflated
     by [inflate_bound]); on only inside parallel probe tasks. *)
  publish : bool;
  (* Append a transcript entry per node; on only under [Record.solve]. *)
  record : bool;
  memo : memo option;
  mutable best : Solution.t option;
  mutable log : Record.node list;
  (* Node budget: -1 is unlimited, otherwise the search stops expanding
     once the budget is spent (probe tasks only — a budgeted search is
     still sound as a bound source because it publishes nothing but fully
     evaluated feasible mappings). *)
  mutable fuel : int;
  mutable nodes : int;
  mutable evaluated : int;
  mutable pruned : int;
}

let incumbent_objective ctx =
  match ctx.best with
  | None -> Float.infinity
  | Some s -> Instance.objective_value ctx.objective s.Solution.evaluation

type verdict = Keep | Cut of Record.reason

let prune_ex ctx ~partial_latency ~partial_failure ~done_upto =
  (* ctx.rem.(done_upto) is the lower bound on the latency still to be
     paid for stages > done_upto: remaining work at the fastest speed
     (communications >= 0). *)
  let latency_lb = partial_latency +. ctx.rem.(done_upto) in
  let incumbent = incumbent_objective ctx in
  let bound0 = Bound.get ctx.bound in
  match ctx.objective with
  | Instance.Min_failure { max_latency } ->
      if not (F.leq latency_lb max_latency) then Cut Record.Threshold
      else if partial_failure >= incumbent || partial_failure > bound0 then
        Cut Record.Dominated
      else Keep

  | Instance.Min_latency { max_failure } ->
      if not (F.leq partial_failure max_failure) then Cut Record.Threshold
      else if latency_lb >= incumbent || latency_lb > bound0 then
        Cut Record.Dominated
      else Keep

(* Slowest speed in [procs]; memoized per mask.  Ascending scan, matching
   the reference's fold order. *)
let min_speed ctx procs =
  let mask = (procs : B.t :> int) in
  let compute () =
    let acc = ref Float.infinity in
    for u = 0 to ctx.m - 1 do
      if mask land (1 lsl u) <> 0 then acc := Float.min !acc ctx.spd.(u)
    done;
    !acc
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let cached = memo.minspd.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.minspd.(mask) <- value;
        value
      end
      else cached

(* Lower bound on a pending interval's eventual term: its computation on
   its own slowest replica (outgoing communications >= 0).  Division by a
   positive speed is antitone and rounding is monotone, so the reference's
   max over [work /. speed u] is exactly [work /. min speed] — one
   division against the memoized slowest speed. *)
let pending_bound ctx (first, last, procs) =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  work /. min_speed ctx procs

(* The Eq. 2 term of a closed interval, given the replication set of its
   successor.  Targets are scanned in descending processor order — the
   order [endpoints_of] produced in the reference — so the communication
   sums round identically. *)
let interval_term ctx (first, last, procs) next_mask =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  let out_size = ctx.deltas.(last) in
  let pmask = (procs : B.t :> int) in
  let acc = ref Float.neg_infinity in
  for u = 0 to ctx.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. ctx.spd.(u) in
      let comm = ref 0.0 in
      let bw_row = u * ctx.m in
      for v = ctx.m - 1 downto 0 do
        if next_mask land (1 lsl v) <> 0 then
          comm := !comm +. (out_size /. ctx.bw_pp.(bw_row + v))
      done;
      acc := Float.max !acc (compute +. !comm)
    end
  done;
  !acc

(* Same term when the successor is Pout (the final close). *)
let interval_term_out ctx (first, last, procs) =
  let work = ctx.wp.(last) -. ctx.wp.(first - 1) in
  let out_size = ctx.deltas.(last) in
  let pmask = (procs : B.t :> int) in
  let acc = ref Float.neg_infinity in
  for u = 0 to ctx.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. ctx.spd.(u) in
      let comm = 0.0 +. (out_size /. ctx.bw_out.(u)) in
      acc := Float.max !acc (compute +. comm)
    end
  done;
  !acc

(* Cost of the input sends to every member of [subset]; memoized per mask.
   Ascending accumulation, matching the reference's fold order. *)
let input_cost ctx subset =
  let mask = (subset : B.t :> int) in
  let compute () =
    let acc = ref 0.0 in
    let platform = ctx.instance.Instance.platform in
    for u = 0 to ctx.m - 1 do
      if mask land (1 lsl u) <> 0 then
        acc :=
          !acc
          +. ctx.deltas.(0)
             /. Platform.bandwidth platform Platform.Pin (Platform.Proc u)
    done;
    !acc
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let cached = memo.input.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.input.(mask) <- value;
        value
      end
      else cached

(* log1p (-. pi) of a replication set; memoized per mask. *)
let log_survival_term ctx subset =
  let compute () =
    let pi =
      Failure.interval_failure ctx.instance.Instance.platform
        (B.elements subset)
    in
    Float.log1p (-.pi)
  in
  match ctx.memo with
  | None -> compute ()
  | Some memo ->
      let mask = (subset : B.t :> int) in
      let cached = memo.logsurv.(mask) in
      if Float.is_nan cached then begin
        let value = compute () in
        memo.logsurv.(mask) <- value;
        value
      end
      else cached

(* Transcript entry for the node identified by [closed]/[pending]; only
   ever called with [ctx.record] on, so the path materialization stays
   off the ordinary hot path. *)
let record_node ctx ~closed ~pending status =
  let rpath = match pending with None -> closed | Some p -> p :: closed in
  ctx.log <- { Record.path = List.rev rpath; status } :: ctx.log

let rec branch (ctx : ctx) ~next_stage ~used ~closed ~pending ~latency_closed
    ~log_survival =
  (* [closed]: reversed list of finalized intervals (term already added to
     latency_closed).  [pending]: the last chosen interval, whose outgoing
     term depends on the next decision. *)
  if ctx.fuel = 0 then ()
  else begin
    if ctx.fuel > 0 then ctx.fuel <- ctx.fuel - 1;
    ctx.nodes <- ctx.nodes + 1;
    let partial_failure = -.Float.expm1 log_survival in
    let pending_lb =
      match pending with None -> 0.0 | Some iv -> pending_bound ctx iv
    in
    let partial_latency = latency_closed +. pending_lb in
    match
      prune_ex ctx ~partial_latency ~partial_failure
        ~done_upto:(next_stage - 1)
    with
    | Cut reason ->
        ctx.pruned <- ctx.pruned + 1;
        if ctx.record then
          record_node ctx ~closed ~pending
            (Record.Pruned
               {
                 reason;
                 latency_lb = partial_latency +. ctx.rem.(next_stage - 1);
                 partial_failure;
               })
    | Keep ->
        if next_stage > ctx.n then begin
          (* Close the final interval against Pout and record the
             solution. *)
          match pending with
          | None -> assert false
          | Some ((_, _, _) as iv) ->
              let total = latency_closed +. interval_term_out ctx iv in
              ctx.evaluated <- ctx.evaluated + 1;
              if ctx.record then
                record_node ctx ~closed ~pending
                  (Record.Evaluated
                     { latency = total; failure = partial_failure });
              let mapping =
                Mapping.make ~n:ctx.n ~m:ctx.m
                  (List.rev_map
                     (fun (first, last, procs) ->
                       { Mapping.first; last; procs = B.elements procs })
                     (iv :: closed))
              in
              let evaluation =
                { Instance.latency = total; failure = partial_failure }
              in
              if Instance.feasible ctx.objective evaluation then begin
                let candidate = { Solution.mapping; evaluation } in
                match ctx.best with
                | Some b
                  when not
                         (Instance.better ctx.objective evaluation
                            b.Solution.evaluation) ->
                    ()
                | _ ->
                    ctx.best <- Some candidate;
                    if ctx.publish then
                      Bound.improve ctx.bound
                        (inflate_bound
                           (Instance.objective_value ctx.objective evaluation))
              end
        end
        else begin
          if ctx.record then record_node ctx ~closed ~pending Record.Expanded;
          let unused = B.diff (B.full ctx.m) used in
          (* Choose the next interval [next_stage .. e] and its replication
             set. *)
          for e = next_stage to ctx.n do
            B.iter_nonempty_subsets
              (fun subset ->
                let iv = (next_stage, e, subset) in
                let latency_closed' =
                  match pending with
                  | None ->
                      (* First interval: pay the input sends. *)
                      latency_closed +. input_cost ctx subset
                  | Some prev ->
                      latency_closed
                      +. interval_term ctx prev (subset : B.t :> int)
                in
                let log_survival' =
                  log_survival +. log_survival_term ctx subset
                in
                let closed' =
                  match pending with None -> closed | Some p -> p :: closed
                in
                branch ctx ~next_stage:(e + 1) ~used:(B.union used subset)
                  ~closed:closed' ~pending:(Some iv)
                  ~latency_closed:latency_closed' ~log_survival:log_survival')
              unused
          done
        end
  end

let make_ctx ?(prune_above = Float.infinity) ?bound ~publish ~record instance
    objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > B.max_width then invalid_arg "Bb.solve: too many processors";
  let wp = Pipeline.work_prefixes pipeline in
  let deltas = Array.init (n + 1) (Pipeline.delta pipeline) in
  let spd = Array.init m (Platform.speed platform) in
  let bw_out =
    Array.init m (fun u ->
        Platform.bandwidth platform (Platform.Proc u) Platform.Pout)
  in
  let bw_pp = Array.make (m * m) 0.0 in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      if u <> v then
        bw_pp.((u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  let max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform) in
  let rem = Array.make (n + 1) 0.0 in
  for d = 0 to n - 1 do
    rem.(d) <- (wp.(n) -. wp.(d)) /. max_speed
  done;
  let memo =
    if m > memo_max_procs then None
    else begin
      let masks = 1 lsl m in
      (* NaN-fill resets every table: a hit can never be a stale value
         from a previous solve. *)
      Some
        {
          minspd = W.get_floats ws_minspd ~len:masks ~fill:Float.nan;
          input = W.get_floats ws_input ~len:masks ~fill:Float.nan;
          logsurv = W.get_floats ws_logsurv ~len:masks ~fill:Float.nan;
        }
    end
  in
  let bound =
    match bound with Some b -> b | None -> Bound.create prune_above
  in
  {
    instance;
    objective;
    n;
    m;
    wp;
    deltas;
    spd;
    bw_out;
    bw_pp;
    rem;
    bound;
    publish;
    record;
    memo;
    best = None;
    log = [];
    fuel = -1;
    nodes = 0;
    evaluated = 0;
    pruned = 0;
  }

let run_branch ctx =
  branch ctx ~next_stage:1 ~used:B.empty ~closed:[] ~pending:None
    ~latency_closed:0.0 ~log_survival:0.0

let solve_with_stats ?prune_above instance objective =
  let ctx = make_ctx ?prune_above ~publish:false ~record:false instance
      objective
  in
  run_branch ctx;
  let obs = Obs.ambient () in
  Obs.incr obs "core.bb.solves";
  Obs.add obs "core.bb.nodes" ctx.nodes;
  Obs.add obs "core.bb.evaluated" ctx.evaluated;
  Obs.add obs "core.bb.pruned" ctx.pruned;
  (ctx.best, { nodes = ctx.nodes; evaluated = ctx.evaluated; pruned = ctx.pruned })

let solve ?prune_above instance objective =
  fst (solve_with_stats ?prune_above instance objective)

(* ------------------------------------------------------------------ *)
(* Recorded solve (certificate emission)                               *)
(* ------------------------------------------------------------------ *)

let solve_recorded instance objective =
  (* Unbounded on purpose: every Dominated cut in the transcript is then
     justified by the local incumbent alone, whose objective is an upper
     bound on the optimum — the independent checker re-derives exactly
     that (lib/cert).  Serial, so the transcript is deterministic. *)
  let ctx = make_ctx ~publish:false ~record:true instance objective in
  run_branch ctx;
  ( ctx.best,
    { nodes = ctx.nodes; evaluated = ctx.evaluated; pruned = ctx.pruned },
    List.rev ctx.log )

(* ------------------------------------------------------------------ *)
(* Parallel solve                                                      *)
(* ------------------------------------------------------------------ *)

type par_stats = { tasks : int; probe_nodes : int; confirm : stats }

(* Probe budget: every frontier task gets a fixed node allowance carved
   from a global pool, so the probe phase costs a bounded slice of the
   search no matter how large the frontier is.  The values only shape
   how tight the probe bound gets — never the answer. *)
let probe_task_fuel = 2048
let probe_total_fuel = 1 lsl 17

(* One probe context per domain per parallel solve: frontier tasks that
   land on the same domain share its memo tables (their entries are pure
   functions of the instance, so sharing is safe and scheduling-
   independent).  The generation stamp invalidates the cache across
   solves. *)
let par_generation = Atomic.make 0

type parcache = { gen : int; pctx : ctx }

let ws_parctx : parcache option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

type task = {
  t_e : int;  (* the first interval covers stages 1..t_e *)
  t_mask : B.t;  (* its replication set *)
  t_lc : float;  (* latency after the input sends *)
  t_ls : float;  (* log survival of the first interval *)
  t_key : float;  (* best-first ordering key (objective lower bound) *)
}

let solve_par_with_stats ?(prune_above = Float.infinity) ~workers instance
    objective =
  let obs = Obs.ambient () in
  (* Phase 1 — probe: distribute the root frontier (every choice of first
     interval) over the pool in best-first order.  Tasks run budgeted
     depth-first searches against a shared epsilon-inflated incumbent
     cell: any feasible mapping a task completes publishes
     [inflate_bound objective] into the cell, root-pruning weaker
     subtrees on every domain.  Nothing the probe finds is trusted as an
     answer — it only tightens a sound upper bound. *)
  let root =
    make_ctx ~prune_above ~publish:false ~record:false instance objective
  in
  let shared = root.bound in
  let root_kept =
    prune_ex root
      ~partial_latency:(0.0 +. 0.0)
      ~partial_failure:(-.Float.expm1 0.0)
      ~done_upto:0
    = Keep
  in
  let tasks =
    if not root_kept then [||]
    else begin
      let acc = ref [] in
      for e = 1 to root.n do
        B.iter_nonempty_subsets
          (fun subset ->
            let t_lc = 0.0 +. input_cost root subset in
            let t_ls = 0.0 +. log_survival_term root subset in
            let t_key =
              match objective with
              | Instance.Min_failure _ -> -.Float.expm1 t_ls
              | Instance.Min_latency _ ->
                  (t_lc +. pending_bound root (1, e, subset)) +. root.rem.(e)
            in
            acc := { t_e = e; t_mask = subset; t_lc; t_ls; t_key } :: !acc)
          (B.full root.m)
      done;
      let arr = Array.of_list (List.rev !acc) in
      (* Stable: equal keys keep the serial enumeration order. *)
      Array.stable_sort (fun a b -> Float.compare a.t_key b.t_key) arr;
      arr
    end
  in
  let gen = 1 + Atomic.fetch_and_add par_generation 1 in
  let fuel_pool = Atomic.make probe_total_fuel in
  let probe task =
    let granted =
      Atomic.fetch_and_add fuel_pool (-probe_task_fuel) > 0
    in
    if not granted then 0
    else begin
      let cell = Domain.DLS.get ws_parctx in
      let ctx =
        match !cell with
        | Some { gen = g; pctx } when g = gen -> pctx
        | _ ->
            let pctx =
              make_ctx ~bound:shared ~publish:true ~record:false instance
                objective
            in
            cell := Some { gen; pctx };
            pctx
      in
      ctx.best <- None;
      ctx.fuel <- probe_task_fuel;
      let n0 = ctx.nodes in
      branch ctx ~next_stage:(task.t_e + 1) ~used:task.t_mask ~closed:[]
        ~pending:(Some (1, task.t_e, task.t_mask)) ~latency_closed:task.t_lc
        ~log_survival:task.t_ls;
      ctx.nodes - n0
    end
  in
  let visited, _pool_stats = Pool.map ?obs ~workers probe tasks in
  let probe_nodes = Array.fold_left ( + ) 0 visited in
  (* Phase 2 — confirm: one serial pass under the probe's bound.  The
     cell holds min(prune_above, inflate(best published objective)),
     which is a sound upper bound on the optimum, so by the
     [?prune_above] contract the pass returns the answer an unbounded
     serial solve would return, bit for bit — at every worker count.  Its
     node counts depend on how tight the probe got, so they are kept out
     of the ambient metrics (only the deterministic task/solve counters
     are recorded). *)
  let best, confirm =
    Obs.with_ambient None (fun () ->
        solve_with_stats ~prune_above:(Bound.get shared) instance objective)
  in
  Obs.incr obs "core.exact.par.bb.solves";
  Obs.add obs "core.exact.par.bb.tasks" (Array.length tasks);
  (best, { tasks = Array.length tasks; probe_nodes; confirm })

let solve_par ?prune_above ~workers instance objective =
  fst (solve_par_with_stats ?prune_above ~workers instance objective)
