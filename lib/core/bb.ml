open Relpipe_model
module B = Relpipe_util.Bitset
module F = Relpipe_util.Float_cmp
module Obs = Relpipe_obs.Obs

type stats = { nodes : int; evaluated : int; pruned : int }

(* Mutable search context. *)
type ctx = {
  instance : Instance.t;
  objective : Instance.objective;
  n : int;
  m : int;
  max_speed : float;
  mutable best : Solution.t option;
  mutable nodes : int;
  mutable evaluated : int;
  mutable pruned : int;
}

let incumbent_objective ctx =
  match ctx.best with
  | None -> Float.infinity
  | Some s -> Instance.objective_value ctx.objective s.Solution.evaluation

(* Lower bound on the latency still to be paid for stages > done_upto:
   remaining work at the fastest speed (communications >= 0). *)
let remaining_bound ctx done_upto =
  if done_upto >= ctx.n then 0.0
  else
    Pipeline.work_sum ctx.instance.Instance.pipeline ~first:(done_upto + 1)
      ~last:ctx.n
    /. ctx.max_speed

let prune ctx ~partial_latency ~partial_failure ~done_upto =
  let latency_lb = partial_latency +. remaining_bound ctx done_upto in
  let incumbent = incumbent_objective ctx in
  match ctx.objective with
  | Instance.Min_failure { max_latency } ->
      (not (F.leq latency_lb max_latency)) || partial_failure >= incumbent
  | Instance.Min_latency { max_failure } ->
      (not (F.leq partial_failure max_failure)) || latency_lb >= incumbent

(* The Eq. 2 term of a closed interval, given the replication set of its
   successor (or Pout). *)
let interval_term ctx (first, last, procs) next_targets =
  let { Instance.pipeline; platform } = ctx.instance in
  let work = Pipeline.work_sum pipeline ~first ~last in
  let out_size = Pipeline.delta pipeline last in
  B.fold
    (fun u acc ->
      let compute = work /. Platform.speed platform u in
      let comm =
        List.fold_left
          (fun sum v ->
            sum +. (out_size /. Platform.bandwidth platform (Platform.Proc u) v))
          0.0 next_targets
      in
      Float.max acc (compute +. comm))
    procs Float.neg_infinity

(* Lower bound on a pending interval's eventual term: its computation on
   its own slowest replica (outgoing communications >= 0). *)
let pending_bound ctx (first, last, procs) =
  let { Instance.pipeline; platform } = ctx.instance in
  let work = Pipeline.work_sum pipeline ~first ~last in
  B.fold
    (fun u acc -> Float.max acc (work /. Platform.speed platform u))
    procs Float.neg_infinity

let endpoints_of procs = B.fold (fun u acc -> Platform.Proc u :: acc) procs []

let rec branch (ctx : ctx) ~next_stage ~used ~closed ~pending ~latency_closed
    ~log_survival =
  (* [closed]: reversed list of finalized intervals (term already added to
     latency_closed).  [pending]: the last chosen interval, whose outgoing
     term depends on the next decision. *)
  ctx.nodes <- ctx.nodes + 1;
  let partial_failure = -.Float.expm1 log_survival in
  let pending_lb =
    match pending with None -> 0.0 | Some iv -> pending_bound ctx iv
  in
  if
    prune ctx
      ~partial_latency:(latency_closed +. pending_lb)
      ~partial_failure ~done_upto:(next_stage - 1)
  then ctx.pruned <- ctx.pruned + 1
  else if next_stage > ctx.n then begin
    (* Close the final interval against Pout and record the solution. *)
    match pending with
    | None -> assert false
    | Some ((_, _, _) as iv) ->
        let total =
          latency_closed +. interval_term ctx iv [ Platform.Pout ]
        in
        ctx.evaluated <- ctx.evaluated + 1;
        let mapping =
          Mapping.make ~n:ctx.n ~m:ctx.m
            (List.rev_map
               (fun (first, last, procs) ->
                 { Mapping.first; last; procs = B.elements procs })
               (iv :: closed))
        in
        let evaluation = { Instance.latency = total; failure = partial_failure } in
        if Instance.feasible ctx.objective evaluation then begin
          let candidate = { Solution.mapping; evaluation } in
          match ctx.best with
          | Some b
            when not
                   (Instance.better ctx.objective evaluation
                      b.Solution.evaluation) ->
              ()
          | _ -> ctx.best <- Some candidate
        end
  end
  else begin
    let unused = B.diff (B.full ctx.m) used in
    (* Choose the next interval [next_stage .. e] and its replication set. *)
    for e = next_stage to ctx.n do
      Seq.iter
        (fun subset ->
          let iv = (next_stage, e, subset) in
          let latency_closed', log_survival' =
            match pending with
            | None ->
                (* First interval: pay the input sends. *)
                let input =
                  B.fold
                    (fun u acc ->
                      acc
                      +. Pipeline.delta ctx.instance.Instance.pipeline 0
                         /. Platform.bandwidth ctx.instance.Instance.platform
                              Platform.Pin (Platform.Proc u))
                    subset 0.0
                in
                (latency_closed +. input, log_survival)
            | Some prev ->
                ( latency_closed +. interval_term ctx prev (endpoints_of subset),
                  log_survival )
          in
          let pi =
            Failure.interval_failure ctx.instance.Instance.platform
              (B.elements subset)
          in
          let log_survival' = log_survival' +. Float.log1p (-.pi) in
          let closed' = match pending with None -> closed | Some p -> p :: closed in
          branch ctx ~next_stage:(e + 1) ~used:(B.union used subset)
            ~closed:closed' ~pending:(Some iv) ~latency_closed:latency_closed'
            ~log_survival:log_survival')
        (B.nonempty_subsets unused)
    done
  end

let solve_with_stats instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > B.max_width then invalid_arg "Bb.solve: too many processors";
  let ctx =
    {
      instance;
      objective;
      n;
      m;
      max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform);
      best = None;
      nodes = 0;
      evaluated = 0;
      pruned = 0;
    }
  in
  branch ctx ~next_stage:1 ~used:B.empty ~closed:[] ~pending:None
    ~latency_closed:0.0 ~log_survival:0.0;
  let obs = Obs.ambient () in
  Obs.incr obs "core.bb.solves";
  Obs.add obs "core.bb.nodes" ctx.nodes;
  Obs.add obs "core.bb.evaluated" ctx.evaluated;
  Obs.add obs "core.bb.pruned" ctx.pruned;
  (ctx.best, { nodes = ctx.nodes; evaluated = ctx.evaluated; pruned = ctx.pruned })

let solve instance objective = fst (solve_with_stats instance objective)
