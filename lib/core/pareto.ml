open Relpipe_model
module F = Relpipe_util.Float_cmp

type point = { threshold : float; solution : Solution.t }

let latency_thresholds instance ~count =
  if count < 2 then invalid_arg "Pareto.latency_thresholds: count must be >= 2";
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let lo =
    (* Cheapest single-processor mapping: a latency no feasible threshold
       should undercut on Comm. Homogeneous platforms; on Fully
       Heterogeneous ones it is simply a representative low anchor. *)
    List.fold_left
      (fun acc u ->
        Float.min acc
          (Latency.of_mapping pipeline platform
             (Mapping.single_interval ~n ~m [ u ])))
      Float.infinity (Platform.procs platform)
  in
  let hi =
    Latency.of_mapping pipeline platform
      (Mapping.single_interval ~n ~m (Platform.procs platform))
  in
  let hi = Float.max hi (lo *. (1.0 +. 1e-6)) in
  let ratio = hi /. lo in
  List.init count (fun i ->
      lo *. (ratio ** (float_of_int i /. float_of_int (count - 1))))

let front ~solve ~thresholds =
  let points =
    List.filter_map
      (fun threshold ->
        match solve (Instance.Min_failure { max_latency = threshold }) with
        | Some solution -> Some { threshold; solution }
        | None -> None)
      (List.sort_uniq Float.compare thresholds)
  in
  (* Keep non-dominated points, sorted by latency. *)
  let sorted =
    List.sort
      (fun a b ->
        Float.compare
          a.solution.Solution.evaluation.Instance.latency
          b.solution.Solution.evaluation.Instance.latency)
      points
  in
  let rec filter best_fp = function
    | [] -> []
    | p :: tl ->
        let fp = p.solution.Solution.evaluation.Instance.failure in
        if F.compare fp best_fp < 0 then p :: filter fp tl else filter best_fp tl
  in
  filter Float.infinity sorted

let failure_thresholds instance ~count =
  if count < 2 then invalid_arg "Pareto.failure_thresholds: count must be >= 2";
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best =
    Failure.of_mapping platform
      (Mapping.single_interval ~n ~m (Platform.procs platform))
  in
  let worst =
    List.fold_left
      (fun acc u ->
        Float.max acc
          (Failure.of_mapping platform (Mapping.single_interval ~n ~m [ u ])))
      0.0 (Platform.procs platform)
  in
  let lo = Float.max best 1e-18 in
  let hi = Float.max worst (lo *. (1.0 +. 1e-6)) in
  let ratio = hi /. lo in
  List.init count (fun i ->
      lo *. (ratio ** (float_of_int i /. float_of_int (count - 1))))

let front_by_failure ~solve ~thresholds =
  let points =
    List.filter_map
      (fun threshold ->
        match solve (Instance.Min_latency { max_failure = threshold }) with
        | Some solution -> Some { threshold; solution }
        | None -> None)
      (List.sort_uniq Float.compare thresholds)
  in
  let sorted =
    List.sort
      (fun a b ->
        Float.compare
          a.solution.Solution.evaluation.Instance.latency
          b.solution.Solution.evaluation.Instance.latency)
      points
  in
  let rec filter best_fp = function
    | [] -> []
    | p :: tl ->
        let fp = p.solution.Solution.evaluation.Instance.failure in
        if F.compare fp best_fp < 0 then p :: filter fp tl else filter best_fp tl
  in
  filter Float.infinity sorted

let front_with solver instance ~count =
  front
    ~solve:(fun objective -> solver instance objective)
    ~thresholds:(latency_thresholds instance ~count)

let knee points =
  match points with
  | [] -> None
  | [ p ] -> Some p
  | _ ->
      let latencies =
        List.map (fun p -> p.solution.Solution.evaluation.Instance.latency) points
      in
      let failures =
        List.map (fun p -> p.solution.Solution.evaluation.Instance.failure) points
      in
      let lmin = List.fold_left Float.min Float.infinity latencies in
      let lmax = List.fold_left Float.max Float.neg_infinity latencies in
      let fmin = List.fold_left Float.min Float.infinity failures in
      let fmax = List.fold_left Float.max Float.neg_infinity failures in
      let span lo hi = Float.max (hi -. lo) 1e-12 in
      let distance p =
        let e = p.solution.Solution.evaluation in
        let dl = (e.Instance.latency -. lmin) /. span lmin lmax in
        let df = (e.Instance.failure -. fmin) /. span fmin fmax in
        Float.sqrt ((dl *. dl) +. (df *. df))
      in
      List.fold_left
        (fun acc p ->
          match acc with
          | Some best when distance best <= distance p -> acc
          | _ -> Some p)
        None points

let is_non_dominated points =
  let rec go = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as tl) ->
        let ea = a.solution.Solution.evaluation
        and eb = b.solution.Solution.evaluation in
        F.compare ea.Instance.latency eb.Instance.latency < 0
        && F.compare eb.Instance.failure ea.Instance.failure < 0
        && go tl
  in
  go points
