(** Solution certificates.

    Heuristics and external tools hand back mappings; this module
    re-derives everything from first principles and reports exactly what
    holds: structural validity, metric consistency, threshold feasibility,
    and — when the platform class admits a polynomial optimal algorithm or
    the instance is small enough for branch-and-bound — optimality. *)

open Relpipe_model

type optimality =
  | Optimal  (** certified equal to a provably optimal solution *)
  | Suboptimal of float  (** certified gap to the optimum (objective units) *)
  | Unknown  (** no tractable certificate for this instance *)

type report = {
  structurally_valid : bool;  (** intervals/processors validate *)
  evaluation_consistent : bool;
      (** stored metrics match a from-scratch re-evaluation *)
  feasible : bool;  (** threshold of the objective holds *)
  optimality : optimality;
  messages : string list;  (** human-readable findings, worst first *)
  diagnostics : Relpipe_analysis.Diagnostic.t list;
      (** static-analysis findings for the instance and mapping (all
          severities, worst first); [Warning]+ are also rendered into
          [messages] *)
}

val check :
  ?certify_budget:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t ->
  report
(** [certify_budget] caps the branch-and-bound effort used for optimality
    certificates on intractable classes (number of stages times processors
    cap, default suitable for n, m <= 6; pass [0] to skip). *)

val ok : report -> bool
(** Structurally valid, consistent and feasible (optimality not
    required). *)

val pp : Format.formatter -> report -> unit
