(** Latency-optimal general mappings on Fully Heterogeneous platforms
    (paper Theorem 4, Fig. 6).

    A general mapping may assign non-consecutive stages to the same
    processor.  The paper encodes such mappings as source-to-sink paths in
    a layered graph with [n*m + 2] vertices: vertex (i, u) means "stage i
    runs on processor u"; the edge (i, u) -> (i+1, v) carries the
    computation cost of stage i on u plus, when [u <> v], the
    communication cost of shipping delta_i across the u-v link.  The
    minimum latency is the shortest path from the source (data on Pin) to
    the sink (result on Pout), computable in polynomial time.

    This module builds the graph explicitly (so tests can cross-check
    Dijkstra, Bellman–Ford and the DAG sweep on it) and also implements the
    equivalent direct dynamic program as an independent oracle. *)

open Relpipe_model

type algo = Dijkstra | Bellman_ford | Dag_sweep

val graph : Instance.t -> Relpipe_graph.Graph.t * int * int
(** The Fig. 6 construction: [(g, source, sink)].  Vertex numbering:
    [0] is V_(0,in), [1 + (i-1)*m + u] is V_(i,u), [n*m + 1] is
    V_(n+1,out). *)

val solve : ?algo:algo -> Instance.t -> float * Assignment.t
(** Minimum-latency general mapping.  Default algorithm: [Dijkstra]. *)

val solve_dp : Instance.t -> float * Assignment.t
(** Direct O(n m^2) dynamic program over (stage, processor) states;
    independent of the graph construction.  Runs over domain-local
    reusable rows with a dominated-edge gate that skips relaxations a
    comm-free bound already rules out; pinned bit-for-bit (values,
    mapping, relaxation count) to the original kept in {!Reference}. *)

val optimal_latency : Instance.t -> float
(** Shorthand for [fst (solve instance)]. *)
