open Relpipe_model
module F = Relpipe_util.Float_cmp

let applicable instance =
  let platform = instance.Instance.platform in
  Classify.links_homogeneous platform && Classify.speeds_homogeneous platform

let check instance =
  if not (applicable instance) then
    invalid_arg "Fully_homog: platform is not fully homogeneous"

let base_latency instance =
  (* Latency of a single-interval mapping minus the replicated input term:
     W/s + delta_n/b. *)
  let { Instance.pipeline; platform } = instance in
  let b = Option.get (Classify.common_bandwidth platform) in
  let s = Platform.speed platform 0 in
  (Pipeline.total_work pipeline /. s)
  +. (Pipeline.delta pipeline (Pipeline.length pipeline) /. b)

let max_replicas_for_latency instance ~max_latency =
  check instance;
  let { Instance.pipeline; platform } = instance in
  let b = Option.get (Classify.common_bandwidth platform) in
  let delta0 = Pipeline.delta pipeline 0 in
  let slack = max_latency -. base_latency instance in
  if Float.equal delta0 0.0 then if F.geq slack 0.0 then max_int else 0
  else begin
    let k = Float.floor ((slack *. b /. delta0) +. F.default_eps) in
    if k < 1.0 then 0 else int_of_float k
  end

let take k xs =
  let rec go k = function
    | _ when k = 0 -> []
    | [] -> []
    | x :: tl -> x :: go (k - 1) tl
  in
  go k xs

let single_interval_solution instance procs =
  let { Instance.pipeline; platform } = instance in
  Solution.of_mapping instance
    (Mapping.single_interval
       ~n:(Pipeline.length pipeline)
       ~m:(Platform.size platform) procs)

let min_failure_for_latency instance ~max_latency =
  check instance;
  let m = Platform.size instance.Instance.platform in
  let k = min m (max_replicas_for_latency instance ~max_latency) in
  if k < 1 then None
  else begin
    let procs = take k (Mono.most_reliable_procs instance.Instance.platform) in
    Some (single_interval_solution instance procs)
  end

let min_latency_for_failure instance ~max_failure =
  check instance;
  let platform = instance.Instance.platform in
  let reliable = Mono.most_reliable_procs platform in
  (* Grow the replication set, most reliable first, until the single
     interval's failure probability prod fp_u meets the threshold. *)
  let rec grow acc product candidates =
    if F.leq product max_failure then Some (List.rev acc)
    else
      match candidates with
      | [] -> None
      | u :: tl -> grow (u :: acc) (product *. Platform.failure platform u) tl
  in
  match reliable with
  | [] -> None
  | u0 :: rest -> (
      match grow [ u0 ] (Platform.failure platform u0) rest with
      | None -> None
      | Some procs -> Some (single_interval_solution instance procs))

let solve instance = function
  | Instance.Min_latency { max_failure } ->
      min_latency_for_failure instance ~max_failure
  | Instance.Min_failure { max_latency } ->
      min_failure_for_latency instance ~max_latency
