open Relpipe_model
module Cert = Relpipe_cert.Cert
module B = Relpipe_util.Bitset
module Obs = Relpipe_obs.Obs

let digest instance =
  Digest.to_hex (Digest.string (Textio.to_string instance))

let dims instance =
  ( Pipeline.length instance.Instance.pipeline,
    Platform.size instance.Instance.platform )

let cert_status = function
  | Bb.Record.Expanded -> Cert.Expanded
  | Bb.Record.Evaluated { latency; failure } ->
      Cert.Evaluated { latency; failure }
  | Bb.Record.Pruned { reason; latency_lb; partial_failure } ->
      let reason =
        match reason with
        | Bb.Record.Threshold -> Cert.Threshold
        | Bb.Record.Dominated -> Cert.Dominated
      in
      Cert.Pruned { reason; latency_lb; partial_failure }

let cert_path path =
  List.map
    (fun (first, last, procs) ->
      { Mapping.first; last; procs = B.elements procs })
    path

let bb instance objective =
  let best, _stats, log = Bb.solve_recorded instance objective in
  let n, m = dims instance in
  let claim =
    match best with
    | None -> Cert.Infeasible
    | Some s ->
        Cert.Feasible
          {
            latency = s.Solution.evaluation.Instance.latency;
            failure = s.Solution.evaluation.Instance.failure;
            mapping = Mapping.intervals s.Solution.mapping;
          }
  in
  let nodes =
    List.map
      (fun { Bb.Record.path; status } ->
        { Cert.path = cert_path path; status = cert_status status })
      log
  in
  let cert =
    {
      Cert.n;
      m;
      instance_digest = Some (digest instance);
      body = Cert.Bb { objective; claim; nodes };
    }
  in
  let obs = Obs.ambient () in
  Obs.incr obs "cert.emit.bb";
  Obs.add obs "cert.emit.entries" (Cert.entries cert);
  (best, cert)

let interval instance =
  let opt, state, _reuse = Interval_exact.Dp.solve instance in
  match opt with
  | None -> (None, None)
  | Some (latency, mapping) ->
      let n, m = dims instance in
      let sn, sm = Interval_exact.Dp.dims state in
      assert (sn = n && sm = m);
      let cells =
        Interval_exact.Dp.fold_finite_cells state ~init:[]
          ~f:(fun acc ~e ~u ~mask value -> { Cert.e; u; mask; value } :: acc)
        |> List.rev
      in
      let cert =
        {
          Cert.n;
          m;
          instance_digest = Some (digest instance);
          body =
            Cert.Dp { latency; mapping = Mapping.intervals mapping; cells };
        }
      in
      let obs = Obs.ambient () in
      Obs.incr obs "cert.emit.dp";
      Obs.add obs "cert.emit.entries" (Cert.entries cert);
      (opt, Some cert)
