open Relpipe_model
module Obs = Relpipe_obs.Obs
module W = Relpipe_util.Workspace

let max_procs = 14

(* Reusable domain-local scratch: the DP table, the parent table, and the
   per-call platform/pipeline snapshots.  Flat arrays, cell (e, u, mask) at
   [((e * m) + u) * masks + mask].  Reusing them across calls removes the
   dominant allocation cost of small solves; the requested prefix is
   re-initialised on every call so nothing leaks between solves (see
   test/test_reference.ml workspace-reuse tests). *)
let ws_dp = W.floats ()
let ws_parent = W.ints ()
let ws_env = W.floats ()

let min_latency instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > max_procs then
    invalid_arg "Interval_exact.min_latency: too many processors (cap 14)";
  let masks = 1 lsl m in
  let obs = Obs.ambient () in
  Obs.incr obs "core.interval_dp.runs";
  Obs.add obs "core.interval_dp.cells" ((n + 1) * m * masks);
  (* Successful relaxations, counted locally and flushed once at the end
     so the hot loop never touches an atomic. *)
  let updates = ref 0 in
  (* Snapshot the platform into flat arrays: the hot loop must not allocate
     [Platform.Proc _] constructors or chase the platform representation.
     Layout in [env]: work prefixes (n+1) | deltas (n+1) | speeds (m)
     | Pin->v bandwidths (m) | u->Pout bandwidths (m) | u->v bandwidths
     (m*m, diagonal unused). *)
  let off_wp = 0 in
  let off_delta = n + 1 in
  let off_spd = off_delta + n + 1 in
  let off_bw_in = off_spd + m in
  let off_bw_out = off_bw_in + m in
  let off_bw_pp = off_bw_out + m in
  let env = W.get_floats ws_env ~len:(off_bw_pp + (m * m)) ~fill:0.0 in
  Array.blit (Pipeline.work_prefixes pipeline) 0 env off_wp (n + 1);
  for k = 0 to n do
    env.(off_delta + k) <- Pipeline.delta pipeline k
  done;
  for u = 0 to m - 1 do
    env.(off_spd + u) <- Platform.speed platform u;
    env.(off_bw_in + u) <-
      Platform.bandwidth platform Platform.Pin (Platform.Proc u);
    env.(off_bw_out + u) <-
      Platform.bandwidth platform (Platform.Proc u) Platform.Pout;
    for v = 0 to m - 1 do
      if u <> v then
        env.(off_bw_pp + (u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  (* dp cell ((e * m) + u) * masks + mask: cheapest cost of stages 1..e
     split into intervals with distinct processors (set = mask), last
     interval on u; includes the input communication and all
     computations/communications up to stage e, excludes the final
     output. *)
  let cells = (n + 1) * m * masks in
  let dp = W.get_floats ws_dp ~len:cells ~fill:Float.infinity in
  let parent = W.get_ints ws_parent ~len:cells ~fill:(-1) in
  for v = 0 to m - 1 do
    let input = env.(off_delta) /. env.(off_bw_in + v) in
    let sv = env.(off_spd + v) in
    let cell = 1 lsl v in
    for e = 1 to n do
      dp.((((e * m) + v) * masks) + cell) <-
        input +. ((env.(off_wp + e) -. env.(off_wp)) /. sv)
    done
  done;
  for e = 1 to n - 1 do
    let delta_e = env.(off_delta + e) in
    let wp_e = env.(off_wp + e) in
    for u = 0 to m - 1 do
      let row = ((e * m) + u) * masks in
      let bw_row = off_bw_pp + (u * m) in
      for mask = 0 to masks - 1 do
        let base = dp.(row + mask) in
        if Float.is_finite base then
          for v = 0 to m - 1 do
            if mask land (1 lsl v) = 0 then begin
              let comm = delta_e /. env.(bw_row + v) in
              let nmask = mask lor (1 lsl v) in
              let sv = env.(off_spd + v) in
              let base_comm = base +. comm in
              let col = (v * masks) + nmask in
              for e' = e + 1 to n do
                let cand =
                  base_comm +. ((env.(off_wp + e') -. wp_e) /. sv)
                in
                let cell = (e' * m * masks) + col in
                if cand < dp.(cell) then begin
                  dp.(cell) <- cand;
                  parent.(cell) <- (e * m) + u;
                  incr updates
                end
              done
            end
          done
      done
    done
  done;
  (* Close against Pout. *)
  let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
  for u = 0 to m - 1 do
    let out = env.(off_delta + n) /. env.(off_bw_out + u) in
    let row = ((n * m) + u) * masks in
    for mask = 0 to masks - 1 do
      let total = dp.(row + mask) +. out in
      if total < !best then begin
        best := total;
        best_u := u;
        best_mask := mask
      end
    done
  done;
  Obs.add obs "core.interval_dp.states" !updates;
  if not (Float.is_finite !best) then None
  else begin
    (* Reconstruct the interval chain. *)
    let rec rebuild e u mask acc =
      match parent.((((e * m) + u) * masks) + mask) with
      | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
      | code ->
          let pe = code / m and pu = code mod m in
          rebuild pe pu
            (mask land lnot (1 lsl u))
            ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
    in
    let intervals = rebuild n !best_u !best_mask [] in
    Some (!best, Mapping.make ~n ~m intervals)
  end

let interval_vs_general_gap instance =
  match min_latency instance with
  | None -> Float.nan
  | Some (interval_opt, _) ->
      interval_opt /. General_mapping.optimal_latency instance
